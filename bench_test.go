// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§7) at a reduced scale. Each BenchmarkTableN/BenchmarkFigN
// runs the corresponding harness experiment end-to-end — workload
// generation, all systems under comparison, result verification — and
// reports the rendered table through -v logging. For full-scale runs use
// cmd/khuzdul-bench.
package khuzdul_test

import (
	"testing"

	"khuzdul"
	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/harness"
)

// benchOpts are the reduced-scale settings used by the benchmark suite.
func benchOpts(scale float64) harness.Options {
	return harness.Options{Scale: scale, Nodes: 8, Threads: 2, Quick: true}
}

// runExperiment executes one harness experiment b.N times.
func runExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	e, err := harness.GetExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts(scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.String())
			b.ReportMetric(float64(len(tab.Rows)), "rows")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: k-Automine/k-GraphPi vs GraphPi
// (replicated) vs G-thinker on the distributed cluster.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", 0.4) }

// BenchmarkTable3 regenerates Table 3: single-node comparison against
// AutomineIH, Peregrine-like and Pangolin-like engines.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", 0.4) }

// BenchmarkTable4 regenerates Table 4: FSM across thresholds and systems.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", 0.25) }

// BenchmarkTable5 regenerates Table 5: massive-graph TC and 4-CC with
// orientation on an 18-node cluster.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", 0.5) }

// BenchmarkTable6 regenerates Table 6: static-cache traffic and runtime.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", 0.4) }

// BenchmarkTable7 regenerates Table 7: NUMA-aware support.
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", 0.4) }

// BenchmarkFig10 regenerates Figure 10: comparison with the aDFS-style
// moving-computation-to-data baseline.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10", 0.3) }

// BenchmarkFig11 regenerates Figure 11: vertical computation sharing.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11", 0.4) }

// BenchmarkFig12 regenerates Figure 12: horizontal data sharing.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12", 0.4) }

// BenchmarkFig13 regenerates Figure 13: inter-node scalability.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13", 0.4) }

// BenchmarkFig14 regenerates Figure 14: intra-node scalability and COST.
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14", 0.4) }

// BenchmarkFig15 regenerates Figure 15: runtime breakdown of G-thinker vs
// k-Automine.
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15", 0.3) }

// BenchmarkFig16 regenerates Figure 16: cache replacement policies.
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16", 0.4) }

// BenchmarkFig17 regenerates Figure 17: cache size sweep.
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17", 0.4) }

// BenchmarkFig18 regenerates Figure 18: chunk size sweep.
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18", 0.4) }

// BenchmarkFig19 regenerates Figure 19: network bandwidth utilization.
func BenchmarkFig19(b *testing.B) { runExperiment(b, "fig19", 0.4) }

// BenchmarkAblationPipeline measures the strict-vs-non-strict circulant
// pipelining ablation (beyond the paper's exhibits; see DESIGN.md).
func BenchmarkAblationPipeline(b *testing.B) { runExperiment(b, "ablation-pipeline", 0.4) }

// BenchmarkAblationMiniBatch sweeps the mini-batch work-distribution unit.
func BenchmarkAblationMiniBatch(b *testing.B) { runExperiment(b, "ablation-minibatch", 0.4) }

// BenchmarkAblationOblivious measures the pattern-aware vs pattern-oblivious
// enumeration gap (the paper's §1 motivation).
func BenchmarkAblationOblivious(b *testing.B) { runExperiment(b, "ablation-oblivious", 0.3) }

// BenchmarkAblationChaos measures the resilience subsystem: retry/deadline
// overhead when healthy, and exact-count recovery under injected transient
// errors and a permanent node crash.
func BenchmarkAblationChaos(b *testing.B) { runExperiment(b, "ablation-chaos", 0.3) }

// BenchmarkEngineTriangles measures end-to-end engine throughput for
// triangle counting on a fixed skewed graph (not tied to a paper exhibit;
// useful for regression tracking).
func BenchmarkEngineTriangles(b *testing.B) {
	g := khuzdul.RMAT(20_000, 150_000, 5)
	eng, err := khuzdul.Open(g, khuzdul.Config{Nodes: 4, Threads: 2, CacheFraction: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Triangles()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Count), "triangles")
		}
	}
}

// BenchmarkEngineCliquesOriented measures oriented triangle counting, the
// Table 5 inner loop: symmetry breaking is replaced by the DAG orientation.
func BenchmarkEngineCliquesOriented(b *testing.B) {
	dag := khuzdul.Orient(khuzdul.RMAT(30_000, 250_000, 5))
	c, err := cluster.New(dag, cluster.Config{NumNodes: 4, ThreadsPerSocket: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apps.OrientedCliqueCount(c, 3, apps.KAutomine); err != nil {
			b.Fatal(err)
		}
	}
}
