// Command benchjson converts `go test -bench -benchmem` text output into the
// committed benchmark-evidence format (BENCH_hotpath.json): one entry per
// benchmark with a caller-chosen label, merged into an existing file so
// before/after pairs accumulate side by side.
//
// Usage:
//
//	go test ./internal/setops ./internal/core -run '^$' \
//	    -bench 'Extend|Intersect' -benchmem |
//	    go run ./cmd/benchjson -label after -out BENCH_hotpath.json
//
// Entries are keyed by (name, label): re-running with the same label
// replaces the previous measurement instead of duplicating it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Label       string  `json:"label"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the file layout.
type Doc struct {
	// Regenerate documents the pipeline that rebuilds the file.
	Regenerate string  `json:"regenerate"`
	Benchmarks []Entry `json:"benchmarks"`
}

// defaultRegenerate matches the original evidence file; -regen overrides it
// so each BENCH_*.json documents its own pipeline.
const defaultRegenerate = "go test ./internal/setops ./internal/core -run '^$' -bench 'Extend|Intersect' -benchmem | go run ./cmd/benchjson -label <before|after> -out BENCH_hotpath.json"

func main() {
	label := flag.String("label", "", "label for the parsed entries (e.g. before, after)")
	out := flag.String("out", "", "JSON file to merge into (stdout when empty)")
	regen := flag.String("regen", defaultRegenerate, "regenerate command recorded in the output file")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	entries, err := parseBench(os.Stdin, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	doc := Doc{Regenerate: *regen}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
				os.Exit(2)
			}
			doc.Regenerate = *regen
		}
	}
	doc.Benchmarks = merge(doc.Benchmarks, entries)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

// merge replaces entries sharing (name, label) with their new measurement
// and keeps the rest, sorted by name then label for stable diffs.
func merge(old, add []Entry) []Entry {
	replaced := map[string]bool{}
	for _, e := range add {
		replaced[e.Name+"\x00"+e.Label] = true
	}
	out := make([]Entry, 0, len(old)+len(add))
	for _, e := range old {
		if !replaced[e.Name+"\x00"+e.Label] {
			out = append(out, e)
		}
	}
	out = append(out, add...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// parseBench extracts benchmark result lines from `go test -bench` output:
//
//	BenchmarkExtendEngine-8   220   5304047 ns/op   3074537 B/op   11454 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from names so measurements from hosts
// with different core counts merge onto the same key.
func parseBench(r io.Reader, label string) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: trimProcs(fields[0]), Label: label, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				if e.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
					return nil, fmt.Errorf("bad ns/op %q", v)
				}
			case "B/op":
				if e.BytesPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
					return nil, fmt.Errorf("bad B/op %q", v)
				}
			case "allocs/op":
				if e.AllocsPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
					return nil, fmt.Errorf("bad allocs/op %q", v)
				}
			}
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// trimProcs strips a trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
