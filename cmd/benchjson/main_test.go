package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: khuzdul/internal/setops
BenchmarkIntersectMany-8 	  246433	      4888 ns/op	     560 B/op	       9 allocs/op
BenchmarkExtendEngine 	     220	   5304047 ns/op	 3074537 B/op	   11454 allocs/op
PASS
`
	entries, err := parseBench(strings.NewReader(out), "before")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(entries))
	}
	first := entries[0]
	if first.Name != "BenchmarkIntersectMany" || first.Label != "before" ||
		first.Iterations != 246433 || first.NsPerOp != 4888 ||
		first.BytesPerOp != 560 || first.AllocsPerOp != 9 {
		t.Fatalf("bad first entry: %+v", first)
	}
	if entries[1].Name != "BenchmarkExtendEngine" || entries[1].AllocsPerOp != 11454 {
		t.Fatalf("bad second entry: %+v", entries[1])
	}
}

func TestMergeReplacesSameKey(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkA", Label: "before", AllocsPerOp: 9},
		{Name: "BenchmarkA", Label: "after", AllocsPerOp: 5},
	}
	got := merge(old, []Entry{{Name: "BenchmarkA", Label: "after", AllocsPerOp: 0}})
	if len(got) != 2 {
		t.Fatalf("merged to %d entries, want 2", len(got))
	}
	// Sorted by name then label: "after" precedes "before".
	if got[0].Label != "after" || got[0].AllocsPerOp != 0 {
		t.Fatalf("replacement lost: %+v", got[0])
	}
	if got[1].Label != "before" || got[1].AllocsPerOp != 9 {
		t.Fatalf("unrelated entry changed: %+v", got[1])
	}
}
