// Command graphgen generates synthetic graphs in the formats the other
// tools consume.
//
// Usage:
//
//	graphgen -kind rmat -n 100000 -m 1000000 -o graph.bin
//	graphgen -kind preset -preset lj -scale 2 -format txt -o lj.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"khuzdul/internal/graph"
	"khuzdul/internal/harness"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "generator: rmat, uniform, preset")
		n      = flag.Int("n", 10000, "vertex count (rmat/uniform)")
		m      = flag.Uint64("m", 100000, "edge count (rmat/uniform)")
		seed   = flag.Int64("seed", 42, "random seed")
		preset = flag.String("preset", "lj", "preset abbreviation for -kind preset")
		scale  = flag.Float64("scale", 1, "preset scale factor")
		labels = flag.Int("labels", 0, "synthesize N random vertex labels (0 = unlabeled)")
		format = flag.String("format", "bin", "output format: bin or txt")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = graph.RMATDefault(*n, *m, *seed)
	case "uniform":
		g = graph.Uniform(*n, *m, *seed)
	case "preset":
		d, err := harness.GetDataset(*preset)
		if err != nil {
			fatal(err)
		}
		g = d.Generate(*scale)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if *labels > 0 {
		var err error
		g, err = g.WithLabels(graph.RandomLabels(g.NumVertices(), *labels, *seed+1))
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "bin":
		err = graph.WriteBinary(w, g)
	case "txt":
		err = graph.WriteEdgeList(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
