// Command khuzdul-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	khuzdul-bench -exp table2          # one experiment
//	khuzdul-bench -exp all -quick      # everything, trimmed rows
//	khuzdul-bench -list                # show the registry
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"khuzdul/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table2..table7, fig10..fig19) or 'all'")
		scale   = flag.Float64("scale", 1, "dataset scale factor")
		nodes   = flag.Int("nodes", 8, "simulated machine count")
		threads = flag.Int("threads", 2, "compute threads per machine")
		quick   = flag.Bool("quick", false, "trim the heaviest rows")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.Options{Scale: *scale, Nodes: *nodes, Threads: *threads, Quick: *quick}
	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.GetExperiment(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "khuzdul-bench:", err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "khuzdul-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
