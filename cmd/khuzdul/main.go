// Command khuzdul runs one graph pattern mining job on the simulated
// Khuzdul cluster.
//
// Usage examples:
//
//	khuzdul -graph rmat:100000:1000000 -app tc -nodes 8 -threads 4
//	khuzdul -graph preset:lj -app cc -k 5 -system automine
//	khuzdul -graph graph.bin -app pattern -pattern house -induced
//	khuzdul -graph preset:mc -app fsm -support 150
//
// Mining-as-a-service: `khuzdul serve` keeps a cluster resident and answers
// pattern queries over TCP; `khuzdul query` submits one; `khuzdul health`
// probes a running server:
//
//	khuzdul serve -graph preset:lj -addr 127.0.0.1:7747 -window 4 -drain-timeout 10s
//	khuzdul query -addr 127.0.0.1:7747 -pattern house -induced -deadline 30s
//	khuzdul health -addr 127.0.0.1:7747
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"khuzdul"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/harness"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "query":
			runQuery(os.Args[2:])
			return
		case "health":
			runHealth(os.Args[2:])
			return
		}
	}
	runMine()
}

func runMine() {
	var (
		graphSpec = flag.String("graph", "rmat:10000:100000", "input graph: FILE (.bin or edge list), rmat:N:M[:SEED], uniform:N:M[:SEED], or preset:ABBR")
		app       = flag.String("app", "tc", "application: tc, cc, mc, pattern, fsm")
		k         = flag.Int("k", 4, "pattern size for cc/mc")
		patName   = flag.String("pattern", "triangle", "pattern name for -app pattern")
		induced   = flag.Bool("induced", false, "induced matching semantics for -app pattern")
		system    = flag.String("system", "graphpi", "client system: automine or graphpi")
		nodes     = flag.Int("nodes", 8, "simulated machine count")
		sockets   = flag.Int("sockets", 1, "NUMA sockets per machine")
		threads   = flag.Int("threads", 2, "compute threads per socket")
		chunk     = flag.Int("chunk", 0, "chunk capacity in embeddings (0 = default)")
		cacheFrac = flag.Float64("cache", 0.1, "static cache size as fraction of graph size (0 disables)")
		cachePol  = flag.String("cache-policy", "static", "cache policy: static, fifo, lifo, lru, mru")
		cacheDeg  = flag.Uint("cache-threshold", 8, "static cache degree admission threshold")
		noHDS     = flag.Bool("no-hds", false, "disable horizontal data sharing")
		hubThresh = flag.Int("hub-threshold", 0, "hub-vertex degree threshold for the bitmap intersection kernel (0 = derive from the degree histogram; set above the max degree to disable)")
		tcp       = flag.Bool("tcp", false, "use the loopback TCP fabric")
		inflight  = flag.Int("inflight", 0, "multiplexed requests kept in flight per TCP peer connection (0 = default 16)")
		faultProf = flag.String("fault-profile", "", "deterministic fault injection spec, e.g. seed=7,err=0.05,corrupt=0.01,drop=0.01,partition=0|1@500,slow=2:20,crash=2@500 (empty disables)")
		fetchTO   = flag.Duration("fetch-timeout", 0, "per-fetch-attempt timeout; enables the resilience layer (0 = default 250ms when enabled)")
		retries   = flag.Int("retries", 0, "retry budget per fetch; enables the resilience layer (0 = default 5 when enabled)")
		heartbeat = flag.Bool("heartbeat", false, "run the heartbeat failure detector; enables the resilience layer")
		speculate = flag.Bool("speculate", false, "re-execute straggler root ranges on idle machines; enables the resilience layer")
		support   = flag.Uint64("support", 100, "FSM minimum support")
		maxEdges  = flag.Int("max-edges", 3, "FSM maximum pattern edges")
		labels    = flag.Int("labels", 0, "synthesize N random vertex labels (needed for fsm on unlabeled inputs)")
		explain   = flag.Bool("explain", false, "print the compiled enumeration plan before running")
	)
	flag.Parse()

	if err := validateFlags(*nodes, *sockets, *threads, *retries, *inflight, *hubThresh, *fetchTO, 0, 0, *faultProf); err != nil {
		fatal(err)
	}

	g, err := loadGraph(*graphSpec)
	if err != nil {
		fatal(err)
	}
	if *labels > 0 {
		g, err = g.WithLabels(graph.RandomLabels(g.NumVertices(), *labels, 1))
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("graph: %v\n", g)

	eng, err := khuzdul.Open(g, khuzdul.Config{
		Nodes:                *nodes,
		Sockets:              *sockets,
		Threads:              *threads,
		ChunkSize:            *chunk,
		CacheFraction:        *cacheFrac,
		CachePolicy:          *cachePol,
		CacheDegreeThreshold: uint32(*cacheDeg),
		DisableHDS:           *noHDS,
		HubThreshold:         uint32(*hubThresh),
		TCP:                  *tcp,
		InFlight:             *inflight,
		FaultProfile:         *faultProf,
		FetchTimeout:         *fetchTO,
		FetchRetries:         *retries,
		Heartbeat:            *heartbeat,
		Speculate:            *speculate,
	})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	switch strings.ToLower(*system) {
	case "automine":
		eng.SetSystem(khuzdul.Automine)
	case "graphpi":
		eng.SetSystem(khuzdul.GraphPi)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	if *explain {
		p, err := explainTarget(*app, *k, *patName)
		if err != nil {
			fatal(err)
		}
		if p != nil {
			s, err := eng.ExplainPattern(p, *induced)
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
		}
	}

	switch strings.ToLower(*app) {
	case "tc":
		report(eng.Triangles())
	case "cc":
		report(eng.Cliques(*k))
	case "mc":
		per, combined, err := eng.Motifs(*k)
		if err != nil {
			fatal(err)
		}
		for _, m := range per {
			fmt.Printf("  %v: %d\n", m.Pattern, m.Count)
		}
		report(combined, nil)
	case "pattern":
		p, err := khuzdul.ParsePattern(*patName)
		if err != nil {
			fatal(err)
		}
		report(eng.CountPattern(p, *induced))
	case "fsm":
		fps, elapsed, err := eng.MineFrequent(*support, *maxEdges)
		if err != nil {
			fatal(err)
		}
		for _, fp := range fps {
			fmt.Printf("  %v support=%d\n", fp.Pattern, fp.Support)
		}
		fmt.Printf("frequent patterns: %d in %v\n", len(fps), elapsed)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
}

// runServe starts a resident query server: one warm cluster with shared
// static caches, answering pattern queries over TCP until interrupted.
func runServe(args []string) {
	fs := flag.NewFlagSet("khuzdul serve", flag.ExitOnError)
	var (
		graphSpec = fs.String("graph", "rmat:10000:100000", "input graph: FILE (.bin or edge list), rmat:N:M[:SEED], uniform:N:M[:SEED], or preset:ABBR")
		nodes     = fs.Int("nodes", 8, "simulated machine count")
		sockets   = fs.Int("sockets", 1, "NUMA sockets per machine")
		threads   = fs.Int("threads", 2, "compute threads per socket")
		chunk     = fs.Int("chunk", 0, "chunk capacity in embeddings (0 = default)")
		cacheFrac = fs.Float64("cache", 0.1, "static cache size as fraction of graph size (0 disables)")
		tcp       = fs.Bool("tcp", false, "use the loopback TCP fabric between cluster nodes")
		addr      = fs.String("addr", "127.0.0.1:0", "listen address for the query endpoint")
		window    = fs.Int("window", 0, "admission window: queries executing at once (0 = default)")
		budget    = fs.Int("budget", 0, "worker threads per admitted query (0 = threads/window)")
		progress  = fs.Duration("progress", 0, "partial-count streaming interval (0 = default)")
		drainTO   = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown grace: how long in-flight queries may finish before being hard-canceled")
		deadline  = fs.Duration("query-deadline", 0, "server-side cap on any query's execution time (0 = uncapped)")
	)
	fs.Parse(args)
	if err := validateFlags(*nodes, *sockets, *threads, 0, 0, 0, 0, *drainTO, *deadline, ""); err != nil {
		fatal(err)
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v\n", g)
	eng, err := khuzdul.Open(g, khuzdul.Config{
		Nodes:         *nodes,
		Sockets:       *sockets,
		Threads:       *threads,
		ChunkSize:     *chunk,
		CacheFraction: *cacheFrac,
		TCP:           *tcp,
		SharedCache:   true,
	})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	srv, err := eng.Serve(khuzdul.ServeConfig{
		Addr:             *addr,
		MaxConcurrent:    *window,
		WorkerBudget:     *budget,
		ProgressInterval: *progress,
		QueryDeadline:    *deadline,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving queries on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("draining (up to %v for in-flight queries)\n", *drainTO)
	if err := srv.Drain(*drainTO); err != nil {
		fatal(err)
	}
	fmt.Println(srv.SummaryLine())
}

// runQuery submits one query to a resident server and prints the result
// (streaming partial counts with -progress).
func runQuery(args []string) {
	fs := flag.NewFlagSet("khuzdul query", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "", "query server address (required)")
		patName  = fs.String("pattern", "triangle", "pattern name or n:u-v,... edge list")
		planID   = fs.Uint("plan", 0, "re-submit a server-side plan ID instead of a pattern")
		induced  = fs.Bool("induced", false, "induced matching semantics")
		system   = fs.String("system", "graphpi", "client system: automine or graphpi")
		progress = fs.Bool("progress", false, "print streamed partial counts")
		timeout  = fs.Duration("timeout", 0, "handshake and per-write timeout (0 = default)")
		deadline = fs.Duration("deadline", 0, "server-side execution deadline for this query (0 = the server's cap, if any)")
	)
	fs.Parse(args)
	if *addr == "" {
		fatal(errors.New("query: -addr is required"))
	}
	if *deadline < 0 {
		fatal(fmt.Errorf("-deadline must not be negative, got %v", *deadline))
	}
	spec := khuzdul.QuerySpec{
		Pattern:  *patName,
		PlanID:   uint32(*planID),
		Induced:  *induced,
		Deadline: *deadline,
	}
	switch strings.ToLower(*system) {
	case "automine":
		spec.System = khuzdul.Automine
	case "graphpi":
		spec.System = khuzdul.GraphPi
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	cli, err := khuzdul.DialQuery(*addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	q, err := cli.Submit(spec)
	if err != nil {
		fatal(err)
	}
	stop := make(chan struct{})
	if *progress {
		go func() {
			for {
				select {
				case p := <-q.Progress():
					fmt.Printf("progress: %d\n", p)
				case <-stop:
					return
				}
			}
		}()
	}
	out, err := q.Result()
	close(stop)
	switch {
	case errors.Is(err, khuzdul.ErrQueryDraining):
		fmt.Fprintf(os.Stderr, "khuzdul: %v\n", err)
		fmt.Fprintln(os.Stderr, "the server is draining for shutdown; the query never started — resubmit against another replica")
		os.Exit(1)
	case errors.Is(err, khuzdul.ErrQueryRejected):
		fmt.Fprintf(os.Stderr, "khuzdul: %v\n", err)
		fmt.Fprintln(os.Stderr, "the server's admission window is full; the query never started — resubmit when a slot frees")
		os.Exit(1)
	case errors.Is(err, khuzdul.ErrQueryDeadlineExceeded):
		fmt.Fprintf(os.Stderr, "khuzdul: %v\n", err)
		fmt.Fprintln(os.Stderr, "the query's deadline fired mid-run — resubmit with a larger -deadline or ask the operator to raise -query-deadline")
		os.Exit(1)
	case err != nil:
		fatal(err)
	}
	fmt.Printf("count: %d\nelapsed: %v\n", out.Count, out.Elapsed)
	if out.PlanID != 0 {
		fmt.Printf("plan: %d (resubmit with -plan %d to skip compilation)\n", out.PlanID, out.PlanID)
	}
}

// runHealth probes a resident server and prints its fitness: drain state,
// admission load, lifetime counters, and suspected-dead cluster nodes.
func runHealth(args []string) {
	fs := flag.NewFlagSet("khuzdul health", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "query server address (required)")
		timeout = fs.Duration("timeout", 0, "handshake and per-write timeout (0 = default)")
	)
	fs.Parse(args)
	if *addr == "" {
		fatal(errors.New("health: -addr is required"))
	}
	cli, err := khuzdul.DialQuery(*addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	h, err := cli.Health()
	if err != nil {
		fatal(err)
	}
	state := "serving"
	if h.Draining {
		state = "draining"
	}
	fmt.Printf("state: %s\nactive queries: %d / %d\nsubmitted: %d\ndeadline exceeded: %d\n",
		state, h.ActiveQueries, h.Window, h.Submitted, h.DeadlineExceeded)
	if len(h.SuspectNodes) > 0 {
		fmt.Printf("suspect nodes: %v (shards re-partitioned onto survivors)\n", h.SuspectNodes)
	} else {
		fmt.Println("suspect nodes: none")
	}
	if h.Draining {
		os.Exit(1)
	}
}

// validateFlags rejects nonsensical cluster and resilience settings up
// front, before any graph loading, with errors that name the flag — the
// alternative is a partition panic or a silently useless retry budget deep
// inside a run.
func validateFlags(nodes, sockets, threads, retries, inflight, hubThreshold int, fetchTO, drainTO, queryDeadline time.Duration, faultProf string) error {
	if nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", nodes)
	}
	if sockets <= 0 {
		return fmt.Errorf("-sockets must be positive, got %d", sockets)
	}
	if threads <= 0 {
		return fmt.Errorf("-threads must be positive, got %d", threads)
	}
	if retries < 0 {
		return fmt.Errorf("-retries must not be negative, got %d", retries)
	}
	if inflight < 0 {
		return fmt.Errorf("-inflight must not be negative, got %d", inflight)
	}
	if hubThreshold < 0 {
		return fmt.Errorf("-hub-threshold must not be negative, got %d", hubThreshold)
	}
	if fetchTO < 0 {
		return fmt.Errorf("-fetch-timeout must not be negative, got %v", fetchTO)
	}
	if drainTO < 0 {
		return fmt.Errorf("-drain-timeout must not be negative, got %v", drainTO)
	}
	if queryDeadline < 0 {
		return fmt.Errorf("-query-deadline must not be negative, got %v", queryDeadline)
	}
	if _, err := fault.ParseProfile(faultProf); err != nil {
		return fmt.Errorf("bad -fault-profile: %w", err)
	}
	return nil
}

// explainTarget resolves the single pattern an -explain request refers to
// (nil for multi-pattern apps, which print nothing).
func explainTarget(app string, k int, patName string) (*khuzdul.Pattern, error) {
	switch strings.ToLower(app) {
	case "tc":
		return khuzdul.ParsePattern("triangle")
	case "cc":
		return khuzdul.Clique(k), nil
	case "pattern":
		return khuzdul.ParsePattern(patName)
	default:
		return nil, nil
	}
}

func report(res khuzdul.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Printf("count: %d\nelapsed: %v\ntraffic: %s\ncache hit rate: %.1f%%\nextensions: %d\n",
		res.Count, res.Elapsed, harness.FmtBytes(res.TrafficBytes),
		100*res.CacheHitRate, res.Extensions)
	if res.FaultsInjected > 0 || res.FetchRetries > 0 || res.RecoveryRounds > 0 ||
		res.CorruptFrames > 0 || res.HeartbeatMisses > 0 || res.SpeculativeRanges > 0 {
		fmt.Printf("resilience: %d faults injected, %d retries, %d recovery rounds, %d roots recovered, dead nodes %v\n",
			res.FaultsInjected, res.FetchRetries, res.RecoveryRounds, res.RecoveredRoots, res.DeadNodes)
		fmt.Printf("  wire: %d corrupt frames rejected, %d redials\n",
			res.CorruptFrames, res.Redials)
		fmt.Printf("  detector: %d heartbeat misses, %d nodes suspected\n",
			res.HeartbeatMisses, res.NodesSuspected)
		fmt.Printf("  speculation: %d ranges re-executed, %d wins\n",
			res.SpeculativeRanges, res.SpeculationWins)
	}
	if res.KernelMerge+res.KernelGallop+res.KernelBitmap+res.KernelPivot > 0 {
		fmt.Printf("kernels: %d merge, %d gallop, %d bitmap, %d pivot\n",
			res.KernelMerge, res.KernelGallop, res.KernelBitmap, res.KernelPivot)
	}
	if res.PipelinedFetches > 0 || res.InFlightPeak > 0 {
		fmt.Printf("transport: %d pipelined fetches, in-flight peak %d\n",
			res.PipelinedFetches, res.InFlightPeak)
	}
}

func loadGraph(spec string) (*khuzdul.Graph, error) {
	switch {
	case strings.HasPrefix(spec, "rmat:"), strings.HasPrefix(spec, "uniform:"):
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("bad graph spec %q (want kind:N:M[:SEED])", spec)
		}
		n, err1 := strconv.Atoi(parts[1])
		m, err2 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad graph spec %q", spec)
		}
		seed := int64(42)
		if len(parts) > 3 {
			s, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed in %q", spec)
			}
			seed = s
		}
		if strings.HasPrefix(spec, "rmat:") {
			return khuzdul.RMAT(n, m, seed), nil
		}
		return khuzdul.Uniform(n, m, seed), nil
	case strings.HasPrefix(spec, "preset:"):
		d, err := harness.GetDataset(strings.TrimPrefix(spec, "preset:"))
		if err != nil {
			return nil, err
		}
		return d.Generate(1), nil
	default:
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(spec, ".bin") {
			return khuzdul.ReadBinary(f)
		}
		return khuzdul.ReadEdgeList(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "khuzdul:", err)
	os.Exit(1)
}
