// Command khuzdul runs one graph pattern mining job on the simulated
// Khuzdul cluster.
//
// Usage examples:
//
//	khuzdul -graph rmat:100000:1000000 -app tc -nodes 8 -threads 4
//	khuzdul -graph preset:lj -app cc -k 5 -system automine
//	khuzdul -graph graph.bin -app pattern -pattern house -induced
//	khuzdul -graph preset:mc -app fsm -support 150
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"khuzdul"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/harness"
)

func main() {
	var (
		graphSpec = flag.String("graph", "rmat:10000:100000", "input graph: FILE (.bin or edge list), rmat:N:M[:SEED], uniform:N:M[:SEED], or preset:ABBR")
		app       = flag.String("app", "tc", "application: tc, cc, mc, pattern, fsm")
		k         = flag.Int("k", 4, "pattern size for cc/mc")
		patName   = flag.String("pattern", "triangle", "pattern name for -app pattern")
		induced   = flag.Bool("induced", false, "induced matching semantics for -app pattern")
		system    = flag.String("system", "graphpi", "client system: automine or graphpi")
		nodes     = flag.Int("nodes", 8, "simulated machine count")
		sockets   = flag.Int("sockets", 1, "NUMA sockets per machine")
		threads   = flag.Int("threads", 2, "compute threads per socket")
		chunk     = flag.Int("chunk", 0, "chunk capacity in embeddings (0 = default)")
		cacheFrac = flag.Float64("cache", 0.1, "static cache size as fraction of graph size (0 disables)")
		cachePol  = flag.String("cache-policy", "static", "cache policy: static, fifo, lifo, lru, mru")
		cacheDeg  = flag.Uint("cache-threshold", 8, "static cache degree admission threshold")
		noHDS     = flag.Bool("no-hds", false, "disable horizontal data sharing")
		tcp       = flag.Bool("tcp", false, "use the loopback TCP fabric")
		inflight  = flag.Int("inflight", 0, "multiplexed requests kept in flight per TCP peer connection (0 = default 16)")
		faultProf = flag.String("fault-profile", "", "deterministic fault injection spec, e.g. seed=7,err=0.05,corrupt=0.01,drop=0.01,partition=0|1@500,slow=2:20,crash=2@500 (empty disables)")
		fetchTO   = flag.Duration("fetch-timeout", 0, "per-fetch-attempt timeout; enables the resilience layer (0 = default 250ms when enabled)")
		retries   = flag.Int("retries", 0, "retry budget per fetch; enables the resilience layer (0 = default 5 when enabled)")
		heartbeat = flag.Bool("heartbeat", false, "run the heartbeat failure detector; enables the resilience layer")
		speculate = flag.Bool("speculate", false, "re-execute straggler root ranges on idle machines; enables the resilience layer")
		support   = flag.Uint64("support", 100, "FSM minimum support")
		maxEdges  = flag.Int("max-edges", 3, "FSM maximum pattern edges")
		labels    = flag.Int("labels", 0, "synthesize N random vertex labels (needed for fsm on unlabeled inputs)")
		explain   = flag.Bool("explain", false, "print the compiled enumeration plan before running")
	)
	flag.Parse()

	if err := validateFlags(*nodes, *sockets, *threads, *retries, *inflight, *fetchTO, *faultProf); err != nil {
		fatal(err)
	}

	g, err := loadGraph(*graphSpec)
	if err != nil {
		fatal(err)
	}
	if *labels > 0 {
		g, err = g.WithLabels(graph.RandomLabels(g.NumVertices(), *labels, 1))
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("graph: %v\n", g)

	eng, err := khuzdul.Open(g, khuzdul.Config{
		Nodes:                *nodes,
		Sockets:              *sockets,
		Threads:              *threads,
		ChunkSize:            *chunk,
		CacheFraction:        *cacheFrac,
		CachePolicy:          *cachePol,
		CacheDegreeThreshold: uint32(*cacheDeg),
		DisableHDS:           *noHDS,
		TCP:                  *tcp,
		InFlight:             *inflight,
		FaultProfile:         *faultProf,
		FetchTimeout:         *fetchTO,
		FetchRetries:         *retries,
		Heartbeat:            *heartbeat,
		Speculate:            *speculate,
	})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	switch strings.ToLower(*system) {
	case "automine":
		eng.SetSystem(khuzdul.Automine)
	case "graphpi":
		eng.SetSystem(khuzdul.GraphPi)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	if *explain {
		p, err := explainTarget(*app, *k, *patName)
		if err != nil {
			fatal(err)
		}
		if p != nil {
			s, err := eng.ExplainPattern(p, *induced)
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
		}
	}

	switch strings.ToLower(*app) {
	case "tc":
		report(eng.Triangles())
	case "cc":
		report(eng.Cliques(*k))
	case "mc":
		per, combined, err := eng.Motifs(*k)
		if err != nil {
			fatal(err)
		}
		for _, m := range per {
			fmt.Printf("  %v: %d\n", m.Pattern, m.Count)
		}
		report(combined, nil)
	case "pattern":
		p, err := khuzdul.ParsePattern(*patName)
		if err != nil {
			fatal(err)
		}
		report(eng.CountPattern(p, *induced))
	case "fsm":
		fps, elapsed, err := eng.MineFrequent(*support, *maxEdges)
		if err != nil {
			fatal(err)
		}
		for _, fp := range fps {
			fmt.Printf("  %v support=%d\n", fp.Pattern, fp.Support)
		}
		fmt.Printf("frequent patterns: %d in %v\n", len(fps), elapsed)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
}

// validateFlags rejects nonsensical cluster and resilience settings up
// front, before any graph loading, with errors that name the flag — the
// alternative is a partition panic or a silently useless retry budget deep
// inside a run.
func validateFlags(nodes, sockets, threads, retries, inflight int, fetchTO time.Duration, faultProf string) error {
	if nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", nodes)
	}
	if sockets <= 0 {
		return fmt.Errorf("-sockets must be positive, got %d", sockets)
	}
	if threads <= 0 {
		return fmt.Errorf("-threads must be positive, got %d", threads)
	}
	if retries < 0 {
		return fmt.Errorf("-retries must not be negative, got %d", retries)
	}
	if inflight < 0 {
		return fmt.Errorf("-inflight must not be negative, got %d", inflight)
	}
	if fetchTO < 0 {
		return fmt.Errorf("-fetch-timeout must not be negative, got %v", fetchTO)
	}
	if _, err := fault.ParseProfile(faultProf); err != nil {
		return fmt.Errorf("bad -fault-profile: %w", err)
	}
	return nil
}

// explainTarget resolves the single pattern an -explain request refers to
// (nil for multi-pattern apps, which print nothing).
func explainTarget(app string, k int, patName string) (*khuzdul.Pattern, error) {
	switch strings.ToLower(app) {
	case "tc":
		return khuzdul.ParsePattern("triangle")
	case "cc":
		return khuzdul.Clique(k), nil
	case "pattern":
		return khuzdul.ParsePattern(patName)
	default:
		return nil, nil
	}
}

func report(res khuzdul.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Printf("count: %d\nelapsed: %v\ntraffic: %s\ncache hit rate: %.1f%%\nextensions: %d\n",
		res.Count, res.Elapsed, harness.FmtBytes(res.TrafficBytes),
		100*res.CacheHitRate, res.Extensions)
	if res.FaultsInjected > 0 || res.FetchRetries > 0 || res.RecoveryRounds > 0 ||
		res.CorruptFrames > 0 || res.HeartbeatMisses > 0 || res.SpeculativeRanges > 0 {
		fmt.Printf("resilience: %d faults injected, %d retries, %d recovery rounds, %d roots recovered, dead nodes %v\n",
			res.FaultsInjected, res.FetchRetries, res.RecoveryRounds, res.RecoveredRoots, res.DeadNodes)
		fmt.Printf("  wire: %d corrupt frames rejected, %d redials\n",
			res.CorruptFrames, res.Redials)
		fmt.Printf("  detector: %d heartbeat misses, %d nodes suspected\n",
			res.HeartbeatMisses, res.NodesSuspected)
		fmt.Printf("  speculation: %d ranges re-executed, %d wins\n",
			res.SpeculativeRanges, res.SpeculationWins)
	}
	if res.PipelinedFetches > 0 || res.InFlightPeak > 0 {
		fmt.Printf("transport: %d pipelined fetches, in-flight peak %d\n",
			res.PipelinedFetches, res.InFlightPeak)
	}
}

func loadGraph(spec string) (*khuzdul.Graph, error) {
	switch {
	case strings.HasPrefix(spec, "rmat:"), strings.HasPrefix(spec, "uniform:"):
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("bad graph spec %q (want kind:N:M[:SEED])", spec)
		}
		n, err1 := strconv.Atoi(parts[1])
		m, err2 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad graph spec %q", spec)
		}
		seed := int64(42)
		if len(parts) > 3 {
			s, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed in %q", spec)
			}
			seed = s
		}
		if strings.HasPrefix(spec, "rmat:") {
			return khuzdul.RMAT(n, m, seed), nil
		}
		return khuzdul.Uniform(n, m, seed), nil
	case strings.HasPrefix(spec, "preset:"):
		d, err := harness.GetDataset(strings.TrimPrefix(spec, "preset:"))
		if err != nil {
			return nil, err
		}
		return d.Generate(1), nil
	default:
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(spec, ".bin") {
			return khuzdul.ReadBinary(f)
		}
		return khuzdul.ReadEdgeList(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "khuzdul:", err)
	os.Exit(1)
}
