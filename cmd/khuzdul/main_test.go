package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(nodes, sockets, threads, retries int, to time.Duration, prof string) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(nodes, sockets, threads, retries, 0, 0, to, 0, 0, prof); err != nil {
				t.Fatalf("validateFlags: unexpected error %v", err)
			}
		}
	}
	bad := func(nodes, sockets, threads, retries int, to time.Duration, prof, want string) func(*testing.T) {
		return func(t *testing.T) {
			err := validateFlags(nodes, sockets, threads, retries, 0, 0, to, 0, 0, prof)
			if err == nil {
				t.Fatal("validateFlags: expected error, got nil")
			}
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("validateFlags: error %q does not mention %q", err, want)
			}
		}
	}
	t.Run("defaults", ok(8, 1, 2, 0, 0, ""))
	t.Run("full resilience", ok(4, 2, 2, 3, 100*time.Millisecond,
		"seed=7,err=0.05,corrupt=0.01,drop=0.01,partition=0|1@500,slow=2:20,crash=3@500"))
	t.Run("profile off", ok(1, 1, 1, 0, 0, "none"))
	t.Run("zero nodes", bad(0, 1, 2, 0, 0, "", "-nodes"))
	t.Run("negative nodes", bad(-3, 1, 2, 0, 0, "", "-nodes"))
	t.Run("zero sockets", bad(8, 0, 2, 0, 0, "", "-sockets"))
	t.Run("zero threads", bad(8, 1, 0, 0, 0, "", "-threads"))
	t.Run("negative threads", bad(8, 1, -1, 0, 0, "", "-threads"))
	t.Run("negative retries", bad(8, 1, 2, -1, 0, "", "-retries"))
	t.Run("negative hub threshold", func(t *testing.T) {
		err := validateFlags(8, 1, 2, 0, 0, -1, 0, 0, 0, "")
		if err == nil || !strings.Contains(err.Error(), "-hub-threshold") {
			t.Fatalf("validateFlags: error %v does not mention -hub-threshold", err)
		}
	})
	t.Run("negative inflight", func(t *testing.T) {
		err := validateFlags(8, 1, 2, 0, -1, 0, 0, 0, 0, "")
		if err == nil || !strings.Contains(err.Error(), "-inflight") {
			t.Fatalf("validateFlags: error %v does not mention -inflight", err)
		}
	})
	t.Run("negative timeout", bad(8, 1, 2, 0, -time.Second, "", "-fetch-timeout"))
	t.Run("serve durations ok", func(t *testing.T) {
		if err := validateFlags(8, 1, 2, 0, 0, 0, 0, 10*time.Second, time.Minute, ""); err != nil {
			t.Fatalf("validateFlags: unexpected error %v", err)
		}
	})
	t.Run("zero drain timeout ok", func(t *testing.T) {
		if err := validateFlags(8, 1, 2, 0, 0, 0, 0, 0, 0, ""); err != nil {
			t.Fatalf("validateFlags: unexpected error %v", err)
		}
	})
	t.Run("negative drain timeout", func(t *testing.T) {
		err := validateFlags(8, 1, 2, 0, 0, 0, 0, -time.Second, 0, "")
		if err == nil || !strings.Contains(err.Error(), "-drain-timeout") {
			t.Fatalf("validateFlags: error %v does not mention -drain-timeout", err)
		}
	})
	t.Run("negative query deadline", func(t *testing.T) {
		err := validateFlags(8, 1, 2, 0, 0, 0, 0, 0, -time.Second, "")
		if err == nil || !strings.Contains(err.Error(), "-query-deadline") {
			t.Fatalf("validateFlags: error %v does not mention -query-deadline", err)
		}
	})
	t.Run("malformed profile", bad(8, 1, 2, 0, 0, "err=lots", "-fault-profile"))
	t.Run("unknown profile key", bad(8, 1, 2, 0, 0, "frobnicate=1", "-fault-profile"))
	t.Run("malformed partition", bad(8, 1, 2, 0, 0, "partition=0|@5", "-fault-profile"))
	t.Run("overlapping partition", bad(8, 1, 2, 0, 0, "partition=0|0@5", "-fault-profile"))
	t.Run("bad slow factor", bad(8, 1, 2, 0, 0, "slow=1:0", "-fault-profile"))
}
