// Command khuzdulvet runs the project-specific static analyzer suite from
// internal/analysis over the Khuzdul tree and reports every invariant
// violation as "file:line:col: [analyzer] message", or — under -json — as
// one JSON object per line ({"file":...,"line":...,"col":...,"analyzer":...,
// "message":...}), the format .github/khuzdulvet-matcher.json annotates in
// CI.
//
// Usage:
//
//	go run ./cmd/khuzdulvet ./...
//	go run ./cmd/khuzdulvet -json ./...
//	go run ./cmd/khuzdulvet -list
//	go run ./cmd/khuzdulvet -run lockorder,guardfield ./...
//	go run ./cmd/khuzdulvet ./internal/comm/... ./internal/cluster
//
// Exit status is 0 when the tree is clean, 1 when findings (including
// malformed or stale ignore directives) exist, and 2 when loading or
// type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"khuzdul/internal/analysis"
)

// jsonFinding is the -json line format. Field order is the declaration
// order, which the CI problem matcher's regexp depends on.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonTiming is the -json per-analyzer timing line, emitted after the
// findings. It has no "file" key, so the CI problem matcher skips it; the
// slowest-analyzers CI step selects on "elapsed_ms".
type jsonTiming struct {
	Analyzer  string  `json:"analyzer"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("khuzdulvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzer suite and exit")
	jsonOut := flags.Bool("json", false, "emit one JSON object per finding (for CI problem matchers)")
	runNames := flags.String("run", "", "comma-separated analyzer names to run (default: the whole suite)")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: khuzdulvet [-list] [-json] [-run a,b,c] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the Khuzdul invariant analyzers over the enclosing module.\n")
		fmt.Fprintf(stderr, "Package patterns are directory-based (./..., ./internal/comm/...).\n\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s tier %d  %s\n", a.Name, a.Tier, a.Doc)
		}
		return 0
	}
	suite, err := selectAnalyzers(suite, *runNames)
	if err != nil {
		fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
		return 2
	}
	root, modulePath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(root, modulePath)
	if err != nil {
		fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, flags.Args(), cwd, root, modulePath)
	if err != nil {
		fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
		return 2
	}

	diags, timings := analysis.RunTimed(pkgs, suite)
	stale := 0
	for _, d := range diags {
		d = rel(cwd, d)
		if d.Analyzer == "staleignore" {
			stale++
		}
		if *jsonOut {
			line, err := json.Marshal(jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if err != nil {
				fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(line))
		} else {
			fmt.Fprintln(stdout, d)
		}
	}
	if *jsonOut {
		for _, tm := range timings {
			line, err := json.Marshal(jsonTiming{
				Analyzer:  tm.Name,
				ElapsedMs: float64(tm.Elapsed.Microseconds()) / 1000,
			})
			if err != nil {
				fmt.Fprintf(stderr, "khuzdulvet: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(line))
		}
	}
	if len(diags) > 0 {
		if stale > 0 {
			fmt.Fprintf(stderr, "khuzdulvet: %d finding(s), including %d stale ignore directive(s) that no longer suppress anything\n", len(diags), stale)
		} else {
			fmt.Fprintf(stderr, "khuzdulvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectAnalyzers keeps the analyzers named in the comma-separated spec,
// preserving suite order. An empty spec selects the whole suite; a name the
// suite does not carry is an error, not a silent no-op.
func selectAnalyzers(suite []*analysis.Analyzer, spec string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return suite, nil
	}
	wanted := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, a := range suite {
			if a.Name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown analyzer %q; -list names the suite", name)
		}
		wanted[name] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// filterPackages keeps the packages matching the directory-based patterns.
// No patterns (or a bare "./...") selects the whole module.
func filterPackages(pkgs []*analysis.LoadedPackage, patterns []string,
	cwd, root, modulePath string) ([]*analysis.LoadedPackage, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var keep func(path string) bool
	matchers := make([]func(string) bool, 0, len(patterns))
	for _, pat := range patterns {
		m, err := patternMatcher(pat, cwd, root, modulePath)
		if err != nil {
			return nil, err
		}
		matchers = append(matchers, m)
	}
	keep = func(path string) bool {
		for _, m := range matchers {
			if m(path) {
				return true
			}
		}
		return false
	}
	var out []*analysis.LoadedPackage
	for _, p := range pkgs {
		if keep(p.Path) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	return out, nil
}

// patternMatcher converts one ./dir or ./dir/... pattern into an import-path
// predicate.
func patternMatcher(pat, cwd, root, modulePath string) (func(string) bool, error) {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if pat == "" {
			pat = "."
		}
	}
	abs := pat
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(cwd, pat)
	}
	relToRoot, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(relToRoot, "..") {
		return nil, fmt.Errorf("pattern %q is outside module %s", pat, modulePath)
	}
	base := modulePath
	if relToRoot != "." {
		base = modulePath + "/" + filepath.ToSlash(relToRoot)
	}
	return func(path string) bool {
		if path == base {
			return true
		}
		return recursive && strings.HasPrefix(path, base+"/")
	}, nil
}

// rel rewrites a diagnostic's filename relative to the working directory
// when possible, keeping output stable across checkouts.
func rel(cwd string, d analysis.Diagnostic) analysis.Diagnostic {
	if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d
}
