package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"khuzdul/internal/analysis"
)

// TestSelectAnalyzers pins the -run filter: suite order is preserved,
// duplicates collapse, whitespace is tolerated, and unknown names are
// rejected rather than silently skipped.
func TestSelectAnalyzers(t *testing.T) {
	suite := analysis.Suite()

	all, err := selectAnalyzers(suite, "")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty spec: got %d analyzers, err %v; want the full suite", len(all), err)
	}

	got, err := selectAnalyzers(suite, " timerstop, lockorder ,timerstop")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	var names []string
	for _, a := range got {
		names = append(names, a.Name)
	}
	// Suite order, not spec order: lockorder (tier 3) precedes timerstop.
	if strings.Join(names, ",") != "lockorder,timerstop" {
		t.Fatalf("got %v, want [lockorder timerstop]", names)
	}

	if _, err := selectAnalyzers(suite, "lockorder,nosuch"); err == nil ||
		!strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown analyzer: got err %v, want it named", err)
	}
	if _, err := selectAnalyzers(suite, " , "); err == nil {
		t.Fatalf("blank spec items must not select an empty set silently")
	}
}

// TestRunListAndFilter drives the CLI entry point end to end: -list prints
// every analyzer with its tier, -run with an unknown name exits 2, and a
// filtered -json run over the real tree is clean and carries exactly one
// timing line per selected analyzer.
func TestRunListAndFilter(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, stderr %q", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(analysis.Suite()) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(analysis.Suite()), out.String())
	}
	for _, a := range analysis.Suite() {
		want := fmt.Sprintf("tier %d", a.Tier)
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, a.Name) && strings.Contains(l, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("-list is missing %q with %q:\n%s", a.Name, want, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("-run nosuch exit = %d, want 2; stderr %q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Fatalf("-run nosuch stderr does not name the analyzer: %q", errOut.String())
	}

	if testing.Short() {
		t.Skip("skipping whole-module load in short mode")
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-run", "wirecodec,sleepban"}, &out, &errOut); code != 0 {
		t.Fatalf("filtered run exit = %d, stderr %q, stdout %q", code, errOut.String(), out.String())
	}
	var timings []jsonTiming
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var tm jsonTiming
		if err := json.Unmarshal(sc.Bytes(), &tm); err != nil {
			t.Fatalf("bad -json line %q: %v", sc.Text(), err)
		}
		if tm.ElapsedMs < 0 {
			t.Errorf("negative elapsed for %q: %v", tm.Analyzer, tm.ElapsedMs)
		}
		timings = append(timings, tm)
	}
	if len(timings) != 2 || timings[0].Analyzer != "wirecodec" || timings[1].Analyzer != "sleepban" {
		t.Fatalf("timing lines = %+v, want wirecodec then sleepban", timings)
	}
}
