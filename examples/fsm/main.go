// Frequent subgraph mining on a labeled graph: find the labeled patterns
// (up to 3 edges) whose MNI support clears a threshold — the paper's FSM
// application, used for tasks like mining recurring interaction motifs in
// protein networks.
package main

import (
	"fmt"
	"log"

	"khuzdul"
)

func main() {
	// A labeled graph: 2.5k vertices with 4 label classes. (FSM support
	// counting enumerates without symmetry breaking, so it is the heaviest
	// workload per edge — keep the example graph modest.)
	g0 := khuzdul.RMAT(2_500, 18_000, 11)
	g, err := g0.WithLabels(khuzdul.RandomLabels(g0.NumVertices(), 4, 13))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:", g)

	eng, err := khuzdul.Open(g, khuzdul.Config{Nodes: 4, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	const minSupport = 140
	fps, elapsed, err := eng.MineFrequent(minSupport, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d frequent labeled patterns (support >= %d) in %v:\n",
		len(fps), minSupport, elapsed)
	for _, fp := range fps {
		fmt.Printf("  support=%-6d %v\n", fp.Support, fp.Pattern)
	}
}
