// Large-graph clique counting with orientation preprocessing — the paper's
// Table 5 workflow: convert the graph to a DAG ordered by degree, which
// bounds intersection sizes and removes the need for symmetry-breaking, then
// count triangles and 4-cliques on a larger simulated cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"khuzdul"
	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
)

func main() {
	// The largest graph this example builds: ~250k vertices, ~2M edges,
	// heavily skewed (the WDC12 stand-in shape).
	g := khuzdul.RMAT(250_000, 2_000_000, 17)
	fmt.Println("input:", g)

	t0 := time.Now()
	dag := khuzdul.Orient(g)
	fmt.Printf("oriented to DAG in %v (max out-degree %d, was %d)\n",
		time.Since(t0), dag.MaxDegree(), g.MaxDegree())

	// 18 simulated machines as in the paper's large-graph cluster.
	c, err := cluster.New(dag, cluster.Config{
		NumNodes:             18,
		ThreadsPerSocket:     2,
		CacheFraction:        0.04, // the paper shrinks the cache for massive graphs
		CacheDegreeThreshold: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	for _, k := range []int{3, 4} {
		res, err := apps.OrientedCliqueCount(c, k, apps.KAutomine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-cliques: %d  (%v, traffic %.1f MB)\n",
			k, res.Count, res.Elapsed, float64(res.Summary.BytesSent)/(1<<20))
	}
}
