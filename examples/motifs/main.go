// Motif census: count every connected 3-vertex and 4-vertex pattern
// (induced) in a social-network-like graph — the workload behind network
// motif analysis in systems biology and fraud detection, and the paper's
// k-MC application.
package main

import (
	"fmt"
	"log"

	"khuzdul"
)

func main() {
	g := khuzdul.RMAT(20_000, 150_000, 7)
	fmt.Println("input:", g)

	eng, err := khuzdul.Open(g, khuzdul.Config{Nodes: 4, Threads: 2, CacheFraction: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	for _, k := range []int{3, 4} {
		per, combined, err := eng.Motifs(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d-motif census (%v total, %d embeddings):\n",
			k, combined.Elapsed, combined.Count)
		for _, m := range per {
			share := 0.0
			if combined.Count > 0 {
				share = 100 * float64(m.Count) / float64(combined.Count)
			}
			fmt.Printf("  %-60v %12d  (%5.2f%%)\n", m.Pattern, m.Count, share)
		}
	}
}
