// Quickstart: open a graph on a simulated cluster and count triangles and
// 4-cliques with both ported client systems.
package main

import (
	"fmt"
	"log"

	"khuzdul"
)

func main() {
	// A skewed scale-free graph: 50k vertices, ~400k edges.
	g := khuzdul.RMAT(50_000, 400_000, 42)
	fmt.Println("input:", g)

	// Eight simulated machines, two workers each, static cache at 10% of
	// the graph per machine.
	eng, err := khuzdul.Open(g, khuzdul.Config{
		Nodes:         8,
		Threads:       2,
		CacheFraction: 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	tc, err := eng.Triangles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d  (%v, traffic %d bytes, cache hit %.0f%%)\n",
		tc.Count, tc.Elapsed, tc.TrafficBytes, 100*tc.CacheHitRate)

	// Compare the two client systems on 4-clique counting.
	for _, sys := range []khuzdul.System{khuzdul.Automine, khuzdul.GraphPi} {
		eng.SetSystem(sys)
		cc, err := eng.Cliques(4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4-cliques via %-11v: %d  (%v)\n", sys, cc.Count, cc.Elapsed)
	}
}
