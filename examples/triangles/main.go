// Distributed triangle counting over real TCP sockets: every remote
// edge-list fetch is serialized through loopback TCP frames, exercising the
// full communication path (batching, circulant scheduling, horizontal
// sharing, static cache) the in-process fabric shortcuts.
package main

import (
	"fmt"
	"log"

	"khuzdul"
)

func main() {
	g := khuzdul.RMAT(30_000, 250_000, 3)
	fmt.Println("input:", g)

	run := func(name string, cfg khuzdul.Config) khuzdul.Result {
		eng, err := khuzdul.Open(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		res, err := eng.Triangles()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s count=%d elapsed=%v traffic=%dB hit=%.0f%%\n",
			name, res.Count, res.Elapsed, res.TrafficBytes, 100*res.CacheHitRate)
		return res
	}

	base := khuzdul.Config{Nodes: 4, Threads: 2, CacheFraction: 0.1}

	a := run("in-process fabric", base)

	tcpCfg := base
	tcpCfg.TCP = true
	b := run("loopback TCP fabric", tcpCfg)

	noCache := base
	noCache.CacheFraction = 0
	noCache.DisableHDS = true
	c := run("no cache, no HDS", noCache)

	if a.Count != b.Count || a.Count != c.Count {
		log.Fatalf("count mismatch: %d / %d / %d", a.Count, b.Count, c.Count)
	}
	fmt.Printf("\ndata-reuse traffic saving: %.1f%% (%d -> %d bytes)\n",
		100*(1-float64(a.TrafficBytes)/float64(c.TrafficBytes)),
		c.TrafficBytes, a.TrafficBytes)
}
