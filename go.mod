module khuzdul

go 1.22
