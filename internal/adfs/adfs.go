// Package adfs implements the "moving computation to data" baseline the
// paper contrasts with Khuzdul (§2.3, Figure 10 — aDFS). Partial embeddings
// travel to the machine that owns the edge list of their most recently
// matched vertex; the other active edge lists the extension needs travel
// with them. Exactly as the paper's Figure 4 walkthrough describes
// ("subgraphs (v0,v2) and (v0,v3) are sent to machine 2, together with
// N(0)"), this policy pays for every hop with the full weight of the carried
// lists — the excessive-communication drawback that makes the strategy slow
// for GPM.
package adfs

import (
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Name identifies the baseline in experiment output.
const Name = "aDFS"

// Config describes the simulated deployment.
type Config struct {
	NumNodes       int
	ThreadsPerNode int
}

// Result reports one run.
type Result struct {
	Count   uint64
	Elapsed time.Duration
	Summary metrics.Summary
}

// task is a partial embedding parked at the machine owning its last vertex.
type task struct {
	emb []graph.VertexID
}

// Count counts pat's embeddings with level-synchronous
// moving-computation-to-data execution.
func Count(g *graph.Graph, pat *pattern.Pattern, cfg Config) (Result, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 1
	}
	pl, err := plan.Compile(pat, plan.Options{
		Style: plan.StyleGraphPi, DisableVCS: true, Stats: plan.StatsOf(g),
	})
	if err != nil {
		return Result{}, err
	}
	asg := partition.NewAssignment(cfg.NumNodes, 1)
	met := metrics.NewCluster(cfg.NumNodes)
	var labelOf plan.LabelFunc
	if g.Labeled() {
		labelOf = g.Label
	}

	start := time.Now()
	// Level 0: every vertex starts at its owner; position-0 label checks
	// apply here.
	inboxes := make([][]task, cfg.NumNodes)
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if labelOf != nil && pl.Labeled() && labelOf(id) != pl.PosLabel(0) {
			continue
		}
		owner := asg.Owner(id)
		inboxes[owner] = append(inboxes[owner], task{emb: []graph.VertexID{id}})
	}

	var total atomic.Uint64
	for level := 1; level < pl.K; level++ {
		final := level == pl.K-1
		outboxes := make([][][]task, cfg.NumNodes) // per source node, per dest node
		var wg sync.WaitGroup
		for node := 0; node < cfg.NumNodes; node++ {
			outboxes[node] = make([][]task, cfg.NumNodes)
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				total.Add(processNode(g, pl, asg, labelOf, met.Nodes[node], node,
					inboxes[node], outboxes[node], level, final, cfg.ThreadsPerNode))
			}(node)
		}
		wg.Wait()
		if final {
			break
		}
		// Shuffle: deliver outboxes, accounting the wire size of each task —
		// embedding vertices plus every carried active edge list that the
		// destination machine does not own.
		next := make([][]task, cfg.NumNodes)
		for src := 0; src < cfg.NumNodes; src++ {
			for dst := 0; dst < cfg.NumNodes; dst++ {
				batch := outboxes[src][dst]
				if len(batch) == 0 {
					continue
				}
				if src != dst {
					var bytes uint64
					for _, t := range batch {
						bytes += taskBytes(g, pl, asg, dst, t, level)
					}
					met.Nodes[src].BytesSent.Add(bytes)
					met.Nodes[dst].BytesReceived.Add(bytes)
					met.Nodes[src].Messages.Add(1)
					met.Nodes[dst].Messages.Add(1)
				}
				next[dst] = append(next[dst], batch...)
			}
		}
		inboxes = next
	}
	return Result{
		Count:   total.Load(),
		Elapsed: time.Since(start),
		Summary: met.Summarize(),
	}, nil
}

// processNode extends every task parked at one machine for one level.
func processNode(g *graph.Graph, pl *plan.Plan, asg partition.Assignment,
	labelOf plan.LabelFunc, met *metrics.Node, node int,
	in []task, out [][]task, level int, final bool, threads int) uint64 {

	if len(in) == 0 {
		return 0
	}
	var outMu sync.Mutex
	var cursor atomic.Int64
	var count atomic.Uint64
	var wg sync.WaitGroup
	const grain = 128
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			scratch := plan.NewScratch(pl)
			localOut := make([][]task, len(out))
			var local, exts uint64
			for {
				startIdx := int(cursor.Add(grain)) - grain
				if startIdx >= len(in) {
					break
				}
				endIdx := startIdx + grain
				if endIdx > len(in) {
					endIdx = len(in)
				}
				for _, tk := range in[startIdx:endIdx] {
					exts++
					getList := func(pos int) []graph.VertexID { return g.Neighbors(tk.emb[pos]) }
					raw := pl.RawIntersect(scratch, level, tk.emb, getList, nil)
					cands := pl.Candidates(scratch, level, tk.emb, raw, getList, labelOf)
					if final {
						local += uint64(len(cands))
						continue
					}
					for _, v := range cands {
						child := task{emb: append(append([]graph.VertexID(nil), tk.emb...), v)}
						dst := asg.Owner(v)
						localOut[dst] = append(localOut[dst], child)
					}
				}
			}
			count.Add(local)
			met.AddCompute(time.Since(t0))
			met.Extensions.Add(exts)
			if local > 0 {
				met.Matches.Add(local)
			}
			outMu.Lock()
			for dst := range localOut {
				out[dst] = append(out[dst], localOut[dst]...)
			}
			outMu.Unlock()
		}()
	}
	wg.Wait()
	return count.Load()
}

// taskBytes is the wire size of shipping a task to dst: its embedding
// vertices plus every active edge list the destination does not own.
func taskBytes(g *graph.Graph, pl *plan.Plan, asg partition.Assignment, dst int, t task, level int) uint64 {
	bytes := 4 * uint64(len(t.emb)+1)
	// The next extension (matching position level+1 at dst) needs the lists
	// of these positions; any not owned by dst must ride along.
	for _, pos := range pl.Levels[level+1].Intersect {
		v := t.emb[pos]
		if asg.Owner(v) != dst {
			bytes += 4 + 4*uint64(g.Degree(v))
		}
	}
	return bytes
}
