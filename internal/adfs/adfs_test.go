package adfs

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestCountMatchesBruteForce(t *testing.T) {
	g := graph.RMATDefault(90, 450, 79)
	for _, pat := range []*pattern.Pattern{
		pattern.Triangle(), pattern.Clique(4), pattern.CycleP(4), pattern.PathP(4),
	} {
		want := plan.BruteForceCount(g, pat, false)
		for _, nodes := range []int{1, 4} {
			res, err := Count(g, pat, Config{NumNodes: nodes, ThreadsPerNode: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("%v on %d nodes: %d, want %d", pat, nodes, res.Count, want)
			}
		}
	}
}

func TestLabeledCount(t *testing.T) {
	g0 := graph.RMATDefault(80, 400, 83)
	g, err := g0.WithLabels(graph.RandomLabels(80, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.Triangle().WithLabels([]graph.Label{0, 1, 2})
	want := plan.BruteForceCount(g, pat, false)
	res, err := Count(g, pat, Config{NumNodes: 3, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("labeled triangle: %d, want %d", res.Count, want)
	}
}

func TestTrafficDominatedByCarriedLists(t *testing.T) {
	// The defining property of moving-computation-to-data: traffic includes
	// whole edge lists travelling with embeddings, so on a multi-node skewed
	// graph it must vastly exceed the embedding volume alone.
	g := graph.RMATDefault(300, 2400, 89)
	res, err := Count(g, pattern.Triangle(), Config{NumNodes: 4, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.BytesSent == 0 {
		t.Fatal("no traffic recorded")
	}
	// Lower bound: one triangle's embedding is 12 bytes; carried lists push
	// per-hop cost far beyond that. Require traffic > 16 bytes per match as
	// a loose sanity check on the accounting.
	if res.Summary.BytesSent < 16*res.Count {
		t.Fatalf("traffic %d suspiciously low for %d matches", res.Summary.BytesSent, res.Count)
	}
}

func TestSingleNodeNoTraffic(t *testing.T) {
	g := graph.RMATDefault(100, 500, 97)
	res, err := Count(g, pattern.Triangle(), Config{NumNodes: 1, ThreadsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.BytesSent != 0 {
		t.Fatalf("single node sent %d bytes", res.Summary.BytesSent)
	}
}
