// Package analysis is a small, stdlib-only static-analysis framework for
// enforcing Khuzdul's project-specific invariants: the rules that make exact
// counts under chaos possible but that generic tools (go vet, staticcheck)
// cannot see — canonical wire codecs, visibly-joined goroutines, classifiable
// error chains, determinism-safe sleeping, and no blocking fabric traffic
// under a lock. The Pass/Analyzer shape mirrors golang.org/x/tools/go/analysis
// so analyzers stay portable, but the framework itself depends only on
// go/parser, go/types and go/ast.
//
// The suite runs via cmd/khuzdulvet; findings print as
// "file:line:col: [analyzer] message" and a non-empty finding set makes the
// CLI exit non-zero. A finding can be suppressed in place with
//
//	//khuzdulvet:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory, so every suppression documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Tier is the suite generation the analyzer shipped with: 1 for the
	// single-package AST analyzers, 2 for the call-graph dataflow analyzers,
	// 3 for the whole-program protocol analyzers, 4 for the
	// concurrency-integrity analyzers.
	Tier int
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects pass and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's view of one type-checked package: the shared
// FileSet, the package's syntax trees, full type information, and the
// Reportf diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the type-checked package (import path via Pkg.Path()).
	Pkg *types.Package
	// Files holds the package's parsed non-test files.
	Files []*ast.File
	// Info is the type-checking fact base for Files.
	Info *types.Info
	// Prog is the whole-program tier-2 fact base (call graph, directive
	// roots, reachability, summaries) built once per Run over every loaded
	// package — not just this pass's. Tier-1 analyzers ignore it.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //khuzdulvet:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

const directivePrefix = "khuzdulvet:ignore"

// collectDirectives parses every //khuzdulvet:ignore directive in the
// package. Malformed directives (no analyzer name, or no reason) become
// diagnostics themselves: a suppression that does not say what and why is
// worse than the finding it hides.
func collectDirectives(fset *token.FileSet, files []*ast.File, sink *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					*sink = append(*sink, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "malformed ignore directive: want //khuzdulvet:ignore <analyzer> <reason>",
					})
					continue
				}
				out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: name})
			}
		}
	}
	return out
}

// covers reports whether one directive suppresses d: same analyzer, same
// file, on d's line or the line directly above.
func covers(dir ignoreDirective, d Diagnostic) bool {
	return dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
		(dir.line == d.Pos.Line || dir.line == d.Pos.Line-1)
}

// suppressed reports whether d is covered by any directive.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if covers(dir, d) {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. The whole-program call graph is built once
// over all packages and shared by every pass through Pass.Prog.
//
// Besides analyzer findings, Run audits the escape hatches: an ignore
// directive naming an analyzer in the running set that suppresses no finding
// is itself reported (analyzer "staleignore"), so suppressions cannot outlive
// the code they excused. Directives naming analyzers outside the running set
// are left alone — a single-analyzer run must not condemn the others'
// directives.
func Run(pkgs []*LoadedPackage, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// A Timing is one analyzer's accumulated wall-clock cost across every
// package of one RunTimed. Lazily-built whole-program fact bases (the lock
// graph, the guard inference tables) are attributed to whichever analyzer
// touches them first, so the first tier-3/4 analyzer in suite order carries
// the shared construction cost.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus per-analyzer wall-clock timings, returned in suite
// order so the CLI's -json output (and the CI slowest-analyzers step) can
// keep suite growth observable.
func RunTimed(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	prog := BuildProgram(pkgs)
	running := map[string]bool{}
	elapsed := make([]time.Duration, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		dirs := collectDirectives(pkg.Fset, pkg.Files, &diags)
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg.Types,
				Files:    pkg.Files,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[i] += time.Since(start)
		}
		used := make([]bool, len(dirs))
		for _, d := range diags {
			for i, dir := range dirs {
				if covers(dir, d) {
					used[i] = true
				}
			}
		}
		for _, d := range diags {
			if !suppressed(d, dirs) {
				all = append(all, d)
			}
		}
		for i, dir := range dirs {
			if used[i] || !running[dir.analyzer] {
				continue
			}
			all = append(all, Diagnostic{
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Analyzer: "staleignore",
				Message: fmt.Sprintf("stale ignore directive: no %s finding here anymore — remove the //khuzdulvet:ignore",
					dir.analyzer),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i] = Timing{Name: a.Name, Elapsed: elapsed[i]}
	}
	return all, timings
}

// Suite returns the full khuzdulvet analyzer suite: the tier-1 AST analyzers
// of PR 3, the tier-2 call-graph analyzers, the tier-3 whole-program
// protocol analyzers, and the tier-4 concurrency-integrity analyzers.
func Suite() []*Analyzer {
	return []*Analyzer{
		WireCodec,
		GoroutineJoin,
		ErrClass,
		SleepBan,
		LockSend,
		HotAlloc,
		MapOrder,
		CancelPoll,
		LockOrder,
		WireBound,
		FrameCase,
		MetricLive,
		GuardField,
		AtomicMix,
		TimerStop,
	}
}
