package analysis

import (
	"fmt"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture tree under testdata/src is loaded once and shared: the source
// importer's stdlib type checking dominates load time and every fixture uses
// the same handful of imports.
var (
	fixturesOnce sync.Once
	fixturesPkgs []*LoadedPackage
	fixturesErr  error
)

func fixturePackages(t *testing.T) []*LoadedPackage {
	t.Helper()
	fixturesOnce.Do(func() {
		fixturesPkgs, fixturesErr = Load(filepath.Join("testdata", "src"), "")
	})
	if fixturesErr != nil {
		t.Fatalf("loading fixtures: %v", fixturesErr)
	}
	return fixturesPkgs
}

// fixtureSubset returns the fixture packages rooted at prefix (one analyzer's
// private tree).
func fixtureSubset(t *testing.T, prefix string) []*LoadedPackage {
	t.Helper()
	var out []*LoadedPackage
	for _, p := range fixturePackages(t) {
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no fixture packages under %q", prefix)
	}
	return out
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants maps "file:line" to the expectations declared in // want
// comments. One want may cover several diagnostics on its line.
func collectWants(t *testing.T, pkgs []*LoadedPackage) map[string][]*wantEntry {
	t.Helper()
	wants := map[string][]*wantEntry{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &wantEntry{re: re})
				}
			}
		}
	}
	return wants
}

// runFixtureTest runs one analyzer over its fixture tree and reconciles the
// diagnostics with the tree's want comments in both directions.
func runFixtureTest(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs := fixtureSubset(t, a.Name)
	diags := Run(pkgs, []*Analyzer{a})
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("%s: expected a diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func TestWireCodec(t *testing.T)     { runFixtureTest(t, WireCodec) }
func TestGoroutineJoin(t *testing.T) { runFixtureTest(t, GoroutineJoin) }
func TestErrClass(t *testing.T)      { runFixtureTest(t, ErrClass) }
func TestSleepBan(t *testing.T)      { runFixtureTest(t, SleepBan) }
func TestLockSend(t *testing.T)      { runFixtureTest(t, LockSend) }
func TestHotAlloc(t *testing.T)      { runFixtureTest(t, HotAlloc) }
func TestMapOrder(t *testing.T)      { runFixtureTest(t, MapOrder) }
func TestCancelPoll(t *testing.T)    { runFixtureTest(t, CancelPoll) }
func TestLockOrder(t *testing.T)     { runFixtureTest(t, LockOrder) }
func TestWireBound(t *testing.T)     { runFixtureTest(t, WireBound) }
func TestFrameCase(t *testing.T)     { runFixtureTest(t, FrameCase) }
func TestMetricLive(t *testing.T)    { runFixtureTest(t, MetricLive) }
func TestGuardField(t *testing.T)    { runFixtureTest(t, GuardField) }
func TestAtomicMix(t *testing.T)     { runFixtureTest(t, AtomicMix) }
func TestTimerStop(t *testing.T)     { runFixtureTest(t, TimerStop) }

// TestCallGraph pins the program construction the tier-2 analyzers rely on:
// directive roots, interface-method over-approximation, reachability and the
// blocks/polls summaries, using the hotalloc and cancelpoll fixtures.
func TestCallGraph(t *testing.T) {
	pkgs := fixtureSubset(t, "hotalloc")
	pkgs = append(pkgs, fixtureSubset(t, "cancelpoll")...)
	prog := BuildProgram(pkgs)

	byName := map[string]bool{}
	for fn := range prog.Hot {
		byName[fn.Pkg().Path()+"."+fn.Name()] = true
	}
	for _, want := range []string{
		"hotalloc.Hot",            // directive root
		"hotalloc.helper",         // static call from the root
		"hotalloc.merge",          // static call from the root
		"hotalloc.Do",             // interface-method over-approximation
		"hotalloc/kernels.Shrink", // package-clause directive
		"hotalloc/kernels.Grow",   // package-clause directive
	} {
		if !byName[want] {
			t.Errorf("expected %s in the hot set; hot = %v", want, byName)
		}
	}
	if byName["hotalloc.Cold"] {
		t.Errorf("hotalloc.Cold must not be hot-reachable")
	}

	var drain, waitStop *types.Func
	for fn := range prog.Decls {
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "cancelpoll.drain":
			drain = fn
		case "cancelpoll.waitStop":
			waitStop = fn
		}
	}
	if drain == nil || waitStop == nil {
		t.Fatalf("fixture functions missing from program")
	}
	if !prog.Long[drain] {
		t.Errorf("drain must be longrun-reachable through RunIndirect")
	}
	if !prog.Blocks(drain) {
		t.Errorf("drain must summarize as blocking")
	}
	if !prog.Polls(waitStop) {
		t.Errorf("waitStop must summarize as polling (cancel-named select case)")
	}
	if prog.Polls(drain) {
		t.Errorf("drain must not summarize as polling")
	}
}

// TestStaleIgnore checks the audit both ways: the used directive stays
// silent (and keeps suppressing), the orphaned one is reported.
func TestStaleIgnore(t *testing.T) {
	pkgs := fixtureSubset(t, "staleignore")
	diags := Run(pkgs, []*Analyzer{SleepBan})
	var stale int
	for _, d := range diags {
		if d.Analyzer != "staleignore" {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		stale++
		if !strings.Contains(d.Message, "sleepban") || !strings.Contains(d.Message, "stale") {
			t.Errorf("stale diagnostic has unexpected message: %s", d)
		}
	}
	if stale != 1 {
		t.Errorf("got %d stale-ignore diagnostics, want 1: %v", stale, diags)
	}
	// A run without sleepban in the set must not condemn its directives.
	if extra := Run(pkgs, []*Analyzer{WireCodec}); len(extra) != 0 {
		t.Errorf("directives for analyzers outside the running set were audited: %v", extra)
	}
}

// TestIgnoreDirectives checks the three directive behaviours: a well-formed
// directive (above or on the line) suppresses, a malformed one becomes a
// "directive" finding without suppressing, and uncovered findings survive.
func TestIgnoreDirectives(t *testing.T) {
	pkgs := fixtureSubset(t, "ignore")
	diags := Run(pkgs, []*Analyzer{SleepBan})
	var directive, sleep int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("directive diagnostic has unexpected message: %s", d)
			}
		case "sleepban":
			sleep++
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if directive != 1 || sleep != 2 {
		t.Errorf("got %d directive + %d sleepban diagnostics, want 1 + 2: %v", directive, sleep, diags)
	}
}

// TestTier3Directives is the directive × analyzer matrix for the tier-3
// analyzers: hotpath/longrun roots neither gate nor suppress them, a live
// ignore suppresses exactly its wirebound finding, and stale ignores naming
// each tier-3 analyzer are audited.
func TestTier3Directives(t *testing.T) {
	pkgs := fixtureSubset(t, "tier3dir")
	diags := Run(pkgs, []*Analyzer{LockOrder, WireBound, FrameCase, MetricLive})
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
		if d.Analyzer == "staleignore" && strings.Contains(d.Message, "suppressed on purpose") {
			t.Errorf("live wirebound suppression reported stale: %s", d)
		}
	}
	want := map[string]int{
		"lockorder":   1, // one cycle between the two hotpath roots
		"framecase":   1, // non-exhaustive switch inside the longrun root
		"metriclive":  1, // dead gauge in the metrics package
		"wirebound":   0, // suppressed by the live ignore directive
		"staleignore": 4, // one stale ignore per tier-3 analyzer
	}
	for a, n := range want {
		if counts[a] != n {
			t.Errorf("%s: got %d findings, want %d; all: %v", a, counts[a], n, diags)
		}
	}
	for a := range counts {
		if _, ok := want[a]; !ok {
			t.Errorf("unexpected analyzer %q in diagnostics: %v", a, diags)
		}
	}
}

// TestTier4Directives is the directive × analyzer matrix for the tier-4
// analyzers: hotpath/longrun roots neither gate nor suppress them, a live
// ignore suppresses exactly its atomicmix finding, and stale ignores naming
// each tier-4 analyzer are audited.
func TestTier4Directives(t *testing.T) {
	pkgs := fixtureSubset(t, "tier4dir")
	diags := Run(pkgs, []*Analyzer{GuardField, AtomicMix, TimerStop})
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
		if d.Analyzer == "staleignore" && strings.Contains(d.Message, "suppressed on purpose") {
			t.Errorf("live atomicmix suppression reported stale: %s", d)
		}
	}
	want := map[string]int{
		"guardfield":  1, // lock-free read of the guarded field inside the hotpath root
		"timerstop":   1, // ticker leaked on the stop path of the longrun root
		"atomicmix":   0, // suppressed by the live ignore directive
		"staleignore": 3, // one stale ignore per tier-4 analyzer
	}
	for a, n := range want {
		if counts[a] != n {
			t.Errorf("%s: got %d findings, want %d; all: %v", a, counts[a], n, diags)
		}
	}
	for a := range counts {
		if _, ok := want[a]; !ok {
			t.Errorf("unexpected analyzer %q in diagnostics: %v", a, diags)
		}
	}
}

// TestSuiteComposition pins the suite roster: fifteen analyzers, each in its
// documented tier, in deterministic (tier, name) order.
func TestSuiteComposition(t *testing.T) {
	wantTiers := map[string]int{
		"wirecodec": 1, "goroutinejoin": 1, "errclass": 1, "sleepban": 1, "locksend": 1,
		"hotalloc": 2, "maporder": 2, "cancelpoll": 2,
		"lockorder": 3, "wirebound": 3, "framecase": 3, "metriclive": 3,
		"guardfield": 4, "atomicmix": 4, "timerstop": 4,
	}
	suite := Suite()
	if len(suite) != len(wantTiers) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(wantTiers))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		tier, ok := wantTiers[a.Name]
		if !ok {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
			continue
		}
		if a.Tier != tier {
			t.Errorf("%s: tier = %d, want %d", a.Name, a.Tier, tier)
		}
		if a.Doc == "" {
			t.Errorf("%s: empty Doc; -list depends on a one-line invariant", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q listed twice", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestFindModule pins the module discovery the CLI depends on.
func TestFindModule(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if modPath != "khuzdul" {
		t.Fatalf("module path = %q, want %q", modPath, "khuzdul")
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Fatalf("implausible module root %q", root)
	}
}

// TestSuiteCleanOnTree loads the real module and runs the full suite: the
// tree must carry zero invariant violations. This is the same guarantee the
// khuzdulvet CI job enforces, pinned here so plain `go test ./...` catches
// regressions too.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module load in short mode")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pkgs, err := Load(root, modPath)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, d := range Run(pkgs, Suite()) {
		t.Errorf("unexpected finding in tree: %s", d)
	}
}
