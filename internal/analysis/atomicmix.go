package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the one rule the Go memory model states without
// exception: a memory location accessed atomically anywhere must be
// accessed atomically everywhere. The tree carries dozens of typed-atomic
// fields (metrics counters, heartbeat miss tallies, failover snapshots);
// one plain read of such a field compiles, usually works, and is still a
// data race — the compiler may tear, cache, or reorder it, and the race
// detector only complains when a test happens to schedule the conflict.
//
// The check is whole-program over the call graph's declaration index. A
// field is atomic-disciplined when its type is a sync/atomic value (or a
// slice/array of them), or when any site in the program reaches it through
// a sync/atomic package function (&x.f passed to atomic.AddInt64 and kin).
// Every other access to a disciplined field is classified:
//
//	atomic — a method call on the value (x.f.Load(), x.f[i].Store(v)), or
//	    its address taken (handed out for atomic use);
//	plain  — everything else: assignment to or through the field, a value
//	    read, a range over an atomic container (which copies elements
//	    non-atomically);
//	exempt — construction: composite-literal keys and accesses through a
//	    value still inside its constructor (pre-escape initialization is
//	    single-goroutine by definition), plus len/cap of containers (the
//	    slice header, not the elements).
//
// Every plain access is reported with the site that established the atomic
// discipline. There is no safe mixed pattern to allow-list; an ignore
// directive exists for fixtures and for code proven single-goroutine by
// construction.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Tier: 4,
	Doc: "a field accessed through sync/atomic anywhere must be accessed " +
		"atomically everywhere: mixed atomic/plain access is forbidden by " +
		"the Go memory model",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	info := pass.Prog.atomicMix()
	for _, f := range info.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// atomicMixInfo is the whole-program mixed-access result, built once per
// Run.
type atomicMixInfo struct {
	findings []progFinding
}

// atomicFieldFacts describes one atomic-disciplined field.
type atomicFieldFacts struct {
	name  string
	typed bool      // the field's type is itself a sync/atomic value (or container)
	first token.Pos // first old-style atomic site, the witness cited in findings
}

// atomicMix builds (once) and returns the program's mixed-access findings.
// Two passes: the first discovers disciplined fields (typed atomics plus
// old-style &x.f-to-atomic.* witnesses), the second classifies every access
// to a disciplined field and reports the plain ones. Two passes rather than
// one keeps discipline establishment order-independent: a plain access is
// reported even when it lexically precedes the program's only atomic site.
func (p *Program) atomicMix() *atomicMixInfo {
	if p.atomicInfo != nil {
		return p.atomicInfo
	}
	facts := map[types.Object]*atomicFieldFacts{}

	// Pass 1: discover disciplined fields.
	p.eachFieldAccess(func(fn *types.Func, info *types.Info, sel *ast.SelectorExpr, obj *types.Var, stack []ast.Node, ctor map[types.Object]bool) {
		typed, container := atomicFieldType(obj.Type())
		cls, _ := classifyAtomicSite(info, sel, stack, typed, container)
		if !typed && cls != atomicSiteAtomic {
			return
		}
		f := facts[obj]
		if f == nil {
			ownerPkg, ownerName := namedType(receiverType(info, sel))
			if ownerName == "" {
				return
			}
			f = &atomicFieldFacts{name: shortPkgPath(ownerPkg) + "." + ownerName + "." + obj.Name()}
			facts[obj] = f
		}
		f.typed = f.typed || typed
		if cls == atomicSiteAtomic && !typed && !f.first.IsValid() {
			f.first = sel.Sel.Pos()
		}
	})

	// Pass 2: report plain accesses to disciplined fields.
	info := &atomicMixInfo{}
	p.eachFieldAccess(func(fn *types.Func, inf *types.Info, sel *ast.SelectorExpr, obj *types.Var, stack []ast.Node, ctor map[types.Object]bool) {
		f := facts[obj]
		if f == nil {
			return
		}
		typed, container := atomicFieldType(obj.Type())
		cls, write := classifyAtomicSite(inf, sel, stack, typed, container)
		if cls != atomicSitePlain || ctor[rootIdentObj(inf, sel.X)] {
			return
		}
		why := fmt.Sprintf("field %s is a sync/atomic value", f.name)
		if !f.typed {
			why = fmt.Sprintf("field %s is accessed through sync/atomic at %s", f.name, p.pos(f.first))
		}
		kind := "read"
		if write {
			kind = "write"
		}
		info.findings = append(info.findings, progFinding{
			pos: sel.Sel.Pos(),
			pkg: fn.Pkg(),
			msg: fmt.Sprintf("%s but this %s is plain; mixing atomic and plain access "+
				"is forbidden by the Go memory model — use the atomic API at every site", why, kind),
		})
	})
	p.atomicInfo = info
	return info
}

// eachFieldAccess walks every declared body in DeclList order and invokes
// visit for each selector that resolves to a struct field declared by an
// in-program package, with the enclosing-node stack and the body's
// constructor-local set.
func (p *Program) eachFieldAccess(visit func(fn *types.Func, info *types.Info, sel *ast.SelectorExpr, obj *types.Var, stack []ast.Node, ctor map[types.Object]bool)) {
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		info := p.InfoOf[fn]
		if fd.Body == nil {
			continue
		}
		ctor := ctorLocals(fd.Body, info)
		inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || obj.Pkg() == nil || !p.Pkgs[obj.Pkg()] {
				return true
			}
			visit(fn, info, sel, obj, stack, ctor)
			return true
		})
	}
}

// Site classifications.
const (
	atomicSiteNeither = iota // construction, len/cap, or unknowable
	atomicSiteAtomic
	atomicSitePlain
)

// atomicFieldType reports whether t is a sync/atomic value (typed), and
// whether the atomic values sit behind a slice/array layer (container).
func atomicFieldType(t types.Type) (typed, container bool) {
	if p, _ := namedType(t); p == "sync/atomic" {
		return true, false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if p, _ := namedType(u.Elem()); p == "sync/atomic" {
			return true, true
		}
	case *types.Array:
		if p, _ := namedType(u.Elem()); p == "sync/atomic" {
			return true, true
		}
	}
	return false, false
}

// classifyAtomicSite classifies one field-selector occurrence given its
// enclosing nodes. For typed fields every non-construction access is either
// a method call / address escape (atomic) or plain; for old-style fields
// only &x.f handed to a sync/atomic function is atomic, a bare &x.f is
// unknowable (neither), and everything else is plain.
func classifyAtomicSite(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node, typed, container bool) (cls int, write bool) {
	cur := ast.Node(sel)
	i := len(stack) - 1
	parentAt := func(j int) ast.Node {
		if j < 0 || j >= len(stack) {
			return nil
		}
		return stack[j]
	}
	// Parentheses are transparent: `(x.f).Load()` is the same access as
	// `x.f.Load()`. Skip them before each structural step.
	skipParens := func() {
		for {
			pe, ok := parentAt(i).(*ast.ParenExpr)
			if !ok || pe.X != cur {
				return
			}
			cur = pe
			i--
		}
	}
	skipParens()
	// Step through one indexing layer for containers: the element, not the
	// header, is the atomic value.
	indexed := false
	if container {
		if ix, ok := parentAt(i).(*ast.IndexExpr); ok && ix.X == cur {
			cur = ix
			i--
			indexed = true
			skipParens()
		}
	}
	switch pn := parentAt(i).(type) {
	case *ast.SelectorExpr:
		if pn.X == cur {
			if _, isMethod := info.Uses[pn.Sel].(*types.Func); isMethod {
				// A method call OR a bound method value (x.f.Load handed out
				// as a func): both take the address and go through the
				// atomic API when invoked.
				if typed && (indexed || !container) {
					return atomicSiteAtomic, false
				}
			}
			// x.f.g — the field is traversed as a plain struct value.
			return atomicSitePlain, false
		}
	case *ast.UnaryExpr:
		if pn.Op == token.AND && pn.X == cur {
			if typed {
				return atomicSiteAtomic, false
			}
			// Old-style: &x.f is atomic exactly when it feeds a sync/atomic
			// package function; any other escape is unknowable.
			if call, ok := parentAt(i - 1).(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "sync/atomic" {
					return atomicSiteAtomic, false
				}
			}
			return atomicSiteNeither, false
		}
	case *ast.CallExpr:
		// len(x.f) / cap(x.f) read the container header, not the elements.
		if container && !indexed &&
			(isBuiltinCall(info, pn, "len") || isBuiltinCall(info, pn, "cap")) {
			return atomicSiteNeither, false
		}
	case *ast.AssignStmt:
		for _, lhs := range pn.Lhs {
			if lhs == cur {
				return atomicSitePlain, true
			}
		}
		return atomicSitePlain, false
	case *ast.IncDecStmt:
		if pn.X == cur {
			return atomicSitePlain, true
		}
	case *ast.RangeStmt:
		if pn.X == cur && container && !indexed {
			if pn.Value != nil {
				// Ranging with a value copies each element non-atomically.
				return atomicSitePlain, false
			}
			// Index-only range reads just the container header.
			return atomicSiteNeither, false
		}
	case *ast.KeyValueExpr:
		// Composite-literal initialization: struct{f: atomic...} keys are
		// Idents (never reach here); a disciplined field as the *value* of a
		// literal is a plain read.
		if pn.Value == cur {
			return atomicSitePlain, false
		}
		return atomicSiteNeither, false
	}
	return atomicSitePlain, false
}
