package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the tier-2 view of the module: a whole-program approximate
// call graph over every loaded package. Tier-1 analyzers look at one package's
// syntax; the properties that matter most after PR 3 — heap traffic on the
// per-task hot path, cancellation-poll coverage of long-running loops — are
// cross-function, so they need reachability.
//
// The graph is deliberately approximate, in the only direction that is safe
// for each client:
//
//   - Static calls resolve exactly through go/types object identity (the
//     loader shares *types.Package across importers, so a call into another
//     module package resolves to the same *types.Func the defining package
//     declared).
//   - A call through an interface method over-approximates to every concrete
//     method in the program with that name whose receiver implements the
//     interface. Hot-path reachability and cancel-poll propagation both want
//     the union of possible callees.
//   - Calls of function values (fields, parameters, locals) resolve to
//     nothing. Analyzers that care about those sites match them syntactically
//     (e.g. cancelpoll treats a call of a func value named Canceled as a
//     poll).
//
// Roots come from two directives, mirroring //khuzdulvet:ignore:
//
//	//khuzdulvet:hotpath [reason]   on a function: the function is a
//	    per-task hot-path root; on a package clause: every function in the
//	    package is.
//	//khuzdulvet:longrun [reason]   likewise, for long-running loops that
//	    must stay cancellable.

const (
	hotpathPrefix = "khuzdulvet:hotpath"
	longrunPrefix = "khuzdulvet:longrun"
)

// Program is the whole-program fact base shared by every tier-2 analyzer of
// one Run: declarations, call edges, directive-marked roots, reachability
// closures, and per-function summaries.
type Program struct {
	// Fset positions every loaded file; the loader shares one FileSet across
	// packages, so cross-package positions (a lockorder acquisition path that
	// spans comm and cluster) render correctly from any pass.
	Fset *token.FileSet
	// Decls maps every function and method object declared in the loaded
	// packages to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// DeclList holds the same functions sorted by full name. Every iteration
	// that feeds an ordered artifact — root lists, call edges, diagnostics —
	// walks this list rather than ranging Decls, so a Run's output is
	// identical from one execution to the next (the same determinism maporder
	// demands of the engine).
	DeclList []*types.Func
	// InfoOf returns the type-checking fact base of the package declaring fn
	// (needed to resolve calls inside fn's body).
	InfoOf map[*types.Func]*types.Info
	// Callees holds the approximate out-edges of each declared function:
	// static callees plus the implementation expansion of interface-method
	// callees. Only functions declared in the program appear as targets.
	Callees map[*types.Func][]*types.Func
	// syncCallees is Callees minus edges introduced by `go` statements:
	// a spawned goroutine's blocking or polling happens on its own stack,
	// so summary propagation must not attribute it to the spawner.
	// Reachability (Hot/Long) still uses the full edge set — work done on a
	// spawned goroutine is still on the hot or long-running path.
	syncCallees map[*types.Func][]*types.Func
	// HotRoots and LongRoots are the directive-marked entry points.
	HotRoots  []*types.Func
	LongRoots []*types.Func
	// Hot and Long are the forward-reachability closures of the roots.
	Hot  map[*types.Func]bool
	Long map[*types.Func]bool

	// summaries are the per-function facts of summary.go, computed to a
	// fixpoint over Callees.
	polls  map[*types.Func]bool
	blocks map[*types.Func]bool

	// Pkgs is the set of loaded (in-program) packages; tier-4 analyzers use
	// it to limit field tracking to structs the program declares.
	Pkgs map[*types.Package]bool

	// lockInfo is the tier-3 lock-acquisition graph of lockorder.go, built
	// lazily on first use and shared by every pass of the Run.
	lockInfo *lockGraphInfo
	// guardInfo, atomicInfo and timerInfo are the tier-4 whole-program fact
	// bases, likewise built lazily on first use.
	guardInfo  *guardFieldInfo
	atomicInfo *atomicMixInfo
	timerInfo  *timerStopInfo
}

// BuildProgram constructs the call graph, reachability closures and function
// summaries for the given packages. It is called once per Run and shared by
// every pass through Pass.Prog.
func BuildProgram(pkgs []*LoadedPackage) *Program {
	p := &Program{
		Decls:       map[*types.Func]*ast.FuncDecl{},
		InfoOf:      map[*types.Func]*types.Info{},
		Callees:     map[*types.Func][]*types.Func{},
		syncCallees: map[*types.Func][]*types.Func{},
		Hot:         map[*types.Func]bool{},
		Long:        map[*types.Func]bool{},
		Pkgs:        map[*types.Package]bool{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		p.Pkgs[pkg.Types] = true
	}
	// Phase 1: declarations and directive-marked roots.
	type markedPkg struct{ hot, long bool }
	pkgMarks := map[*types.Package]*markedPkg{}
	for _, pkg := range pkgs {
		for fn, fd := range funcDecls(pkg.Info, pkg.Files) {
			p.Decls[fn] = fd
			p.InfoOf[fn] = pkg.Info
		}
		for _, f := range pkg.Files {
			hot, long := directiveKinds(f.Doc)
			if hot || long {
				m := pkgMarks[pkg.Types]
				if m == nil {
					m = &markedPkg{}
					pkgMarks[pkg.Types] = m
				}
				m.hot = m.hot || hot
				m.long = m.long || long
			}
		}
	}
	for fn := range p.Decls {
		p.DeclList = append(p.DeclList, fn)
	}
	sort.Slice(p.DeclList, func(i, j int) bool {
		return p.DeclList[i].FullName() < p.DeclList[j].FullName()
	})
	for _, fn := range p.DeclList {
		hot, long := directiveKinds(p.Decls[fn].Doc)
		if m := pkgMarks[fn.Pkg()]; m != nil {
			hot = hot || m.hot
			long = long || m.long
		}
		if hot {
			p.HotRoots = append(p.HotRoots, fn)
		}
		if long {
			p.LongRoots = append(p.LongRoots, fn)
		}
	}

	// Phase 2: call edges. Interface-method callees expand to every declared
	// concrete method implementing the interface; function literals belong to
	// their enclosing declaration (a helper goroutine spawned on the hot path
	// is still hot).
	methodIndex := map[string][]*types.Func{}
	for _, fn := range p.DeclList {
		if recv := recvOf(fn); recv != nil {
			if _, isIface := recv.Type().Underlying().(*types.Interface); !isIface {
				methodIndex[fn.Name()] = append(methodIndex[fn.Name()], fn)
			}
		}
	}
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		info := p.InfoOf[fn]
		seen := map[*types.Func]bool{}
		seenSync := map[*types.Func]bool{}
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(fd, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goCalls[g.Call] = true
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			for _, target := range p.resolve(callee, methodIndex) {
				if !seen[target] {
					seen[target] = true
					p.Callees[fn] = append(p.Callees[fn], target)
				}
				if !goCalls[call] && !seenSync[target] {
					seenSync[target] = true
					p.syncCallees[fn] = append(p.syncCallees[fn], target)
				}
			}
			return true
		})
	}

	p.Hot = p.reachable(p.HotRoots)
	p.Long = p.reachable(p.LongRoots)
	p.computeSummaries()
	return p
}

// resolve expands one statically-resolved callee object into declared
// targets: the object itself when it has a body, or — for an interface
// method — every declared concrete method implementing it.
func (p *Program) resolve(callee *types.Func, methodIndex map[string][]*types.Func) []*types.Func {
	recv := recvOf(callee)
	if recv == nil {
		if _, ok := p.Decls[callee]; ok {
			return []*types.Func{callee}
		}
		return nil
	}
	iface, isIface := recv.Type().Underlying().(*types.Interface)
	if !isIface {
		if _, ok := p.Decls[callee]; ok {
			return []*types.Func{callee}
		}
		return nil
	}
	var out []*types.Func
	for _, cand := range methodIndex[callee.Name()] {
		rt := recvOf(cand).Type()
		if types.Implements(rt, iface) {
			out = append(out, cand)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// implementations resolves a callee object to its declared implementations:
// the object itself when the program declares it, or — for an interface
// method — every declared concrete method implementing it, in DeclList
// order (the same expansion the call-graph edges use, available after
// BuildProgram to analyzers that resolve call sites themselves).
func (p *Program) implementations(fn *types.Func) []*types.Func {
	if _, ok := p.Decls[fn]; ok {
		return []*types.Func{fn}
	}
	recv := recvOf(fn)
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, cand := range p.DeclList {
		cr := recvOf(cand)
		if cr == nil || cand.Name() != fn.Name() {
			continue
		}
		rt := cr.Type()
		if types.Implements(rt, iface) {
			out = append(out, cand)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// reachable is forward BFS from roots over Callees.
func (p *Program) reachable(roots []*types.Func) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		out[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, c := range p.Callees[fn] {
			if !out[c] {
				out[c] = true
				queue = append(queue, c)
			}
		}
	}
	return out
}

// recvOf returns fn's receiver variable, or nil for plain functions.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// directiveKinds reports whether a doc comment group carries the hotpath or
// longrun root directives. The trailing reason is optional — the directive
// marks an entry point rather than suppressing a finding.
func directiveKinds(doc *ast.CommentGroup) (hot, long bool) {
	if doc == nil {
		return false, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathPrefix || strings.HasPrefix(text, hotpathPrefix+" ") {
			hot = true
		}
		if text == longrunPrefix || strings.HasPrefix(text, longrunPrefix+" ") {
			long = true
		}
	}
	return hot, long
}
