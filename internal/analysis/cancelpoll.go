package analysis

import (
	"go/ast"
	"go/types"
)

// CancelPoll guards cancellability of the long-running machinery:
// speculation's first-completion-wins protocol (§4 of the resilience design)
// and fabric Close both depend on every loop that can park on channel
// communication also observing a cancellation signal. A loop that blocks and
// never polls strands the goroutine: a losing speculative engine keeps
// holding fetch batches, Close hangs behind it, and the driver's exact-count
// reconciliation waits forever.
//
// The analyzer walks every function reachable from a //khuzdulvet:longrun
// root. For each for/range loop it computes, over the loop's entire subtree
// (nested loops and callees included, via the call-graph summaries):
//
//	blocks — the loop's own iteration can park: a receive, send, or select
//	    without default appears outside nested loops and function literals,
//	    or a called function (transitively) blocks;
//	polls — anywhere in the subtree, cancellation is observed: a call of a
//	    Canceled-shaped predicate, a receive or select case on a
//	    cancel-named channel, or a callee that polls.
//
// A loop with blocks && !polls is flagged. Blocking evidence inside a nested
// loop is attributed to that nested loop (it gets its own finding); blocking
// inside a spawned function literal belongs to the spawned goroutine, not
// this loop. sync.WaitGroup.Wait is not blocking evidence (see summary.go).
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Tier: 2,
	Doc: "loops reachable from //khuzdulvet:longrun roots that block on " +
		"channels must poll Config.Canceled or select on a cancel channel",
	Run: runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, fn := range pass.Prog.DeclList {
		fd := pass.Prog.Decls[fn]
		if fn.Pkg() != pass.Pkg || !pass.Prog.Long[fn] || fd.Body == nil {
			continue
		}
		c := &cancelScanner{pass: pass}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				if isChanType(pass.Info, loop.X) {
					// Ranging over a channel is itself a blocking receive.
					if !c.subtreePolls(loop.Body) {
						pass.Reportf(loop.Pos(), "loop ranges over a channel but never polls cancellation; a stalled sender strands it (function %s)", fn.Name())
					}
					return true
				}
				body = loop.Body
			default:
				return true
			}
			if c.loopBlocks(body) && !c.subtreePolls(body) {
				pass.Reportf(n.Pos(), "loop blocks on channel communication but never polls Config.Canceled or a cancel channel (function %s); cancellation and Close can strand it", fn.Name())
			}
			return true
		})
	}
}

type cancelScanner struct {
	pass *Pass
}

// loopBlocks reports whether the loop body itself can park: a direct
// blocking channel operation or a call to a (transitively) blocking
// function, excluding nested loops (reported separately) and function
// literals (the spawned goroutine blocks, not this loop).
func (c *cancelScanner) loopBlocks(body *ast.BlockStmt) bool {
	blocks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.RangeStmt:
			if isChanType(c.pass.Info, n.X) {
				blocks = true
			}
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(c.pass.Info, n); fn != nil {
				for _, target := range c.targets(fn) {
					if c.pass.Prog.Blocks(target) {
						blocks = true
						return false
					}
				}
			}
		default:
			if blocksNode(n) {
				blocks = true
				return false
			}
		}
		return true
	})
	return blocks
}

// subtreePolls reports whether cancellation is observed anywhere under body:
// directly, or through any resolved callee. Nested loops count — a poll in
// an inner loop covers every enclosing loop's iteration.
func (c *cancelScanner) subtreePolls(body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if pollsCancelNode(n) {
			polls = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(c.pass.Info, call); fn != nil {
				for _, target := range c.targets(fn) {
					if c.pass.Prog.Polls(target) {
						polls = true
						return false
					}
				}
			}
		}
		return true
	})
	return polls
}

// targets resolves a callee object to its declared implementations: itself,
// or — for an interface method — every concrete method the program declares
// for it (the same expansion the call graph uses).
func (c *cancelScanner) targets(fn *types.Func) []*types.Func {
	return c.pass.Prog.implementations(fn)
}
