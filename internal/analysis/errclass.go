package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrClass enforces the classifiable-error invariant inside internal/comm
// and internal/cluster: every error that can cross the communication
// boundary must keep a sentinel reachable through errors.Is, because the
// resilience stack routes on exactly that — comm.Resilient separates
// retryable from permanent failures, and cluster's recovery classifier
// decides between re-execution and aborting the run. A fmt.Errorf whose
// format has no %w verb truncates the chain; a bare errors.New at a return
// site mints an unclassifiable error no caller can route.
var ErrClass = &Analyzer{
	Name: "errclass",
	Tier: 1,
	Doc: "errors crossing the comm boundary must wrap a classifiable sentinel: " +
		"fmt.Errorf needs %w and return sites must not mint bare errors.New values",
	Run: runErrClass,
}

func runErrClass(pass *Pass) {
	path := pass.Pkg.Path()
	if !pathHasSegments(path, "internal", "comm") && !pathHasSegments(path, "internal", "cluster") {
		return
	}
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass.Info, call, "fmt", "Errorf") && len(call.Args) > 0 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					if format, err := strconv.Unquote(lit.Value); err == nil && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w drops the error class; wrap a sentinel so the retry/recovery layers can classify it")
					}
				}
			}
			if isPkgCall(pass.Info, call, "errors", "New") && inReturn(stack) {
				pass.Reportf(call.Pos(),
					"bare errors.New at a return site is unclassifiable; return a package-level sentinel (or wrap one) instead")
			}
			return true
		})
	}
}

// inReturn reports whether the node whose ancestor stack is given sits
// inside a return statement.
func inReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}
