package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// FrameCase enforces exhaustiveness of frame-type dispatch. The wire
// protocol's frame-type constants grew across three PRs (HELLO through
// QUERY_HEALTH, 0x01–0x0F), and every switch that dispatches on them is a
// place a newly-added type can silently fall through. A silent drop is how
// connections poison: the peer waits for a reply that never comes, or the
// reader desynchronizes from the stream.
//
// The rule: in a package that declares frame-type constants (package-level
// `frame*` integer constants — internal/comm and fixture mirrors), any
// switch whose cases name two or more of them must either cover every
// declared value or carry a default that classifies the error — mentions an
// Err* sentinel (ErrCorruptFrame, ErrVersionMismatch), counts it
// (CorruptFrames), or answers with an error frame (frameError,
// frameMuxError). Aliases (frameTypeMax) collapse by value, so bumping the
// max does not demand an extra case.
var FrameCase = &Analyzer{
	Name: "framecase",
	Tier: 3,
	Doc: "switches over frame-type constants must handle every declared " +
		"type or classify the unexpected one in an explicit default",
	Run: runFrameCase,
}

func runFrameCase(pass *Pass) {
	consts, declared := frameConstants(pass.Pkg)
	if len(declared) < 3 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			covered := map[int64]bool{}
			var defaultClause *ast.CaseClause
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, e := range cc.List {
					// Match by constant object identity, not value: a
					// QueryKind enum sharing small values with the frame
					// types must not turn its switches into frame dispatch.
					if v, ok := frameConstCase(pass.Info, e, consts); ok {
						covered[v] = true
					}
				}
			}
			if len(covered) < 2 {
				return true // not a frame-type dispatch
			}
			if len(covered) == len(declared) {
				return true
			}
			missing := make([]string, 0, len(declared)-len(covered))
			for v, name := range declared {
				if !covered[v] {
					missing = append(missing, name)
				}
			}
			sort.Strings(missing)
			if defaultClause == nil {
				pass.Reportf(sw.Pos(),
					"switch on frame type covers %d of %d declared types (missing %s) and has no default: an unexpected frame falls through silently",
					len(covered), len(declared), strings.Join(missing, ", "))
				return true
			}
			if !classifiesFrameError(defaultClause) {
				pass.Reportf(defaultClause.Pos(),
					"default discards an unexpected frame type silently: classify it (wrap ErrCorruptFrame, count CorruptFrames, or answer frameError) — missing cases: %s",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// frameConstants collects the package's frame-type constants: package-level
// `frame<Upper>` integer constants in [1, 255]. The first return maps each
// constant object to its value (for case matching by identity); the second
// deduplicates by value with alias names (anything containing "Max")
// dropped when a primary name exists, so frameTypeMax never demands a case
// of its own.
func frameConstants(pkg *types.Package) (map[*types.Const]int64, map[int64]string) {
	consts := map[*types.Const]int64{}
	byValue := map[int64]string{}
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasPrefix(name, "frame") || len(name) == len("frame") {
			continue
		}
		r := name[len("frame")]
		if r < 'A' || r > 'Z' {
			continue
		}
		// Dimensional constants (frameHeaderSize) share the prefix but are
		// measurements, not members of the type enum.
		if strings.Contains(name, "Size") || strings.Contains(name, "Len") ||
			strings.Contains(name, "Bytes") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok || v < 1 || v > 255 {
			continue
		}
		consts[c] = v
		prev, exists := byValue[v]
		switch {
		case !exists:
			byValue[v] = name
		case strings.Contains(prev, "Max") && !strings.Contains(name, "Max"):
			byValue[v] = name
		}
	}
	return consts, byValue
}

// frameConstCase resolves a case expression to a declared frame constant's
// value, matching by object identity.
func frameConstCase(info *types.Info, e ast.Expr, consts map[*types.Const]int64) (int64, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return 0, false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := consts[c]
	return v, ok
}

// classifiesFrameError reports whether a default clause visibly classifies
// the unexpected frame: it references an Err* sentinel, a Corrupt* counter,
// or an error frame constant.
func classifiesFrameError(cc *ast.CaseClause) bool {
	found := false
	for _, st := range cc.Body {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			name := id.Name
			if strings.HasPrefix(name, "Err") ||
				strings.Contains(name, "Corrupt") ||
				name == "frameError" || name == "frameMuxError" {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
