package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineJoin enforces the no-leaked-workers invariant in the packages
// whose goroutines carry cluster traffic and recovery state:
// internal/{comm,cluster,core,fault}. Exact-count recovery re-runs engines
// and rebuilds fabric stacks; a goroutine with no visible join can outlive
// the run it belongs to, keep writing into recycled chunks or counters, and
// turn a deterministic re-execution into a race. Every `go` statement must
// therefore show its join: a sync.WaitGroup Add/Done pairing, or a
// done-channel the spawner can drain (the goroutine sends on or closes a
// channel, directly or through a same-package callee).
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Tier: 1,
	Doc: "every goroutine in internal/{comm,cluster,core,fault} must be tied to a " +
		"visible join (WaitGroup, done-channel or collector) so crashes and " +
		"speculation cannot leak workers",
	Run: runGoroutineJoin,
}

// joinCallDepth bounds how far the checker follows same-package calls when
// looking for join evidence inside a spawned body (runFetch → closeReady →
// close(ch) is depth two).
const joinCallDepth = 3

func runGoroutineJoin(pass *Pass) {
	path := pass.Pkg.Path()
	if !pathHasSegments(path, "internal", "comm") &&
		!pathHasSegments(path, "internal", "cluster") &&
		!pathHasSegments(path, "internal", "core") &&
		!pathHasSegments(path, "internal", "fault") {
		return
	}
	decls := funcDecls(pass.Info, pass.Files)
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if waitGroupAddBefore(pass.Info, enclosingFuncBody(stack), g.Pos()) {
				return true
			}
			if body := spawnedBody(pass.Info, decls, g.Call); body != nil {
				seen := map[*ast.BlockStmt]bool{}
				if hasJoinEvidence(pass.Info, decls, body, joinCallDepth, seen) {
					return true
				}
			}
			pass.Reportf(g.Pos(),
				"goroutine has no visible join: tie it to a sync.WaitGroup or a done-channel so crashes and speculation cannot leak workers")
			return true
		})
	}
}

// waitGroupAddBefore reports whether body contains a sync.WaitGroup Add call
// positioned before pos — the spawner-side half of the Add/Done discipline.
func waitGroupAddBefore(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isSyncType(receiverType(info, sel), "WaitGroup") {
			found = true
			return false
		}
		return true
	})
	return found
}

// spawnedBody resolves the body the go statement runs: a function literal's
// own body, or the declaration of a same-package function or method.
func spawnedBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(info, call); fn != nil {
		if decl := decls[fn]; decl != nil {
			return decl.Body
		}
	}
	return nil
}

// hasJoinEvidence reports whether body makes the goroutine's completion
// observable: a WaitGroup Done, a channel send, or a channel close — found
// directly or by following same-package calls up to depth levels deep.
func hasJoinEvidence(info *types.Info, decls map[*types.Func]*ast.FuncDecl,
	body *ast.BlockStmt, depth int, seen map[*ast.BlockStmt]bool) bool {
	if body == nil || depth < 0 || seen[body] {
		return false
	}
	seen[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
			return false
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "close") {
				found = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isSyncType(receiverType(info, sel), "WaitGroup") {
					found = true
					return false
				}
			}
			if fn := calleeFunc(info, n); fn != nil {
				if decl := decls[fn]; decl != nil &&
					hasJoinEvidence(info, decls, decl.Body, depth-1, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
