package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardField infers, per struct field, the lock that guards it — and then
// holds every access to that standard. The resident service's correctness
// now rests on lock discipline across ~30 mutex-guarded structs; the race
// detector only sees the interleavings the tests happen to schedule, but the
// *intent* of a guarded field is visible statically: if nearly every access
// happens under the same mutex, the stray access that doesn't is either a
// data race or a deliberate exception worth documenting.
//
// The inference: every field access in the program is recorded together
// with the set of locks held at that point — locks acquired in the same
// function (the lockorder held-set scan: deferred unlocks keep the lock to
// function end, `go` bodies hold nothing), plus the locks provably held on
// entry, computed as the intersection over every call site of the function
// (a helper only ever called under s.mu inherits s.mu). A field whose
// accesses hold one consistent lock key (pkg.Type.field or a package-level
// mutex) at >= 80% of at least guardMinAccesses sites is presumed guarded
// by it; each remaining access is reported with the inferred guard and the
// witnessing lock-free site.
//
// Deliberate approximations, in the safe direction for each:
//   - Accesses through a value still inside its constructor (a local built
//     from a composite literal or new in the same function) are excluded —
//     pre-escape initialization needs no lock and must not dilute the
//     guarded fraction.
//   - Function-literal bodies hold nothing on entry: a goroutine spawned
//     under a lock does not inherit it, so its accesses either lock for
//     themselves or count as lock-free.
//   - Functions with no in-program callers (exported entry points) and
//     functions spawned by `go` or taken as values enter lock-free.
//   - sync.* and sync/atomic fields are exempt: mutexes are the guards, and
//     atomics follow atomicmix's discipline instead.
//
// An intentional lock-free access (a racy-by-design stats read, a field
// that is immutable after publication) is annotated in place:
//
//	//khuzdulvet:ignore guardfield <why the lock-free access is safe>
var GuardField = &Analyzer{
	Name: "guardfield",
	Tier: 4,
	Doc: "a struct field accessed under one consistent lock at >=80% of its " +
		"sites is presumed guarded by it; every remaining lock-free access " +
		"is a potential data race",
	Run: runGuardField,
}

// Inference thresholds: a guard is inferred only over at least
// guardMinAccesses recorded accesses, of which a fraction of at least
// guardThreshold must hold the same lock key.
const (
	guardMinAccesses = 4
	guardThreshold   = 0.8
)

func runGuardField(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	info := pass.Prog.guardFields()
	for _, f := range info.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// progFinding is one whole-program finding attributed to a package, the
// shape every lazily-built tier-4 fact base reports through.
type progFinding struct {
	pos token.Pos
	pkg *types.Package
	msg string
}

// guardFieldInfo is the whole-program guard-inference result, built once
// per Run.
type guardFieldInfo struct {
	findings []progFinding
}

// guardAccess is one recorded field access with its lock context.
type guardAccess struct {
	pos token.Pos
	fn  *types.Func
	// held is the set of lock keys directly held at the access.
	held []string
	// entry records whether fn's entry-held set augments held (false inside
	// function literals, which run on their own goroutine or at defer time).
	entry bool
	write bool
}

// guardCall is one recorded call site, the raw material of the entry-held
// intersection.
type guardCall struct {
	caller *types.Func
	callee *types.Func
	held   []string
	// entry: the caller's own entry-held set applies at this site (false
	// inside literals).
	entry bool
	// spawn: the call is a `go` statement — the callee starts lock-free.
	spawn bool
}

// guardFieldState accumulates one field's accesses plus its rendered name.
type guardFieldState struct {
	name     string
	accesses []*guardAccess
}

type guardBuilder struct {
	prog   *Program
	fields map[types.Object]*guardFieldState
	order  []types.Object // fields in first-seen order, for determinism
	calls  []guardCall
	// valueRef marks functions referenced as values: their entry set is
	// unknowable, so they enter lock-free.
	valueRef map[*types.Func]bool
}

// guardFields builds (once) and returns the program's guard inference.
func (p *Program) guardFields() *guardFieldInfo {
	if p.guardInfo != nil {
		return p.guardInfo
	}
	b := &guardBuilder{
		prog:     p,
		fields:   map[types.Object]*guardFieldState{},
		valueRef: map[*types.Func]bool{},
	}
	// Phase 1: per-function held-set scans recording field accesses and
	// call sites.
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		if fd.Body == nil {
			continue
		}
		s := &guardScanner{b: b, fn: fn, info: p.InfoOf[fn], entry: true,
			ctor: ctorLocals(fd.Body, p.InfoOf[fn])}
		s.scanStmts(fd.Body.List, nil)
		for len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.entry = false
			s.scanStmts(next.List, nil)
		}
	}
	// Phase 2: entry-held sets to a fixpoint. entry(fn) is the intersection
	// over every recorded call of (held at the site ∪ the caller's own entry
	// set); functions never called in-program, spawned via go, or taken as
	// values enter lock-free. Sets only ever shrink, so iteration converges;
	// functions still unconstrained afterwards (call cycles unreachable from
	// any root) resolve to lock-free.
	called := map[*types.Func]bool{}
	for _, rec := range b.calls {
		for _, target := range p.implementations(rec.callee) {
			if _, ok := p.Decls[target]; ok {
				called[target] = true
			}
		}
	}
	entry := map[*types.Func]map[string]bool{}
	entryOf := func(fn *types.Func) (map[string]bool, bool) {
		if !called[fn] || b.valueRef[fn] {
			return nil, true // known: lock-free
		}
		set, ok := entry[fn]
		return set, ok // !ok: still unconstrained (⊤)
	}
	for fn := range b.valueRef {
		entry[fn] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, rec := range b.calls {
			var eff map[string]bool
			if rec.spawn {
				eff = map[string]bool{}
			} else {
				callerEntry, known := entryOf(rec.caller)
				if !known {
					continue // caller still ⊤: no constraint yet
				}
				eff = map[string]bool{}
				for _, h := range rec.held {
					eff[h] = true
				}
				if rec.entry {
					for k := range callerEntry {
						eff[k] = true
					}
				}
			}
			for _, target := range p.implementations(rec.callee) {
				if _, ok := p.Decls[target]; !ok {
					continue
				}
				cur, ok := entry[target]
				if !ok {
					set := make(map[string]bool, len(eff))
					for k := range eff {
						set[k] = true
					}
					entry[target] = set
					changed = true
					continue
				}
				for k := range cur {
					if !eff[k] {
						delete(cur, k)
						changed = true
					}
				}
			}
		}
	}
	// Phase 3: inference and reporting per field.
	info := &guardFieldInfo{}
	for _, obj := range b.order {
		st := b.fields[obj]
		total := len(st.accesses)
		if total < guardMinAccesses {
			continue
		}
		effective := func(a *guardAccess) map[string]bool {
			eff := map[string]bool{}
			for _, h := range a.held {
				eff[h] = true
			}
			if a.entry {
				if set, known := entryOf(a.fn); known {
					for k := range set {
						eff[k] = true
					}
				}
			}
			return eff
		}
		counts := map[string]int{}
		for _, a := range st.accesses {
			for key := range effective(a) {
				if guardableKey(key) {
					counts[key]++
				}
			}
		}
		keys := make([]string, 0, len(counts))
		for key := range counts {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		best, bestN := "", 0
		for _, key := range keys {
			if counts[key] > bestN {
				best, bestN = key, counts[key]
			}
		}
		if best == "" || bestN == total || float64(bestN) < guardThreshold*float64(total) {
			continue
		}
		for _, a := range st.accesses {
			if effective(a)[best] {
				continue
			}
			kind := "read"
			if a.write {
				kind = "write"
			}
			info.findings = append(info.findings, progFinding{
				pos: a.pos,
				pkg: a.fn.Pkg(),
				msg: fmt.Sprintf("field %s is guarded by %s at %d/%d accesses; this %s does not hold it — "+
					"lock, or annotate an intentional lock-free access with an ignore directive",
					st.name, best, bestN, total, kind),
			})
		}
	}
	p.guardInfo = info
	return info
}

// guardableKey reports whether a lock key can guard a field across
// functions: struct-field and package-level mutexes qualify, function-local
// mutexes (whose keys carry the scoping "fn:expr" form) do not.
func guardableKey(key string) bool {
	return !strings.Contains(key, ":")
}

// ctorLocals collects the function's constructor-local values: variables
// assigned from a composite literal, &composite, or new(T) in this body.
// Field accesses through them are pre-escape initialization and are
// excluded from guard inference.
func ctorLocals(body *ast.BlockStmt, info *types.Info) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isCtorExpr(info, n.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && isCtorExpr(info, n.Values[i]) {
					if obj := info.Defs[id]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// isCtorExpr reports whether e constructs a fresh value: T{...}, &T{...},
// or new(T).
func isCtorExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		return isBuiltinCall(info, e, "new")
	}
	return false
}

// guardScanner walks one function body in statement order, maintaining the
// held-lock set (the lockorder machinery) while recording every struct-field
// access and every resolvable call site.
type guardScanner struct {
	b    *guardBuilder
	fn   *types.Func
	info *types.Info
	// entry: accesses and calls in the current body see fn's entry-held set
	// (true for the declaration body, false inside queued literals).
	entry bool
	ctor  map[types.Object]bool
	queue []*ast.BlockStmt
}

func (s *guardScanner) scanStmts(list []ast.Stmt, held []string) []string {
	for _, st := range list {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *guardScanner) scanStmt(st ast.Stmt, held []string) []string {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOpOf(s.info, s.fn, st.X); ok {
			switch op {
			case opLock:
				return append(held, key)
			case opUnlock:
				return removeLockKey(held, key)
			}
		}
		s.visit(st.X, held)
	case *ast.IncDecStmt:
		s.visitWrite(st.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to function end. Other
		// deferred calls run at exit under an unknown held set: record them
		// lock-free (the safe under-approximation) and visit their argument
		// expressions, which evaluate now.
		if _, op, ok := lockOpOf(s.info, s.fn, st.Call); ok && op == opUnlock {
			return held
		}
		s.recordCall(st.Call, nil, false)
		for _, arg := range st.Call.Args {
			s.visit(arg, held)
		}
		s.collectLits(st.Call)
	case *ast.GoStmt:
		// The goroutine holds nothing on entry regardless of the spawner's
		// locks; argument expressions still evaluate on this stack.
		s.recordCall(st.Call, nil, true)
		for _, arg := range st.Call.Args {
			s.visit(arg, held)
		}
		s.collectLits(st.Call)
	case *ast.SendStmt:
		s.visit(st.Chan, held)
		s.visit(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.visit(e, held)
		}
		for _, e := range st.Lhs {
			s.visitWrite(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.visit(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.visit(e, held)
				return false
			}
			return true
		})
	case *ast.BlockStmt:
		held = s.scanStmts(st.List, held)
	case *ast.IfStmt:
		// Branch-sensitive: each arm scans a copy of the held set, and the
		// fall-through set is the intersection over the arms that can fall
		// through. The early-return idiom — `if c { mu.Unlock(); return }`
		// while holding mu — must not strip the lock from the straight-line
		// path, and a conditionally-acquired lock must not count as held
		// after the branch.
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.visit(st.Cond, held)
		bodyOut := s.scanStmts(st.Body.List, append([]string(nil), held...))
		var live [][]string
		if !s.blockTerminates(st.Body.List) {
			live = append(live, bodyOut)
		}
		if st.Else != nil {
			elseOut := s.scanStmt(st.Else, append([]string(nil), held...))
			if !s.stmtTerminates(st.Else) {
				live = append(live, elseOut)
			}
		} else {
			live = append(live, held)
		}
		if len(live) > 0 {
			held = intersectHeld(live)
		}
	case *ast.ForStmt:
		// Loop bodies scan a copy: a balanced lock/unlock inside the loop
		// leaves the fall-through set untouched either way, and an
		// unbalanced one must not leak into the straight-line path.
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.visit(st.Cond, held)
		}
		s.scanStmts(st.Body.List, append([]string(nil), held...))
	case *ast.RangeStmt:
		s.visit(st.X, held)
		if st.Key != nil {
			s.visitWrite(st.Key, held)
		}
		if st.Value != nil {
			s.visitWrite(st.Value, held)
		}
		s.scanStmts(st.Body.List, append([]string(nil), held...))
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.visit(st.Tag, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, append([]string(nil), held...))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, append([]string(nil), held...))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				clause := append([]string(nil), held...)
				if cc.Comm != nil {
					clause = s.scanStmt(cc.Comm, clause)
				}
				s.scanStmts(cc.Body, clause)
			}
		}
	case *ast.LabeledStmt:
		held = s.scanStmt(st.Stmt, held)
	}
	return held
}

// blockTerminates reports whether a statement list cannot fall through.
func (s *guardScanner) blockTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return s.stmtTerminates(list[len(list)-1])
}

// stmtTerminates reports whether st always transfers control away from the
// following statement: return, break/continue/goto, panic, or a block/if
// whose every arm does.
func (s *guardScanner) stmtTerminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		return ok && isBuiltinCall(s.info, call, "panic")
	case *ast.BlockStmt:
		return s.blockTerminates(st.List)
	case *ast.IfStmt:
		return st.Else != nil && s.blockTerminates(st.Body.List) && s.stmtTerminates(st.Else)
	}
	return false
}

// intersectHeld keeps the lock keys present in every set, preserving the
// first set's order.
func intersectHeld(sets [][]string) []string {
	var out []string
	for _, key := range sets[0] {
		inAll := true
		for _, other := range sets[1:] {
			found := false
			for _, k := range other {
				if k == key {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, key)
		}
	}
	return out
}

// visitWrite records the field an assignment target writes through, then
// visits the rest of the target as reads. Index and dereference layers
// unwrap to the selector that names the written field: s.m[k] = v writes
// (through) field m.
func (s *guardScanner) visitWrite(e ast.Expr, held []string) {
	target := e
	for {
		switch t := target.(type) {
		case *ast.ParenExpr:
			target = t.X
			continue
		case *ast.StarExpr:
			target = t.X
			continue
		case *ast.IndexExpr:
			s.visit(t.Index, held)
			target = t.X
			continue
		}
		break
	}
	if sel, ok := target.(*ast.SelectorExpr); ok {
		s.recordField(sel, held, true)
		s.visit(sel.X, held)
		return
	}
	s.visit(target, held)
}

// visit records field reads, call sites, and function value references in
// an expression subtree; function literals queue for their own lock-free
// scan.
func (s *guardScanner) visit(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	funs := map[ast.Node]bool{}
	sels := map[*ast.Ident]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.queue = append(s.queue, n.Body)
			return false
		case *ast.CallExpr:
			funs[n.Fun] = true
			if _, _, ok := lockOpOf(s.info, s.fn, n); ok {
				// Lock/Unlock calls are handled by the statement walk; do not
				// record the mutex selector or a call edge, but still visit
				// the receiver path below the mutex field.
				if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel {
					if inner, isInner := sel.X.(*ast.SelectorExpr); isInner {
						s.visit(inner.X, held)
					}
				}
				return false
			}
			s.recordCall(n, held, false)
			return true
		case *ast.SelectorExpr:
			// The Sel ident is owned by this selector: the Ident case below
			// must not mistake it for a bare function-value reference.
			sels[n.Sel] = true
			if fn, ok := s.info.Uses[n.Sel].(*types.Func); ok && !funs[n] {
				if _, declared := s.b.prog.Decls[fn]; declared {
					s.b.valueRef[fn] = true
				}
			}
			s.recordField(n, held, false)
			return true
		case *ast.Ident:
			if fn, ok := s.info.Uses[n].(*types.Func); ok && !funs[n] && !sels[n] {
				if _, declared := s.b.prog.Decls[fn]; declared {
					s.b.valueRef[fn] = true
				}
			}
		}
		return true
	})
}

// recordField records one access to a program-declared struct field, unless
// the field's type is exempt (sync primitives, atomics) or the access is
// pre-escape constructor initialization.
func (s *guardScanner) recordField(sel *ast.SelectorExpr, held []string, write bool) {
	obj, ok := s.info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil || !s.b.prog.Pkgs[obj.Pkg()] {
		return
	}
	if guardExemptType(obj.Type()) {
		return
	}
	if s.ctor[rootIdentObj(s.info, sel.X)] {
		return
	}
	st := s.b.fields[obj]
	if st == nil {
		ownerPkg, ownerName := namedType(receiverType(s.info, sel))
		if ownerName == "" {
			return
		}
		st = &guardFieldState{name: shortPkgPath(ownerPkg) + "." + ownerName + "." + obj.Name()}
		s.b.fields[obj] = st
		s.b.order = append(s.b.order, obj)
	}
	st.accesses = append(st.accesses, &guardAccess{
		pos:   sel.Sel.Pos(),
		fn:    s.fn,
		held:  append([]string(nil), held...),
		entry: s.entry,
		write: write,
	})
}

// recordCall records one resolvable call site for the entry-held
// intersection.
func (s *guardScanner) recordCall(call *ast.CallExpr, held []string, spawn bool) {
	callee := calleeFunc(s.info, call)
	if callee == nil {
		return
	}
	s.b.calls = append(s.b.calls, guardCall{
		caller: s.fn,
		callee: callee,
		held:   append([]string(nil), held...),
		entry:  s.entry,
		spawn:  spawn,
	})
}

func (s *guardScanner) collectLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.queue = append(s.queue, lit.Body)
			return false
		}
		return true
	})
}

// rootIdentObj resolves the leftmost identifier of a selector/index chain
// to its object, or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// guardExemptType reports whether a field type is outside guard inference:
// sync primitives are the guards themselves, and sync/atomic values (bare,
// or as slice/array elements) follow atomicmix's discipline instead.
func guardExemptType(t types.Type) bool {
	if p, _ := namedType(t); p == "sync" || p == "sync/atomic" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if p, _ := namedType(u.Elem()); p == "sync/atomic" {
			return true
		}
	case *types.Array:
		if p, _ := namedType(u.Elem()); p == "sync/atomic" {
			return true
		}
	}
	return false
}
