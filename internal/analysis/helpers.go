package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathHasSegments reports whether pkgPath contains segs as consecutive
// slash-separated segments, e.g. pathHasSegments("khuzdul/internal/comm",
// "internal", "comm"). Matching on segments rather than literal paths keeps
// analyzers testable against fixture trees with synthetic prefixes.
func pathHasSegments(pkgPath string, segs ...string) bool {
	parts := strings.Split(pkgPath, "/")
	if len(segs) == 0 || len(parts) < len(segs) {
		return false
	}
	for i := 0; i+len(segs) <= len(parts); i++ {
		match := true
		for j, s := range segs {
			if parts[i+j] != s {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// pkgOfIdent resolves an identifier used as a package qualifier to its
// imported path, or "" when id is not a package name.
func pkgOfIdent(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isPkgCall reports whether call invokes pkgPath.name (through any import
// alias).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pkgOfIdent(info, id) == pkgPath
}

// namedType returns the package path and name of t's underlying named type,
// dereferencing one pointer level.
func namedType(t types.Type) (pkgPath, name string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isSyncType reports whether t (or *t) is one of the named sync types.
func isSyncType(t types.Type, names ...string) bool {
	p, n := namedType(t)
	if p != "sync" {
		return false
	}
	for _, want := range names {
		if n == want {
			return true
		}
	}
	return false
}

// receiverType returns the static type of the receiver expression of a
// method-call selector, or nil.
func receiverType(info *types.Info, sel *ast.SelectorExpr) types.Type {
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// isBuiltinCall reports whether call invokes the named builtin (close,
// panic, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcDecls maps each package-level function and method object to its
// declaration, so analyzers can follow calls into same-package bodies.
func funcDecls(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// calleeFunc resolves a call expression to the invoked function or method
// object, or nil for builtins, function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// inspectStack walks the subtree under root like ast.Inspect but hands the
// visitor the stack of enclosing nodes (outermost first, n excluded).
func inspectStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		stack = append(stack, n)
		if !descend {
			// Still push/popped symmetrically; prune by skipping children.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
