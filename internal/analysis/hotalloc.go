package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the allocation-free hot path. Khuzdul's per-task work —
// Extend → setops intersection → chunk emit — runs once per extendable
// embedding, i.e. billions of times per query; the paper's throughput claims
// (§6) assume the inner loop touches the allocator never, the way
// DwarvesGraph's compiled kernels do. Any function reachable from a
// //khuzdulvet:hotpath root must therefore avoid:
//
//   - make/new and slice/map/&T{} composite literals (direct heap traffic);
//   - append to a slice that provably starts empty (nil literal, []T(nil),
//     or a local declared without capacity) — growth reallocates every call
//     instead of amortizing into a caller-owned buffer;
//   - passing a literal nil where the callee names the parameter dst,
//     scratch or buf — those parameters exist precisely so callers can reuse
//     storage;
//   - bound method values (x.M used as a value) — each one allocates a
//     closure;
//   - implicit interface conversions of non-pointer values (boxing), and any
//     call into fmt or log (formatting allocates and serializes).
//
// A deliberate, amortized allocation (arena refill, one-time warmup) is
// suppressed with //khuzdulvet:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Tier: 2,
	Doc: "no heap allocation, interface boxing, fmt/log call or growing " +
		"append in functions reachable from //khuzdulvet:hotpath roots",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, fn := range pass.Prog.DeclList {
		fd := pass.Prog.Decls[fn]
		if fn.Pkg() != pass.Pkg || !pass.Prog.Hot[fn] || fd.Body == nil {
			continue
		}
		h := &hotScanner{
			pass:        pass,
			emptyLocals: emptySliceLocals(pass.Info, fd),
			callFuns:    map[*ast.SelectorExpr]bool{},
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					h.callFuns[sel] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, h.visit)
	}
}

type hotScanner struct {
	pass *Pass
	// emptyLocals holds the local slice variables declared with provably
	// empty backing (var s []T, s := []T(nil), s := []T{}).
	emptyLocals map[*types.Var]bool
	// callFuns marks selectors that are the Fun of a call, so x.M() is not
	// reported as a bound method value.
	callFuns map[*ast.SelectorExpr]bool
}

func (h *hotScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		h.checkCall(n)
	case *ast.CompositeLit:
		h.checkCompositeLit(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				h.pass.Reportf(n.Pos(), "&composite literal on the hot path escapes to the heap per call")
				return false
			}
		}
	case *ast.SelectorExpr:
		h.checkMethodValue(n)
	}
	return true
}

func (h *hotScanner) checkCall(call *ast.CallExpr) {
	if isBuiltinCall(h.pass.Info, call, "make") {
		h.pass.Reportf(call.Pos(), "make on the hot path allocates per call; preallocate in setup or reuse worker scratch")
		return
	}
	if isBuiltinCall(h.pass.Info, call, "new") {
		h.pass.Reportf(call.Pos(), "new on the hot path allocates per call; hoist the allocation out of the per-task code")
		return
	}
	if isBuiltinCall(h.pass.Info, call, "append") && len(call.Args) > 0 {
		if h.isEmptySlice(call.Args[0]) {
			h.pass.Reportf(call.Pos(), "append to an empty slice allocates and copies every call; append into reused scratch instead")
		}
	}
	callee := calleeFunc(h.pass.Info, call)
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "log":
			h.pass.Reportf(call.Pos(), "call to %s.%s on the hot path: formatting allocates and serializes workers", callee.Pkg().Name(), callee.Name())
			return
		}
	}
	h.checkArgs(call, callee)
}

// checkArgs inspects a call's arguments for two per-call allocation shapes:
// a literal nil handed to a reuse parameter (dst/scratch/buf), and a
// non-pointer concrete value converted to an interface parameter (boxing).
func (h *hotScanner) checkArgs(call *ast.CallExpr, callee *types.Func) {
	sig := callSignature(h.pass.Info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil {
			continue
		}
		if isNilIdent(h.pass.Info, arg) {
			if name := param.Name(); name == "dst" || name == "scratch" || name == "buf" {
				h.pass.Reportf(arg.Pos(), "nil %s argument%s forces the callee to allocate every call; pass reused scratch", name, calleeSuffix(callee))
			}
			continue
		}
		if _, isIface := param.Type().Underlying().(*types.Interface); !isIface {
			continue
		}
		at := h.pass.Info.Types[arg].Type
		if at == nil {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word; no boxing allocation
		}
		if _, isChan := at.Underlying().(*types.Chan); isChan {
			continue
		}
		if _, isMap := at.Underlying().(*types.Map); isMap {
			continue
		}
		if _, isFunc := at.Underlying().(*types.Signature); isFunc {
			continue // func values are reference-shaped; flagged via method values instead
		}
		h.pass.Reportf(arg.Pos(), "argument boxes a %s into an interface%s, allocating per call", at.String(), calleeSuffix(callee))
	}
}

func (h *hotScanner) checkCompositeLit(lit *ast.CompositeLit) {
	t := h.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		h.pass.Reportf(lit.Pos(), "slice literal on the hot path allocates per call")
	case *types.Map:
		h.pass.Reportf(lit.Pos(), "map literal on the hot path allocates per call")
	}
}

// checkMethodValue flags x.M used as a value: a bound method value allocates
// a closure capturing the receiver.
func (h *hotScanner) checkMethodValue(sel *ast.SelectorExpr) {
	selInfo, ok := h.pass.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.MethodVal {
		return
	}
	// x.M() is a call, not a value; callFuns filters those out.
	if h.callFuns[sel] {
		return
	}
	h.pass.Reportf(sel.Pos(), "bound method value %s allocates a closure per evaluation; hoist it into setup", types.ExprString(sel))
}

func (h *hotScanner) isEmptySlice(e ast.Expr) bool {
	if isNilIdent(h.pass.Info, e) {
		return true
	}
	// []T(nil) conversion.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && isNilIdent(h.pass.Info, call.Args[0]) {
				return true
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := h.pass.Info.Uses[id].(*types.Var); ok && h.emptyLocals[v] {
			return true
		}
	}
	return false
}

// emptySliceLocals collects fd's local slice variables declared with no
// backing storage; appending to them allocates on first growth, every call.
func emptySliceLocals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							out[v] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// callSignature returns the signature of the called function or func value,
// skipping conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramAt returns the parameter variable matching argument index i,
// collapsing variadic tails onto the element type's parameter.
func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i < n-1 || (!sig.Variadic() && i < n) {
		return sig.Params().At(i)
	}
	if !sig.Variadic() {
		return nil
	}
	// Variadic tail: the parameter is []E; boxing happens per element, so
	// report against the element type by synthesizing a var of type E.
	last := sig.Params().At(n - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return last
	}
	return types.NewVar(last.Pos(), last.Pkg(), last.Name(), slice.Elem())
}

// calleeSuffix names the callee in a diagnostic when it resolved statically.
func calleeSuffix(callee *types.Func) string {
	if callee == nil {
		return ""
	}
	return " of " + callee.Name()
}
