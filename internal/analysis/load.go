package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadedPackage is one parsed and type-checked package.
type LoadedPackage struct {
	// Path is the package's import path (module path + directory for real
	// trees; the bare relative directory for test fixtures).
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks every non-test package under dir. modulePath
// is the import-path prefix of dir ("" maps a directory tree straight to
// import paths, which is how fixture trees under testdata/src are loaded).
// Stdlib imports are type-checked from source via go/importer, so loading
// needs no compiled package artifacts and no module dependencies.
func Load(dir, modulePath string) ([]*LoadedPackage, error) {
	fset := token.NewFileSet()
	raw, err := parseTree(fset, dir, modulePath)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(raw)
	if err != nil {
		return nil, err
	}
	checked := make(map[string]*types.Package, len(order))
	imp := &chainImporter{
		local: checked,
		std:   importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*LoadedPackage
	for _, p := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(p.path, fset, p.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.path, typeErrs[0])
		}
		checked[p.path] = tpkg
		pkgs = append(pkgs, &LoadedPackage{
			Path:  p.path,
			Dir:   p.dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// rawPackage is one directory's parsed files before type checking.
type rawPackage struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

// parseTree walks dir and parses every package in it, skipping testdata,
// vendored and hidden directories and all _test.go files.
func parseTree(fset *token.FileSet, root, modulePath string) (map[string]*rawPackage, error) {
	pkgs := map[string]*rawPackage{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ipath := importPath(modulePath, rel)
		p := pkgs[ipath]
		if p == nil {
			p = &rawPackage{path: ipath, dir: dir, imports: map[string]bool{}}
			pkgs[ipath] = p
		}
		if len(p.files) > 0 && p.files[0].Name.Name != f.Name.Name {
			return fmt.Errorf("analysis: %s holds two packages (%s and %s)",
				dir, p.files[0].Name.Name, f.Name.Name)
		}
		p.files = append(p.files, f)
		for _, spec := range f.Imports {
			if ip, err := strconv.Unquote(spec.Path.Value); err == nil {
				p.imports[ip] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Deterministic file order within each package regardless of walk order.
	for _, p := range pkgs {
		sort.Slice(p.files, func(i, j int) bool {
			return fset.Position(p.files[i].Pos()).Filename < fset.Position(p.files[j].Pos()).Filename
		})
	}
	return pkgs, nil
}

// importPath joins the module path and a relative directory.
func importPath(modulePath, rel string) string {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == "." || rel == "":
		return modulePath
	case modulePath == "":
		return rel
	default:
		return modulePath + "/" + rel
	}
}

// topoOrder sorts packages so every package follows its in-tree imports,
// which lets type checking resolve local imports from the already-checked
// set.
func topoOrder(pkgs map[string]*rawPackage) ([]*rawPackage, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []*rawPackage
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		p := pkgs[path]
		deps := make([]string, 0, len(p.imports))
		for ip := range p.imports {
			if _, ok := pkgs[ip]; ok {
				deps = append(deps, ip)
			}
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if err := visit(ip); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-local imports from the packages checked so
// far and everything else (the stdlib) from source.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}
