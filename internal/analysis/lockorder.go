package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces acyclic lock acquisition across the whole program. The
// resident service runs many queries concurrently over ~20 interacting
// mutexes (Server.mu, connState.mu, recMu, the mux and tracker locks); two
// goroutines acquiring the same pair of locks in opposite orders is the
// classic deadlock, and it only shows up dynamically when the interleaving
// loses the race. This analyzer finds the shape statically.
//
// The abstraction: a lock is identified by the struct type and field that
// declare it (comm.TCP.mu, cluster.rangeTracker.mu), or by package/function
// scope for non-field mutexes. Per function, acquisitions are tracked in
// statement order (the locksend approximation: a deferred unlock keeps the
// lock held to function end, function literals run in their own context, a
// `go` statement's body does not hold the spawner's locks). Holding L while
// acquiring M — directly, or anywhere inside a callee reached without a `go`
// statement, propagated to a fixpoint over the call graph like the tier-2
// summaries — adds the edge L → M. A cycle in the resulting graph is a
// potential deadlock, reported once with both acquisition paths cited.
//
// The key is instance-insensitive: two *different* tcpConn values locked in
// sequence collapse onto one node, so a self-edge (L → L) is not reported —
// hand-over-hand locking over siblings would be a false positive, and
// single-instance re-entry deadlocks immediately in any test. Interface
// calls over-approximate to every implementing method, so an edge through an
// interface may name a callee the concrete program never dispatches to; an
// ignore directive with a reason is the documented escape hatch.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Tier: 3,
	Doc: "lock acquisition order must be acyclic across the program: holding " +
		"L while (transitively) acquiring M orders L before M, and a cycle " +
		"is a potential deadlock",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	info := pass.Prog.lockGraph()
	for _, f := range info.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// lockGraphInfo is the whole-program lock-acquisition graph plus the cycle
// findings derived from it, built once per Run.
type lockGraphInfo struct {
	// edges[from][to] is the first witness for "to acquired while from held".
	edges    map[string]map[string]*lockEdge
	findings []lockFinding
}

// lockEdge is one ordered acquisition: `to` taken while `from` is held.
type lockEdge struct {
	from, to string
	// pos/fn locate the acquisition (or the call that leads to it) for
	// reporting; the finding is attributed to fn's package.
	pos token.Pos
	fn  *types.Func
	// desc is the human-readable acquisition path.
	desc string
}

type lockFinding struct {
	pos token.Pos
	pkg *types.Package
	msg string
}

// lockAcq records how a function comes to acquire a lock key: directly at
// pos, or through the callee via (followed transitively when rendering).
type lockAcq struct {
	pos token.Pos
	via *types.Func
}

// lockGraph builds (once) and returns the program's lock graph and findings.
func (p *Program) lockGraph() *lockGraphInfo {
	if p.lockInfo != nil {
		return p.lockInfo
	}
	b := &lockGraphBuilder{
		prog:   p,
		info:   &lockGraphInfo{edges: map[string]map[string]*lockEdge{}},
		direct: map[*types.Func]map[string]token.Pos{},
	}
	// Phase 1: per-function linear scans — direct acquisitions, direct
	// ordered edges, and calls made while locks are held.
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		if fd.Body == nil {
			continue
		}
		s := &lockOrderScanner{b: b, fn: fn, info: p.InfoOf[fn], attribute: true}
		s.scanStmts(fd.Body.List, nil)
		for len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.attribute = next.attribute
			s.scanStmts(next.body.List, nil)
		}
	}
	// Phase 2: transitive acquisition sets to a fixpoint over the non-go
	// call edges (a spawned goroutine acquires on its own stack).
	acq := map[*types.Func]map[string]lockAcq{}
	for fn, keys := range b.direct {
		m := map[string]lockAcq{}
		for key, pos := range keys {
			m[key] = lockAcq{pos: pos}
		}
		acq[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.DeclList {
			for _, c := range p.syncCallees[fn] {
				for key := range acq[c] {
					if _, ok := acq[fn][key]; ok {
						continue
					}
					if acq[fn] == nil {
						acq[fn] = map[string]lockAcq{}
					}
					acq[fn][key] = lockAcq{via: c}
					changed = true
				}
			}
		}
	}
	// Phase 3: call-mediated edges — each call made under held locks orders
	// those locks before everything the callee transitively acquires.
	for _, rec := range b.calls {
		for _, target := range p.implementations(rec.callee) {
			keys := make([]string, 0, len(acq[target]))
			for key := range acq[target] {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				site, owner := resolveAcq(acq, target, key)
				for _, h := range rec.held {
					if h == key {
						continue
					}
					b.addEdge(h, key, rec.pos, rec.fn, fmt.Sprintf(
						"%s held at call to %s (%s), which acquires %s (in %s at %s)",
						h, target.Name(), p.pos(rec.pos), key, owner.Name(), p.pos(site)))
				}
			}
		}
	}
	// Phase 4: cycle detection. Every edge whose target can reach back to
	// its source closes a cycle; each distinct cycle (as a node set) is
	// reported once, at its lexically-first edge, citing every acquisition
	// path around the loop.
	froms := make([]string, 0, len(b.info.edges))
	for from := range b.info.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	seen := map[string]bool{}
	for _, from := range froms {
		tos := make([]string, 0, len(b.info.edges[from]))
		for to := range b.info.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			path := b.findPath(to, from)
			if path == nil {
				continue
			}
			// findPath excludes its start node, so the full loop is
			// from → to → …path, with path ending back at from.
			cycle := append([]string{from, to}, path...)
			id := canonicalCycle(cycle)
			if seen[id] {
				continue
			}
			seen[id] = true
			e := b.info.edges[from][to]
			var parts []string
			for i := 0; i < len(cycle)-1; i++ {
				parts = append(parts, b.info.edges[cycle[i]][cycle[i+1]].desc)
			}
			b.info.findings = append(b.info.findings, lockFinding{
				pos: e.pos,
				pkg: e.fn.Pkg(),
				msg: fmt.Sprintf("potential deadlock: lock-order cycle %s: %s",
					strings.Join(cycle, " → "), strings.Join(parts, "; ")),
			})
		}
	}
	p.lockInfo = b.info
	return b.info
}

// pos renders a token.Pos as file:line using the shared FileSet.
func (p *Program) pos(pos token.Pos) string {
	if p.Fset == nil {
		return "?"
	}
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", position.Filename, position.Line)
}

// resolveAcq follows a transitive acquisition back to the function that
// takes the lock directly.
func resolveAcq(acq map[*types.Func]map[string]lockAcq, fn *types.Func, key string) (token.Pos, *types.Func) {
	seen := map[*types.Func]bool{}
	for {
		a := acq[fn][key]
		if a.via == nil || seen[a.via] {
			return a.pos, fn
		}
		seen[fn] = true
		fn = a.via
	}
}

// canonicalCycle names a cycle by its sorted distinct nodes, so the same
// loop discovered from different edges is reported once.
func canonicalCycle(cycle []string) string {
	nodes := map[string]bool{}
	for _, n := range cycle {
		nodes[n] = true
	}
	keys := make([]string, 0, len(nodes))
	for n := range nodes {
		keys = append(keys, n)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// lockCall is one call made while locks are held.
type lockCall struct {
	fn     *types.Func
	pos    token.Pos
	held   []string
	callee *types.Func
}

type lockGraphBuilder struct {
	prog *Program
	info *lockGraphInfo
	// direct[fn][key] is the first position where fn itself locks key.
	direct map[*types.Func]map[string]token.Pos
	calls  []lockCall
}

func (b *lockGraphBuilder) addEdge(from, to string, pos token.Pos, fn *types.Func, desc string) {
	if from == to {
		return // instance-insensitive keys cannot distinguish re-entry from siblings
	}
	m := b.info.edges[from]
	if m == nil {
		m = map[string]*lockEdge{}
		b.info.edges[from] = m
	}
	if m[to] == nil {
		m[to] = &lockEdge{from: from, to: to, pos: pos, fn: fn, desc: desc}
	}
}

// findPath returns the node path from `from` to `to` over the edge graph
// (excluding `from` itself, ending in `to`), or nil if unreachable.
// Deterministic: BFS with sorted adjacency.
func (b *lockGraphBuilder) findPath(from, to string) []string {
	if from == to {
		return []string{to}
	}
	parent := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(b.info.edges[n]))
		for m := range b.info.edges[n] {
			next = append(next, m)
		}
		sort.Strings(next)
		for _, m := range next {
			if _, ok := parent[m]; ok {
				continue
			}
			parent[m] = n
			if m == to {
				var rev []string
				for cur := to; cur != from; cur = parent[cur] {
					rev = append(rev, cur)
				}
				path := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// lockOrderScanner walks one function body in statement order, maintaining
// the held-lock set. The shape mirrors locksend's scanner; the payload here
// is acquisition edges and under-lock call sites rather than blocking ops.
type lockOrderScanner struct {
	b    *lockGraphBuilder
	fn   *types.Func
	info *types.Info
	// attribute: whether acquisitions in the current body count as fn's own
	// (feeding the transitive sets callers see). True for the declaration
	// body and synchronously-runnable literals (plain and deferred); false
	// inside `go`-spawned literals — a goroutine acquires on its own stack,
	// so a caller holding a lock across a call to fn must not be ordered
	// against what fn's goroutines lock.
	attribute bool
	// queue collects function literals for their own empty-held scan.
	queue []queuedLit
}

type queuedLit struct {
	body      *ast.BlockStmt
	attribute bool
}

func (s *lockOrderScanner) scanStmts(list []ast.Stmt, held []string) []string {
	for _, st := range list {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *lockOrderScanner) scanStmt(st ast.Stmt, held []string) []string {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if key, op, ok := s.lockOp(st.X); ok {
			switch op {
			case opLock:
				s.acquire(key, st.Pos(), held)
				return append(held, key)
			case opUnlock:
				return removeLockKey(held, key)
			}
		}
		s.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to function end — modeled
		// by not removing it. Other deferred work runs outside statement
		// order; its literals scan in their own context but still on fn's
		// stack, so their acquisitions stay attributed to fn.
		s.collectLits(st.Call, s.attribute)
	case *ast.GoStmt:
		// The goroutine does not hold the spawner's locks, and its
		// acquisitions happen on its own stack: scan the body separately,
		// unattributed, and record no call under the current held set.
		s.collectLits(st.Call, false)
	case *ast.SendStmt:
		s.checkExpr(st.Chan, held)
		s.checkExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExpr(e, held)
				return false
			}
			return true
		})
	case *ast.BlockStmt:
		held = s.scanStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.checkExpr(st.Cond, held)
		held = s.scanStmts(st.Body.List, held)
		if st.Else != nil {
			held = s.scanStmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond, held)
		}
		held = s.scanStmts(st.Body.List, held)
	case *ast.RangeStmt:
		s.checkExpr(st.X, held)
		held = s.scanStmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.checkExpr(st.Tag, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		held = s.scanStmt(st.Stmt, held)
	}
	return held
}

// acquire records a direct acquisition: the first site per (fn, key) when
// the current body is attributed to fn, and one ordered edge from every
// currently-held lock regardless.
func (s *lockOrderScanner) acquire(key string, pos token.Pos, held []string) {
	if s.attribute {
		d := s.b.direct[s.fn]
		if d == nil {
			d = map[string]token.Pos{}
			s.b.direct[s.fn] = d
		}
		if _, ok := d[key]; !ok {
			d[key] = pos
		}
	}
	for _, h := range held {
		s.b.addEdge(h, key, pos, s.fn, fmt.Sprintf(
			"%s acquired with %s held at %s (in %s)",
			key, h, s.b.prog.pos(pos), s.fn.Name()))
	}
}

// checkExpr records resolvable calls made while locks are held and queues
// function literals for their own scan.
func (s *lockOrderScanner) checkExpr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.queue = append(s.queue, queuedLit{body: n.Body, attribute: s.attribute})
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if _, _, ok := s.lockOp(n); ok {
				return true // Lock/Unlock handled by the statement walk
			}
			if callee := calleeFunc(s.info, n); callee != nil {
				s.b.calls = append(s.b.calls, lockCall{
					fn: s.fn, pos: n.Pos(), held: append([]string(nil), held...), callee: callee,
				})
			}
		}
		return true
	})
}

func (s *lockOrderScanner) collectLits(n ast.Node, attribute bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.queue = append(s.queue, queuedLit{body: lit.Body, attribute: attribute})
			return false
		}
		return true
	})
}

// lockOp classifies an expression as a mutex Lock/RLock or Unlock/RUnlock
// call and derives the lock's program-wide key.
func (s *lockOrderScanner) lockOp(e ast.Expr) (key string, op int, ok bool) {
	return lockOpOf(s.info, s.fn, e)
}

// lockOpOf classifies an expression as a mutex Lock/RLock or Unlock/RUnlock
// call and derives the lock's program-wide key. RLock counts as Lock: a
// read-lock cycle still deadlocks once a writer queues between the readers.
// Shared by the lockorder and guardfield held-set scanners.
func lockOpOf(info *types.Info, fn *types.Func, e ast.Expr) (key string, op int, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	if !isSyncType(receiverType(info, sel), "Mutex", "RWMutex") {
		return "", 0, false
	}
	return lockKeyOf(info, fn, sel.X), op, true
}

// lockKeyOf identifies the mutex behind expr program-wide: by declaring
// struct type and field for field mutexes, by package for package-level
// ones, and scoped to the enclosing function otherwise (locals cannot
// participate in cross-function cycles).
func lockKeyOf(info *types.Info, fn *types.Func, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
			if pkgPath, name := namedType(tv.Type); name != "" {
				return shortPkgPath(pkgPath) + "." + name + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return shortPkgPath(obj.Pkg().Path()) + "." + x.Name
		}
	}
	return fn.FullName() + ":" + types.ExprString(e)
}

// shortPkgPath renders a package path as its last segment for readable keys.
func shortPkgPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func removeLockKey(held []string, key string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
