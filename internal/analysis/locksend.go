package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSend enforces the no-blocking-traffic-under-a-lock invariant in
// internal/{comm,cluster,core,fault}: a fabric operation (Fetch/Send/Ping)
// or an unbuffered channel operation performed while a sync.Mutex or RWMutex
// is held couples lock hold time to network progress. Under a partition the
// fabric call blocks until its deadline — and every goroutine queueing on
// that mutex (checkpoint trackers, the speculation monitor, metric readers)
// stalls with it. That is exactly the deadlock shape partition chaos tests
// exist to expose, so it is rejected statically.
//
// The analysis is a per-function linear approximation: it tracks Lock/RLock
// and Unlock/RUnlock calls in statement order (a deferred unlock keeps the
// lock held to the end of the function), and flags blocking operations while
// any mutex is held. Function literals run in their own context — a
// goroutine body does not hold its spawner's locks. Select statements with a
// default clause are non-blocking and pass.
var LockSend = &Analyzer{
	Name: "locksend",
	Tier: 1,
	Doc: "no fabric Send/Fetch/Ping or blocking channel operation while a " +
		"sync.Mutex/RWMutex is held — the deadlock shape partitions expose",
	Run: runLockSend,
}

// fabricMethods are the comm-package method names whose calls block on the
// network.
var fabricMethods = map[string]bool{
	"Fetch":       true,
	"FetchCancel": true,
	"Send":        true,
	"Ping":        true,
}

func runLockSend(pass *Pass) {
	path := pass.Pkg.Path()
	if !pathHasSegments(path, "internal", "comm") &&
		!pathHasSegments(path, "internal", "cluster") &&
		!pathHasSegments(path, "internal", "core") &&
		!pathHasSegments(path, "internal", "fault") {
		return
	}
	s := &lockScanner{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				s.scanFunc(fd.Body)
			}
		}
	}
}

// heldLock is one currently-held mutex, identified by the source text of its
// receiver expression.
type heldLock struct {
	key string
	pos token.Pos
}

type lockScanner struct {
	pass *Pass
	// queue collects function literals discovered mid-scan; each runs in its
	// own context with no inherited locks.
	queue []*ast.BlockStmt
}

// scanFunc analyzes one function body and then every function literal found
// inside it, each with an empty held set.
func (s *lockScanner) scanFunc(body *ast.BlockStmt) {
	held := s.scanStmts(body.List, nil)
	_ = held
	for len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.scanStmts(next.List, nil)
	}
}

// scanStmts walks statements in order, maintaining the held-lock set.
func (s *lockScanner) scanStmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range list {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *lockScanner) scanStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if key, op, ok := mutexOp(s.pass.Info, st.X); ok {
			switch op {
			case opLock:
				return append(held, heldLock{key: key, pos: st.Pos()})
			case opUnlock:
				return removeLock(held, key)
			}
		}
		s.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held for the rest of the
		// function, which is precisely what the scan models by not removing
		// it. Other deferred calls run outside the statement order; skip.
		s.collectFuncLits(st.Call)
	case *ast.GoStmt:
		// The goroutine does not hold the spawner's locks; its body is
		// scanned in its own context.
		s.collectFuncLits(st.Call)
	case *ast.SendStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Pos(),
				"channel send while %s is held: a blocked send under a lock is the deadlock shape partitions expose", lastLock(held))
		}
		s.checkExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExpr(e, held)
				return false
			}
			return true
		})
	case *ast.BlockStmt:
		held = s.scanStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.checkExpr(st.Cond, held)
		held = s.scanStmts(st.Body.List, held)
		if st.Else != nil {
			held = s.scanStmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond, held)
		}
		held = s.scanStmts(st.Body.List, held)
	case *ast.RangeStmt:
		if len(held) > 0 && isChanType(s.pass.Info, st.X) {
			s.pass.Reportf(st.Pos(),
				"blocking receive (range over channel) while %s is held", lastLock(held))
		}
		s.checkExpr(st.X, held)
		held = s.scanStmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			s.pass.Reportf(st.Pos(),
				"blocking select while %s is held: every case waits on communication", lastLock(held))
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				held = s.scanStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		held = s.scanStmt(st.Stmt, held)
	}
	return held
}

// checkExpr flags blocking operations inside an expression evaluated while
// locks are held, and queues any function literals for their own scan.
func (s *lockScanner) checkExpr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.queue = append(s.queue, n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				s.pass.Reportf(n.Pos(),
					"blocking channel receive while %s is held", lastLock(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if name, ok := fabricCall(s.pass.Info, n); ok {
					s.pass.Reportf(n.Pos(),
						"fabric %s while %s is held: a blocked fabric operation under a lock is the deadlock shape partitions expose",
						name, lastLock(held))
				}
			}
		}
		return true
	})
}

// collectFuncLits queues every function literal under n for an independent
// scan.
func (s *lockScanner) collectFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.queue = append(s.queue, lit.Body)
			return false
		}
		return true
	})
}

const (
	opLock = iota
	opUnlock
)

// mutexOp classifies an expression statement as a mutex Lock/RLock or
// Unlock/RUnlock call and returns the receiver's source text as its key.
func mutexOp(info *types.Info, e ast.Expr) (key string, op int, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	if !isSyncType(receiverType(info, sel), "Mutex", "RWMutex") {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

func removeLock(held []heldLock, key string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// lastLock names the most recently acquired held mutex for diagnostics.
func lastLock(held []heldLock) string { return held[len(held)-1].key }

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// fabricCall reports whether call invokes a blocking fabric method — a
// method named Fetch/FetchCancel/Send/Ping declared in a comm package
// (matched on path segments so fixture trees qualify too).
func fabricCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fabricMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return "", false
	}
	if !pathHasSegments(fn.Pkg().Path(), "internal", "comm") && fn.Pkg().Path() != "comm" {
		return "", false
	}
	return sel.Sel.Name, true
}

// isChanType reports whether e has a channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
