package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder guards the determinism that exact-count recovery (§3.3 checkpoint
// re-execution) and speculation's first-completion-wins reconciliation depend
// on: two executions of the same work must produce the same observable
// sequence of wire requests, partition decisions and reported results. Go map
// iteration order is deliberately randomized, so a `range` over a map whose
// body feeds an order-sensitive sink makes runs diverge — fetch batches
// arrive in different orders, caches evict different entries, encoded frames
// carry bytes in different orders.
//
// Flagged sinks inside a map-range body:
//
//   - any call into internal/comm (fabric fetches, codecs, frame writers);
//   - a channel send;
//   - writes (methods named Write/WriteString/Flush, fmt.Fprint*);
//   - append to a slice declared outside the loop — unless the function
//     later sorts that slice (the collect-then-sort idiom is deterministic).
//
// Inserting into another map, counting, or commutative accumulation are not
// sinks: order cannot be observed through them.
var MapOrder = &Analyzer{
	Name: "maporder",
	Tier: 2,
	Doc: "no range over a map whose iteration order flows into wire traffic, " +
		"channel sends, writes, or unsorted collected slices",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedSlices(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.Info, rs.X) {
					return true
				}
				checkMapRange(pass, rs, sorted)
				return true
			})
		}
	}
}

// isMapType reports whether e has a map type.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange scans one map-range body for order-sensitive sinks and
// reports the strongest one found (wire traffic > channel send > write >
// unsorted collection): one finding per loop keeps the signal readable when
// a body hits several sinks at once.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, sorted map[*types.Var]bool) {
	var commName, writeName, collectName string
	var sends bool
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sends = true
		case *ast.CallExpr:
			if name, ok := commSink(pass.Info, n); ok && commName == "" {
				commName = name
			}
			if name, ok := writeSink(pass.Info, n); ok && writeName == "" {
				writeName = name
			}
			if isBuiltinCall(pass.Info, n, "append") && len(n.Args) > 0 {
				if v := rootVar(pass.Info, n.Args[0]); v != nil && !sorted[v] && declaredOutside(v, rs) && collectName == "" {
					collectName = v.Name()
				}
			}
		}
		return true
	})
	switch {
	case commName != "":
		pass.Reportf(rs.Pos(), "map iteration order drives %s: wire traffic ordering differs every run; iterate sorted keys", commName)
	case sends:
		pass.Reportf(rs.Pos(), "map iteration order flows into a channel send; receivers observe a different order every run")
	case writeName != "":
		pass.Reportf(rs.Pos(), "map iteration order flows into %s; output ordering differs every run", writeName)
	case collectName != "":
		pass.Reportf(rs.Pos(), "map iteration order is collected into slice %q which is never sorted; sort it or iterate sorted keys", collectName)
	}
}

// commSink reports whether call invokes a function or method declared in a
// comm package (fabric operations, codecs, frame I/O) — the wire boundary
// where request ordering becomes observable.
func commSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if pathHasSegments(path, "internal", "comm") || path == "comm" {
		return fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", false
}

// writeSink reports whether call is a write: a method named Write,
// WriteString, WriteByte or Flush, or an fmt.Fprint* call.
func writeSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return "fmt." + fn.Name(), true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "Flush":
		return fn.Name(), true
	}
	return "", false
}

// rootVar resolves the base identifier of an expression (x, x.f → x) to its
// variable object, or nil.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = info.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether v's declaration lies outside the range
// statement — a slice accumulated across iterations, whose final element
// order mirrors the map's iteration order.
func declaredOutside(v *types.Var, rs *ast.RangeStmt) bool {
	return v.Pos() < rs.Pos() || v.Pos() > rs.End()
}

// sortedSlices collects the variables fd passes to a sort call
// (sort.Slice/Sort/Ints/Strings, slices.Sort*): collecting map keys or
// values and sorting afterwards is the canonical deterministic iteration
// idiom and must not be flagged.
func sortedSlices(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !strings.HasSuffix(fn.Name(), "Sort") &&
			fn.Name() != "Slice" && fn.Name() != "SliceStable" &&
			fn.Name() != "Ints" && fn.Name() != "Strings" && fn.Name() != "Float64s" {
			return true
		}
		if v := rootVar(info, call.Args[0]); v != nil {
			out[v] = true
		}
		return true
	})
	return out
}
