package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// MetricLive enforces liveness of the metrics surface: every atomic counter
// or gauge declared in a metrics package must be written somewhere (or it
// is dead weight that reads as instrumentation) and read somewhere (or the
// increments burn cycles producing a number nobody can see — the dead
// `vertHits` tally of PR 5 is the precedent; it counted vertical-extension
// hits into a local that no summary ever surfaced).
//
// The check is whole-program over the call graph's declaration index: for
// each atomic integer field of a struct declared in a *metrics* package
// path segment, classify every method call on it anywhere in the program —
// Add / Swap / CompareAndSwap / Store-of-nonzero mutate it; Load / Swap /
// an Add whose result is consumed read it; Store(0) is a reset and proves
// nothing. Taking the field's address escapes the analysis and counts as
// both. Fields never mutated are reported as dead; fields mutated but
// never read are reported as unsurfaced. Test files are outside the loaded
// program, so a counter only a test reads is still unsurfaced — correctly:
// the runtime summary is the surface that matters.
var MetricLive = &Analyzer{
	Name: "metriclive",
	Tier: 3,
	Doc: "metrics counters/gauges must be both incremented and surfaced: " +
		"dead or write-only atomics are reported at their declaration",
	Run: runMetricLive,
}

// metricField is one tracked atomic counter/gauge declaration.
type metricField struct {
	owner string
	name  string
	decl  *ast.Ident
}

func runMetricLive(pass *Pass) {
	if pass.Prog == nil || !pathHasSegments(pass.Pkg.Path(), "metrics") {
		return
	}
	fields := map[types.Object]*metricField{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if !isAtomicCounterField(pass.Info, fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						obj := pass.Info.Defs[name]
						if obj == nil {
							continue
						}
						fields[obj] = &metricField{owner: ts.Name.Name, name: name.Name, decl: name}
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return
	}
	mutated := map[types.Object]bool{}
	read := map[types.Object]bool{}
	for _, fn := range pass.Prog.DeclList {
		fd := pass.Prog.Decls[fn]
		info := pass.Prog.InfoOf[fn]
		if fd.Body == nil {
			continue
		}
		// Calls whose results are discarded: statement calls plus go/defer.
		discarded := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					discarded[call] = true
				}
			case *ast.GoStmt:
				discarded[n.Call] = true
			case *ast.DeferStmt:
				discarded[n.Call] = true
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj, method := atomicFieldCall(info, n, fields)
				if obj == nil {
					return true
				}
				switch method {
				case "Load":
					read[obj] = true
				case "Swap":
					mutated[obj] = true
					read[obj] = true
				case "Add":
					mutated[obj] = true
					if !discarded[n] {
						read[obj] = true
					}
				case "CompareAndSwap":
					mutated[obj] = true
				case "Store":
					if len(n.Args) == 1 && !isConstZero(info, n.Args[0]) {
						mutated[obj] = true
					}
				}
			case *ast.UnaryExpr:
				// &m.Counter escapes: assume both written and read.
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					if obj := info.Uses[sel.Sel]; obj != nil && fields[obj] != nil {
						mutated[obj] = true
						read[obj] = true
					}
				}
			}
			return true
		})
	}
	// Report in declaration order (file order within the pass).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			name, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			mf := fields[pass.Info.Defs[name]]
			if mf == nil || mf.decl != name {
				return true
			}
			obj := pass.Info.Defs[name]
			switch {
			case !mutated[obj]:
				pass.Reportf(name.Pos(),
					"metric %s.%s is declared but never incremented: dead gauge — wire it or delete it",
					mf.owner, mf.name)
			case !read[obj]:
				pass.Reportf(name.Pos(),
					"metric %s.%s is incremented but never surfaced: no Load reaches a summary, merge, or CLI line",
					mf.owner, mf.name)
			}
			return true
		})
	}
}

// isAtomicCounterField reports whether a struct-field type is one of the
// sync/atomic integer types.
func isAtomicCounterField(info *types.Info, t ast.Expr) bool {
	tv, ok := info.Types[t]
	if !ok || tv.Type == nil {
		return false
	}
	pkg, name := namedType(tv.Type)
	if pkg != "sync/atomic" {
		return false
	}
	switch name {
	case "Uint64", "Uint32", "Int64", "Int32":
		return true
	}
	return false
}

// atomicFieldCall matches `x.Field.Method(...)` where Field is one of the
// tracked metric fields, returning the field object and method name.
func atomicFieldCall(info *types.Info, call *ast.CallExpr, fields map[types.Object]*metricField) (types.Object, string) {
	msel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fsel, ok := msel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj := info.Uses[fsel.Sel]
	if obj == nil || fields[obj] == nil {
		return nil, ""
	}
	return obj, msel.Sel.Name
}

// isConstZero reports whether e is the constant 0 (a Reset, not a write).
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}
