package analysis

import (
	"go/ast"
)

// SleepBan enforces the no-wall-clock-waits invariant: time.Sleep is legal
// only inside internal/fault, where injected latency and straggler delay are
// the feature. Everywhere else a sleep is either a disguised
// synchronization bug (the condition it waits for should be a channel or
// WaitGroup), an uninterruptible stall on the cancellation path (the retry
// backoff must remain a timer+cancel select), or a hidden perturbation of
// the straggler-timing assumptions speculation and the failure detector are
// calibrated against. Test files are exempt (they are excluded from
// analysis entirely).
var SleepBan = &Analyzer{
	Name: "sleepban",
	Tier: 1,
	Doc: "time.Sleep is only legal inside internal/fault; sleeps elsewhere break " +
		"determinism, cancellation latency and straggler-timing assumptions",
	Run: runSleepBan,
}

func runSleepBan(pass *Pass) {
	if pathHasSegments(pass.Pkg.Path(), "internal", "fault") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass.Info, call, "time", "Sleep") {
				pass.Reportf(call.Pos(),
					"time.Sleep outside internal/fault: wait on a timer+cancel select (or a channel) so cancellation and determinism survive")
			}
			return true
		})
	}
}
