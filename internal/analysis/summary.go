package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Per-function summaries over the call graph. Two facts matter to the tier-2
// analyzers and both propagate through calls:
//
//   - blocks: the function can park on channel communication (a receive, a
//     send, a select without a default, a range over a channel) directly or
//     via a callee. sync.WaitGroup.Wait is deliberately not counted — a
//     fork/join barrier over workers the function itself spawned is not the
//     stranded-on-a-peer shape cancelpoll exists to catch, and counting it
//     would flag every recovery round's join.
//   - polls: the function observes cancellation directly or via a callee — it
//     calls a Canceled()-shaped predicate, or receives/selects on a channel
//     whose name says cancel/stop/done/quit/closed.
//
// Both are syntactic over-approximations refined to a fixpoint over the
// approximate call graph; cancelpoll combines them per loop.

// computeSummaries derives the direct facts per declared function, then
// propagates them over Callees until nothing changes. Cycles (recursion)
// converge because facts only ever flip false→true.
func (p *Program) computeSummaries() {
	p.polls = map[*types.Func]bool{}
	p.blocks = map[*types.Func]bool{}
	for fn, fd := range p.Decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				// A spawned goroutine blocks and polls on its own stack.
				return false
			}
			if pollsCancelNode(n) {
				p.polls[fn] = true
			}
			if blocksNode(n) {
				p.blocks[fn] = true
			}
			return !(p.polls[fn] && p.blocks[fn])
		})
	}
	for changed := true; changed; {
		changed = false
		for fn := range p.Decls {
			for _, c := range p.syncCallees[fn] {
				if p.polls[c] && !p.polls[fn] {
					p.polls[fn] = true
					changed = true
				}
				if p.blocks[c] && !p.blocks[fn] {
					p.blocks[fn] = true
					changed = true
				}
			}
		}
	}
}

// Polls reports whether fn (transitively) observes cancellation.
func (p *Program) Polls(fn *types.Func) bool { return p.polls[fn] }

// Blocks reports whether fn (transitively) can park on channel communication.
func (p *Program) Blocks(fn *types.Func) bool { return p.blocks[fn] }

// cancelNames are the substrings that make a channel identifier read as a
// cancellation signal.
var cancelNames = []string{"cancel", "stop", "done", "quit", "closed"}

// isCancelChan reports whether the source text of a channel expression names
// a cancellation signal (b.stopCh, r.closed, ctx.Done(), ...).
func isCancelChan(e ast.Expr) bool {
	text := strings.ToLower(types.ExprString(e))
	for _, n := range cancelNames {
		if strings.Contains(text, n) {
			return true
		}
	}
	return false
}

// pollsCancelNode reports whether n directly observes cancellation: a call of
// a Canceled-shaped predicate (core.Config.Canceled and wrappers), a receive
// from a cancel-named channel, or a select with a cancel-named receive case.
func pollsCancelNode(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		name := calledName(n)
		return name == "Canceled" || name == "canceled" || strings.HasSuffix(name, "Canceled")
	case *ast.UnaryExpr:
		return n.Op == token.ARROW && isCancelChan(n.X)
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if recv := commRecvExpr(cc.Comm); recv != nil && isCancelChan(recv) {
				return true
			}
		}
	}
	return false
}

// blocksNode reports whether n is a directly-blocking channel operation.
// Ranges over channels (rare in this tree) are re-checked with type info by
// cancelpoll itself; the summary walk spans many packages and stays
// syntactic.
func blocksNode(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.SendStmt:
		return true
	case *ast.SelectStmt:
		return !selectHasDefault(n)
	}
	return false
}

// calledName returns the bare name of the called function or method,
// whatever the callee resolves to — including calls of func-typed fields
// like e.cfg.Canceled().
func calledName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// commRecvExpr extracts the channel expression of a select case's receive
// statement, or nil when the case is a send.
func commRecvExpr(s ast.Stmt) ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}
