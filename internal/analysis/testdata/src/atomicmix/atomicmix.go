// Package atomicmix is the atomicmix fixture: a field accessed through
// sync/atomic anywhere — a typed atomic value or an &field handed to the
// atomic package — must be accessed atomically everywhere. Plain reads and
// writes of disciplined fields are flagged wherever they sit relative to
// the atomic witness; construction, len/cap and plain-only fields are the
// legal near misses.
package atomicmix

import "sync/atomic"

// Stats mixes one typed atomic field, one old-style atomic field, and one
// plain-only field that atomicmix must leave alone.
type Stats struct {
	ops  atomic.Int64
	hits int64
	errs int64
}

func (s *Stats) Record() {
	s.ops.Add(1)
	atomic.AddInt64(&s.hits, 1)
	s.errs++
}

func (s *Stats) Snapshot() (int64, int64) {
	return s.ops.Load(), atomic.LoadInt64(&s.hits)
}

// Racy reads the old-style field without the atomic package; this access
// sits lexically after the witness, RacyEarly's sits before it — both are
// found (discipline is established program-wide, not lexically).
func (s *Stats) Racy() int64 {
	return s.hits // want "accessed through sync/atomic .* but this read is plain"
}

// AboveWitness reads hits in a function that sorts before Record: order
// must not matter.
func (s *Stats) AboveWitness() bool {
	return s.hits > 0 // want "accessed through sync/atomic .* but this read is plain"
}

// RacyWrite assigns a typed atomic field as a value: a plain write.
func (s *Stats) RacyWrite(o *Stats) {
	o.ops = s.ops // want "sync/atomic value but this (read|write) is plain"
}

// Loader hands out a bound method value: the closure goes through the
// atomic API when invoked, so this is an atomic access, not a plain read.
func (s *Stats) Loader() func() int64 {
	return s.ops.Load
}

// ParenLoad parenthesizes the receiver: still an atomic access, not a
// plain read through the default branch.
func (s *Stats) ParenLoad() int64 {
	return (s.ops).Load()
}

// Errs may use plain access freely: no atomic site anywhere touches errs.
func (s *Stats) Errs() int64 {
	s.errs--
	return s.errs
}

// New initializes through a constructor-local value: pre-escape, exempt.
func New() *Stats {
	s := &Stats{}
	s.hits = 1
	s.ops.Store(1)
	return s
}

// Shards carries a slice of atomic values: element method calls are atomic,
// len/cap and index-only ranges touch just the header, but value-ranges and
// element copies are plain element accesses.
type Shards struct {
	counts []atomic.Uint64
}

func NewShards(n int) *Shards {
	return &Shards{counts: make([]atomic.Uint64, n)}
}

func (h *Shards) Bump(i int) {
	h.counts[i%len(h.counts)].Add(1)
}

func (h *Shards) Total() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// ParenBump parenthesizes both the slice and the indexed element: both
// layers are transparent and the element method call is atomic.
func (h *Shards) ParenBump(i int) {
	((h.counts)[i%len(h.counts)]).Add(1)
}

// Copy ranges with a value, copying every element non-atomically.
func (h *Shards) Copy() []uint64 {
	out := make([]uint64, 0, cap(h.counts))
	for _, c := range h.counts { // want "sync/atomic value but this read is plain"
		out = append(out, c.Load())
	}
	return out
}

// First lifts one element out as a value: a plain element read.
func (h *Shards) First() atomic.Uint64 {
	return h.counts[0] // want "sync/atomic value but this read is plain"
}
