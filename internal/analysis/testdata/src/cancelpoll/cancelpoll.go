// Package cancelpoll is the cancelpoll fixture: loops reachable from a
// //khuzdulvet:longrun root that block on channels without observing
// cancellation must be flagged; polled selects, Canceled()-style predicates
// (direct or via a callee), compute-only loops and spawned goroutines are
// the legal near misses.
package cancelpoll

// RunBare blocks on work forever with no way out.
//
//khuzdulvet:longrun fixture root
func RunBare(work chan int) {
	for { // want "blocks on channel communication but never polls"
		v := <-work
		_ = v
	}
}

// RunPolled selects on the stop channel alongside work: cancellable.
//
//khuzdulvet:longrun fixture root
func RunPolled(work chan int, stop chan struct{}) {
	for {
		select {
		case v := <-work:
			_ = v
		case <-stop:
			return
		}
	}
}

// RunPredicate polls a Canceled-shaped predicate each iteration.
//
//khuzdulvet:longrun fixture root
func RunPredicate(work chan int, canceled func() bool) {
	for {
		if canceled() {
			return
		}
		v := <-work
		_ = v
	}
}

// RunIndirect reaches a blocking loop through a callee.
//
//khuzdulvet:longrun fixture root
func RunIndirect(work chan int) {
	drain(work)
}

// drain is unmarked but reachable from RunIndirect.
func drain(work chan int) {
	for { // want "blocks on channel communication but never polls"
		<-work
	}
}

// RunHelperPoll polls through a callee: waitStop observes the stop channel.
//
//khuzdulvet:longrun fixture root
func RunHelperPoll(work chan int, stop chan struct{}) {
	for {
		if waitStop(stop) {
			return
		}
		<-work
	}
}

func waitStop(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// RunRange ranges over a channel, which is itself a blocking receive.
//
//khuzdulvet:longrun fixture root
func RunRange(work chan int) {
	total := 0
	for v := range work { // want "ranges over a channel but never polls"
		total += v
	}
	_ = total
}

// RunCompute never touches a channel: compute loops need no polling.
//
//khuzdulvet:longrun fixture root
func RunCompute(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

// RunNested blocks only in the inner loop: the finding lands there, not on
// the outer loop.
//
//khuzdulvet:longrun fixture root
func RunNested(batches [][]chan int) {
	for _, bs := range batches {
		for _, b := range bs { // want "blocks on channel communication but never polls"
			<-b
		}
	}
}

// RunSpawner only spawns goroutines; the loop itself never parks.
//
//khuzdulvet:longrun fixture root
func RunSpawner(work chan int, n int) {
	for i := 0; i < n; i++ {
		go func() { <-work }()
	}
}

// coldDrain blocks but is unreachable from any longrun root: no finding.
func coldDrain(work chan int) {
	for {
		<-work
	}
}
