// Package app sits outside the comm and cluster boundary, so errclass must
// not fire here even on errors it would flag inside the boundary.
package app

import "fmt"

// Describe formats without a wrap verb, which is fine outside the boundary.
func Describe(n int) error {
	return fmt.Errorf("app: n is %d", n)
}
