// Package comm is the errclass fixture: unclassifiable errors at the comm
// boundary must be flagged; wrapped sentinels are the legal near miss.
package comm

import (
	"errors"
	"fmt"
)

// ErrUnknownNode is a classifiable sentinel; minting it at package level is
// legal.
var ErrUnknownNode = errors.New("comm: unknown node")

// FetchWrapped wraps the sentinel, keeping errors.Is routing intact.
func FetchWrapped(node int) error {
	return fmt.Errorf("comm: fetch to node %d: %w", node, ErrUnknownNode)
}

// FetchLossy drops the error class by formatting without a wrap verb.
func FetchLossy(node int) error {
	return fmt.Errorf("comm: fetch to unknown node %d", node) // want "without %w"
}

// PingBare mints an unclassifiable error at the return site.
func PingBare() error {
	return errors.New("comm: ping failed") // want "bare errors.New"
}

// probe builds an error a caller never routes on; assignment outside a
// return is legal, and the wrapped return keeps the chain.
func probe() error {
	err := errors.New("comm: probe scratch")
	return fmt.Errorf("comm: probe: %w", err)
}

var _ = probe
