// Package framecase is the framecase fixture: a switch dispatching on the
// declared frame-type constants must cover every declared value or classify
// the unexpected frame in its default; exhaustive switches, classifying
// defaults, single-constant switches, and value-colliding enums are the
// legal near misses.
package framecase

import "errors"

const (
	frameHello = 0x01
	frameData  = 0x02
	frameAck   = 0x03
	frameError = 0x04

	// frameTypeMax aliases the highest value: collapsed by value, it never
	// demands a case of its own.
	frameTypeMax = frameError

	// frameHeaderSize is dimensional, not a frame type: excluded from the
	// declared set, so the exhaustive switch below stays exhaustive.
	frameHeaderSize = 12
)

var ErrCorruptFrame = errors.New("corrupt frame")

// dispatchExhaustive covers every declared type: no default needed.
func dispatchExhaustive(t byte) int {
	switch t {
	case frameHello:
		return 1
	case frameData:
		return 2
	case frameAck:
		return 3
	case frameError:
		return 4
	}
	return 0
}

// dispatchClassified misses frameAck but classifies the stranger: clean.
func dispatchClassified(t byte) error {
	switch t {
	case frameHello, frameData, frameError:
		return nil
	default:
		return ErrCorruptFrame
	}
}

// dispatchNoDefault misses frameAck with no default: a new frame type walks
// straight through.
func dispatchNoDefault(t byte) int {
	switch t { // want "covers 3 of 4 declared types .missing frameAck. and has no default"
	case frameHello:
		return 1
	case frameData:
		return 2
	case frameError:
		return 3
	}
	return 0
}

// dispatchSilentDefault drops the unexpected frame on the floor.
func dispatchSilentDefault(t byte) int {
	switch t {
	case frameHello:
		return 1
	case frameData:
		return 2
	default: // want "default discards an unexpected frame type silently"
		return 0
	}
}

type queryKind int

const (
	kindCount queryKind = 1
	kindList  queryKind = 2
	kindTop   queryKind = 3
)

// kindSwitch shares small values with the frame constants, but object
// identity keeps it out of frame dispatch: no finding despite covering only
// three of its own enum.
func kindSwitch(k queryKind) int {
	switch k {
	case kindCount:
		return 1
	case kindList:
		return 2
	case kindTop:
		return 3
	}
	return 0
}

// oneCase names a single frame constant: a guard, not a dispatch.
func oneCase(t byte) bool {
	switch t {
	case frameHello:
		return true
	}
	return false
}
