// Package core is the goroutinejoin fixture: every goroutine must show a
// visible join — a WaitGroup pairing or a done-channel, possibly through a
// same-package callee.
package core

import "sync"

// LeakyRun spawns a worker nothing can wait for.
func LeakyRun() {
	go func() { // want "no visible join"
		_ = compute(1)
	}()
}

// LeakyNamed spawns a named function with no join evidence.
func LeakyNamed() {
	go drift() // want "no visible join"
}

func drift() {
	_ = compute(2)
}

// JoinedByWaitGroup pairs the spawn with Add/Done.
func JoinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = compute(3)
	}()
	wg.Wait()
}

// JoinedByChannel sends completion on a channel the caller drains.
func JoinedByChannel() int {
	ch := make(chan int)
	go func() {
		ch <- compute(4)
	}()
	return <-ch
}

// JoinedThroughCallee closes the done channel two calls deep, exercising the
// bounded same-package call following.
func JoinedThroughCallee() {
	done := make(chan struct{})
	go produce(done)
	<-done
}

func produce(done chan struct{}) {
	_ = compute(5)
	finish(done)
}

func finish(done chan struct{}) {
	close(done)
}

func compute(n int) int { return n * n }
