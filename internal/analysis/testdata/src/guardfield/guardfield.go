// Package guardfield is the guardfield fixture: a field accessed under one
// consistent mutex at >=80% of at least four sites is presumed guarded, and
// every remaining lock-free access is flagged. The legal near misses:
// constructor-local initialization, fields below the access minimum, fields
// below the consistency threshold, helpers that inherit the lock from every
// call site, and annotated intentional lock-free reads.
package guardfield

import "sync"

// Counter.hits is guarded: three direct locked accesses plus one through a
// helper that is only ever called under the lock, against one stray read.
type Counter struct {
	mu   sync.Mutex
	hits int
	cold int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = 0
	c.bump()
}

// bump holds no lock itself, but its only call site does: the entry-held
// intersection makes this access count as guarded.
func (c *Counter) bump() {
	c.hits++
}

// Peek is the stray: 4/5 accesses hold mu, this one does not.
func (c *Counter) Peek() int {
	return c.hits // want "guarded by guardfield.Counter.mu at 4/5 accesses"
}

// NewCounter initializes through a constructor-local value: pre-escape, no
// lock needed, excluded from the inference (counting it would dilute hits
// below the threshold and kill the Peek finding above).
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 1
	return c
}

// cold is touched under the lock only half the time: below the 80%
// consistency threshold, so no guard is inferred and nothing is reported.
func (c *Counter) TouchA() {
	c.mu.Lock()
	c.cold++
	c.mu.Unlock()
}

func (c *Counter) TouchB() {
	c.cold++
}

func (c *Counter) TouchC() {
	c.cold--
}

func (c *Counter) TouchD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cold = 0
}

// Queue.items mixes direct locked accesses with a goroutine body (which
// inherits nothing from its spawner) and an annotated intentional racy read.
type Queue struct {
	mu    sync.Mutex
	items []int
}

func (q *Queue) Push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *Queue) Drain() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}

func (q *Queue) Clear() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = nil
}

func (q *Queue) Swap(next []int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	old := q.items
	q.items = next
	return old
}

// Watch reads items from a spawned goroutine: the spawner's locks do not
// travel to the new stack, so this access is lock-free and flagged.
func (q *Queue) Watch(report func(int)) {
	go func() {
		report(len(q.items)) // want "guarded by guardfield.Queue.mu at 8/10 accesses"
	}()
}

// StatsLen is racy by design and says so: the directive suppresses the
// finding (and counts as used, not stale).
func (q *Queue) StatsLen() int {
	//khuzdulvet:ignore guardfield monitoring sample; a stale length is acceptable
	return len(q.items)
}

// Gauge.flush has two call sites, only one under the lock: the entry-held
// intersection is empty, so its access is lock-free and flagged.
type Gauge struct {
	mu sync.Mutex
	v  int
}

func (g *Gauge) Set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

func (g *Gauge) Add(x int) {
	g.mu.Lock()
	g.v += x
	g.mu.Unlock()
}

func (g *Gauge) Dec() {
	g.mu.Lock()
	g.v--
	g.mu.Unlock()
}

func (g *Gauge) Get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) flush() {
	g.v = 0 // want "guarded by guardfield.Gauge.mu at 4/5 accesses"
}

func (g *Gauge) Locked() {
	g.mu.Lock()
	g.flush()
	g.mu.Unlock()
}

func (g *Gauge) Unlocked() {
	g.flush()
}

// Ledger exercises the early-return idiom: an Unlock inside a terminating
// if arm must not strip the lock from the straight-line path. All five
// accesses to m are locked — if the branch handling were linear, Put's
// access would read as lock-free (4/5 = the threshold exactly) and produce
// a false finding on its line.
type Ledger struct {
	mu     sync.Mutex
	m      map[string]int
	closed bool
}

func (l *Ledger) Put(k string, v int) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.m[k] = v
	l.mu.Unlock()
	return true
}

func (l *Ledger) Get(k string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[k]
}

func (l *Ledger) Del(k string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.m, k)
}

func (l *Ledger) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Leak re-reads the guarded field after releasing the lock on the
// early-return arm — the capture-miss idiom (`return nil, m.failed` after
// Unlock) that branch sensitivity exists to catch rather than mask.
func (l *Ledger) Leak(k string) int {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.m[k] // want "guarded by guardfield.Ledger.mu at 5/6 accesses"
	}
	l.mu.Unlock()
	return 0
}

func (l *Ledger) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, 4)
	for k := range l.m {
		out = append(out, k)
	}
	return out
}

// Tiny.n has only three recorded accesses: below guardMinAccesses, no
// inference, no findings.
type Tiny struct {
	mu sync.Mutex
	n  int
}

func (t *Tiny) A() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

func (t *Tiny) B() {
	t.mu.Lock()
	t.n--
	t.mu.Unlock()
}

func (t *Tiny) C() int {
	return t.n
}
