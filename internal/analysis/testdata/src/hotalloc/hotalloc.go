// Package hotalloc is the hotalloc fixture: allocation shapes in functions
// reachable from a //khuzdulvet:hotpath root must be flagged; the same
// shapes in cold functions, and the allocation-free idioms (caller-owned
// dst, pointer receivers into interfaces), are the legal near misses.
package hotalloc

import "fmt"

type pair struct{ a, b uint64 }

type table struct{ data []uint64 }

func (t *table) lookup(i int) uint64 { return t.data[i] }

// kernel is an interface dispatched on the hot path; implementations are
// reached through the over-approximated call graph.
type kernel interface {
	Do(n int) []uint64
}

type badKernel struct{}

func (badKernel) Do(n int) []uint64 {
	return make([]uint64, n) // want "make on the hot path"
}

// Hot is the fixture's hot-path root.
//
//khuzdulvet:hotpath fixture root
func Hot(dst, a, b []uint64, t *table, k kernel, use func(func(int) uint64) uint64) []uint64 {
	out := make([]uint64, len(a)) // want "make on the hot path"
	_ = out
	p := new(pair) // want "new on the hot path"
	_ = p
	var grown []uint64
	grown = append(grown, a...)        // want "append to an empty slice"
	tmp := append([]uint64(nil), b...) // want "append to an empty slice"
	_ = tmp
	lits := []uint64{1, 2} // want "slice literal on the hot path"
	_ = lits
	seen := map[uint64]bool{} // want "map literal on the hot path"
	_ = seen
	q := &pair{a: 1} // want "composite literal on the hot path escapes"
	_ = q
	_ = fmt.Sprintf("%d", len(a)) // want "call to fmt.Sprintf on the hot path"
	_ = merge(nil, a, b)          // want "nil dst argument of merge forces the callee"
	box(len(a))                   // want "boxes a int into an interface of box"
	box(t)                        // pointers fit the interface word: no boxing
	_ = use(t.lookup)             // want "bound method value t.lookup allocates a closure"
	_ = k.Do(len(a))              // finding is inside the implementation
	grown = helper(grown)
	return merge(dst, grown, b)
}

// helper has no directive but is reachable from Hot, so it is hot too.
func helper(dst []uint64) []uint64 {
	extra := new(pair) // want "new on the hot path"
	_ = extra
	return dst
}

// merge appends into caller-owned dst: the allocation-free idiom.
func merge(dst, a, b []uint64) []uint64 {
	dst = append(dst, a...)
	return append(dst, b...)
}

func box(v interface{}) {}

// Cold repeats every flagged shape outside the hot set: no findings.
func Cold(a []uint64) []uint64 {
	out := make([]uint64, len(a))
	var grown []uint64
	grown = append(grown, a...)
	_ = grown
	_ = fmt.Sprintf("%d", len(a))
	_ = merge(nil, a, a)
	return out
}
