// Package kernels is marked hot wholesale via a package-clause directive,
// the way internal/setops is: every function in it is a hot-path root.
//
//khuzdulvet:hotpath fixture package-level root
package kernels

// Shrink allocates an intermediate instead of reusing dst.
func Shrink(dst, a []uint64) []uint64 {
	tmp := make([]uint64, 0, len(a)) // want "make on the hot path"
	for _, x := range a {
		if x%2 == 0 {
			tmp = append(tmp, x)
		}
	}
	return append(dst, tmp...)
}

// Grow appends into caller-owned dst: clean.
func Grow(dst, a []uint64) []uint64 {
	return append(dst, a...)
}
