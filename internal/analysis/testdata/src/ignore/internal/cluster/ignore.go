// Package cluster exercises the khuzdulvet ignore directive: a well-formed
// directive suppresses the finding on its line or the line below, a
// malformed directive is a finding itself, and an uncovered violation still
// fires.
package cluster

import "time"

// SettleSuppressed documents why its sleep is exempt.
func SettleSuppressed() {
	//khuzdulvet:ignore sleepban fixture exercising a documented suppression
	time.Sleep(time.Millisecond)
}

// SettleSuppressedInline carries the directive on the offending line.
func SettleSuppressedInline() {
	time.Sleep(time.Millisecond) //khuzdulvet:ignore sleepban same-line suppression form
}

// SettleMalformed names no reason, so the directive itself is a finding and
// the sleep still fires.
func SettleMalformed() {
	//khuzdulvet:ignore sleepban
	time.Sleep(time.Millisecond)
}

// SettleBare has no directive at all.
func SettleBare() {
	time.Sleep(time.Millisecond)
}
