// Package lockorder is the lockorder fixture: two goroutines acquiring the
// same pair of mutexes in opposite orders — directly or through a callee —
// must be flagged as a potential deadlock; consistent ordering,
// release-before-reacquire, and goroutine-spawned acquisitions are the legal
// near misses.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// lockAB orders A before B. The cycle finding lands on this edge because it
// is first in sorted-key order.
func lockAB() {
	a.mu.Lock()
	b.mu.Lock() // want "potential deadlock: lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA orders B before A: together with lockAB this closes the cycle.
func lockBA() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var c C
var d D

// lockCthenCallD holds C.mu across a call that acquires D.mu: the edge is
// call-mediated, discovered through the transitive acquisition sets.
func lockCthenCallD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	dWork() // want "potential deadlock: lock-order cycle"
}

func dWork() {
	d.mu.Lock()
	d.mu.Unlock()
}

// lockDthenCallC closes the interprocedural cycle in the other direction.
func lockDthenCallC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	cWork()
}

func cWork() {
	c.mu.Lock()
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var e E
var f F

// lockEF and lockEFAgain agree on E before F: consistent order, no cycle.
func lockEF() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func lockEFAgain() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// unlockFirst releases F before taking E: no F-before-E edge exists, so the
// E→F order above stays acyclic.
func unlockFirst() {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// spawnUnderF holds F while spawning a goroutine that locks E. The goroutine
// acquires on its own stack, so this must NOT create an F→E edge (which
// would falsely close a cycle with lockEF's E→F).
func spawnUnderF() {
	f.mu.Lock()
	go func() {
		e.mu.Lock()
		e.mu.Unlock()
	}()
	f.mu.Unlock()
}

// spawnNamedUnderF spawns a named function the same way: the callee's
// acquisitions stay off the spawner's held set too.
func spawnNamedUnderF() {
	f.mu.Lock()
	go lockEJust()
	f.mu.Unlock()
}

func lockEJust() {
	e.mu.Lock()
	e.mu.Unlock()
}

// handOverHand locks two different instances of the same type in sequence:
// instance-insensitive keys collapse them, and the self-edge is dropped
// rather than reported.
func handOverHand(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
