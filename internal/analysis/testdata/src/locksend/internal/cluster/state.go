// Package cluster is the locksend fixture: blocking fabric or channel
// operations while a mutex is held must be flagged; copy-then-release and
// non-blocking selects are the legal near misses.
package cluster

import (
	"sync"

	"locksend/internal/comm"
)

// State guards shared bookkeeping with a mutex.
type State struct {
	mu     sync.Mutex
	fabric comm.Fabric
	events chan int
	seq    int
}

// FetchUnderLock holds mu across a blocking fabric call.
func (s *State) FetchUnderLock(ids []uint64) ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fabric.Fetch(0, 1, ids) // want "fabric Fetch while"
}

// SendUnderLock performs a channel send while holding mu.
func (s *State) SendUnderLock(v int) {
	s.mu.Lock()
	s.events <- v // want "channel send while"
	s.mu.Unlock()
}

// ReceiveUnderLock blocks on a receive while holding mu.
func (s *State) ReceiveUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.events // want "blocking channel receive while"
}

// SelectUnderLock waits on communication with no default while holding mu.
func (s *State) SelectUnderLock(stop <-chan struct{}) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while"
	case v := <-s.events:
		return v
	case <-stop:
		return 0
	}
}

// DrainUnderLock ranges over a channel while holding mu.
func (s *State) DrainUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range s.events { // want "range over channel"
		total += v
	}
	return total
}

// SnapshotThenSend copies under the lock and sends after releasing it.
func (s *State) SnapshotThenSend() {
	s.mu.Lock()
	v := s.seq
	s.mu.Unlock()
	s.events <- v
}

// PollUnderLock uses a default clause, so the select cannot block.
func (s *State) PollUnderLock() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.events:
		return v, true
	default:
		return 0, false
	}
}

// SpawnUnderLock hands the send to a goroutine, which runs in its own
// context and does not hold the spawner's lock.
func (s *State) SpawnUnderLock(done chan<- int) {
	s.mu.Lock()
	s.seq++
	v := s.seq
	s.mu.Unlock()
	go func() { done <- v }()
}

// WalkUnderLock ranges over a slice, not a channel, which never blocks.
func (s *State) WalkUnderLock(vs []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
