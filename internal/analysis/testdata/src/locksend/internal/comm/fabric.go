// Package comm is the fabric stand-in for the locksend fixture; its method
// set mirrors the blocking fabric surface.
package comm

// Fabric carries simulated cross-node traffic.
type Fabric struct{}

// Fetch blocks until the remote responds.
func (Fabric) Fetch(from, to int, ids []uint64) ([]uint64, error) { return ids, nil }

// Send pushes a payload to a peer.
func (Fabric) Send(to int, payload []byte) error { return nil }

// Ping probes a peer.
func (Fabric) Ping(to int) error { return nil }
