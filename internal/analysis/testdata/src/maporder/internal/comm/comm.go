// Package comm is the wire boundary of the maporder fixture: any call into
// it from a map-range body is an order-sensitive sink.
package comm

// Fabric stands in for the real fetch transport.
type Fabric struct{}

// Fetch requests edge lists from a peer.
func (Fabric) Fetch(owner int, ids []uint64) [][]uint64 { return nil }

// Encode is a codec entry point.
func Encode(ids []uint64) []byte { return nil }
