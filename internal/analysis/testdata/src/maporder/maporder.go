// Package maporder is the maporder fixture: map iteration order flowing
// into wire traffic, channel sends, writes or unsorted collected slices must
// be flagged; collect-then-sort and commutative accumulation are the legal
// near misses.
package maporder

import (
	"fmt"
	"io"
	"sort"

	"maporder/internal/comm"
)

// FetchAll issues per-owner fetches straight out of a map range: the peer
// sees a different request order every run.
func FetchAll(f comm.Fabric, byOwner map[int][]uint64) {
	for owner, vs := range byOwner { // want "drives comm.Fetch: wire traffic ordering"
		f.Fetch(owner, vs)
	}
}

// EncodeAll drives a codec from a map range.
func EncodeAll(lists map[int][]uint64) [][]byte {
	out := make([][]byte, 0, len(lists))
	for _, vs := range lists { // want "drives comm.Encode"
		out = append(out, comm.Encode(vs))
	}
	return out
}

// SendKeys leaks map order through a channel.
func SendKeys(m map[int]bool, ch chan int) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

// CollectUnsorted accumulates keys and never sorts them.
func CollectUnsorted(m map[int]bool) []int {
	var out []int
	for k := range m { // want "never sorted"
		out = append(out, k)
	}
	return out
}

// CollectSorted is the canonical deterministic idiom: collect, then sort.
func CollectSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// WriteKeys prints straight from a map range.
func WriteKeys(m map[int]bool, w io.Writer) {
	for k := range m { // want "flows into fmt.Fprintf"
		fmt.Fprintf(w, "%d\n", k)
	}
}

// CountValues accumulates commutatively: order cannot be observed.
func CountValues(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// CopyMap rebuilds a map from a map: insertion order is invisible.
func CopyMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// AppendLocal appends to a slice scoped inside the loop body: each
// iteration starts fresh, so no cross-iteration order leaks.
func AppendLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}
