// Package app increments and reads the fixture metrics from outside the
// metrics package: liveness is whole-program, not per-package.
package app

import "metriclive/metrics"

// Account writes the live counters.
func Account(t *metrics.Transport, n int) {
	t.BytesIn.Add(uint64(n))
	t.Frames.Add(1)
}

// RecordPeak mutates through CompareAndSwap and reads through Load: both
// directions covered for Peak.
func RecordPeak(t *metrics.Transport, v int64) {
	for {
		cur := t.Peak.Load()
		if v <= cur || t.Peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// EscapeResets takes the counter's address: the analysis loses track there
// and conservatively treats Resets as both written and read.
func EscapeResets(t *metrics.Transport) {
	r := &t.Resets
	r.Add(1)
}
