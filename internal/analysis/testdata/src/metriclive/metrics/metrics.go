// Package metrics is the metriclive fixture's metrics package: every atomic
// counter declared here must be written somewhere in the program and read
// somewhere; the dead gauge and the write-only counter are flagged at their
// declarations, while the reset-only Store(0) proves neither.
package metrics

import "sync/atomic"

// Transport counts wire traffic for the fixture.
type Transport struct {
	BytesIn  atomic.Uint64
	BytesOut atomic.Uint64 // want "declared but never incremented"
	Frames   atomic.Uint64 // want "incremented but never surfaced"
	Peak     atomic.Int64
	Resets   atomic.Uint32

	// Label is not an atomic integer: outside the analysis.
	Label string
}

// Summary surfaces BytesIn.
func (t *Transport) Summary() uint64 {
	return t.BytesIn.Load()
}

// Reset stores zero everywhere: a reset is not a write, so it keeps neither
// BytesOut nor Frames alive.
func (t *Transport) Reset() {
	t.BytesIn.Store(0)
	t.BytesOut.Store(0)
	t.Frames.Store(0)
}
