// Package cluster is the sleepban fixture: wall-clock sleeps outside
// internal/fault must be flagged; timer-based waits are the legal near miss.
package cluster

import "time"

// Settle waits with a bare sleep, which defeats cancellation.
func Settle() {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep outside internal/fault"
}

// WaitOrCancel waits on a timer select the cancel channel can cut short.
func WaitOrCancel(cancel <-chan struct{}) bool {
	t := time.NewTimer(10 * time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
