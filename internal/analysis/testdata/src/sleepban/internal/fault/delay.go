// Package fault injects latency; sleeping here is the feature, so sleepban
// must stay silent.
package fault

import "time"

// Delay injects wall-clock latency into a simulated link.
func Delay(d time.Duration) {
	time.Sleep(d)
}
