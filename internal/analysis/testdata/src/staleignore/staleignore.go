// Package staleignore exercises the stale-ignore audit: a directive still
// excusing a live finding stays silent, one whose finding has since been
// fixed is itself reported so escape hatches cannot rot.
package staleignore

import "time"

// LiveSuppression still contains the sleep its directive excuses.
func LiveSuppression() {
	//khuzdulvet:ignore sleepban fixture: a used suppression is not stale
	time.Sleep(time.Millisecond)
}

// FixedSuppression lost the sleep its directive once excused; the directive
// is now stale and must be reported.
func FixedSuppression() {
	//khuzdulvet:ignore sleepban fixture: the excused sleep was removed
}
