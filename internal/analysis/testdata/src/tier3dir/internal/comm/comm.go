// Package comm is the tier-3 directive matrix fixture: hotpath/longrun roots
// must not gate (or suppress) the tier-3 analyzers, a live ignore directive
// must suppress exactly its finding, and stale ignores naming the tier-3
// analyzers must be audited.
package comm

import (
	"encoding/binary"
	"sync"
)

const (
	frameHello = 0x01
	frameData  = 0x02
	frameAck   = 0x03
)

type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

var p P
var q Q

// lockPQ and lockQP close a cycle between two hotpath roots: lockorder runs
// everywhere, so the directives change nothing.
//
//khuzdulvet:hotpath tier3 matrix root
func lockPQ() {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

//khuzdulvet:hotpath tier3 matrix root
func lockQP() {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

// dispatch is a longrun root with a non-exhaustive frame switch: framecase
// fires inside root-marked functions just the same.
//
//khuzdulvet:longrun tier3 matrix root
func dispatch(t byte) int {
	switch t {
	case frameHello:
		return 1
	case frameData:
		return 2
	}
	return 0
}

// decodeSuppressed carries a live wirebound suppression: the finding is
// silenced and the directive is not stale.
func decodeSuppressed(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	//khuzdulvet:ignore wirebound tier3 matrix: suppressed on purpose
	return make([]byte, n)
}

// fixedAll holds one stale ignore per comm-side tier-3 analyzer: the excused
// findings no longer exist, so each directive is reported.
func fixedAll() {
	//khuzdulvet:ignore wirebound tier3 matrix: the decode was removed
	//khuzdulvet:ignore lockorder tier3 matrix: the cycle was fixed
	//khuzdulvet:ignore framecase tier3 matrix: the switch went exhaustive
	_ = 0
}
