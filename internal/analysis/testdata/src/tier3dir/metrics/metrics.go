// Package metrics is the metrics half of the tier-3 directive matrix: one
// dead gauge for metriclive plus one stale metriclive ignore.
package metrics

import "sync/atomic"

// Stats has one counter nothing ever writes.
type Stats struct {
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// Summarize reads both counters.
func (s *Stats) Summarize() uint64 {
	return s.Hits.Load() + s.Misses.Load()
}

// Touch writes only Misses: Hits stays a dead gauge.
func (s *Stats) Touch() {
	s.Misses.Add(1)
}

// fixed carries a stale metriclive ignore: the counter it excused was wired
// up long ago.
func fixed() {
	//khuzdulvet:ignore metriclive tier3 matrix: the counter was wired up
	_ = 0
}
