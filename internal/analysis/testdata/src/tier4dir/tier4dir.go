// Package tier4dir is the tier-4 directive matrix fixture: hotpath/longrun
// roots must not gate (or suppress) the tier-4 analyzers, a live ignore
// directive must suppress exactly its finding, and stale ignores naming the
// tier-4 analyzers must be audited.
package tier4dir

import (
	"sync"
	"sync/atomic"
	"time"
)

// reg.n is guarded at four locked sites; the stray read sits inside a
// hotpath root, where guardfield fires just the same.
type reg struct {
	mu sync.Mutex
	n  int
}

var r reg

func lockInc() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

func lockDec() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n--
}

func lockReset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = 0
}

func lockGet() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// hotPeek is a hotpath root with a lock-free read of the guarded field:
// guardfield runs everywhere, so the directive changes nothing.
//
//khuzdulvet:hotpath tier4 matrix root
func hotPeek() int {
	return r.n
}

// pump is a longrun root that leaks its ticker on the stop path: timerstop
// fires inside root-marked functions just the same.
//
//khuzdulvet:longrun tier4 matrix root
func pump(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	for {
		select {
		case <-t.C:
			lockInc()
		case <-stop:
			return
		}
	}
}

// gauge.v is disciplined by the atomic witness in bump.
type gauge struct {
	v int64
}

func bump(g *gauge) {
	atomic.AddInt64(&g.v, 1)
}

// readSuppressed carries a live atomicmix suppression: the finding is
// silenced and the directive is not stale.
func readSuppressed(g *gauge) int64 {
	//khuzdulvet:ignore atomicmix tier4 matrix: suppressed on purpose
	return g.v
}

// fixedAll holds one stale ignore per tier-4 analyzer: the excused findings
// no longer exist, so each directive is reported.
func fixedAll() {
	//khuzdulvet:ignore guardfield tier4 matrix: the access was locked
	//khuzdulvet:ignore atomicmix tier4 matrix: the field went fully atomic
	//khuzdulvet:ignore timerstop tier4 matrix: the ticker is stopped now
	_ = 0
}
