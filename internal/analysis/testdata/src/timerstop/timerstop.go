// Package timerstop is the timerstop fixture: every time.NewTicker,
// NewTimer and AfterFunc result must be stopped on every exit path. The
// analyzer is defer-aware, treats a received timer (not ticker) channel as
// fired, follows timers through returning functions to their callers, and
// accepts struct-field stores only when some code in the program stops the
// field. Clean counter-examples exercise each of those paths.
package timerstop

import "time"

// tickClean defers Stop immediately: every exit is covered.
func tickClean(d time.Duration, work func()) {
	t := time.NewTicker(d)
	defer t.Stop()
	for range t.C {
		work()
	}
}

// tickLeakOnBranch stops only on the slow path; the early return leaks.
func tickLeakOnBranch(d time.Duration, fast bool) {
	t := time.NewTicker(d) // want "not stopped on every exit path"
	if fast {
		return
	}
	t.Stop()
}

// timerSelect is clean: one arm receives from C (the timer fired, no Stop
// owed), the other stops it explicitly.
func timerSelect(d time.Duration, done chan struct{}) {
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-done:
		t.Stop()
	}
}

// tickSelect looks identical but holds a ticker: receiving a tick does not
// stop a ticker, so the C arm leaks.
func tickSelect(d time.Duration, done chan struct{}) {
	t := time.NewTicker(d) // want "not stopped on every exit path"
	select {
	case <-t.C:
	case <-done:
		t.Stop()
	}
}

// stopAfterLoop is clean: the loop only receives ticks, Stop follows.
func stopAfterLoop(d time.Duration, n int) {
	t := time.NewTicker(d)
	for i := 0; i < n; i++ {
		<-t.C
	}
	t.Stop()
}

// resetLoop is clean: Reset is neutral and the deferred Stop covers every
// exit of the infinite loop.
func resetLoop(d time.Duration, done chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			t.Reset(d)
		case <-done:
			return
		}
	}
}

// fireAndForget discards the AfterFunc handle outright: nothing can ever
// stop it.
func fireAndForget(d time.Duration, f func()) {
	time.AfterFunc(d, f) // want "discarded"
}

// blankTimer discards through the blank identifier: same leak.
func blankTimer(d time.Duration) {
	_ = time.NewTimer(d) // want "discarded"
}

// scheduled is the clean AfterFunc shape: bind and defer Stop.
func scheduled(d time.Duration, f func()) {
	tm := time.AfterFunc(d, f)
	defer tm.Stop()
	f()
}

// newHeartbeat creates and returns: the ticker escapes to the caller, which
// now owns the Stop. Clean here, tracked again at every call site.
func newHeartbeat() *time.Ticker {
	return time.NewTicker(time.Second)
}

// useHeartbeat is the responsible caller.
func useHeartbeat(done chan struct{}) {
	t := newHeartbeat()
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// useHeartbeatLeak takes ownership from the source and drops it.
func useHeartbeatLeak(done chan struct{}) {
	t := newHeartbeat() // want "not stopped on every exit path"
	select {
	case <-t.C:
	case <-done:
	}
}

// loopers stores its ticker in a field that no code anywhere stops: both
// the direct store and the store-through-a-local leak.
type loopers struct {
	tick *time.Ticker
}

func (l *loopers) start(d time.Duration) {
	l.tick = time.NewTicker(d) // want "no code in the program ever stops"
}

func (l *loopers) swap(d time.Duration) {
	t := time.NewTicker(d) // want "no code in the program ever stops"
	l.tick = t
}

func (l *loopers) poll() {
	<-l.tick.C
}

// managed stores its ticker in a field with a program-wide Stop: both store
// shapes are clean.
type managed struct {
	tick *time.Ticker
}

func (m *managed) start(d time.Duration) {
	m.tick = time.NewTicker(d)
}

func (m *managed) restart(d time.Duration) {
	t := time.NewTicker(d)
	m.tick = t
}

func (m *managed) stop() {
	m.tick.Stop()
}

// worker hands the ticker to a goroutine whose closure stops it: the
// closure discharges the obligation.
func worker(d time.Duration, done chan struct{}, work func()) {
	t := time.NewTicker(d)
	go func() {
		defer t.Stop()
		for {
			select {
			case <-t.C:
				work()
			case <-done:
				return
			}
		}
	}()
}

// leakyWorker's closure only receives ticks — it cannot stop the ticker,
// so the outer scope still owes the Stop and never pays.
func leakyWorker(d time.Duration, done chan struct{}, work func()) {
	t := time.NewTicker(d) // want "not stopped on every exit path"
	go func() {
		for {
			select {
			case <-t.C:
				work()
			case <-done:
				return
			}
		}
	}()
}

// insideGo creates inside a goroutine literal: the literal body is its own
// scope with its own exit check, and the done arm leaks the timer.
func insideGo(d time.Duration, done chan struct{}) {
	go func() {
		t := time.NewTimer(d) // want "not stopped on every exit path"
		select {
		case <-t.C:
		case <-done:
		}
	}()
}

// rebind overwrites a live ticker with a fresh one: the first becomes
// unreachable before anything stops it.
func rebind(a, b time.Duration) {
	t := time.NewTicker(a) // want "rebound before being stopped"
	t = time.NewTicker(b)
	t.Stop()
}

// rebindStopped stops the first ticker before reusing the variable: clean.
func rebindStopped(a, b time.Duration) {
	t := time.NewTicker(a)
	t.Stop()
	t = time.NewTicker(b)
	t.Stop()
}

// rebindFromSource overwrites a live ticker obtained from an in-program
// source: the rebind check follows source bindings too.
func rebindFromSource(done chan struct{}) {
	t := newHeartbeat() // want "rebound before being stopped"
	t = newHeartbeat()
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// escapeToCallee hands the timer to another function: ownership transfers,
// nothing to report here.
func escapeToCallee(d time.Duration) {
	t := time.NewTimer(d)
	adopt(t)
}

func adopt(t *time.Timer) {
	t.Stop()
}
