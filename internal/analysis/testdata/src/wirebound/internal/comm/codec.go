// Package comm is the wirebound fixture: integers decoded off the wire must
// be clamped against a constant cap before sizing an allocation, feeding an
// alloc-named helper, or bounding a loop; the reject clamp, the saturate
// clamp, and parameter-passed sizes are the legal near misses. An
// equality-shaped length check is deliberately NOT a clamp.
package comm

import (
	"encoding/binary"
	"errors"
)

const maxEntries = 1 << 20

var errTooBig = errors.New("count exceeds cap")

// decodeUnclamped sizes a make with a raw wire length.
func decodeUnclamped(p []byte) []uint32 {
	n := int(binary.LittleEndian.Uint32(p))
	return make([]uint32, n) // want "make sized by a wire-decoded integer"
}

// decodeBigEndian is just as tainted on the other byte order.
func decodeBigEndian(p []byte) []byte {
	n := int(binary.BigEndian.Uint64(p))
	return make([]byte, n) // want "make sized by a wire-decoded integer"
}

// decodeClamped rejects oversized counts before allocating: clean.
func decodeClamped(p []byte) ([]uint32, error) {
	n := int(binary.LittleEndian.Uint32(p))
	if n > maxEntries {
		return nil, errTooBig
	}
	return make([]uint32, n), nil
}

// decodeSaturated clamps by reassignment instead of rejection: clean.
func decodeSaturated(p []byte) []uint32 {
	n := int(binary.LittleEndian.Uint32(p))
	if n > maxEntries {
		n = maxEntries
	}
	return make([]uint32, n)
}

// decodeEqualityOnly checks that the buffer length is exactly consistent with
// the count — which proves consistency, not a bound: every length the frame
// cap admits still reaches the make, so the finding stands.
func decodeEqualityOnly(p []byte) []uint32 {
	n := int(binary.LittleEndian.Uint16(p[4:]))
	if len(p) != 6+4*n {
		return nil
	}
	out := make([]uint32, 0, n) // want "make sized by a wire-decoded integer"
	return out
}

// decodeBoundedBuffer bounds the count against the remaining buffer with a
// magnitude comparison (the decodeLists idiom): clean.
func decodeBoundedBuffer(p []byte) []uint32 {
	n := int(binary.LittleEndian.Uint32(p))
	if 4+4*n > len(p) {
		return nil
	}
	return make([]uint32, n)
}

// sumUnbounded loops to a wire count: the trip count is attacker-controlled.
func sumUnbounded(p []byte) uint32 {
	n := int(binary.LittleEndian.Uint32(p))
	var total uint32
	for i := 0; i < n; i++ { // want "loop bounded by a wire-decoded integer"
		total += binary.LittleEndian.Uint32(p[4+4*i:])
	}
	return total
}

// freshPayload mirrors the frame pool helper. Its size comes in as a
// parameter, which is out of scope: the decoding caller is charged instead.
func freshPayload(n int) []byte {
	return make([]byte, n)
}

// readBody hands a raw wire length to the alloc-named helper.
func readBody(p []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	return freshPayload(n) // want "freshPayload called with a wire-decoded integer"
}

// readU32 is a decode helper matched by name: its result taints call sites.
func readU32(p []byte) uint32 {
	return binary.LittleEndian.Uint32(p)
}

// decodeViaHelper taints through the named helper.
func decodeViaHelper(p []byte) []byte {
	n := int(readU32(p))
	return make([]byte, n) // want "make sized by a wire-decoded integer"
}

// decodeConstSize allocates a fixed-size buffer after decoding: the size is
// untainted, so no finding.
func decodeConstSize(p []byte) []byte {
	v := binary.LittleEndian.Uint32(p)
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out, v)
	return out
}
