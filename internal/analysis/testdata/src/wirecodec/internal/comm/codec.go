// Package comm is the canonical-codec near miss: inside an internal/comm
// package the wirecodec analyzer must stay silent.
package comm

import (
	"encoding/binary"
	"hash/crc32"
)

// Encode is the canonical codec; binary and crc32 use here is legal.
func Encode(id uint64) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint64(b, id)
	binary.BigEndian.PutUint32(b[8:], crc32.ChecksumIEEE(b[:8]))
	return b
}
