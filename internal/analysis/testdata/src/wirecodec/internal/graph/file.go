// Package graph is the on-disk-format near miss: internal/graph owns file
// layouts that never cross the fabric, so binary use here is legal.
package graph

import "encoding/binary"

// Header encodes an on-disk section header.
func Header(vertices uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, vertices)
	return b
}
