// Package pipeline is a wirecodec fixture: hand-rolled binary encoding and
// checksum construction outside internal/comm must be flagged.
package pipeline

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
)

// Frame builds a bespoke frame layout, bypassing the canonical codecs.
func Frame(ids []uint64) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(len(ids))) // want "manual binary encoding"
	for _, id := range ids {
		binary.Write(&buf, binary.BigEndian, id) // want "manual binary encoding"
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())    // want "checksum construction"
	binary.Write(&buf, binary.BigEndian, sum) // want "manual binary encoding"
	return buf.Bytes()
}
