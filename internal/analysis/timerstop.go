package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TimerStop enforces Stop discipline on time.NewTicker, time.NewTimer and
// time.AfterFunc. An unstopped ticker pins a runtime timer and wakes a
// goroutine forever; an unstopped timer pins its heap timer until it fires.
// In a resident mining service that admits thousands of queries, a
// per-query ticker leaked on one early-return path is a slow memory and
// wakeup leak that no test notices.
//
// The analyzer runs a linear, branch-merging abstract interpretation over
// every declared body (and every function literal, each with its own
// scope): each tracked timer carries two bits, stopped and escaped. At a
// branch the state is cloned per arm and merged afterwards — stopped is
// AND-ed (a timer is only stopped if every arm stopped it), escaped is
// OR-ed. `defer t.Stop()` sets stopped for every later exit; receiving from
// a timer's (not ticker's) C counts as stopped on that arm, because a fired
// timer needs no Stop. At each return statement and at the body's end,
// every live timer that is neither stopped nor escaped is reported at its
// creation site.
//
// Escapes transfer responsibility rather than silencing the program-wide
// check: a timer returned to the caller is tracked again at the call site
// (functions returning *time.Ticker / *time.Timer that transitively create
// one are "timer sources"), and a timer stored into a struct field is only
// accepted when some code in the program stops that field. A creation whose
// result is discarded outright can never be stopped and is reported
// immediately.
var TimerStop = &Analyzer{
	Name: "timerstop",
	Tier: 4,
	Doc: "every time.NewTicker/NewTimer/AfterFunc result must be stopped on " +
		"every exit path (defer-aware, following values through returns and " +
		"struct fields)",
	Run: runTimerStop,
}

func runTimerStop(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	info := pass.Prog.timerStop()
	for _, f := range info.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// timerStopInfo is the whole-program Stop-discipline result.
type timerStopInfo struct {
	findings []progFinding
}

// timerVal is the abstract state of one tracked timer value.
type timerVal struct {
	pos     token.Pos // creation site, where findings anchor
	name    string    // variable name, for the message
	kind    string    // "ticker" or "timer"
	call    string    // creating call, e.g. "time.NewTicker"
	stopped bool
	escaped bool
}

// timerState maps local timer objects to their abstract state.
type timerState map[types.Object]timerVal

func cloneTimerState(st timerState) timerState {
	out := make(timerState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeTimerState replaces st with the join of branches (each derived from
// a clone of st): stopped is AND-ed over the branches where the timer
// exists, escaped is OR-ed.
func mergeTimerState(st timerState, branches []timerState) {
	for k := range st {
		delete(st, k)
	}
	for _, b := range branches {
		for obj, v := range b {
			cur, ok := st[obj]
			if !ok {
				st[obj] = v
				continue
			}
			cur.stopped = cur.stopped && v.stopped
			cur.escaped = cur.escaped || v.escaped
			st[obj] = cur
		}
	}
}

// timerStop builds (once) and returns the program's timer-leak findings.
func (p *Program) timerStop() *timerStopInfo {
	if p.timerInfo != nil {
		return p.timerInfo
	}
	info := &timerStopInfo{}
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, pkg *types.Package, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		info.findings = append(info.findings, progFinding{pos: pos, pkg: pkg, msg: msg})
	}
	sources := p.timerSources()
	fieldStops := p.timerFieldStops()
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		if fd.Body == nil {
			continue
		}
		s := &timerScanner{
			prog:       p,
			info:       p.InfoOf[fn],
			fn:         fn,
			sources:    sources,
			fieldStops: fieldStops,
			report:     report,
		}
		st := timerState{}
		if !s.scanStmts(st, fd.Body.List) {
			s.checkExit(st)
		}
	}
	p.timerInfo = info
	return info
}

// timerTypeKind maps *time.Ticker / *time.Timer to a kind string, else "".
func timerTypeKind(t types.Type) string {
	if p, n := namedType(t); p == "time" {
		switch n {
		case "Ticker":
			return "ticker"
		case "Timer":
			return "timer"
		}
	}
	return ""
}

// timerCreationCall recognizes the three time-package constructors.
func timerCreationCall(info *types.Info, call *ast.CallExpr) (kind, callName string, ok bool) {
	switch {
	case isPkgCall(info, call, "time", "NewTicker"):
		return "ticker", "time.NewTicker", true
	case isPkgCall(info, call, "time", "NewTimer"):
		return "timer", "time.NewTimer", true
	case isPkgCall(info, call, "time", "AfterFunc"):
		return "timer", "time.AfterFunc", true
	}
	return "", "", false
}

// timerSources computes, to a fixpoint, the declared functions that hand a
// timer they (transitively) created back to their caller: the declared
// result type includes *time.Ticker or *time.Timer, and the body reaches a
// constructor directly or through another source. Result-type alone is not
// enough — a getter returning a struct's ticker field hands out a borrowed
// value whose Stop belongs to the owner, not the caller.
func (p *Program) timerSources() map[*types.Func]bool {
	srcs := map[*types.Func]bool{}
	hasTimerResult := func(fn *types.Func) bool {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if timerTypeKind(sig.Results().At(i).Type()) != "" {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.DeclList {
			if srcs[fn] || !hasTimerResult(fn) {
				continue
			}
			info := p.InfoOf[fn]
			creates := false
			ast.Inspect(p.Decls[fn], func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, _, isNew := timerCreationCall(info, call); isNew {
					creates = true
				} else if cf := calleeFunc(info, call); cf != nil && srcs[cf] {
					creates = true
				}
				return !creates
			})
			if creates {
				srcs[fn] = true
				changed = true
			}
		}
	}
	return srcs
}

// timerFieldStops computes the set of timer-typed struct fields that some
// code in the program could stop: a direct x.f.Stop() call, or any read of
// the field that hands the value onward (alias, argument, return). A field
// whose only uses are stores, C-receives and Resets can never be stopped,
// and stores into it are leaks.
func (p *Program) timerFieldStops() map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, fn := range p.DeclList {
		fd := p.Decls[fn]
		info := p.InfoOf[fn]
		if fd.Body == nil {
			continue
		}
		inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || timerTypeKind(obj.Type()) == "" {
				return true
			}
			parent := ast.Node(nil)
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			switch pn := parent.(type) {
			case *ast.SelectorExpr:
				if pn.X == sel {
					switch pn.Sel.Name {
					case "Stop":
						out[obj] = true
					case "C", "Reset":
						// Using the timer without being able to stop it.
					default:
						out[obj] = true
					}
					return true
				}
			case *ast.AssignStmt:
				for _, lhs := range pn.Lhs {
					if lhs == sel {
						return true // a store, not a potential stop
					}
				}
				out[obj] = true // read into an alias — the alias may stop it
			case *ast.KeyValueExpr:
				if pn.Value != sel {
					return true
				}
				out[obj] = true
			default:
				// Returned, passed as an argument, address taken, compared:
				// the value reaches code that may stop it.
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// timerScanner runs the abstract interpretation over one declared body.
type timerScanner struct {
	prog       *Program
	info       *types.Info
	fn         *types.Func
	sources    map[*types.Func]bool
	fieldStops map[types.Object]bool
	report     func(pos token.Pos, pkg *types.Package, msg string)
}

func (s *timerScanner) pkg() *types.Package { return s.fn.Pkg() }

// checkExit reports every live timer that is neither stopped nor escaped.
func (s *timerScanner) checkExit(st timerState) {
	for _, tv := range st {
		if tv.stopped || tv.escaped {
			continue
		}
		s.report(tv.pos, s.pkg(), fmt.Sprintf(
			"%s result %s is not stopped on every exit path; an unstopped %s "+
				"pins a runtime timer%s until it fires or forever — defer %s.Stop() "+
				"at creation or stop it on each return",
			tv.call, tv.name, tv.kind, tickerSuffix(tv.kind), tv.name))
	}
}

func tickerSuffix(kind string) string {
	if kind == "ticker" {
		return " and periodic wakeups"
	}
	return ""
}

// scanStmts scans a statement list in order; it reports true when the list
// terminates (returns on every path), in which case the caller must not
// merge its state back or run an exit check on it.
func (s *timerScanner) scanStmts(st timerState, list []ast.Stmt) bool {
	for _, stmt := range list {
		if s.scanStmt(st, stmt) {
			return true
		}
	}
	return false
}

// scanStmt scans one statement, mutating st; true means the statement
// terminates the enclosing function on every path through it.
func (s *timerScanner) scanStmt(st timerState, stmt ast.Stmt) bool {
	switch n := stmt.(type) {
	case *ast.AssignStmt:
		s.scanAssign(st, n)
	case *ast.DeclStmt:
		s.scanDecl(st, n)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if kind, callName, isNew := timerCreationCall(s.info, call); isNew {
				s.report(call.Pos(), s.pkg(), fmt.Sprintf(
					"result of %s is discarded; the %s can never be stopped and "+
						"leaks its runtime timer%s — bind it and defer Stop",
					callName, kind, tickerSuffix(kind)))
				for _, a := range call.Args {
					s.scanExpr(st, a)
				}
				return false
			}
		}
		s.scanExpr(st, n.X)
	case *ast.SendStmt:
		s.scanExpr(st, n.Chan)
		s.scanExpr(st, n.Value)
	case *ast.IncDecStmt:
		s.scanExpr(st, n.X)
	case *ast.DeferStmt:
		s.scanDefer(st, n)
	case *ast.GoStmt:
		s.scanExpr(st, n.Call)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			s.scanExpr(st, r)
		}
		s.checkExit(st)
		return true
	case *ast.BlockStmt:
		return s.scanStmts(st, n.List)
	case *ast.LabeledStmt:
		return s.scanStmt(st, n.Stmt)
	case *ast.IfStmt:
		if n.Init != nil {
			s.scanStmt(st, n.Init)
		}
		s.scanExpr(st, n.Cond)
		thenSt := cloneTimerState(st)
		thenDead := s.scanStmts(thenSt, n.Body.List)
		elseSt := cloneTimerState(st)
		elseDead := false
		if n.Else != nil {
			elseDead = s.scanStmt(elseSt, n.Else)
		}
		var live []timerState
		if !thenDead {
			live = append(live, thenSt)
		}
		if !elseDead {
			live = append(live, elseSt)
		}
		if len(live) == 0 {
			return true
		}
		mergeTimerState(st, live)
	case *ast.ForStmt:
		if n.Init != nil {
			s.scanStmt(st, n.Init)
		}
		if n.Cond != nil {
			s.scanExpr(st, n.Cond)
		}
		body := cloneTimerState(st)
		dead := s.scanStmts(body, n.Body.List)
		if !dead && n.Post != nil {
			s.scanStmt(body, n.Post)
		}
		if n.Cond == nil && !hasBreak(n.Body) {
			// `for { ... }` with no break never falls through; the only
			// exits are the returns inside, already checked.
			return true
		}
		branches := []timerState{cloneTimerState(st)}
		if !dead {
			branches = append(branches, body)
		}
		mergeTimerState(st, branches)
	case *ast.RangeStmt:
		s.scanExpr(st, n.X)
		body := cloneTimerState(st)
		dead := s.scanStmts(body, n.Body.List)
		branches := []timerState{cloneTimerState(st)}
		if !dead {
			branches = append(branches, body)
		}
		mergeTimerState(st, branches)
	case *ast.SwitchStmt:
		if n.Init != nil {
			s.scanStmt(st, n.Init)
		}
		if n.Tag != nil {
			s.scanExpr(st, n.Tag)
		}
		return s.scanCases(st, n.Body, true)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			s.scanStmt(st, n.Init)
		}
		s.scanStmt(st, n.Assign)
		return s.scanCases(st, n.Body, true)
	case *ast.SelectStmt:
		if len(n.Body.List) == 0 {
			return true // select{} blocks forever
		}
		return s.scanCases(st, n.Body, false)
	}
	return false
}

// scanCases handles the clause bodies of switch, type-switch and select.
// fallthroughToPre adds the pre-state as a branch when no default clause
// exists (a switch may match nothing; a select without default still always
// runs exactly one clause).
func (s *timerScanner) scanCases(st timerState, body *ast.BlockStmt, fallthroughToPre bool) bool {
	hasDefault := false
	var live []timerState
	for _, cs := range body.List {
		var clauseBody []ast.Stmt
		br := cloneTimerState(st)
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.scanExpr(st, e)
			}
			clauseBody = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				s.scanStmt(br, c.Comm)
			}
			clauseBody = c.Body
		}
		if !s.scanStmts(br, clauseBody) {
			live = append(live, br)
		}
	}
	if fallthroughToPre && !hasDefault {
		live = append(live, cloneTimerState(st))
	}
	if len(live) == 0 {
		return true
	}
	mergeTimerState(st, live)
	return false
}

// scanAssign handles bindings: creation calls and source-function calls
// bind trackable timers; everything else is scanned for stops and escapes,
// and storing a tracked timer into a never-stopped field is reported.
func (s *timerScanner) scanAssign(st timerState, n *ast.AssignStmt) {
	if len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			if kind, callName, isNew := timerCreationCall(s.info, call); isNew {
				for _, a := range call.Args {
					s.scanExpr(st, a)
				}
				s.bindCreation(st, n.Lhs, call, kind, callName)
				return
			}
			if cf := calleeFunc(s.info, call); cf != nil && s.sources[cf] {
				for _, a := range call.Args {
					s.scanExpr(st, a)
				}
				s.scanExpr(st, call.Fun)
				s.bindFromSource(st, n.Lhs, call, cf)
				return
			}
		}
	}
	for _, r := range n.Rhs {
		s.scanExpr(st, r)
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Rhs {
			s.checkFieldStore(st, n.Lhs[i], n.Rhs[i])
		}
	}
	for _, l := range n.Lhs {
		if _, isIdent := l.(*ast.Ident); !isIdent {
			s.scanExpr(st, l)
		}
	}
}

// scanDecl handles `var t = time.NewTicker(d)` declarations.
func (s *timerScanner) scanDecl(st timerState, n *ast.DeclStmt) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) == 1 {
			if call, okCall := vs.Values[0].(*ast.CallExpr); okCall {
				if kind, callName, isNew := timerCreationCall(s.info, call); isNew {
					for _, a := range call.Args {
						s.scanExpr(st, a)
					}
					s.bindIdent(st, vs.Names[0], call, kind, callName)
					continue
				}
			}
		}
		for _, v := range vs.Values {
			s.scanExpr(st, v)
		}
	}
}

// bindCreation binds a constructor result to its single LHS: a local starts
// tracking, `_` is an immediate leak, a field store is checked against the
// program-wide field-stop set.
func (s *timerScanner) bindCreation(st timerState, lhs []ast.Expr, call *ast.CallExpr, kind, callName string) {
	if len(lhs) != 1 {
		return
	}
	switch l := lhs[0].(type) {
	case *ast.Ident:
		s.bindIdent(st, l, call, kind, callName)
	case *ast.SelectorExpr:
		if fobj, ok := s.info.Uses[l.Sel].(*types.Var); ok && fobj.IsField() {
			if !s.fieldStops[fobj] {
				s.report(call.Pos(), s.pkg(), fmt.Sprintf(
					"%s result is stored in field %s, which no code in the "+
						"program ever stops — the %s leaks its runtime timer%s",
					callName, fobj.Name(), kind, tickerSuffix(kind)))
			}
			return
		}
		s.scanExpr(st, l)
	}
}

func (s *timerScanner) bindIdent(st timerState, id *ast.Ident, call *ast.CallExpr, kind, callName string) {
	if id.Name == "_" {
		s.report(call.Pos(), s.pkg(), fmt.Sprintf(
			"result of %s is discarded; the %s can never be stopped and leaks "+
				"its runtime timer%s — bind it and defer Stop",
			callName, kind, tickerSuffix(kind)))
		return
	}
	obj := s.identDefOrUse(id)
	if obj == nil {
		return
	}
	s.checkRebind(st, obj)
	st[obj] = timerVal{pos: call.Pos(), name: id.Name, kind: kind, call: callName}
}

// checkRebind reports a live tracked timer about to be overwritten by a
// fresh binding to the same variable: the old value becomes unreachable
// with no Stop possible, so the leak must be charged now or never.
func (s *timerScanner) checkRebind(st timerState, obj types.Object) {
	tv, tracked := st[obj]
	if !tracked || tv.stopped || tv.escaped {
		return
	}
	s.report(tv.pos, s.pkg(), fmt.Sprintf(
		"%s result %s is rebound before being stopped; the original %s becomes "+
			"unreachable and pins a runtime timer%s until it fires or forever — "+
			"stop it before reassigning",
		tv.call, tv.name, tv.kind, tickerSuffix(tv.kind)))
}

// bindFromSource tracks the timer-typed results of a call to an in-program
// timer source: `t, err := newDrainTimer()` makes t the caller's to stop.
func (s *timerScanner) bindFromSource(st timerState, lhs []ast.Expr, call *ast.CallExpr, cf *types.Func) {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := s.identDefOrUse(id)
		if obj == nil {
			continue
		}
		kind := timerTypeKind(obj.Type())
		if kind == "" {
			continue
		}
		s.checkRebind(st, obj)
		st[obj] = timerVal{pos: call.Pos(), name: id.Name, kind: kind, call: cf.Name()}
	}
}

// checkFieldStore reports a tracked timer stored into a field that no code
// in the program can stop. The store still marks the value escaped (via
// scanExpr's identifier rule), so the leak is reported exactly once, here.
func (s *timerScanner) checkFieldStore(st timerState, lhs, rhs ast.Expr) {
	id, ok := rhs.(*ast.Ident)
	if !ok {
		return
	}
	tv, tracked := st[s.identDefOrUse(id)]
	if !tracked {
		return
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fobj, ok := s.info.Uses[sel.Sel].(*types.Var)
	if !ok || !fobj.IsField() || s.fieldStops[fobj] {
		return
	}
	s.report(tv.pos, s.pkg(), fmt.Sprintf(
		"%s result %s is stored in field %s, which no code in the program "+
			"ever stops — the %s leaks its runtime timer%s",
		tv.call, tv.name, fobj.Name(), tv.kind, tickerSuffix(tv.kind)))
}

// scanDefer handles deferred calls: `defer t.Stop()` stops the timer for
// every later exit, a deferred closure is inspected for stops and escapes,
// and a tracked timer deferred as an argument escapes.
func (s *timerScanner) scanDefer(st timerState, n *ast.DeferStmt) {
	call := n.Call
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
		if id, okID := sel.X.(*ast.Ident); okID {
			if obj := s.identDefOrUse(id); obj != nil {
				if tv, tracked := st[obj]; tracked {
					tv.stopped = true
					st[obj] = tv
					return
				}
			}
		}
	}
	s.scanExpr(st, call)
}

// scanExpr walks an expression, updating st: t.Stop() calls (and method
// values) mark stopped, <-t.C on a timer marks that arm stopped, t.C and
// t.Reset uses are neutral, and any other appearance of a tracked timer —
// returned, passed, aliased, captured — marks it escaped. Function literals
// are handled separately: their effect on outer timers is summarized, and
// their own bodies are scanned as independent scopes.
func (s *timerScanner) scanExpr(st timerState, e ast.Expr) {
	if e == nil {
		return
	}
	inspectStack(e, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.handleLit(st, n)
			return false
		case *ast.Ident:
			obj := s.info.Uses[n]
			if obj == nil {
				return true
			}
			tv, tracked := st[obj]
			if !tracked {
				return true
			}
			parent := ast.Node(nil)
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			if sel, okSel := parent.(*ast.SelectorExpr); okSel && sel.X == n {
				switch sel.Sel.Name {
				case "Stop":
					tv.stopped = true
					st[obj] = tv
				case "Reset":
					// Neutral: resetting neither stops nor leaks.
				case "C":
					if tv.kind == "timer" && len(stack) > 1 {
						if u, okU := stack[len(stack)-2].(*ast.UnaryExpr); okU && u.Op == token.ARROW {
							// A received timer has fired; no Stop owed on
							// this arm.
							tv.stopped = true
							st[obj] = tv
						}
					}
				default:
					tv.escaped = true
					st[obj] = tv
				}
				return true
			}
			tv.escaped = true
			st[obj] = tv
		}
		return true
	})
}

// handleLit summarizes a function literal's effect on the outer timers —
// a literal that calls t.Stop() stops it (deferred cleanup closures), one
// that merely references t captures it (escape) — then scans the literal's
// own body as an independent scope so timers created inside goroutines and
// closures get their own exit checks.
func (s *timerScanner) handleLit(st timerState, lit *ast.FuncLit) {
	for obj, tv := range st {
		switch litTimerUse(s.info, lit, obj) {
		case litUseStop:
			tv.stopped = true
			st[obj] = tv
		case litUseCapture:
			tv.escaped = true
			st[obj] = tv
		}
	}
	inner := timerState{}
	if !s.scanStmts(inner, lit.Body.List) {
		s.checkExit(inner)
	}
}

const (
	litUseNone = iota
	litUseStop
	litUseCapture
)

// litTimerUse classifies how a literal's body uses one outer timer object.
func litTimerUse(info *types.Info, lit *ast.FuncLit, obj types.Object) int {
	use := litUseNone
	inspectStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if len(stack) > 0 {
			if sel, okSel := stack[len(stack)-1].(*ast.SelectorExpr); okSel && sel.X == id {
				switch sel.Sel.Name {
				case "Stop":
					use = litUseStop
					return false
				case "C", "Reset":
					// Neutral: a closure that only receives ticks cannot
					// stop the timer, so it does not discharge the outer
					// scope's obligation.
					return true
				}
			}
		}
		if use == litUseNone {
			use = litUseCapture
		}
		return true
	})
	return use
}

func (s *timerScanner) identDefOrUse(id *ast.Ident) types.Object {
	if obj := s.info.Defs[id]; obj != nil {
		return obj
	}
	return s.info.Uses[id]
}

// hasBreak reports whether body contains a break statement at any depth
// outside nested function literals. Used to decide whether an infinite
// `for {}` can fall through; nested-loop breaks make the answer
// conservatively true.
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}
