package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// WireBound enforces the trust boundary on wire-decoded integers in
// internal/comm: a length or count read off the socket with
// binary.LittleEndian/BigEndian.UintN (or a readU32-style helper) is
// attacker-controlled, and letting it size a `make`, an alloc helper, or a
// loop bound turns one hostile frame into an out-of-memory or a CPU stall —
// exactly what the QUERY_SUBMIT/HEALTH server surface must survive. HUGE's
// bounded-memory guarantee is only real if no such value reaches an
// allocation unclamped.
//
// Taint is tracked per function, per variable, in statement order: an
// assignment whose right side contains a wire decode taints the target; a
// clamp kills it. The recognized clamp is an `if` that magnitude-compares
// the variable (<, <=, >, >=) and then returns (the `if n > maxFrameEntries
// { return ErrCorruptFrame }` idiom) or reassigns it. An equality-shaped
// length check (`if len(p) != fixed+4*n`) is NOT a clamp: it proves
// consistency, not a bound, and still admits every length the frame cap
// allows. Function literals and parameters are out of scope — the analysis
// charges the function that performs the decode.
var WireBound = &Analyzer{
	Name: "wirebound",
	Tier: 3,
	Doc: "wire-decoded integers must be clamped against a constant cap " +
		"before sizing allocations, slice reservations, or loop bounds",
	Run: runWireBound,
}

func runWireBound(pass *Pass) {
	if !pathHasSegments(pass.Pkg.Path(), "internal", "comm") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &wireBoundScanner{pass: pass, tainted: map[types.Object]bool{}}
				w.scanStmts(fd.Body.List)
			}
		}
	}
}

type wireBoundScanner struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// readHelperRE matches readU32-style decode helpers by name.
var readHelperRE = regexp.MustCompile(`^read.*[Uu](?:int)?(?:8|16|32|64)$`)

// wireDecodeCall reports whether call reads an integer off the wire: a
// binary.LittleEndian/BigEndian UintN accessor, or a read*U<N> helper.
func (w *wireBoundScanner) wireDecodeCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Uint") {
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if id, ok := inner.X.(*ast.Ident); ok &&
				pkgOfIdent(w.pass.Info, id) == "encoding/binary" {
				return true
			}
		}
		return false
	}
	return readHelperRE.MatchString(name)
}

// exprTainted reports whether e contains a wire decode or a tainted
// variable. Function literals are opaque.
func (w *wireBoundScanner) exprTainted(e ast.Expr) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.wireDecodeCall(n) {
				tainted = true
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && readHelperRE.MatchString(id.Name) {
				tainted = true
				return false
			}
		case *ast.Ident:
			if obj := w.pass.Info.Uses[n]; obj != nil && w.tainted[obj] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

func (w *wireBoundScanner) scanStmts(list []ast.Stmt) {
	for _, st := range list {
		w.scanStmt(st)
	}
}

func (w *wireBoundScanner) scanStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		w.checkExprs(st.Rhs)
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				w.assign(lhs, w.exprTainted(st.Rhs[i]))
			}
		} else if len(st.Rhs) == 1 {
			// n, err := decode(...): one source taints every target.
			t := w.exprTainted(st.Rhs[0])
			for _, lhs := range st.Lhs {
				w.assign(lhs, t)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				w.checkExprs(vs.Values)
				for i, name := range vs.Names {
					t := false
					if i < len(vs.Values) {
						t = w.exprTainted(vs.Values[i])
					} else if len(vs.Values) == 1 {
						t = w.exprTainted(vs.Values[0])
					}
					if obj := w.pass.Info.Defs[name]; obj != nil {
						w.tainted[obj] = t
					}
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.scanStmt(st.Init)
		}
		killed := w.clampKills(st)
		w.checkExpr(st.Cond)
		w.scanStmts(st.Body.List)
		if st.Else != nil {
			w.scanStmt(st.Else)
		}
		for _, obj := range killed {
			w.tainted[obj] = false
		}
	case *ast.ExprStmt:
		w.checkExpr(st.X)
	case *ast.ReturnStmt:
		w.checkExprs(st.Results)
	case *ast.SendStmt:
		w.checkExpr(st.Value)
	case *ast.ForStmt:
		if st.Init != nil {
			w.scanStmt(st.Init)
		}
		if st.Cond != nil {
			w.checkLoopBound(st.Cond, st.Pos())
		}
		w.scanStmts(st.Body.List)
	case *ast.RangeStmt:
		w.checkExpr(st.X)
		w.scanStmts(st.Body.List)
	case *ast.BlockStmt:
		w.scanStmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.scanStmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.scanStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.scanStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.scanStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.scanStmt(st.Stmt)
	}
}

// assign updates the taint of an assignment target.
func (w *wireBoundScanner) assign(lhs ast.Expr, tainted bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.pass.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Info.Uses[id]
	}
	if obj != nil {
		w.tainted[obj] = tainted
	}
}

// clampKills recognizes the sanctioned validation shape on an if statement
// and returns the variables it clamps: the condition magnitude-compares a
// tainted variable and the body either returns (reject path) or reassigns
// the variable (saturate path).
func (w *wireBoundScanner) clampKills(st *ast.IfStmt) []types.Object {
	var compared []types.Object
	ast.Inspect(st.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := w.pass.Info.Uses[id]; obj != nil && w.tainted[obj] {
						compared = append(compared, obj)
					}
				}
				return true
			})
		}
		return true
	})
	if len(compared) == 0 {
		return nil
	}
	exits := false
	assigned := map[types.Object]bool{}
	ast.Inspect(st.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			exits = true
		case *ast.CallExpr:
			if isBuiltinCall(w.pass.Info, n, "panic") {
				exits = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := w.pass.Info.Uses[id]; obj != nil {
						assigned[obj] = true
					}
				}
			}
		}
		return true
	})
	var killed []types.Object
	for _, obj := range compared {
		if exits || assigned[obj] {
			killed = append(killed, obj)
		}
	}
	return killed
}

// checkExprs / checkExpr flag tainted values reaching sinks: make sizes and
// capacities, alloc-named helpers, and (via checkLoopBound) loop bounds.
func (w *wireBoundScanner) checkExprs(list []ast.Expr) {
	for _, e := range list {
		w.checkExpr(e)
	}
}

func (w *wireBoundScanner) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(w.pass.Info, call, "make") {
			for _, arg := range call.Args[1:] {
				if w.exprTainted(arg) {
					w.pass.Reportf(call.Pos(),
						"make sized by a wire-decoded integer with no bound check: clamp it against a constant cap (and return a classified ErrCorruptFrame) first")
					break
				}
			}
			return true
		}
		if name := calledName(call); allocSinkName(name) {
			for _, arg := range call.Args {
				if w.exprTainted(arg) {
					w.pass.Reportf(call.Pos(),
						"%s called with a wire-decoded integer with no bound check: clamp it against a constant cap first", name)
					break
				}
			}
		}
		return true
	})
}

// checkLoopBound flags a for-loop condition bounded by a tainted value: the
// loop trip count becomes attacker-controlled.
func (w *wireBoundScanner) checkLoopBound(cond ast.Expr, pos token.Pos) {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		default:
			return true
		}
		if w.exprTainted(be.X) || w.exprTainted(be.Y) {
			found = true
		}
		return false
	})
	if found {
		w.pass.Reportf(pos,
			"loop bounded by a wire-decoded integer with no bound check: clamp it against a constant cap before iterating")
	}
	w.checkExpr(cond)
}

// allocSinkName matches helper names whose argument sizes an allocation
// (alloc, freshPayload, growBuf, reserve...).
func allocSinkName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "alloc") || strings.Contains(l, "payload") ||
		strings.Contains(l, "grow") || strings.Contains(l, "reserve")
}
