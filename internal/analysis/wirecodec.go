package analysis

import (
	"go/ast"
)

// WireCodec enforces the canonical-codec invariant: every byte that crosses
// the simulated network is produced and parsed by the codecs in
// internal/comm/frame.go, whose layouts are byte-identical to the accounted
// traffic formulas (comm.RequestBytes / comm.ResponseBytes). Hand-rolled
// binary encoding anywhere else is how a second, slightly different frame
// layout sneaks in — and with it byte accounting that silently stops being
// truthful and corruption that the CRC layer never sees.
//
// The rule: outside internal/comm (the codecs themselves) and internal/graph
// (on-disk graph file formats, which never cross the fabric), any use of
// encoding/binary or hash/crc32 is a finding.
var WireCodec = &Analyzer{
	Name: "wirecodec",
	Tier: 1,
	Doc: "cross-node payloads must go through the canonical codecs in internal/comm; " +
		"manual binary encoding elsewhere breaks byte accounting and CRC coverage",
	Run: runWireCodec,
}

func runWireCodec(pass *Pass) {
	path := pass.Pkg.Path()
	if pathHasSegments(path, "internal", "comm") || pathHasSegments(path, "internal", "graph") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pkgOfIdent(pass.Info, id) {
			case "encoding/binary":
				pass.Reportf(sel.Pos(),
					"manual binary encoding (%s.%s) outside internal/comm: route payloads through the canonical wire codecs so byte accounting and CRC coverage stay truthful",
					id.Name, sel.Sel.Name)
				return false
			case "hash/crc32":
				pass.Reportf(sel.Pos(),
					"checksum construction (%s.%s) outside internal/comm: frame integrity is owned by the canonical codecs",
					id.Name, sel.Sel.Name)
				return false
			}
			return true
		})
	}
}
