// Package apps implements the paper's four GPM application categories
// (§7.1) on top of the Khuzdul cluster: Triangle Counting (TC), k-Clique
// Counting (k-CC), k-Motif Counting (k-MC), and — in internal/fsm —
// Frequent Subgraph Mining. Each application is a thin composition: pick a
// client system (k-Automine or k-GraphPi), compile the pattern(s) to EXTEND
// plans, run them on the cluster.
package apps

import (
	"fmt"

	"khuzdul/internal/automine"
	"khuzdul/internal/cluster"
	"khuzdul/internal/graph"
	"khuzdul/internal/graphpi"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// System selects the client GPM system.
type System int

const (
	// KAutomine is Automine ported on Khuzdul.
	KAutomine System = iota
	// KGraphPi is GraphPi ported on Khuzdul.
	KGraphPi
)

func (s System) String() string {
	switch s {
	case KAutomine:
		return automine.Name
	case KGraphPi:
		return graphpi.Name
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// CompileOptions forwards system-specific knobs.
type CompileOptions struct {
	Induced              bool
	DisableVCS           bool
	DisableSymmetryBreak bool
}

// Compile compiles one pattern with the selected system.
func Compile(sys System, pat *pattern.Pattern, g *graph.Graph, opts CompileOptions) (*plan.Plan, error) {
	switch sys {
	case KAutomine:
		return automine.Compile(pat, g, automine.Options(opts))
	case KGraphPi:
		return graphpi.Compile(pat, g, graphpi.Options(opts))
	default:
		return nil, fmt.Errorf("apps: unknown system %d", int(sys))
	}
}

// TriangleCount runs TC on the cluster.
func TriangleCount(c *cluster.Cluster, sys System) (cluster.Result, error) {
	return PatternCount(c, pattern.Triangle(), sys, false)
}

// CliqueCount runs k-CC on the cluster.
func CliqueCount(c *cluster.Cluster, k int, sys System) (cluster.Result, error) {
	return PatternCount(c, pattern.Clique(k), sys, false)
}

// PatternCount counts one pattern's embeddings on the cluster.
func PatternCount(c *cluster.Cluster, pat *pattern.Pattern, sys System, induced bool) (cluster.Result, error) {
	pl, err := Compile(sys, pat, c.Graph(), CompileOptions{Induced: induced})
	if err != nil {
		return cluster.Result{}, err
	}
	return c.Count(pl)
}

// MotifCount runs k-MC: it counts the induced embeddings of every connected
// size-k pattern, returning per-pattern results and the combined totals.
func MotifCount(c *cluster.Cluster, k int, sys System) ([]cluster.Result, cluster.Result, error) {
	pats := pattern.ConnectedPatterns(k)
	plans := make([]*plan.Plan, 0, len(pats))
	for _, pat := range pats {
		pl, err := Compile(sys, pat, c.Graph(), CompileOptions{Induced: true})
		if err != nil {
			return nil, cluster.Result{}, err
		}
		plans = append(plans, pl)
	}
	return c.CountAll(plans)
}

// OrientedCliqueCount counts k-cliques on a cluster built over an oriented
// (DAG) graph — the Pangolin-style preprocessing the paper applies for the
// Table 5 large-graph runs. The caller must have built the cluster over
// graph.Orient(g); orientation replaces symmetry-breaking restrictions.
func OrientedCliqueCount(c *cluster.Cluster, k int, sys System) (cluster.Result, error) {
	pl, err := Compile(sys, pattern.Clique(k), c.Graph(),
		CompileOptions{DisableSymmetryBreak: true})
	if err != nil {
		return cluster.Result{}, err
	}
	return c.Count(pl)
}
