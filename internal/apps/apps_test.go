package apps

import (
	"testing"

	"khuzdul/internal/cluster"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func newCluster(t *testing.T, g *graph.Graph, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(g, cluster.Config{NumNodes: nodes, ThreadsPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTriangleCountBothSystems(t *testing.T) {
	g := graph.RMATDefault(120, 700, 173)
	want := plan.BruteForceCount(g, pattern.Triangle(), false)
	c := newCluster(t, g, 4)
	for _, sys := range []System{KAutomine, KGraphPi} {
		res, err := TriangleCount(c, sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("%v TC = %d, want %d", sys, res.Count, want)
		}
	}
}

func TestCliqueCount(t *testing.T) {
	g := graph.RMATDefault(100, 600, 179)
	c := newCluster(t, g, 3)
	for _, k := range []int{4, 5} {
		want := plan.BruteForceCount(g, pattern.Clique(k), false)
		res, err := CliqueCount(c, k, KGraphPi)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("%d-CC = %d, want %d", k, res.Count, want)
		}
	}
}

func TestMotifCount(t *testing.T) {
	g := graph.RMATDefault(70, 350, 181)
	c := newCluster(t, g, 2)
	for _, k := range []int{3, 4} {
		per, combined, err := MotifCount(c, k, KAutomine)
		if err != nil {
			t.Fatal(err)
		}
		pats := pattern.ConnectedPatterns(k)
		if len(per) != len(pats) {
			t.Fatalf("%d-MC returned %d results, want %d", k, len(per), len(pats))
		}
		var want uint64
		for i, pat := range pats {
			w := plan.BruteForceCount(g, pat, true)
			if per[i].Count != w {
				t.Errorf("%d-MC pattern %v = %d, want %d", k, pat, per[i].Count, w)
			}
			want += w
		}
		if combined.Count != want {
			t.Errorf("%d-MC total = %d, want %d", k, combined.Count, want)
		}
	}
}

func TestMotifTotalsIdentity(t *testing.T) {
	// Induced size-3 counts satisfy: #wedge_induced + 3·#triangle =
	// #wedge_non_induced. Cross-check the apps layer against that identity.
	g := graph.RMATDefault(90, 500, 191)
	c := newCluster(t, g, 2)
	per, _, err := MotifCount(c, 3, KGraphPi)
	if err != nil {
		t.Fatal(err)
	}
	pats := pattern.ConnectedPatterns(3)
	var wedgeInduced, triangles uint64
	for i, pat := range pats {
		if pat.NumEdges() == 2 {
			wedgeInduced = per[i].Count
		} else {
			triangles = per[i].Count
		}
	}
	wedgeNonInduced := plan.BruteForceCount(g, pattern.PathP(3), false)
	if wedgeInduced+3*triangles != wedgeNonInduced {
		t.Fatalf("identity violated: %d + 3×%d != %d", wedgeInduced, triangles, wedgeNonInduced)
	}
}

func TestOrientedCliqueCount(t *testing.T) {
	g := graph.RMATDefault(150, 900, 193)
	dag := graph.Orient(g)
	c := newCluster(t, dag, 3)
	for _, k := range []int{3, 4, 5} {
		want := plan.BruteForceCount(g, pattern.Clique(k), false)
		res, err := OrientedCliqueCount(c, k, KAutomine)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("oriented %d-CC = %d, want %d", k, res.Count, want)
		}
	}
}

func TestPatternCountInduced(t *testing.T) {
	g := graph.RMATDefault(80, 400, 197)
	c := newCluster(t, g, 2)
	want := plan.BruteForceCount(g, pattern.Diamond(), true)
	res, err := PatternCount(c, pattern.Diamond(), KGraphPi, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("induced diamond = %d, want %d", res.Count, want)
	}
}

func TestCompileUnknownSystem(t *testing.T) {
	if _, err := Compile(System(9), pattern.Triangle(), nil, CompileOptions{}); err == nil {
		t.Fatal("want error for unknown system")
	}
	if System(9).String() == "" || KAutomine.String() == "" {
		t.Fatal("empty system name")
	}
}
