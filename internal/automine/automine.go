// Package automine is the k-Automine client system: the port of Automine's
// compilation-based pattern enumeration onto the Khuzdul engine (paper §6).
// Automine generates nested loops from a canonical greedy matching order; the
// port expresses the same schedule as an EXTEND plan, which the engine
// executes distributedly. In the paper this port cost ~500 lines against the
// Automine compiler; here it is a thin layer over the shared plan compiler
// with StyleAutomine, mirroring how both paper systems share the Khuzdul
// runtime and differ only in schedule generation.
package automine

import (
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Name identifies the system in experiment output.
const Name = "k-Automine"

// Options tunes compilation.
type Options struct {
	// Induced selects induced (motif) matching semantics.
	Induced bool
	// DisableVCS turns off vertical computation sharing (Figure 11).
	DisableVCS bool
	// DisableSymmetryBreak drops restrictions; used with orientation
	// preprocessing, which breaks symmetry structurally.
	DisableSymmetryBreak bool
}

// Compile produces an Automine-style EXTEND plan for pat.
func Compile(pat *pattern.Pattern, g *graph.Graph, opts Options) (*plan.Plan, error) {
	po := plan.Options{
		Style:                plan.StyleAutomine,
		Induced:              opts.Induced,
		DisableVCS:           opts.DisableVCS,
		DisableSymmetryBreak: opts.DisableSymmetryBreak,
	}
	if g != nil {
		po.Stats = plan.StatsOf(g)
	}
	return plan.Compile(pat, po)
}

// CompileMotifs compiles plans for every connected size-k pattern with
// induced semantics — Automine's k-motif-counting mode.
func CompileMotifs(k int, g *graph.Graph, opts Options) ([]*plan.Plan, error) {
	opts.Induced = true
	pats := pattern.ConnectedPatterns(k)
	plans := make([]*plan.Plan, 0, len(pats))
	for _, pat := range pats {
		pl, err := Compile(pat, g, opts)
		if err != nil {
			return nil, err
		}
		plans = append(plans, pl)
	}
	return plans, nil
}
