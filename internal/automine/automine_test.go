package automine

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestCompileProducesAutomineStyle(t *testing.T) {
	g := graph.RMATDefault(100, 500, 811)
	pl, err := Compile(pattern.Clique(4), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Style != plan.StyleAutomine {
		t.Fatalf("style = %v", pl.Style)
	}
	if got, want := plan.CountGraph(pl, g), plan.BruteForceCount(g, pattern.Clique(4), false); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestCompileOptionsForwarded(t *testing.T) {
	pl, err := Compile(pattern.Clique(4), nil, Options{DisableVCS: true, DisableSymmetryBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.VCS {
		t.Fatal("VCS not disabled")
	}
	if len(pl.Restrictions) != 0 {
		t.Fatal("symmetry breaking not disabled")
	}
}

func TestCompileMotifs(t *testing.T) {
	g := graph.RMATDefault(60, 300, 813)
	plans, err := CompileMotifs(4, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 6 {
		t.Fatalf("4-motif plans = %d, want 6", len(plans))
	}
	for _, pl := range plans {
		if !pl.Induced {
			t.Fatal("motif plan not induced")
		}
	}
}

func TestCompileRejectsDisconnected(t *testing.T) {
	disc := pattern.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := Compile(disc, nil, Options{}); err == nil {
		t.Fatal("want error for disconnected pattern")
	}
}
