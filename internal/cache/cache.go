// Package cache implements the software edge-list caches the paper studies.
// The Khuzdul design (§5.3) is the STATIC cache: fill once with hot
// (high-degree) vertices, never evict — no replacement bookkeeping, no
// task↔data dependency maps. For the Figure 16 comparison the package also
// implements FIFO, LIFO, LRU and MRU replacement caches; their extra
// maintenance cost per access is exactly the phenomenon the paper measures.
package cache

import (
	"fmt"
	"strings"
	"sync"

	"khuzdul/internal/graph"
)

// Policy selects a cache design.
type Policy int

const (
	// Static is the paper's insert-once, never-evict design.
	Static Policy = iota
	// FIFO evicts the earliest-inserted entry.
	FIFO
	// LIFO evicts the latest-inserted entry.
	LIFO
	// LRU evicts the least-recently-used entry.
	LRU
	// MRU evicts the most-recently-used entry.
	MRU
)

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "static", "":
		return Static, nil
	case "fifo":
		return FIFO, nil
	case "lifo":
		return LIFO, nil
	case "lru":
		return LRU, nil
	case "mru":
		return MRU, nil
	}
	return Static, fmt.Errorf("cache: unknown policy %q", s)
}

func (p Policy) String() string {
	switch p {
	case Static:
		return "STATIC"
	case FIFO:
		return "FIFO"
	case LIFO:
		return "LIFO"
	case LRU:
		return "LRU"
	case MRU:
		return "MRU"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Cache is a vertex → edge-list cache. Implementations are safe for
// concurrent use.
type Cache interface {
	// Get returns the cached edge list of v.
	Get(v graph.VertexID) ([]graph.VertexID, bool)
	// MaybePut offers a fetched edge list; the policy decides whether to
	// admit it. Returns true if the list was cached.
	MaybePut(v graph.VertexID, list []graph.VertexID) bool
	// Len returns the number of cached entries.
	Len() int
	// SizeBytes returns the accounted size of cached data.
	SizeBytes() uint64
	// Policy returns the cache's policy.
	Policy() Policy
}

// entryBytes accounts an entry: 4 bytes per vertex plus fixed overhead.
func entryBytes(list []graph.VertexID) uint64 { return 16 + 4*uint64(len(list)) }

// New constructs a cache of the given policy. capacityBytes bounds the
// accounted size; degThreshold applies to the Static policy only (minimum
// degree for admission, the paper's default is 64).
func New(policy Policy, capacityBytes uint64, degThreshold uint32) Cache {
	if policy == Static {
		return NewStatic(capacityBytes, degThreshold)
	}
	return newReplacement(policy, capacityBytes)
}

// StaticCache is the paper's no-replacement design. Admission: degree at or
// above the threshold while the cache is not full; after the first rejection
// for capacity the cache is frozen and every later MaybePut is a no-op, so
// the steady-state fast path is a read-lock-only lookup.
type StaticCache struct {
	mu        sync.RWMutex
	data      map[graph.VertexID][]graph.VertexID
	size      uint64
	capacity  uint64
	threshold uint32
	full      bool
}

// NewStatic returns a static cache with the given capacity and degree
// admission threshold.
func NewStatic(capacityBytes uint64, degThreshold uint32) *StaticCache {
	return &StaticCache{
		data:      map[graph.VertexID][]graph.VertexID{},
		capacity:  capacityBytes,
		threshold: degThreshold,
	}
}

// Get implements Cache.
//
//khuzdulvet:hotpath consulted on every remote-list miss
func (c *StaticCache) Get(v graph.VertexID) ([]graph.VertexID, bool) {
	c.mu.RLock()
	l, ok := c.data[v]
	c.mu.RUnlock()
	return l, ok
}

// MaybePut implements Cache.
func (c *StaticCache) MaybePut(v graph.VertexID, list []graph.VertexID) bool {
	if uint32(len(list)) < c.threshold {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.full {
		return false
	}
	if _, ok := c.data[v]; ok {
		return true
	}
	b := entryBytes(list)
	if c.size+b > c.capacity {
		// Frozen from now on: no eviction, no further admission (paper §5.3).
		c.full = true
		return false
	}
	c.data[v] = list
	c.size += b
	return true
}

// Len implements Cache.
func (c *StaticCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.data)
}

// SizeBytes implements Cache.
func (c *StaticCache) SizeBytes() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// Policy implements Cache.
func (c *StaticCache) Policy() Policy { return Static }

// Full reports whether the cache has frozen.
func (c *StaticCache) Full() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.full
}

// replacementCache implements FIFO/LIFO/LRU/MRU with a map plus an intrusive
// doubly-linked list ordered by insertion (FIFO/LIFO) or recency (LRU/MRU).
// Every access mutates shared state under a mutex — the bookkeeping cost the
// paper contrasts with STATIC.
type replacementCache struct {
	policy   Policy
	mu       sync.Mutex
	data     map[graph.VertexID]*rcEntry
	head     *rcEntry // most recent (insertion or use)
	tail     *rcEntry // least recent
	size     uint64
	capacity uint64
	// evictions counts entries removed; exported via Evictions for tests.
	evictions uint64
}

type rcEntry struct {
	v          graph.VertexID
	list       []graph.VertexID
	prev, next *rcEntry
}

func newReplacement(policy Policy, capacityBytes uint64) *replacementCache {
	return &replacementCache{
		policy:   policy,
		data:     map[graph.VertexID]*rcEntry{},
		capacity: capacityBytes,
	}
}

//khuzdulvet:hotpath consulted on every remote-list miss
func (c *replacementCache) Get(v graph.VertexID) ([]graph.VertexID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.data[v]
	if !ok {
		return nil, false
	}
	if c.policy == LRU || c.policy == MRU {
		c.moveToHead(e)
	}
	return e.list, true
}

func (c *replacementCache) MaybePut(v graph.VertexID, list []graph.VertexID) bool {
	b := entryBytes(list)
	if b > c.capacity {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.data[v]; ok {
		if c.policy == LRU || c.policy == MRU {
			c.moveToHead(e)
		}
		return true
	}
	for c.size+b > c.capacity {
		c.evictOne()
	}
	e := &rcEntry{v: v, list: list}
	c.pushHead(e)
	c.data[v] = e
	c.size += b
	return true
}

// evictOne removes the victim the policy dictates.
func (c *replacementCache) evictOne() {
	var victim *rcEntry
	switch c.policy {
	case FIFO, LRU:
		victim = c.tail
	case LIFO, MRU:
		victim = c.head
	}
	if victim == nil {
		return
	}
	c.unlink(victim)
	delete(c.data, victim.v)
	c.size -= entryBytes(victim.list)
	c.evictions++
}

func (c *replacementCache) pushHead(e *rcEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *replacementCache) unlink(e *rcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *replacementCache) moveToHead(e *rcEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushHead(e)
}

func (c *replacementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}

func (c *replacementCache) SizeBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

func (c *replacementCache) Policy() Policy {
	//khuzdulvet:ignore guardfield policy is assigned at construction and never written after
	return c.policy
}

// Evictions returns the number of evicted entries.
func (c *replacementCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
