package cache

import (
	"sync"
	"testing"

	"khuzdul/internal/graph"
)

func list(n int) []graph.VertexID {
	l := make([]graph.VertexID, n)
	for i := range l {
		l[i] = graph.VertexID(i)
	}
	return l
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"static": Static, "FIFO": FIFO, "lifo": LIFO, "LRU": LRU, "mru": MRU, "": Static,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestStaticAdmission(t *testing.T) {
	c := NewStatic(1000, 4)
	if c.MaybePut(1, list(2)) {
		t.Fatal("admitted list below degree threshold")
	}
	if !c.MaybePut(2, list(10)) {
		t.Fatal("rejected hot list with space available")
	}
	got, ok := c.Get(2)
	if !ok || len(got) != 10 {
		t.Fatalf("Get(2) = %v, %v", got, ok)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("Get(1) found rejected entry")
	}
}

func TestStaticFreezesWhenFull(t *testing.T) {
	// Capacity fits one 10-vertex entry (16+40=56) but not two.
	c := NewStatic(80, 1)
	if !c.MaybePut(1, list(10)) {
		t.Fatal("first put rejected")
	}
	if c.MaybePut(2, list(10)) {
		t.Fatal("second put admitted beyond capacity")
	}
	if !c.Full() {
		t.Fatal("cache not frozen after capacity rejection")
	}
	// Even a tiny entry that would fit is now rejected: no replacement, no
	// admission after freeze (paper §5.3).
	if c.MaybePut(3, list(1)) {
		t.Fatal("admission after freeze")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("frozen cache lost its entry")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestStaticIdempotentPut(t *testing.T) {
	c := NewStatic(1000, 1)
	c.MaybePut(7, list(5))
	size := c.SizeBytes()
	if !c.MaybePut(7, list(5)) {
		t.Fatal("re-put of cached entry returned false")
	}
	if c.SizeBytes() != size {
		t.Fatal("re-put changed accounted size")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// Each entry is 16+4*1=20 bytes; capacity 60 holds three.
	c := New(LRU, 60, 0)
	c.MaybePut(1, list(1))
	c.MaybePut(2, list(1))
	c.MaybePut(3, list(1))
	c.Get(1) // 1 becomes most recent; LRU order now 2,3,1
	c.MaybePut(4, list(1))
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	for _, v := range []graph.VertexID{1, 3, 4} {
		if _, ok := c.Get(v); !ok {
			t.Fatalf("LRU evicted %d", v)
		}
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	c := New(MRU, 60, 0)
	c.MaybePut(1, list(1))
	c.MaybePut(2, list(1))
	c.MaybePut(3, list(1))
	c.Get(1) // 1 most recent
	c.MaybePut(4, list(1))
	if _, ok := c.Get(1); ok {
		t.Fatal("MRU kept the most recently used entry")
	}
	for _, v := range []graph.VertexID{2, 3, 4} {
		if _, ok := c.Get(v); !ok {
			t.Fatalf("MRU evicted %d", v)
		}
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	c := New(FIFO, 60, 0)
	c.MaybePut(1, list(1))
	c.MaybePut(2, list(1))
	c.MaybePut(3, list(1))
	c.Get(1) // recency must NOT matter for FIFO
	c.MaybePut(4, list(1))
	if _, ok := c.Get(1); ok {
		t.Fatal("FIFO kept the oldest entry")
	}
}

func TestLIFOEvictsNewest(t *testing.T) {
	c := New(LIFO, 60, 0)
	c.MaybePut(1, list(1))
	c.MaybePut(2, list(1))
	c.MaybePut(3, list(1))
	c.MaybePut(4, list(1))
	if _, ok := c.Get(3); ok {
		t.Fatal("LIFO kept the newest pre-existing entry")
	}
	for _, v := range []graph.VertexID{1, 2, 4} {
		if _, ok := c.Get(v); !ok {
			t.Fatalf("LIFO evicted %d", v)
		}
	}
}

func TestReplacementRejectsOversized(t *testing.T) {
	c := New(LRU, 30, 0)
	if c.MaybePut(1, list(100)) {
		t.Fatal("admitted entry larger than capacity")
	}
}

func TestSizeAccounting(t *testing.T) {
	c := New(FIFO, 1000, 0)
	c.MaybePut(1, list(10)) // 56 bytes
	c.MaybePut(2, list(20)) // 96 bytes
	if got := c.SizeBytes(); got != 152 {
		t.Fatalf("SizeBytes = %d, want 152", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictionCounter(t *testing.T) {
	c := newReplacement(LRU, 40) // holds two 20-byte entries
	c.MaybePut(1, list(1))
	c.MaybePut(2, list(1))
	c.MaybePut(3, list(1))
	if got := c.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	for _, p := range []Policy{Static, FIFO, LIFO, LRU, MRU} {
		c := New(p, 1<<16, 0)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					v := graph.VertexID((w*500 + i) % 300)
					c.MaybePut(v, list(i%20+1))
					c.Get(v)
				}
			}(w)
		}
		wg.Wait()
		if c.Len() == 0 && p != Static {
			t.Errorf("%v: empty after concurrent fill", p)
		}
	}
}

func TestPolicyAccessor(t *testing.T) {
	for _, p := range []Policy{Static, FIFO, LIFO, LRU, MRU} {
		if got := New(p, 100, 0).Policy(); got != p {
			t.Errorf("Policy() = %v, want %v", got, p)
		}
		if p.String() == "" {
			t.Errorf("empty String for %d", int(p))
		}
	}
}
