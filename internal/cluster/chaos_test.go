package cluster

import (
	"testing"
	"time"

	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/graphpi"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// chaosConfig is the shared shape of the chaos tests: small chunks so runs
// checkpoint many root ranges, short timeouts so dead-peer detection is fast.
func chaosConfig(prof *fault.Profile, transport Transport) Config {
	return Config{
		NumNodes:         4,
		ThreadsPerSocket: 2,
		ChunkSize:        8,
		Transport:        transport,
		Fault:            prof,
		FetchTimeout:     50 * time.Millisecond,
		FetchRetries:     5,
		RetryBackoff:     200 * time.Microsecond,
		BreakerThreshold: 3,
	}
}

// TestChaosTransientErrorsExactCounts injects transient fetch errors on every
// connection pair; the retry layer must absorb them all (or task-level
// recovery must mop up retry exhaustion) with counts identical to the
// fault-free run.
func TestChaosTransientErrorsExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	c := mustCluster(t, g, chaosConfig(&fault.Profile{Seed: 7, ErrorRate: 0.2}, TransportChan))
	res, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count under transient faults = %d, want %d", res.Count, want)
	}
	s := res.Summary
	if s.FaultsInjected == 0 {
		t.Fatal("no faults injected despite 20% error rate")
	}
	if s.FetchRetries == 0 {
		t.Fatal("no retries recorded despite injected errors")
	}
}

// TestChaosCrashRecoveryExactCounts is the headline chaos scenario: transient
// errors everywhere plus one permanent node crash mid-run. The run must
// complete with counts identical to the fault-free run, report the dead node,
// and show recovery work in the metrics.
func TestChaosCrashRecoveryExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{
				Seed:      11,
				ErrorRate: 0.05,
				Crashes:   []fault.Crash{{Node: 1, After: 10}},
			}
			c := mustCluster(t, g, chaosConfig(prof, transport))
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count under crash = %d, want %d", res.Count, want)
			}
			if res.RecoveryRounds == 0 {
				t.Fatal("crash run reported no recovery rounds")
			}
			found := false
			for _, n := range res.DeadNodes {
				if n == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("DeadNodes = %v, want to include crashed node 1", res.DeadNodes)
			}
			s := res.Summary
			if s.RecoveredRoots == 0 {
				t.Fatal("no recovered roots recorded")
			}
			if s.FetchTimeouts == 0 {
				t.Fatal("no fetch timeouts recorded despite a hung crashed node")
			}
			if s.BreakerTrips == 0 {
				t.Fatal("breaker never tripped despite a dead peer")
			}
		})
	}
}

// TestChaosCrashDeterministicGivenSeed repeats the crash scenario with the
// same seed: both runs must converge to the same (correct) count and agree
// on the dead set.
func TestChaosCrashDeterministicGivenSeed(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(120, 700, 41)
	pl, err := graphpi.Compile(pattern.Triangle(), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Triangle(), false)

	run := func() Result {
		prof := &fault.Profile{Seed: 3, ErrorRate: 0.1, Crashes: []fault.Crash{{Node: 2, After: 5}}}
		c := mustCluster(t, g, chaosConfig(prof, TransportChan))
		res, err := c.Count(pl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Count != want || b.Count != want {
		t.Fatalf("counts %d, %d, want %d", a.Count, b.Count, want)
	}
	if len(a.DeadNodes) != len(b.DeadNodes) {
		t.Fatalf("dead sets differ across identical seeds: %v vs %v", a.DeadNodes, b.DeadNodes)
	}
}

// TestResilientNoFaultsNoEvents turns the resilience layer on without a fault
// profile: results must be untouched and no resilience events recorded.
func TestResilientNoFaultsNoEvents(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(120, 700, 41)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	c := mustCluster(t, g, Config{NumNodes: 4, ThreadsPerSocket: 2, Resilient: true})
	res, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("resilient healthy count = %d, want %d", res.Count, want)
	}
	if res.RecoveryRounds != 0 || len(res.DeadNodes) != 0 {
		t.Fatalf("healthy run reported recovery: rounds=%d dead=%v", res.RecoveryRounds, res.DeadNodes)
	}
	s := res.Summary
	if s.FetchRetries != 0 || s.FetchTimeouts != 0 || s.BreakerTrips != 0 || s.FaultsInjected != 0 || s.RecoveredRoots != 0 {
		t.Fatalf("healthy run recorded resilience events: %+v", s)
	}
}

// TestChaosWireCorruptionExactCounts flips payload bytes on 5% of exchanges
// over both fabrics. On TCP the CRC actually catches real flipped bytes on the
// wire; on the in-process fabric the injector synthesizes the same verdict.
// Either way the retry layer must absorb every rejection and the count must be
// bit-identical to the fault-free run.
func TestChaosWireCorruptionExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{Seed: 19, CorruptRate: 0.05}
			c := mustCluster(t, g, chaosConfig(prof, transport))
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count under corruption = %d, want %d", res.Count, want)
			}
			s := res.Summary
			if s.CorruptFrames == 0 {
				t.Fatal("no corrupt frames recorded despite 5% corruption rate")
			}
			if s.FetchRetries == 0 {
				t.Fatal("no retries recorded despite rejected frames")
			}
			if transport == TransportTCP && s.Redials == 0 {
				t.Fatal("TCP fabric never redialed after a poisoned connection")
			}
		})
	}
}

// TestChaosConnectionDropsExactCounts severs 5% of exchanges mid-flight. The
// client sees a torn connection, redials, and retries; counts stay exact.
func TestChaosConnectionDropsExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{Seed: 23, DropRate: 0.05}
			c := mustCluster(t, g, chaosConfig(prof, transport))
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count under drops = %d, want %d", res.Count, want)
			}
			s := res.Summary
			if s.FetchRetries == 0 {
				t.Fatal("no retries recorded despite dropped connections")
			}
			if transport == TransportTCP && s.Redials == 0 {
				t.Fatal("TCP fabric never redialed after a severed connection")
			}
		})
	}
}

// TestChaosPartitionRecoveryExactCounts opens an asymmetric partition mid-run:
// node 0 loses sight of node 1 while every other direction stays healthy.
// Node 0's fetches toward 1 hang into timeouts, the breaker declares 1 dead
// cluster-wide (the consistent-verdict rule), and task-level recovery
// re-executes whatever was pending — with counts still bit-identical.
func TestChaosPartitionRecoveryExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{
				Seed:       31,
				Partitions: []fault.Partition{{A: []int{0}, B: []int{1}, After: 30}},
			}
			c := mustCluster(t, g, chaosConfig(prof, transport))
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count under partition = %d, want %d", res.Count, want)
			}
			if res.RecoveryRounds == 0 {
				t.Fatal("partition run reported no recovery rounds")
			}
			found := false
			for _, n := range res.DeadNodes {
				if n == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("DeadNodes = %v, want to include partitioned node 1", res.DeadNodes)
			}
			if res.Summary.FetchTimeouts == 0 {
				t.Fatal("no fetch timeouts recorded despite hung partition traffic")
			}
		})
	}
}

// TestChaosHeartbeatSuspectsCrashedNode enables the failure detector on a
// crash run: the crashed node's pings stop answering, consecutive misses
// accumulate, and the detector's verdict (not just the breaker) marks it
// dead. Counts must still be exact.
func TestChaosHeartbeatSuspectsCrashedNode(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	prof := &fault.Profile{Seed: 11, Crashes: []fault.Crash{{Node: 1, After: 10}}}
	cfg := chaosConfig(prof, TransportChan)
	cfg.Heartbeat = true
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.HeartbeatTimeout = 10 * time.Millisecond
	cfg.HeartbeatMisses = 2
	c := mustCluster(t, g, cfg)
	res, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count under crash with heartbeat = %d, want %d", res.Count, want)
	}
	found := false
	for _, n := range res.DeadNodes {
		if n == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DeadNodes = %v, want to include crashed node 1", res.DeadNodes)
	}
	s := res.Summary
	if s.HeartbeatMisses == 0 {
		t.Fatal("no heartbeat misses recorded despite a crashed node")
	}
	if s.NodesSuspected == 0 {
		t.Fatal("detector never suspected the crashed node")
	}
}

// TestChaosSlowNodeSpeculationExactCounts makes node 1 a 60× straggler and
// turns speculation on: idle survivors re-execute its unfinished suffix, and
// the first-completion-wins reconciliation must keep the count bit-identical
// whether the straggler or the speculative copy finishes first.
func TestChaosSlowNodeSpeculationExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{
				Seed:      37,
				Slowdowns: []fault.Slowdown{{Node: 1, Factor: 60}},
			}
			cfg := chaosConfig(prof, transport)
			cfg.Speculate = true
			c := mustCluster(t, g, cfg)
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count under straggler = %d, want %d", res.Count, want)
			}
			s := res.Summary
			if s.SpeculativeRanges == 0 {
				t.Fatal("no speculative ranges executed against a 60x straggler")
			}
			t.Logf("speculation: %d ranges re-executed, %d wins", s.SpeculativeRanges, s.SpeculationWins)
		})
	}
}

// TestChaosSpeculationHealthyRunExact leaves speculation armed on a fault-free
// run. Natural skew may or may not trigger a speculative copy; either way the
// reconciliation must never double- or under-count.
func TestChaosSpeculationHealthyRunExact(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	cfg := chaosConfig(nil, TransportChan)
	cfg.Speculate = true
	c := mustCluster(t, g, cfg)
	for i := 0; i < 3; i++ {
		res, err := c.Count(pl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("run %d: healthy speculative count = %d, want %d", i, res.Count, want)
		}
	}
}

// TestChaosKitchenSinkExactCounts is the acceptance scenario: corruption,
// connection drops, transient errors, an asymmetric partition, and a straggler
// all at once, with the heartbeat detector and speculation both enabled —
// over both fabrics, with counts bit-identical to the fault-free run.
func TestChaosKitchenSinkExactCounts(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)

	for name, transport := range map[string]Transport{"chan": TransportChan, "tcp": TransportTCP} {
		t.Run(name, func(t *testing.T) {
			prof := &fault.Profile{
				Seed:        41,
				ErrorRate:   0.02,
				CorruptRate: 0.02,
				DropRate:    0.02,
				Partitions:  []fault.Partition{{A: []int{2}, B: []int{3}, After: 50}},
				Slowdowns:   []fault.Slowdown{{Node: 1, Factor: 20}},
			}
			cfg := chaosConfig(prof, transport)
			cfg.Heartbeat = true
			cfg.HeartbeatInterval = 5 * time.Millisecond
			cfg.HeartbeatTimeout = 10 * time.Millisecond
			cfg.HeartbeatMisses = 3
			cfg.Speculate = true
			c := mustCluster(t, g, cfg)
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("kitchen-sink count = %d, want %d", res.Count, want)
			}
			s := res.Summary
			if s.CorruptFrames == 0 {
				t.Fatal("no corrupt frames recorded in the kitchen sink")
			}
			if s.FetchRetries == 0 {
				t.Fatal("no retries recorded in the kitchen sink")
			}
			t.Logf("kitchen sink [%s]: corrupt=%d redials=%d hbMiss=%d suspected=%d specRanges=%d specWins=%d recovery=%d dead=%v",
				name, s.CorruptFrames, s.Redials, s.HeartbeatMisses, s.NodesSuspected,
				s.SpeculativeRanges, s.SpeculationWins, res.RecoveryRounds, res.DeadNodes)
		})
	}
}

// TestChaosCountAllSurvivesCrash runs motif counting (several plans back to
// back on one cluster) across a crash: the first plan's run kills the node,
// later plans start with the node already dead and must still be exact.
func TestChaosCountAllSurvivesCrash(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(100, 500, 43)
	plans, err := graphpi.CompileMotifs(3, g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, pat := range pattern.ConnectedPatterns(3) {
		want += plan.BruteForceCount(g, pat, true)
	}
	prof := &fault.Profile{Seed: 5, ErrorRate: 0.02, Crashes: []fault.Crash{{Node: 3, After: 10}}}
	c := mustCluster(t, g, chaosConfig(prof, TransportChan))
	_, combined, err := c.CountAll(plans)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Count != want {
		t.Fatalf("motif total under crash = %d, want %d", combined.Count, want)
	}
	if len(combined.DeadNodes) == 0 {
		t.Fatal("no dead nodes reported across motif runs")
	}
}
