// Package cluster drives the simulated Khuzdul deployment: N machines, each
// holding one 1-D hash partition of the input graph, each running one engine
// instance per NUMA socket, all connected by a communication fabric
// (in-process or TCP loopback). It owns machine lifecycle, per-node caches,
// metric aggregation and result reduction — the pieces MPI plus the paper's
// launcher scripts provide on a real cluster.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/cache"
	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
	"khuzdul/internal/plan"
)

// ErrUnknownTransport marks a Config naming a transport the cluster cannot
// build. It is a configuration error, not a runtime fault: nothing ran yet.
var ErrUnknownTransport = errors.New("cluster: unknown transport")

// ErrRunCanceled marks a run aborted by its RunOpts.Cancel channel. It is
// deliberate, not a fault: the run bypasses task-level recovery (which would
// re-execute the very work the caller asked to stop) and returns partial
// nothing — canceled counts are meaningless.
var ErrRunCanceled = errors.New("cluster: run canceled")

// Transport selects the communication fabric.
type Transport int

const (
	// TransportChan is the in-process fabric (default).
	TransportChan Transport = iota
	// TransportTCP runs every fetch through loopback TCP sockets.
	TransportTCP
)

// Config describes a simulated cluster.
type Config struct {
	// NumNodes is the number of machines (paper default: 8).
	NumNodes int
	// Sockets is the NUMA socket count per machine (paper hardware: 2).
	// 1 disables NUMA support, reproducing the Table 7 baseline.
	Sockets int
	// ThreadsPerSocket is the compute worker count per engine instance.
	ThreadsPerSocket int
	// ChunkSize is the per-level chunk capacity in embeddings.
	ChunkSize int
	// HDS enables horizontal data sharing (default on; Figure 12 ablation).
	DisableHDS bool
	// CacheFraction sizes each machine's static cache as a fraction of the
	// graph size (paper: 5–15%). 0 disables the cache.
	CacheFraction float64
	// CachePolicy selects the cache design (paper default STATIC; FIFO/LIFO/
	// LRU/MRU reproduce Figure 16).
	CachePolicy cache.Policy
	// CacheDegreeThreshold is the static cache admission threshold
	// (paper: 64; scaled presets use lower values).
	CacheDegreeThreshold uint32
	// SharedCache builds the per-socket caches once at cluster construction
	// and reuses them across runs, instead of rebuilding cold caches per
	// run. The resident query service sets this so hub adjacency fetched by
	// one query serves every later query. Safe under concurrent runs — the
	// cache implementations synchronize internally — but hit-rate metrics
	// then mix all concurrent runs' traffic.
	SharedCache bool
	// Transport selects the fabric.
	Transport Transport
	// InFlight bounds how many multiplexed requests the TCP fabric keeps
	// outstanding per connection (0 = the fabric default). Ignored by the
	// chan transport.
	InFlight int
	// SerialWire pins the TCP fabric's handshake window to the serial
	// protocol generation (≤ v2), disabling request multiplexing — the
	// transport ablation's baseline arm.
	SerialWire bool
	// MiniBatch and FlushSize pass through to the engine.
	MiniBatch int
	FlushSize int
	// HubThreshold, when nonzero, overrides the compiled hub-vertex degree
	// threshold for the engines' bitmap intersection kernel (0 keeps the
	// value derived from the graph's degree histogram at plan compile time).
	HubThreshold uint32
	// StrictPipeline disables the engine's fire-all-fetches-at-seal
	// overlapping (ablation of the paper's §4.3 design choice).
	StrictPipeline bool
	// SequentialNodes runs the simulated machines one after another instead
	// of concurrently. Edge-list serving is passive (executed in the
	// requester's context), so results are identical; per-machine busy-time
	// measurements stop inflating each other on hosts with fewer cores than
	// simulated workers, which makes ModeledElapsed trustworthy. Elapsed
	// then approximates the cluster's total CPU work.
	SequentialNodes bool

	// Fault injects deterministic faults (transient fetch errors, latency,
	// permanent node crashes) into the fabric. Nil disables injection and
	// adds zero overhead. A non-nil profile implies Resilient.
	Fault *fault.Profile
	// Resilient enables the retry/deadline/circuit-breaker fetch layer and
	// task-level recovery even without a fault profile (e.g. for real
	// networks). Implied by Fault, FetchTimeout, FetchRetries or
	// BreakerThreshold being set.
	Resilient bool
	// FetchTimeout bounds each fetch attempt (default 250ms when resilience
	// is enabled).
	FetchTimeout time.Duration
	// FetchRetries is the number of retry attempts per fetch after the
	// first (default 5 when resilience is enabled).
	FetchRetries int
	// RetryBackoff is the initial retry backoff; it doubles per attempt
	// with deterministic jitter (default 1ms).
	RetryBackoff time.Duration
	// BreakerThreshold is the number of consecutive timed-out fetches to
	// one peer after which it is declared dead and task-level recovery
	// takes over its unfinished source ranges (default 3).
	BreakerThreshold int

	// Heartbeat runs a failure detector: one goroutine per machine pings
	// every peer over the fabric and declares a peer suspect after
	// HeartbeatMisses consecutive missed pings. Suspicion feeds the retry
	// layer's dead-peer verdicts, so every worker fails fast against a dead
	// machine instead of independently burning its retry budget. Implies
	// Resilient.
	Heartbeat bool
	// HeartbeatInterval is the ping period per (node, peer) pair
	// (default 20ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one ping round trip (default 2×interval).
	HeartbeatTimeout time.Duration
	// HeartbeatMisses is the consecutive-miss threshold for suspicion
	// (default 3).
	HeartbeatMisses int

	// Speculate enables straggler speculation: the driver samples each
	// engine's completed-root prefix, and once some machines sit idle it
	// re-executes the slowest engine's unfinished roots on an idle machine.
	// Whichever copy completes the tail first wins; counts are reconciled
	// at range granularity so the result is bit-identical to a run without
	// speculation. Requires concurrently running machines and counting
	// sinks; implies Resilient.
	Speculate bool
}

func (c Config) withDefaults() Config {
	if c.NumNodes <= 0 {
		c.NumNodes = 1
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	if c.ThreadsPerSocket <= 0 {
		c.ThreadsPerSocket = 1
	}
	if c.CacheDegreeThreshold == 0 {
		c.CacheDegreeThreshold = 64
	}
	if c.Fault != nil || c.FetchTimeout > 0 || c.FetchRetries > 0 || c.BreakerThreshold > 0 ||
		c.Heartbeat || c.Speculate {
		c.Resilient = true
	}
	if c.Resilient {
		if c.FetchTimeout <= 0 {
			c.FetchTimeout = 250 * time.Millisecond
		}
		if c.FetchRetries <= 0 {
			c.FetchRetries = 5
		}
		if c.BreakerThreshold <= 0 {
			c.BreakerThreshold = 3
		}
	}
	return c
}

// Cluster is a running simulated deployment over one input graph.
type Cluster struct {
	g      *graph.Graph
	cfg    Config
	asg    partition.Assignment
	locals []*partition.Local
	met    *metrics.Cluster
	fabric comm.Fabric
	// injector and resilient are the fault-injection and retry layers of
	// the fabric stack; nil when resilience is disabled.
	injector  *fault.Injector
	resilient *comm.Resilient
	// detector is the heartbeat failure detector; nil unless Heartbeat is
	// configured. It runs for the cluster's whole lifetime over the
	// original fabric stack.
	detector *comm.Detector
	// scaches, under Config.SharedCache, holds one persistent cache per
	// (node, socket) slot, reused by every run instead of rebuilt cold.
	scaches []cache.Cache
	// recMu serializes task-level recovery: concurrent runs (the query
	// service) must not race two fabric rebuilds.
	recMu sync.Mutex
	// fo is the resident failover routing adopted after a successful
	// recovery: subsequent runs route dead machines' shards to survivors
	// from the start instead of re-discovering the crash per run. Each run
	// snapshots the pointer once, so a mid-run adoption by a concurrent
	// run's recovery never changes routing under a running query. Nil until
	// a recovery converges.
	fo atomic.Pointer[failover]
	// repart counts topology adoptions — how many times the resident
	// routing re-partitioned because the dead set changed.
	repart atomic.Uint64
}

// New partitions g across the configured machines and opens the fabric.
func New(g *graph.Graph, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	asg := partition.NewAssignment(cfg.NumNodes, cfg.Sockets)
	met := metrics.NewCluster(cfg.NumNodes)
	locals := make([]*partition.Local, cfg.NumNodes)
	servers := make([]comm.Server, cfg.NumNodes)
	for node := 0; node < cfg.NumNodes; node++ {
		locals[node] = partition.NewLocal(g, asg, node)
		l := locals[node]
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				if l.Owns(id) {
					out[i] = l.MustNeighbors(id)
					continue
				}
				// A vertex this machine does not own under the base
				// assignment: the requester routed it here through an adopted
				// failover topology, so serve it from the full graph — the
				// stand-in for the re-partitioned shard a survivor reloads
				// after a crash.
				out[i] = g.Neighbors(id)
			}
			return out
		})
	}
	c := &Cluster{g: g, cfg: cfg, asg: asg, locals: locals, met: met}
	fabric, err := c.buildFabric(servers)
	if err != nil {
		return nil, err
	}
	c.fabric = fabric
	if cfg.SharedCache {
		if bytesPerSocket := c.cacheBytesPerSocket(); bytesPerSocket > 0 {
			c.scaches = make([]cache.Cache, cfg.NumNodes*cfg.Sockets)
			for i := range c.scaches {
				c.scaches[i] = cache.New(cfg.CachePolicy, bytesPerSocket, cfg.CacheDegreeThreshold)
			}
		}
	}
	if cfg.Heartbeat {
		// The detector pings through the full fabric stack (including the
		// fault injector) so crashes and partitions are felt exactly as data
		// traffic feels them. A crashed machine's own detector goroutine
		// stops accusing peers — a dead process's timers stop firing.
		var selfDead func(int) bool
		if c.injector != nil {
			selfDead = c.injector.Crashed
		}
		c.detector = comm.NewDetector(c.fabric, cfg.NumNodes, comm.DetectorConfig{
			Interval: cfg.HeartbeatInterval,
			Timeout:  cfg.HeartbeatTimeout,
			Misses:   cfg.HeartbeatMisses,
		}, c.met, selfDead)
		if c.resilient != nil {
			c.resilient.SetSuspector(c.detector.Suspected)
		}
		c.detector.Start()
	}
	return c, nil
}

// buildFabric assembles the fabric stack for one set of servers: the base
// transport, optionally wrapped by the fault injector, optionally wrapped by
// the retry/deadline/breaker layer. The same stack shape is rebuilt for
// recovery rounds, sharing the injector's fault state and the known-dead
// verdicts so crashes persist across rounds.
func (c *Cluster) buildFabric(servers []comm.Server) (comm.Fabric, error) {
	var fabric comm.Fabric
	switch c.cfg.Transport {
	case TransportChan:
		fabric = comm.NewLocal(servers, c.met)
	case TransportTCP:
		t, err := comm.NewTCP(servers, c.met)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		if c.cfg.FetchTimeout > 0 {
			// Bound every socket operation by the fetch deadline so a hung
			// peer releases the connection promptly.
			t.SetIOTimeout(c.cfg.FetchTimeout)
		}
		if c.cfg.InFlight > 0 {
			t.SetInFlight(c.cfg.InFlight)
		}
		if c.cfg.SerialWire {
			t.SetVersionWindow(comm.ProtoVersionMin, comm.ProtoVersionSerialMax)
		}
		fabric = t
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownTransport, c.cfg.Transport)
	}
	if c.cfg.Fault != nil && !c.cfg.Fault.Zero() {
		if c.injector == nil {
			c.injector = fault.NewInjector(*c.cfg.Fault, c.cfg.NumNodes, c.met)
		}
		fabric = c.injector.Wrap(fabric)
	}
	if c.cfg.Resilient {
		r := comm.NewResilient(fabric, c.cfg.NumNodes, comm.RetryConfig{
			Timeout:          c.cfg.FetchTimeout,
			Retries:          c.cfg.FetchRetries,
			Backoff:          c.cfg.RetryBackoff,
			BreakerThreshold: c.cfg.BreakerThreshold,
			Seed:             seedOf(c.cfg.Fault),
		}, c.met)
		if c.resilient != nil {
			for _, n := range c.resilient.DeadNodes() {
				r.MarkDead(n)
			}
		}
		if c.detector != nil {
			// Fabric rebuilds (recovery rounds) keep consuming the running
			// detector's verdicts.
			r.SetSuspector(c.detector.Suspected)
		}
		c.resilient = r
		fabric = r
	}
	return fabric, nil
}

// seedOf extracts the jitter seed from an optional fault profile.
func seedOf(p *fault.Profile) int64 {
	if p == nil {
		return 0
	}
	return p.Seed
}

// Close stops the failure detector (if any) and releases the fabric.
func (c *Cluster) Close() error {
	if c.detector != nil {
		c.detector.Stop()
	}
	return c.fabric.Close()
}

// Graph returns the input graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's metric store (reset between runs by Run).
func (c *Cluster) Metrics() *metrics.Cluster { return c.met }

// DeadNodes returns the machines the cluster currently believes dead —
// crashed by fault injection or declared dead by the circuit breaker —
// ascending. The resident query service's health surface reads this.
func (c *Cluster) DeadNodes() []int { return c.deadNodes() }

// Repartitions returns how many times the cluster adopted a new failover
// topology after recovery: concurrent queries that trip over the same crash
// share one re-partition, so under a single node loss this stays at 1 no
// matter how many queries were in flight.
func (c *Cluster) Repartitions() uint64 { return c.repart.Load() }

// Result is the outcome of one distributed run.
type Result struct {
	// Count is the total match count summed over all machines (meaningful
	// when sinks are counting sinks).
	Count uint64
	// Elapsed is the end-to-end wall time of the run. On hosts with fewer
	// cores than simulated workers, wall time approximates total CPU work
	// rather than cluster makespan; use ModeledElapsed for scalability
	// comparisons.
	Elapsed time.Duration
	// ModeledElapsed is the modeled cluster makespan: the slowest machine's
	// critical path assuming its compute parallelizes over its workers and
	// its per-socket scheduling stays serial —
	// max over nodes of (compute/(sockets·threads) + (scheduler+cache)/sockets).
	// Communication is treated as overlapped, which the paper's Figure 19
	// (network far from saturated, compute-bound) justifies. The inputs are
	// measured per-machine busy times, so load imbalance between machines
	// is captured, not assumed.
	ModeledElapsed time.Duration
	// Summary aggregates all machines' metrics.
	Summary metrics.Summary
	// PerNode is each machine's runtime breakdown.
	PerNode []metrics.Breakdown
	// RecoveryRounds is the number of task-level recovery rounds the run
	// needed after fetch failures (0 on a healthy run).
	RecoveryRounds int
	// DeadNodes lists the machines declared dead during the run — crashed by
	// fault injection or declared dead by the circuit breaker — ascending.
	DeadNodes []int
}

// RunOpts tunes one run beyond the cluster-wide Config. The zero value
// reproduces Run's behavior exactly.
type RunOpts struct {
	// Cancel, when non-nil and closed, aborts the run: every engine stops at
	// its next range or batch boundary, and in-flight remote fetches —
	// including their retry backoffs — are abandoned through the resilient
	// layer's FetchCancel. The run returns ErrRunCanceled without entering
	// task-level recovery.
	Cancel <-chan struct{}
	// ThreadsPerSocket overrides Config.ThreadsPerSocket for this run
	// (0 = the configured value). The query service uses it as the
	// per-query worker budget so one heavy query cannot occupy every core.
	ThreadsPerSocket int
	// KeepMetrics skips the per-run metrics reset. Concurrent runs share the
	// cluster's metric store, so a resident service accumulates instead of
	// clobbering; exact counts still come from each run's own sinks.
	KeepMetrics bool
}

// chanClosed reports whether the cancel signal (possibly nil) has fired.
func chanClosed(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// Run executes one plan over the cluster. sinkFactory supplies the
// application sink per (node, socket) engine instance; Run returns once all
// machines finish and aggregates their metrics. Each call resets metrics.
func (c *Cluster) Run(pl *plan.Plan, sinkFactory func(node, socket int) core.Sink) (Result, error) {
	return c.RunWith(pl, sinkFactory, RunOpts{})
}

// cacheBytesPerSocket sizes each engine's cache share from CacheFraction.
func (c *Cluster) cacheBytesPerSocket() uint64 {
	if c.cfg.CacheFraction <= 0 {
		return 0
	}
	total := float64(c.g.SizeBytes()) * c.cfg.CacheFraction
	return uint64(total / float64(c.cfg.Sockets))
}

// RunWith is Run with per-run options: cancellation, a worker budget, and
// metric accumulation. Multiple RunWith calls may execute concurrently on
// one cluster (the query service's whole point); they share the fabric, the
// metric store (use KeepMetrics) and, under Config.SharedCache, the caches.
func (c *Cluster) RunWith(pl *plan.Plan, sinkFactory func(node, socket int) core.Sink, opts RunOpts) (Result, error) {
	if !opts.KeepMetrics {
		// Fresh counters per run so experiments report only their own
		// traffic.
		c.met.Reset()
	}
	threads := c.cfg.ThreadsPerSocket
	if opts.ThreadsPerSocket > 0 {
		threads = opts.ThreadsPerSocket
	}

	var labelOf plan.LabelFunc
	if c.g.Labeled() {
		labelOf = c.g.Label
	}
	var edgeLabelOf plan.EdgeLabelFunc
	if c.g.EdgeLabeled() {
		edgeLabelOf = plan.EdgeLabelOracle(c.g)
	}

	cacheBytesPerSocket := c.cacheBytesPerSocket()

	// Snapshot the resident failover topology once per run: dead machines'
	// shards route to survivors from the first fetch, and the snapshot keeps
	// routing stable even if a concurrent run's recovery adopts a newer
	// topology mid-run.
	fo := c.fo.Load()

	start := time.Now()
	var wg sync.WaitGroup
	sinks := make([]core.Sink, 0, c.cfg.NumNodes*c.cfg.Sockets)
	errs := make([]error, c.cfg.NumNodes*c.cfg.Sockets)
	// Range trackers checkpoint each engine's completed source-vertex prefix
	// (and the count committed at that point) so task-level recovery can
	// re-execute only unfinished roots. Allocated only under resilience;
	// entries stay nil for sinks that are not counting sinks, which makes
	// that slot unrecoverable (recovery dedup needs committed-count
	// snapshots).
	var trackers []*rangeTracker
	if c.cfg.Resilient {
		trackers = make([]*rangeTracker, c.cfg.NumNodes*c.cfg.Sockets)
	}
	// Straggler speculation needs concurrently running machines (an idle
	// survivor to speculate onto) and full checkpoint tracking; the
	// speculator stays inert when either is missing.
	var spec *speculator
	if c.cfg.Speculate && !c.cfg.SequentialNodes && trackers != nil {
		spec = newSpeculator(c, pl, labelOf, edgeLabelOf)
		spec.fo = fo
	}
	var engines []*core.Engine
	for node := 0; node < c.cfg.NumNodes; node++ {
		for socket := 0; socket < c.cfg.Sockets; socket++ {
			slot := node*c.cfg.Sockets + socket
			var ca cache.Cache
			switch {
			case c.scaches != nil:
				ca = c.scaches[slot]
			case cacheBytesPerSocket > 0:
				ca = cache.New(c.cfg.CachePolicy, cacheBytesPerSocket, c.cfg.CacheDegreeThreshold)
			}
			src := &nodeSource{
				local:  c.locals[node],
				socket: socket,
				fabric: c.fabric,
				met:    c.met.Nodes[node],
				g:      c.g,
				fo:     fo,
				roots:  c.rootsOf(fo, node, socket),
			}
			sink := sinkFactory(node, socket)
			sinks = append(sinks, sink)
			// The fetch-abort channel: speculation's per-slot channel when the
			// speculator is live (it subsumes nothing else), otherwise the
			// caller's cancel channel so a canceled query abandons in-flight
			// remote fetches instead of draining their retry schedules.
			if spec != nil {
				src.cancel = spec.cancelChan(slot)
			} else if opts.Cancel != nil {
				src.cancel = opts.Cancel
			}
			var onRange func(start, end int)
			if trackers != nil {
				if cs, ok := sink.(*core.CountSink); ok {
					tr := &rangeTracker{sink: cs}
					trackers[slot] = tr
					onRange = tr.onRangeDone
				}
			}
			var canceled func() bool
			switch {
			case spec != nil && opts.Cancel != nil:
				slot := slot
				canceled = func() bool { return spec.canceled(slot) || chanClosed(opts.Cancel) }
			case spec != nil:
				slot := slot
				canceled = func() bool { return spec.canceled(slot) }
			case opts.Cancel != nil:
				canceled = func() bool { return chanClosed(opts.Cancel) }
			}
			ext := core.NewPlanExtender(pl, labelOf)
			ext.EdgeLabelOf = edgeLabelOf
			eng := core.NewEngine(ext, src, sink, core.Config{
				ChunkSize:      c.cfg.ChunkSize,
				Threads:        threads,
				MiniBatch:      c.cfg.MiniBatch,
				FlushSize:      c.cfg.FlushSize,
				HubThreshold:   c.cfg.HubThreshold,
				HDS:            !c.cfg.DisableHDS,
				StrictPipeline: c.cfg.StrictPipeline,
				Cache:          ca,
				Metrics:        c.met.Nodes[node],
				OnRangeDone:    onRange,
				Canceled:       canceled,
			})
			if c.cfg.SequentialNodes {
				engines = append(engines, eng)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := eng.Run()
				errs[slot] = err
				if spec != nil {
					spec.slotDone(slot, err)
				}
			}()
		}
	}
	if c.cfg.SequentialNodes {
		for slot, eng := range engines {
			errs[slot] = eng.Run()
		}
	} else {
		if spec != nil {
			spec.begin(trackers)
		}
		wg.Wait()
	}
	var overrides map[int]uint64
	if spec != nil {
		overrides = spec.finish(errs)
	}

	// A run aborted by its caller is not a fault: recovery would re-execute
	// exactly the work the caller asked to stop. Any slot error — engine
	// cancellation, an abandoned fetch, or a failure racing the abort — is
	// subsumed by the cancellation verdict.
	if opts.Cancel != nil && chanClosed(opts.Cancel) {
		for _, err := range errs {
			if err != nil {
				return Result{}, ErrRunCanceled
			}
		}
		// Every slot finished before observing the cancel: the result is
		// complete and exact, so fall through and return it.
	}

	// Classify failures: a fetch failure caused by a dead peer, exhausted
	// retries or an injected crash is recoverable when every slot has a
	// committed-count checkpoint; anything else aborts the run. A slot
	// cancelled by a winning speculative copy is resolved by its override —
	// unless some other slot pushes the run into recovery, which discards
	// speculation and re-executes past each checkpoint instead.
	recovering := false
	for slot, err := range errs {
		if err == nil {
			continue
		}
		if _, won := overrides[slot]; won && errors.Is(err, core.ErrCanceled) {
			continue
		}
		if (recoverableError(err) || errors.Is(err, core.ErrCanceled)) && allTracked(trackers) {
			recovering = true
			continue
		}
		return Result{}, fmt.Errorf("cluster: node %d socket %d: %w",
			slot/c.cfg.Sockets, slot%c.cfg.Sockets, err)
	}

	res := Result{}
	if recovering {
		// Serialized: concurrent runs must not race two fabric rebuilds.
		c.recMu.Lock()
		rec, err := c.recoverRun(pl, labelOf, edgeLabelOf, trackers, errs, fo, opts.Cancel)
		c.recMu.Unlock()
		if err != nil {
			return Result{}, err
		}
		res.Count = rec.count
		res.RecoveryRounds = rec.rounds
		res.DeadNodes = rec.dead
	} else {
		for slot, s := range sinks {
			// A speculation-won slot's sink holds only the straggler's
			// partial count (plus uncommitted work past its last boundary);
			// the reconciled override is the slot's exact total.
			if n, ok := overrides[slot]; ok {
				res.Count += n
				continue
			}
			if cs, ok := s.(*core.CountSink); ok {
				res.Count += cs.Count()
			}
		}
		if c.cfg.Resilient {
			res.DeadNodes = c.deadNodes()
		}
	}
	res.Elapsed = time.Since(start)
	res.Summary = c.met.Summarize()
	workers := c.cfg.Sockets * c.cfg.ThreadsPerSocket
	for _, n := range c.met.Nodes {
		b := n.Breakdown()
		res.PerNode = append(res.PerNode, b)
		modeled := b.Compute/time.Duration(workers) +
			(b.Scheduler+b.Cache)/time.Duration(c.cfg.Sockets)
		if modeled > res.ModeledElapsed {
			res.ModeledElapsed = modeled
		}
	}
	return res, nil
}

// Count runs a plan with counting sinks — the common case.
func (c *Cluster) Count(pl *plan.Plan) (Result, error) {
	return c.Run(pl, func(node, socket int) core.Sink { return &core.CountSink{} })
}

// CountWith is Count with per-run options.
func (c *Cluster) CountWith(pl *plan.Plan, opts RunOpts) (Result, error) {
	return c.RunWith(pl, func(node, socket int) core.Sink { return &core.CountSink{} }, opts)
}

// CountAll runs several plans sequentially (e.g. motif counting over all
// size-k patterns), returning per-plan results plus the combined totals.
func (c *Cluster) CountAll(pls []*plan.Plan) ([]Result, Result, error) {
	var results []Result
	var combined Result
	for _, pl := range pls {
		r, err := c.Count(pl)
		if err != nil {
			return nil, Result{}, err
		}
		results = append(results, r)
		combined.Count += r.Count
		combined.Elapsed += r.Elapsed
		combined.ModeledElapsed += r.ModeledElapsed
		// Summary.Merge owns the per-field combination rule (counters add,
		// peaks max): the hand-rolled list this replaces had silently
		// dropped the NUMA counters, PeakEmbeddings and the breakdown.
		combined.Summary.Merge(r.Summary)
		combined.RecoveryRounds += r.RecoveryRounds
		combined.DeadNodes = unionNodes(combined.DeadNodes, r.DeadNodes)
	}
	return results, combined, nil
}

// unionNodes merges two ascending node-ID lists without duplicates.
func unionNodes(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, lst := range [][]int{a, b} {
		for _, n := range lst {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Ints(out)
	return out
}

// nodeSource adapts one machine's partition + fabric to the engine's
// DataSource, including NUMA socket classification (§5.4).
type nodeSource struct {
	local  *partition.Local
	socket int
	fabric comm.Fabric
	met    *metrics.Node
	// g is the full input graph, standing in for re-partitioned shard data
	// when fo routes a dead machine's vertex here.
	g *graph.Graph
	// fo is the run's snapshot of the resident failover topology (nil when
	// every machine is alive): vertices owned by dead machines route to
	// their failover owner instead.
	fo *failover
	// roots is this slot's precomputed root list — base-owned vertices plus
	// any adopted from dead machines — computed once by rootsOf so recovery
	// re-derives the identical list.
	roots []graph.VertexID
	// cancel, when non-nil, aborts in-flight fetches (including their retry
	// backoffs) the moment it closes — because this slot's speculative copy
	// won, or because the run's caller canceled it. The resulting failure
	// surfaces as engine cancellation, the same outcome the polled Canceled
	// hook produces at range boundaries — just without waiting for the
	// retry schedule to drain first.
	cancel <-chan struct{}
}

func (s *nodeSource) Classify(v graph.VertexID) (core.Locality, int) {
	asg := s.local.Assignment()
	owner := asg.Owner(v)
	if s.fo != nil && s.fo.dead[owner] {
		// An adopted vertex: its base owner is dead, so route to the
		// failover owner. Adopted shards carry no NUMA affinity — a local
		// adoptee is served directly from the full graph.
		owner = s.fo.Owner(v)
		if owner != s.local.Node() {
			return core.LocalityRemote, owner
		}
		return core.LocalityLocal, owner
	}
	if owner != s.local.Node() {
		return core.LocalityRemote, owner
	}
	if asg.NumSockets() > 1 && asg.Socket(v) != s.socket {
		return core.LocalityCrossSocket, owner
	}
	return core.LocalityLocal, owner
}

func (s *nodeSource) LocalList(v graph.VertexID) []graph.VertexID {
	if s.fo != nil && s.fo.dead[s.local.Assignment().Owner(v)] {
		return s.g.Neighbors(v)
	}
	return s.local.MustNeighbors(v)
}

func (s *nodeSource) CrossSocketList(v graph.VertexID) []graph.VertexID {
	l := s.local.MustNeighbors(v)
	s.met.CrossSocketFetches.Add(1)
	s.met.CrossSocketBytes.Add(4 + 4*uint64(len(l)))
	return l
}

func (s *nodeSource) Fetch(owner int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	if cf, ok := s.fabric.(comm.CancelFetcher); ok && s.cancel != nil {
		lists, err := cf.FetchCancel(s.local.Node(), owner, ids, s.cancel)
		if err != nil && errors.Is(err, comm.ErrFetchCanceled) {
			return nil, fmt.Errorf("cluster: fetch aborted by cancellation: %w", core.ErrCanceled)
		}
		return lists, err
	}
	return s.fabric.Fetch(s.local.Node(), owner, ids)
}

func (s *nodeSource) NumNodes() int  { return s.local.Assignment().NumNodes() }
func (s *nodeSource) LocalNode() int { return s.local.Node() }

func (s *nodeSource) Roots() []graph.VertexID { return s.roots }

func (s *nodeSource) Label(v graph.VertexID) graph.Label { return s.local.Label(v) }
