package cluster

import (
	"testing"

	"khuzdul/internal/automine"
	"khuzdul/internal/cache"
	"khuzdul/internal/graph"
	"khuzdul/internal/graphpi"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func mustCluster(t *testing.T, g *graph.Graph, cfg Config) *Cluster {
	t.Helper()
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterCountMatchesBruteForce(t *testing.T) {
	g := graph.RMATDefault(120, 700, 41)
	for _, cfg := range []Config{
		{NumNodes: 1},
		{NumNodes: 4, ThreadsPerSocket: 2},
		{NumNodes: 8, ThreadsPerSocket: 2, CacheFraction: 0.1, CacheDegreeThreshold: 4},
		{NumNodes: 3, Sockets: 2, ThreadsPerSocket: 2},
	} {
		c := mustCluster(t, g, cfg)
		for _, pat := range []*pattern.Pattern{pattern.Triangle(), pattern.Clique(4)} {
			pl, err := graphpi.Compile(pat, g, graphpi.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := plan.BruteForceCount(g, pat, false)
			res, err := c.Count(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("cfg=%+v %v: count %d, want %d", cfg, pat, res.Count, want)
			}
			if res.Elapsed <= 0 {
				t.Errorf("non-positive elapsed")
			}
		}
	}
}

func TestClusterTCPTransportSameResult(t *testing.T) {
	g := graph.RMATDefault(100, 500, 43)
	pl, err := automine.Compile(pattern.Clique(4), g, automine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chanC := mustCluster(t, g, Config{NumNodes: 3, ThreadsPerSocket: 2})
	tcpC := mustCluster(t, g, Config{NumNodes: 3, ThreadsPerSocket: 2, Transport: TransportTCP})
	a, err := chanC.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tcpC.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count {
		t.Fatalf("chan=%d tcp=%d", a.Count, b.Count)
	}
	if a.Summary.BytesSent != b.Summary.BytesSent {
		t.Fatalf("traffic differs: chan=%d tcp=%d", a.Summary.BytesSent, b.Summary.BytesSent)
	}
}

func TestClusterNUMAMatchesNonNUMA(t *testing.T) {
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := mustCluster(t, g, Config{NumNodes: 2, Sockets: 1, ThreadsPerSocket: 2})
	numa := mustCluster(t, g, Config{NumNodes: 2, Sockets: 2, ThreadsPerSocket: 1})
	a, err := single.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := numa.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count {
		t.Fatalf("NUMA changed count: %d vs %d", a.Count, b.Count)
	}
	if b.Summary.CrossSocketFetches == 0 {
		t.Fatal("NUMA mode recorded no cross-socket fetches")
	}
	if a.Summary.CrossSocketFetches != 0 {
		t.Fatal("single-socket mode recorded cross-socket fetches")
	}
}

func TestClusterMetricsResetBetweenRuns(t *testing.T) {
	g := graph.RMATDefault(80, 400, 53)
	pl, err := graphpi.Compile(pattern.Triangle(), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, g, Config{NumNodes: 4, ThreadsPerSocket: 2})
	r1, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != r2.Count {
		t.Fatalf("repeat runs disagree: %d vs %d", r1.Count, r2.Count)
	}
	// Within 2x: a second run must not accumulate the first run's traffic.
	if r2.Summary.BytesSent > 2*r1.Summary.BytesSent {
		t.Fatalf("metrics accumulated across runs: %d then %d",
			r1.Summary.BytesSent, r2.Summary.BytesSent)
	}
}

func TestClusterCachePoliciesAllCorrect(t *testing.T) {
	g := graph.RMATDefault(150, 900, 59)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, pattern.Clique(4), false)
	for _, pol := range []cache.Policy{cache.Static, cache.FIFO, cache.LIFO, cache.LRU, cache.MRU} {
		c := mustCluster(t, g, Config{
			NumNodes: 4, ThreadsPerSocket: 2,
			CacheFraction: 0.05, CachePolicy: pol, CacheDegreeThreshold: 2,
		})
		res, err := c.Count(pl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("policy %v: count %d, want %d", pol, res.Count, want)
		}
	}
}

func TestClusterCountAllMotifs(t *testing.T) {
	g := graph.RMATDefault(60, 300, 61)
	plans, err := graphpi.CompileMotifs(3, g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, g, Config{NumNodes: 2, ThreadsPerSocket: 2})
	per, combined, err := c.CountAll(plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 { // wedge + triangle
		t.Fatalf("3-motif plans = %d, want 2", len(per))
	}
	var want uint64
	for _, pat := range pattern.ConnectedPatterns(3) {
		want += plan.BruteForceCount(g, pat, true)
	}
	if combined.Count != want {
		t.Fatalf("3-motif total = %d, want %d", combined.Count, want)
	}
}

func TestClusterOrientedCliqueCounting(t *testing.T) {
	// Orientation (Pangolin-style, used for Table 5): count cliques on the
	// DAG without symmetry-breaking restrictions.
	g := graph.RMATDefault(120, 700, 67)
	dag := graph.Orient(g)
	for _, k := range []int{3, 4} {
		pl, err := automine.Compile(pattern.Clique(k), dag,
			automine.Options{DisableSymmetryBreak: true})
		if err != nil {
			t.Fatal(err)
		}
		c := mustCluster(t, dag, Config{NumNodes: 3, ThreadsPerSocket: 2})
		res, err := c.Count(pl)
		if err != nil {
			t.Fatal(err)
		}
		want := plan.BruteForceCount(g, pattern.Clique(k), false)
		if res.Count != want {
			t.Errorf("oriented %d-clique = %d, want %d", k, res.Count, want)
		}
	}
}

func TestClusterEdgeLabeledPattern(t *testing.T) {
	// The edge-label extension must hold end-to-end through the distributed
	// engine: counts match brute force and sum correctly across labels.
	g := graph.RMATDefault(90, 500, 71).WithRandomEdgeLabels(2, 5)
	c := mustCluster(t, g, Config{NumNodes: 3, ThreadsPerSocket: 2})
	var sum uint64
	for la := graph.Label(0); la < 2; la++ {
		pat := pattern.Triangle()
		// One triangle pattern per "all edges labeled la" choice plus the
		// mixed ones; here: uniform label la on all three edges.
		pat.SetEdgeLabel(0, 1, la)
		pat.SetEdgeLabel(1, 2, la)
		pat.SetEdgeLabel(0, 2, la)
		pl, err := graphpi.Compile(pat, g, graphpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Count(pl)
		if err != nil {
			t.Fatal(err)
		}
		want := plan.BruteForceCount(g, pat, false)
		if res.Count != want {
			t.Errorf("uniform label %d: %d, want %d", la, res.Count, want)
		}
		sum += res.Count
	}
	all, err := graphpi.Compile(pattern.Triangle(), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Count(all)
	if err != nil {
		t.Fatal(err)
	}
	if sum > res.Count {
		t.Fatalf("uniform-label triangles %d exceed total %d", sum, res.Count)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := New(g, Config{NumNodes: 2, Transport: Transport(99)}); err == nil {
		t.Fatal("want error for unknown transport")
	}
	c, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Config().NumNodes != 1 || c.Config().Sockets != 1 {
		t.Fatalf("defaults not applied: %+v", c.Config())
	}
}
