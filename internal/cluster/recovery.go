// Task-level failure recovery. The engine's chunk lifecycle (§3.3) makes all
// in-flight work re-derivable from source vertices: every match descends from
// exactly one root, and an engine explores its roots in contiguous ranges
// that complete strictly in order. The driver therefore checkpoints, per
// engine slot, just two integers — the completed-root prefix and the match
// count committed at that point. On a fetch failure caused by a dead peer the
// driver re-partitions the dead machines' shards across survivors (served
// from the full in-process graph, standing in for shard reload on a real
// cluster) and re-executes only the unfinished roots. Counts stay exact
// because partial work past a checkpoint is discarded with the snapshot and
// every pending root is re-executed on exactly one survivor.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/partition"
	"khuzdul/internal/plan"
)

// maxRecoveryRounds bounds cascading failovers (each round can itself lose
// nodes); exceeding it means the cluster is too degraded to finish.
const maxRecoveryRounds = 8

// ErrRecoveryStalled marks a recovery that did not converge within
// maxRecoveryRounds — every round kept losing nodes or re-deriving pending
// roots.
var ErrRecoveryStalled = errors.New("cluster: recovery did not converge")

// ErrNoSurvivors marks a recovery round that found every node dead; there is
// nowhere left to re-execute pending roots.
var ErrNoSurvivors = errors.New("cluster: no surviving nodes to recover onto")

// rangeTracker is one engine slot's checkpoint: the prefix of its root list
// explored to completion and the sink count committed at that point. Written
// by the engine goroutine via OnRangeDone; read by the driver after the
// engine has finished, and — under straggler speculation — sampled mid-run
// by the monitor goroutine, hence the mutex: prefix and committed must be
// observed as one consistent pair.
type rangeTracker struct {
	sink      *core.CountSink
	mu        sync.Mutex
	prefix    int
	committed uint64
}

func (t *rangeTracker) onRangeDone(start, end int) {
	n := t.sink.Count()
	t.mu.Lock()
	t.prefix = end
	t.committed = n
	t.mu.Unlock()
}

// snapshot returns the latest (prefix, committed) checkpoint pair.
func (t *rangeTracker) snapshot() (int, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.prefix, t.committed
}

// recoverableError reports whether a fetch failure can be repaired by
// re-executing unfinished roots: the peer was declared dead, retries ran out
// (a transient-error storm), or fault injection crashed a node.
func recoverableError(err error) bool {
	return errors.Is(err, comm.ErrPeerDead) ||
		errors.Is(err, comm.ErrRetriesExhausted) ||
		errors.Is(err, fault.ErrNodeCrashed)
}

// allTracked reports whether every engine slot has a checkpoint, the
// precondition for exact-count recovery.
func allTracked(trs []*rangeTracker) bool {
	if trs == nil {
		return false
	}
	for _, t := range trs {
		if t == nil {
			return false
		}
	}
	return true
}

// rootsOf computes the root list of one engine slot under a failover
// snapshot (nil = base assignment): the slot's base-owned vertices plus any
// it adopted from dead machines. RunWith precomputes this into each
// nodeSource and recovery re-derives it here, so the two always agree —
// checkpoint prefixes index into identical lists.
func (c *Cluster) rootsOf(fo *failover, node, socket int) []graph.VertexID {
	if fo != nil && fo.dead[node] {
		// A machine dead at run start contributes no roots: its shard was
		// re-partitioned to survivors when the topology was adopted.
		return nil
	}
	var roots []graph.VertexID
	if c.asg.NumSockets() > 1 {
		roots = c.locals[node].SocketVertices(socket)
	} else {
		roots = c.locals[node].OwnedVertices()
	}
	if fo == nil {
		return roots
	}
	adopted := fo.adoptedFor(node, socket)
	if len(adopted) == 0 {
		return roots
	}
	out := make([]graph.VertexID, 0, len(roots)+len(adopted))
	out = append(out, roots...)
	return append(out, adopted...)
}

// deadNodes returns the union of breaker-declared and crash-injected dead
// machines, ascending.
func (c *Cluster) deadNodes() []int {
	seen := make(map[int]bool)
	if c.resilient != nil {
		for _, n := range c.resilient.DeadNodes() {
			seen[n] = true
		}
	}
	if c.injector != nil {
		for _, n := range c.injector.CrashedNodes() {
			seen[n] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := 0; n < c.cfg.NumNodes; n++ {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// failover routes vertices like the base assignment but re-partitions the
// shards of dead machines across survivors with an independent hash.
type failover struct {
	asg   partition.Assignment
	alive []int
	dead  []bool
	// adopted, when the failover is adopted as the cluster's resident
	// topology, lists per engine slot the vertices re-partitioned onto it
	// from dead machines (nil for recovery-round failovers, which assign
	// explicit root lists instead).
	adopted [][]graph.VertexID
}

func newFailover(asg partition.Assignment, deadNodes []int) *failover {
	f := &failover{asg: asg, dead: make([]bool, asg.NumNodes())}
	for _, n := range deadNodes {
		f.dead[n] = true
	}
	for n := 0; n < asg.NumNodes(); n++ {
		if !f.dead[n] {
			f.alive = append(f.alive, n)
		}
	}
	return f
}

// sameDead reports whether the failover's dead set equals deadNodes
// (ascending).
func (f *failover) sameDead(deadNodes []int) bool {
	n := 0
	for _, d := range deadNodes {
		if !f.dead[d] {
			return false
		}
		n++
	}
	have := 0
	for _, d := range f.dead {
		if d {
			have++
		}
	}
	return n == have
}

// adoptedFor returns the vertices slot (node, socket) inherited from dead
// machines under this adopted topology.
func (f *failover) adoptedFor(node, socket int) []graph.VertexID {
	if f.adopted == nil {
		return nil
	}
	return f.adopted[node*f.asg.NumSockets()+socket]
}

// adopt installs fo as the cluster's resident topology: every vertex owned
// by a dead machine is assigned to its failover owner's slot list, so
// subsequent runs mine dead shards on survivors from the start instead of
// paying a recovery round per run. Called under recMu; a no-op when the
// dead set already matches the resident topology (concurrent queries that
// tripped over the same crash share one re-partition).
func (c *Cluster) adopt(fo *failover) {
	if cur := c.fo.Load(); cur != nil && cur.sameDead(deadList(fo)) {
		return
	}
	sockets := c.asg.NumSockets()
	fo.adopted = make([][]graph.VertexID, c.cfg.NumNodes*sockets)
	for v := 0; v < c.g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if !fo.dead[c.asg.Owner(id)] {
			continue
		}
		node := fo.Owner(id)
		socket := 0
		if sockets > 1 {
			socket = c.asg.Socket(id)
		}
		slot := node*sockets + socket
		fo.adopted[slot] = append(fo.adopted[slot], id)
	}
	c.fo.Store(fo)
	c.repart.Add(1)
}

// deadList renders a failover's dead set ascending.
func deadList(f *failover) []int {
	var out []int
	for n, d := range f.dead {
		if d {
			out = append(out, n)
		}
	}
	return out
}

func (f *failover) Owner(v graph.VertexID) int {
	if o := f.asg.Owner(v); !f.dead[o] {
		return o
	}
	h := uint64(v)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	//khuzdulvet:ignore guardfield failover topologies are immutable once published; recMu only guards construction and adoption
	return f.alive[h%uint64(len(f.alive))]
}

// recoverySource is the DataSource of a recovery engine: an explicit root
// list on one survivor, failover ownership for fetch routing, and the full
// graph for locally-owned lists (the re-partitioned shard). Recovery engines
// are per-machine, not per-socket, so there is no cross-socket locality.
type recoverySource struct {
	g      *graph.Graph
	fo     *failover
	node   int
	roots  []graph.VertexID
	fabric comm.Fabric
	// cancel aborts in-flight recovery fetches (and their retry backoffs)
	// when the run's caller gives up — deadline or drain.
	cancel <-chan struct{}
}

func (s *recoverySource) Classify(v graph.VertexID) (core.Locality, int) {
	owner := s.fo.Owner(v)
	if owner != s.node {
		return core.LocalityRemote, owner
	}
	return core.LocalityLocal, owner
}

// LocalList serves from the full graph: recovery roots inherited from a dead
// machine count as local shard data, exactly as if the survivor had reloaded
// that shard from storage.
func (s *recoverySource) LocalList(v graph.VertexID) []graph.VertexID { return s.g.Neighbors(v) }

func (s *recoverySource) CrossSocketList(v graph.VertexID) []graph.VertexID {
	return s.g.Neighbors(v)
}

func (s *recoverySource) Fetch(owner int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	if cf, ok := s.fabric.(comm.CancelFetcher); ok && s.cancel != nil {
		lists, err := cf.FetchCancel(s.node, owner, ids, s.cancel)
		if err != nil && errors.Is(err, comm.ErrFetchCanceled) {
			return nil, fmt.Errorf("cluster: recovery fetch aborted by cancellation: %w", core.ErrCanceled)
		}
		return lists, err
	}
	return s.fabric.Fetch(s.node, owner, ids)
}

func (s *recoverySource) NumNodes() int                      { return s.fo.asg.NumNodes() }
func (s *recoverySource) LocalNode() int                     { return s.node }
func (s *recoverySource) Roots() []graph.VertexID            { return s.roots }
func (s *recoverySource) Label(v graph.VertexID) graph.Label { return s.g.Label(v) }

// recovery is the outcome of the recovery protocol: committed counts from
// the failed run plus all recovery rounds, the round count, and the final
// dead set.
type recovery struct {
	count  uint64
	rounds int
	dead   []int
}

// recoverRun commits every slot's checkpoint, then re-executes unfinished
// roots on survivors until none remain. Partial counts past a checkpoint are
// deliberately discarded (they are not in the committed snapshots), which is
// what keeps re-execution exact. fo is the failed run's failover snapshot
// (its roots were computed under it); cancel, when closed, aborts recovery
// — a query deadline or a drain hard-cancel must bound recovery rounds too,
// not just the main run.
func (c *Cluster) recoverRun(pl *plan.Plan, labelOf plan.LabelFunc, edgeLabelOf plan.EdgeLabelFunc,
	trackers []*rangeTracker, errs []error, fo *failover, cancel <-chan struct{}) (recovery, error) {
	var rec recovery
	var pending []graph.VertexID
	for slot, tr := range trackers {
		prefix, committed := tr.snapshot()
		rec.count += committed
		if errs[slot] == nil {
			continue
		}
		roots := c.rootsOf(fo, slot/c.cfg.Sockets, slot%c.cfg.Sockets)
		pending = append(pending, roots[prefix:]...)
	}
	for len(pending) > 0 {
		if cancel != nil && chanClosed(cancel) {
			return rec, fmt.Errorf("cluster: recovery aborted: %w", ErrRunCanceled)
		}
		rec.rounds++
		if rec.rounds > maxRecoveryRounds {
			return rec, fmt.Errorf("%w after %d rounds (%d roots pending)",
				ErrRecoveryStalled, maxRecoveryRounds, len(pending))
		}
		var err error
		pending, err = c.recoveryRound(pl, labelOf, edgeLabelOf, &rec, pending, cancel)
		if err != nil {
			return rec, err
		}
	}
	rec.dead = c.deadNodes()
	if len(rec.dead) > 0 {
		// Recovery converged: make the failover topology resident so
		// subsequent runs route around the dead machines from the start.
		c.adopt(newFailover(c.asg, rec.dead))
	}
	return rec, nil
}

// recoveryRound runs one failover round: re-partition dead shards, spread
// pending roots over survivors, run one recovery engine per survivor on a
// fresh fabric stack (sharing the fault injector's state and prior dead
// verdicts), and return the roots still unfinished after this round.
func (c *Cluster) recoveryRound(pl *plan.Plan, labelOf plan.LabelFunc, edgeLabelOf plan.EdgeLabelFunc,
	rec *recovery, pending []graph.VertexID, cancel <-chan struct{}) ([]graph.VertexID, error) {
	dead := c.deadNodes()
	fo := newFailover(c.asg, dead)
	if len(fo.alive) == 0 {
		return nil, ErrNoSurvivors
	}

	// Survivors serve everything they own under failover from the full graph;
	// dead machines' servers must never be reached, since failover routes
	// around them.
	servers := make([]comm.Server, c.cfg.NumNodes)
	for node := 0; node < c.cfg.NumNodes; node++ {
		node := node
		if fo.dead[node] {
			servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
				panic(fmt.Sprintf("cluster: recovery fetch routed to dead node %d", node))
			})
			continue
		}
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				if fo.Owner(id) != node {
					panic(fmt.Sprintf("cluster: recovery node %d asked for vertex %d (failover owner %d)",
						node, id, fo.Owner(id)))
				}
				out[i] = c.g.Neighbors(id)
			}
			return out
		})
	}
	fabric, err := c.buildFabric(servers)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()
	if c.resilient != nil {
		// Carry crash-injected deaths into the breaker so any stray fetch
		// fails fast instead of timing out.
		for _, n := range dead {
			c.resilient.MarkDead(n)
		}
	}

	assigned := make([][]graph.VertexID, len(fo.alive))
	for i, v := range pending {
		assigned[i%len(fo.alive)] = append(assigned[i%len(fo.alive)], v)
	}

	trs := make([]*rangeTracker, len(fo.alive))
	errs := make([]error, len(fo.alive))
	var wg sync.WaitGroup
	for i, node := range fo.alive {
		if len(assigned[i]) == 0 {
			continue
		}
		sink := &core.CountSink{}
		tr := &rangeTracker{sink: sink}
		trs[i] = tr
		ext := core.NewPlanExtender(pl, labelOf)
		ext.EdgeLabelOf = edgeLabelOf
		var canceled func() bool
		if cancel != nil {
			canceled = func() bool { return chanClosed(cancel) }
		}
		eng := core.NewEngine(ext, &recoverySource{
			g: c.g, fo: fo, node: node, roots: assigned[i], fabric: fabric, cancel: cancel,
		}, sink, core.Config{
			ChunkSize:      c.cfg.ChunkSize,
			Threads:        c.cfg.Sockets * c.cfg.ThreadsPerSocket,
			MiniBatch:      c.cfg.MiniBatch,
			FlushSize:      c.cfg.FlushSize,
			HubThreshold:   c.cfg.HubThreshold,
			HDS:            !c.cfg.DisableHDS,
			StrictPipeline: c.cfg.StrictPipeline,
			Metrics:        c.met.Nodes[node],
			OnRangeDone:    tr.onRangeDone,
			Canceled:       canceled,
		})
		if c.cfg.SequentialNodes {
			errs[i] = eng.Run()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = eng.Run()
		}(i)
	}
	wg.Wait()

	if cancel != nil && chanClosed(cancel) {
		return nil, fmt.Errorf("cluster: recovery aborted: %w", ErrRunCanceled)
	}
	var next []graph.VertexID
	for i, node := range fo.alive {
		tr := trs[i]
		if tr == nil {
			continue
		}
		rec.count += tr.committed
		c.met.Nodes[node].RecoveredRoots.Add(uint64(tr.prefix))
		if errs[i] == nil {
			continue
		}
		if !recoverableError(errs[i]) {
			return nil, fmt.Errorf("cluster: recovery on node %d: %w", node, errs[i])
		}
		next = append(next, assigned[i][tr.prefix:]...)
	}
	return next, nil
}
