package cluster

import (
	"sync"
	"testing"

	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/graphpi"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// TestResidentCrashTwoConcurrentQueries is the resident-failover scenario:
// two queries are in flight on one cluster when a node crashes. Both must
// complete with exact counts, the re-partition must happen exactly once
// (the queries share one adoption, serialized under the recovery lock),
// and a query submitted afterwards must reuse the adopted topology — no
// fresh recovery round, still exact.
func TestResidentCrashTwoConcurrentQueries(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl4, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl3, err := graphpi.Compile(pattern.Triangle(), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want4 := plan.BruteForceCount(g, pattern.Clique(4), false)
	want3 := plan.BruteForceCount(g, pattern.Triangle(), false)

	prof := &fault.Profile{Seed: 11, Crashes: []fault.Crash{{Node: 1, After: 10}}}
	c := mustCluster(t, g, chaosConfig(prof, TransportChan))

	var wg sync.WaitGroup
	results := make([]Result, 2)
	errs := make([]error, 2)
	plans := []*plan.Plan{pl4, pl3}
	for i, pl := range plans {
		wg.Add(1)
		go func(i int, pl *plan.Plan) {
			defer wg.Done()
			results[i], errs[i] = c.CountWith(pl, RunOpts{KeepMetrics: true})
		}(i, pl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
	if results[0].Count != want4 {
		t.Errorf("K4 count under crash = %d, want %d", results[0].Count, want4)
	}
	if results[1].Count != want3 {
		t.Errorf("triangle count under crash = %d, want %d", results[1].Count, want3)
	}
	if rounds := results[0].RecoveryRounds + results[1].RecoveryRounds; rounds == 0 {
		t.Error("neither concurrent query reported a recovery round despite the crash")
	}
	if n := c.Repartitions(); n != 1 {
		t.Errorf("Repartitions() = %d after one crash under two queries, want exactly 1", n)
	}
	dead := c.DeadNodes()
	found := false
	for _, n := range dead {
		if n == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("DeadNodes() = %v, want to include crashed node 1", dead)
	}

	// A later query reuses the adopted topology: no recovery round, no new
	// re-partition, count still exact.
	res, err := c.CountWith(pl3, RunOpts{KeepMetrics: true})
	if err != nil {
		t.Fatalf("post-adoption query: %v", err)
	}
	if res.Count != want3 {
		t.Errorf("post-adoption count = %d, want %d", res.Count, want3)
	}
	if res.RecoveryRounds != 0 {
		t.Errorf("post-adoption query took %d recovery rounds, want 0 (topology already adopted)", res.RecoveryRounds)
	}
	if n := c.Repartitions(); n != 1 {
		t.Errorf("Repartitions() = %d after post-adoption query, want still 1", n)
	}
}

// TestResidentAdoptionCanceledQuery: a query whose cancel fires during
// recovery must return ErrRunCanceled promptly instead of finishing the
// recovery on the caller's time.
func TestResidentRecoveryHonorsCancel(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := &fault.Profile{Seed: 11, Crashes: []fault.Crash{{Node: 1, After: 10}}}
	c := mustCluster(t, g, chaosConfig(prof, TransportChan))
	cancel := make(chan struct{})
	close(cancel) // canceled before the run starts: the earliest boundary
	if _, err := c.CountWith(pl, RunOpts{Cancel: cancel}); err == nil {
		t.Fatal("canceled run completed cleanly")
	}
}
