package cluster

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/graphpi"
	"khuzdul/internal/pattern"
)

func TestSequentialNodesIdenticalResults(t *testing.T) {
	// Sequential machine execution must change nothing observable except
	// timing: same counts, same traffic, same per-batch fetch structure.
	g := graph.RMATDefault(200, 1200, 401)
	pl, err := graphpi.Compile(pattern.Clique(4), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No cache and one thread per machine: static-cache admission and chunk
	// fill order depend on scheduling, which legitimately perturbs traffic
	// by a few collisions; with deterministic per-engine execution the
	// traffic must be byte-identical.
	conc := mustCluster(t, g, Config{NumNodes: 4, ThreadsPerSocket: 1})
	seq := mustCluster(t, g, Config{NumNodes: 4, ThreadsPerSocket: 1, SequentialNodes: true})
	a, err := conc.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seq.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count {
		t.Fatalf("counts differ: %d vs %d", a.Count, b.Count)
	}
	if a.Summary.BytesSent != b.Summary.BytesSent {
		t.Fatalf("traffic differs: %d vs %d", a.Summary.BytesSent, b.Summary.BytesSent)
	}
	if b.ModeledElapsed <= 0 {
		t.Fatal("no modeled makespan")
	}
}

func TestModeledBelowTotalWork(t *testing.T) {
	// The modeled makespan must never exceed the sum of busy times (it is a
	// max over machines of per-machine fractions).
	g := graph.RMATDefault(150, 900, 409)
	pl, err := graphpi.Compile(pattern.Triangle(), g, graphpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, g, Config{NumNodes: 4, ThreadsPerSocket: 2, SequentialNodes: true})
	r, err := c.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	var totalBusy = r.Summary.Breakdown.Total()
	if r.ModeledElapsed > totalBusy {
		t.Fatalf("modeled %v exceeds total busy %v", r.ModeledElapsed, totalBusy)
	}
}
