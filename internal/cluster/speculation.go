// Straggler speculation. A machine slowed by a degraded disk, a noisy
// neighbor or an injected slowdown stretches the whole run: every other
// machine finishes its partition and idles while the straggler grinds on.
// The driver samples each engine's completed-root prefix, and once idle
// survivors exist it re-executes the slowest engine's unfinished root
// suffix on one of them, served from the full in-process graph (the same
// shard-reload stand-in task recovery uses). Both copies keep running;
// whichever completes the tail first wins.
//
// Exactness is the point. Engines complete root ranges strictly in order at
// ChunkSize granularity, so the straggler's checkpoints and the speculative
// copy's checkpoints land on the same global range boundaries (the copy
// starts at a boundary p and advances by the same ChunkSize). When the copy
// finishes first, the straggler is cancelled and stops at some boundary
// q ≥ p; the slot's exact total is then
//
//	committed(straggler, q) + spec(total) − spec(q)
//
// — every root in [0, q) counted once by the straggler, every root in
// [q, total) once by the copy, regardless of when the cancellation lands.
// When the straggler finishes first (or the copy fails), the copy is
// cancelled and its counts are discarded wholesale. Either way the result
// is bit-identical to a run without speculation.
package cluster

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/plan"
)

// specTick is the monitor's sampling period. Sampling only reads per-slot
// checkpoint pairs, so the period trades reaction latency against nothing
// measurable.
const specTick = 10 * time.Millisecond

// specTracker records a speculative copy's committed count at every global
// range boundary it crosses. Keys are indices into the straggler's full
// root list (the copy starts at base), so the reconciliation in overrides
// can subtract at the straggler's own stopping boundary.
type specTracker struct {
	sink *core.CountSink
	base int
	met  *metrics.Node

	mu   sync.Mutex
	hist map[int]uint64
}

func newSpecTracker(base int, met *metrics.Node) *specTracker {
	return &specTracker{
		sink: &core.CountSink{},
		base: base,
		met:  met,
		hist: map[int]uint64{base: 0},
	}
}

func (t *specTracker) onRangeDone(start, end int) {
	n := t.sink.Count()
	t.mu.Lock()
	t.hist[t.base+end] = n
	t.mu.Unlock()
	if t.met != nil {
		t.met.SpeculativeRanges.Add(1)
	}
}

// at returns the committed count at global boundary p.
func (t *specTracker) at(p int) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.hist[p]
	return n, ok
}

// specRun is one speculative re-execution: the straggler slot it shadows,
// the survivor hosting it, and the boundary it started from.
type specRun struct {
	slot    int
	node    int
	base    int
	total   int
	tracker *specTracker
	cancel  atomic.Bool
	err     error // written by the spec goroutine before done closes
	done    chan struct{}
}

// speculator is the per-run straggler speculation controller. It owns the
// monitor goroutine, the per-slot cancellation flags the main engines poll,
// and the speculative engines themselves.
type speculator struct {
	c           *Cluster
	pl          *plan.Plan
	labelOf     plan.LabelFunc
	edgeLabelOf plan.EdgeLabelFunc
	// fo is the failover snapshot the run launched with (nil before any
	// node has ever died); root lists must match the main engines'.
	fo *failover

	slots  int
	cancel []atomic.Bool // straggler-side cancel flags, polled via Canceled
	// cancelCh mirrors cancel as per-slot channels so blocking waits (fetch
	// retry backoffs via comm.CancelFetcher) unblock the moment a copy wins,
	// instead of discovering the flag at the next range boundary.
	cancelCh []chan struct{}

	trackers []*rangeTracker
	roots    [][]graph.VertexID
	began    time.Time

	mu    sync.Mutex
	done  []bool
	errs  []error
	specs map[int]*specRun // by straggler slot
	tried []bool           // at most one speculative copy per slot
	busy  []bool           // nodes currently hosting a copy

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newSpeculator(c *Cluster, pl *plan.Plan, labelOf plan.LabelFunc, edgeLabelOf plan.EdgeLabelFunc) *speculator {
	slots := c.cfg.NumNodes * c.cfg.Sockets
	cancelCh := make([]chan struct{}, slots)
	for i := range cancelCh {
		cancelCh[i] = make(chan struct{})
	}
	return &speculator{
		c:           c,
		pl:          pl,
		labelOf:     labelOf,
		edgeLabelOf: edgeLabelOf,
		slots:       slots,
		cancel:      make([]atomic.Bool, slots),
		cancelCh:    cancelCh,
		done:        make([]bool, slots),
		errs:        make([]error, slots),
		specs:       make(map[int]*specRun),
		tried:       make([]bool, slots),
		busy:        make([]bool, c.cfg.NumNodes),
		stopCh:      make(chan struct{}),
	}
}

// canceled is the Config.Canceled hook for one main engine slot.
func (s *speculator) canceled(slot int) bool { return s.cancel[slot].Load() }

// cancelChan returns the channel closed when slot's speculative copy wins;
// the slot's fetches select on it during retry backoffs.
func (s *speculator) cancelChan(slot int) <-chan struct{} { return s.cancelCh[slot] }

// cancelSlot raises slot's cancel flag and closes its channel exactly once.
func (s *speculator) cancelSlot(slot int) {
	if s.cancel[slot].CompareAndSwap(false, true) {
		close(s.cancelCh[slot])
	}
}

// begin arms the monitor once every slot's checkpoint tracker is known.
// Without full tracking (some sink is not a counting sink) speculation
// cannot reconcile counts, so the speculator stays inert.
func (s *speculator) begin(trackers []*rangeTracker) {
	if !allTracked(trackers) {
		return
	}
	s.trackers = trackers
	s.roots = make([][]graph.VertexID, s.slots)
	for slot := range s.roots {
		s.roots[slot] = s.c.rootsOf(s.fo, slot/s.c.cfg.Sockets, slot%s.c.cfg.Sockets)
	}
	s.began = time.Now()
	s.wg.Add(1)
	go s.run()
}

// slotDone records a main engine's completion. Its speculative copy, if
// any, is cancelled: either the straggler won the race, or the slot failed
// and task recovery (which discards speculation wholesale) takes over.
func (s *speculator) slotDone(slot int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done[slot] = true
	s.errs[slot] = err
	if sp := s.specs[slot]; sp != nil {
		sp.cancel.Store(true)
	}
}

// run is the monitor loop: sample progress each tick, speculate when idle
// survivors and a straggler coexist.
//
//khuzdulvet:longrun monitor loop; must exit promptly on stopCh
func (s *speculator) run() {
	defer s.wg.Done()
	t := time.NewTicker(specTick)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		s.maybeSpeculate()
	}
}

// maybeSpeculate launches at most one speculative copy per tick: the
// running slot with the largest estimated remaining time, on the
// lowest-numbered idle survivor.
func (s *speculator) maybeSpeculate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := s.idleNodeLocked()
	if idle < 0 {
		return
	}
	elapsed := time.Since(s.began).Seconds()
	best, bestEst := -1, -1.0
	for slot := 0; slot < s.slots; slot++ {
		if s.done[slot] || s.tried[slot] {
			continue
		}
		prefix, _ := s.trackers[slot].snapshot()
		remaining := len(s.roots[slot]) - prefix
		if remaining <= 0 {
			continue
		}
		// Estimated seconds to finish at the observed rate; a slot with no
		// completed range yet is maximally suspect.
		est := math.MaxFloat64
		if prefix > 0 && elapsed > 0 {
			est = float64(remaining) * elapsed / float64(prefix)
		}
		if est > bestEst {
			best, bestEst = slot, est
		}
	}
	if best < 0 {
		return
	}
	s.launchLocked(best, idle)
}

// idleNodeLocked returns the lowest-numbered machine whose every slot has
// finished cleanly and that is alive and not already hosting a copy, or -1.
func (s *speculator) idleNodeLocked() int {
	for node := 0; node < s.c.cfg.NumNodes; node++ {
		if s.busy[node] || s.nodeDead(node) {
			continue
		}
		idle := true
		for sock := 0; sock < s.c.cfg.Sockets; sock++ {
			slot := node*s.c.cfg.Sockets + sock
			if !s.done[slot] || s.errs[slot] != nil {
				idle = false
				break
			}
		}
		if idle {
			return node
		}
	}
	return -1
}

func (s *speculator) nodeDead(node int) bool {
	if s.c.resilient != nil && s.c.resilient.Dead(node) {
		return true
	}
	return s.c.injector != nil && s.c.injector.Crashed(node)
}

// launchLocked starts one speculative copy of slot's unfinished roots on
// node. Called with s.mu held.
func (s *speculator) launchLocked(slot, node int) {
	prefix, _ := s.trackers[slot].snapshot()
	suffix := s.roots[slot][prefix:]
	if len(suffix) == 0 {
		return
	}
	sp := &specRun{
		slot:    slot,
		node:    node,
		base:    prefix,
		total:   len(s.roots[slot]),
		tracker: newSpecTracker(prefix, s.c.met.Nodes[node]),
		done:    make(chan struct{}),
	}
	s.specs[slot] = sp
	s.tried[slot] = true
	s.busy[node] = true
	s.wg.Add(1)
	go s.runSpec(sp, suffix)
}

// runSpec executes one speculative copy. The copy routes fetches by the
// run's failover view (the base assignment when nobody has ever died — a
// straggler is just slow, not dead) and serves its inherited roots from
// the full graph, exactly like a recovery engine. On clean
// completion it cancels the straggler; the straggler then stops at its
// next range boundary and overrides reconciles the two halves.
func (s *speculator) runSpec(sp *specRun, suffix []graph.VertexID) {
	defer s.wg.Done()
	ext := core.NewPlanExtender(s.pl, s.labelOf)
	ext.EdgeLabelOf = s.edgeLabelOf
	fo := s.fo
	if fo == nil {
		fo = newFailover(s.c.asg, nil)
	}
	eng := core.NewEngine(ext, &recoverySource{
		g:      s.c.g,
		fo:     fo,
		node:   sp.node,
		roots:  suffix,
		fabric: s.c.fabric,
	}, sp.tracker.sink, core.Config{
		ChunkSize:      s.c.cfg.ChunkSize,
		Threads:        s.c.cfg.Sockets * s.c.cfg.ThreadsPerSocket,
		MiniBatch:      s.c.cfg.MiniBatch,
		FlushSize:      s.c.cfg.FlushSize,
		HubThreshold:   s.c.cfg.HubThreshold,
		HDS:            !s.c.cfg.DisableHDS,
		StrictPipeline: s.c.cfg.StrictPipeline,
		Metrics:        s.c.met.Nodes[sp.node],
		OnRangeDone:    sp.tracker.onRangeDone,
		Canceled:       sp.cancel.Load,
	})
	sp.err = eng.Run()
	close(sp.done)
	s.mu.Lock()
	s.busy[sp.node] = false
	win := sp.err == nil && !s.done[sp.slot]
	s.mu.Unlock()
	if win {
		s.cancelSlot(sp.slot)
	}
}

// finish stops the monitor, cancels and drains every outstanding copy, and
// returns the per-slot count overrides for speculation wins: slots whose
// main engine was cancelled by a clean speculative copy. errs is the main
// engines' outcome slice. When the run goes on to task recovery the caller
// ignores the overrides — recovery re-executes everything past each slot's
// checkpoint, which subsumes the speculative work.
func (s *speculator) finish(errs []error) map[int]uint64 {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.mu.Lock()
	for _, sp := range s.specs {
		sp.cancel.Store(true)
	}
	s.mu.Unlock()
	s.wg.Wait()
	overrides := make(map[int]uint64)
	for slot, sp := range s.specs {
		if sp.err != nil || !errors.Is(errs[slot], core.ErrCanceled) {
			continue
		}
		q, committed := s.trackers[slot].snapshot()
		end, okEnd := sp.tracker.at(sp.total)
		mid, okMid := sp.tracker.at(q)
		if !okEnd || !okMid || q < sp.base {
			// Unreachable by construction (the straggler is only cancelled
			// after the copy completed every boundary from base to total,
			// and q only grows); refuse the override rather than guess.
			continue
		}
		overrides[slot] = committed + end - mid
		if s.c.met != nil {
			s.c.met.Nodes[sp.node].SpeculationWins.Add(1)
		}
	}
	return overrides
}
