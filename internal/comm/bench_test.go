package comm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/partition"
)

// Transport microbenchmarks. BenchmarkTCPFetchPipelined is the evidence for
// the multiplexed wire path: 8 concurrent fetchers hammering one peer over
// one loopback connection, which the serial exchange head-of-line blocks and
// the v3 mux pipelines. The bench servers add a fixed service latency
// emulating a remote peer — on loopback the exchange is otherwise pure CPU,
// which no wire discipline can overlap; the latency is what circulant
// scheduling actually has to hide. BenchmarkDecodeLists pins the
// response-decode allocation cost. Regenerate BENCH_comm.json with:
//
//	go test ./internal/comm -run '^$' -bench TCPFetchSerial -benchmem |
//	    go run ./cmd/benchjson -label before -out BENCH_comm.json
//	go test ./internal/comm -run '^$' -bench 'TCPFetchPipelined|DecodeLists' -benchmem |
//	    go run ./cmd/benchjson -label after -out BENCH_comm.json
//
// (TCPFetchSerial pins the fabric to the v2 wire, whose exchange discipline
// is the pre-multiplexing code path, so it stands in for "before" on the
// same load shape.)

// benchRemoteLatency is the emulated per-request service time of a remote
// peer (network + queueing a real deployment pays per fetch).
const benchRemoteLatency = 100 * time.Microsecond

// benchFabric builds a 2-node TCP fabric over a moderate RMAT graph and
// returns it with a fixed batch of vertices owned by node 1.
func benchFabric(b *testing.B) (*TCP, []graph.VertexID) {
	b.Helper()
	g := graph.RMATDefault(2000, 16000, 7)
	asg := partition.NewAssignment(2, 1)
	base := testServersB(g, asg)
	servers := make([]Server, len(base))
	for i, s := range base {
		inner := s
		servers[i] = ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			time.Sleep(benchRemoteLatency)
			return inner.ServeEdgeLists(ids)
		})
	}
	f, err := NewTCP(servers, nil)
	if err != nil {
		b.Fatal(err)
	}
	var ids []graph.VertexID
	for v := 0; v < g.NumVertices() && len(ids) < 64; v++ {
		if asg.Owner(graph.VertexID(v)) == 1 {
			ids = append(ids, graph.VertexID(v))
		}
	}
	return f, ids
}

// testServersB mirrors testServers for benchmarks (testing.B lacks the
// helper's *testing.T).
func testServersB(g *graph.Graph, asg partition.Assignment) []Server {
	servers := make([]Server, asg.NumNodes())
	for node := 0; node < asg.NumNodes(); node++ {
		local := partition.NewLocal(g, asg, node)
		servers[node] = ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = local.MustNeighbors(id)
			}
			return out
		})
	}
	return servers
}

// runFetchers drives exactly b.N fetches through f from `workers` concurrent
// goroutines, all targeting the same (0 -> 1) peer pair.
func runFetchers(b *testing.B, f Fabric, ids []graph.VertexID, workers int) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(b.N) {
					return
				}
				if _, err := f.Fetch(0, 1, ids); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errCh)
	for err := range errCh {
		b.Fatal(err)
	}
}

// BenchmarkTCPFetchPipelined measures fetch throughput with 8 concurrent
// fetchers against one peer — the shape circulant scheduling produces when
// several workers' batches target the same remote machine.
func BenchmarkTCPFetchPipelined(b *testing.B) {
	f, ids := benchFabric(b)
	defer f.Close()
	runFetchers(b, f, ids, 8)
}

// BenchmarkTCPFetchSerial pins the fabric to the serial protocol generation,
// so the same 8-fetcher load queues behind one exchange at a time — the
// baseline the mux path is measured against.
func BenchmarkTCPFetchSerial(b *testing.B) {
	f, ids := benchFabric(b)
	defer f.Close()
	f.SetVersionWindow(ProtoVersionMin, ProtoVersionSerialMax)
	runFetchers(b, f, ids, 8)
}

// BenchmarkDecodeLists measures the response-payload decode cost for a
// 256-list response (the per-fetch hot path of every remote batch).
func BenchmarkDecodeLists(b *testing.B) {
	lists := make([][]graph.VertexID, 256)
	for i := range lists {
		l := make([]graph.VertexID, 16)
		for j := range l {
			l[j] = graph.VertexID(i*16 + j)
		}
		lists[i] = l
	}
	payload := encodeLists(nil, lists)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeLists(payload); err != nil {
			b.Fatal(err)
		}
	}
}
