// Package comm is the communication substrate of the simulated cluster: the
// fabric over which machines fetch remote edge lists. Two interchangeable
// implementations are provided — an in-process fabric that moves slices
// through direct calls, and a TCP loopback fabric that serializes every
// request and response through real sockets. Both account traffic with the
// same byte formula, so experiments can quote exact network volumes
// regardless of transport (the paper reports traffic in bytes, Table 6,
// Figure 12, Figure 17).
package comm

import (
	"errors"
	"fmt"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// ErrUnknownNode marks traffic addressed outside the cluster's node range.
// It is permanent for the resilience layer — retrying cannot make an unknown
// node exist — so Resilient fails fast instead of burning its retry budget.
var ErrUnknownNode error = permanentError{errors.New("comm: unknown node")}

// permanentError brands a sentinel as unretryable for PermanentError checks
// while staying matchable through errors.Is.
type permanentError struct{ error }

func (permanentError) Permanent() bool { return true }

// Server answers edge-list requests for the vertices one machine owns.
type Server interface {
	// ServeEdgeLists returns the adjacency lists of the requested vertices,
	// in request order. Lists alias server-side storage in the local fabric;
	// callers must not modify them.
	ServeEdgeLists(ids []graph.VertexID) [][]graph.VertexID
}

// ServerFunc adapts a function to the Server interface.
type ServerFunc func(ids []graph.VertexID) [][]graph.VertexID

// ServeEdgeLists implements Server.
func (f ServerFunc) ServeEdgeLists(ids []graph.VertexID) [][]graph.VertexID { return f(ids) }

// Fabric connects the machines of the cluster.
type Fabric interface {
	// Fetch requests the edge lists of ids from machine to, on behalf of
	// machine from. It blocks until the response arrives (the paper's remote
	// fetches are blocking; engines batch and pipeline around it).
	Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error)
	// Close releases transport resources.
	Close() error
}

// Pinger is implemented by fabrics that can carry heartbeat probes. Pings
// are control traffic: they round-trip through the transport (and through
// any fault-injecting wrapper) but are excluded from byte accounting so
// experiment traffic numbers stay payload-only.
type Pinger interface {
	Ping(from, to int) error
}

// RequestBytes returns the accounted wire size of a fetch request.
func RequestBytes(numIDs int) uint64 { return 4 + 4*uint64(numIDs) }

// ResponseBytes returns the accounted wire size of a fetch response.
func ResponseBytes(lists [][]graph.VertexID) uint64 {
	total := uint64(4)
	for _, l := range lists {
		total += 4 + 4*uint64(len(l))
	}
	return total
}

// account records the traffic of one request/response exchange.
func account(m *metrics.Cluster, from, to int, reqBytes, respBytes uint64) {
	if m == nil {
		return
	}
	m.Nodes[from].BytesSent.Add(reqBytes)
	m.Nodes[to].BytesReceived.Add(reqBytes)
	m.Nodes[to].BytesSent.Add(respBytes)
	m.Nodes[from].BytesReceived.Add(respBytes)
	m.Nodes[from].Messages.Add(1)
	m.Nodes[to].Messages.Add(1)
}

// Local is the in-process fabric: requests are served by direct calls into
// the destination machine's server, with full byte accounting. It is the
// default transport for experiments (zero serialization cost isolates the
// algorithmic effects the paper studies).
type Local struct {
	servers []Server
	m       *metrics.Cluster
}

// NewLocal returns an in-process fabric over the given per-node servers.
// m may be nil to disable accounting.
func NewLocal(servers []Server, m *metrics.Cluster) *Local {
	return &Local{servers: servers, m: m}
}

// Fetch implements Fabric.
func (l *Local) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	if to < 0 || to >= len(l.servers) {
		return nil, fmt.Errorf("comm: fetch to node %d: %w", to, ErrUnknownNode)
	}
	lists := l.servers[to].ServeEdgeLists(ids)
	account(l.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
	return lists, nil
}

// Ping implements Pinger: an in-process peer is reachable iff it exists.
func (l *Local) Ping(from, to int) error {
	if to < 0 || to >= len(l.servers) {
		return fmt.Errorf("comm: ping to node %d: %w", to, ErrUnknownNode)
	}
	return nil
}

// Close implements Fabric.
func (l *Local) Close() error { return nil }
