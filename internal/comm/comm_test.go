package comm

import (
	"sync"
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// testServers builds per-node servers over a partitioned graph.
func testServers(g *graph.Graph, asg partition.Assignment) []Server {
	servers := make([]Server, asg.NumNodes())
	for node := 0; node < asg.NumNodes(); node++ {
		local := partition.NewLocal(g, asg, node)
		servers[node] = ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = local.MustNeighbors(id)
			}
			return out
		})
	}
	return servers
}

func fetchAll(t *testing.T, f Fabric, g *graph.Graph, asg partition.Assignment) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		owner := asg.Owner(id)
		from := (owner + 1) % asg.NumNodes()
		lists, err := f.Fetch(from, owner, []graph.VertexID{id})
		if err != nil {
			t.Fatalf("Fetch(%d): %v", v, err)
		}
		if len(lists) != 1 {
			t.Fatalf("Fetch(%d): %d lists", v, len(lists))
		}
		want := g.Neighbors(id)
		if len(lists[0]) != len(want) {
			t.Fatalf("Fetch(%d): %d neighbors, want %d", v, len(lists[0]), len(want))
		}
		for i := range want {
			if lists[0][i] != want[i] {
				t.Fatalf("Fetch(%d): neighbor %d = %d, want %d", v, i, lists[0][i], want[i])
			}
		}
	}
}

func TestLocalFabricFetch(t *testing.T) {
	g := graph.RMATDefault(200, 800, 3)
	asg := partition.NewAssignment(3, 1)
	m := metrics.NewCluster(3)
	f := NewLocal(testServers(g, asg), m)
	defer f.Close()
	fetchAll(t, f, g, asg)
	s := m.Summarize()
	if s.BytesSent == 0 || s.Messages == 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestTCPFabricFetch(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(200, 800, 3)
	asg := partition.NewAssignment(3, 1)
	m := metrics.NewCluster(3)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fetchAll(t, f, g, asg)
}

func TestFabricsAccountIdentically(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 600, 9)
	asg := partition.NewAssignment(2, 1)

	mLocal := metrics.NewCluster(2)
	fl := NewLocal(testServers(g, asg), mLocal)
	defer fl.Close()

	mTCP := metrics.NewCluster(2)
	ft, err := NewTCP(testServers(g, asg), mTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()

	batch := []graph.VertexID{}
	for v := 0; v < g.NumVertices(); v++ {
		if asg.Owner(graph.VertexID(v)) == 1 {
			batch = append(batch, graph.VertexID(v))
		}
	}
	if _, err := fl.Fetch(0, 1, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Fetch(0, 1, batch); err != nil {
		t.Fatal(err)
	}
	a, b := mLocal.Summarize(), mTCP.Summarize()
	if a.BytesSent != b.BytesSent {
		t.Fatalf("local fabric accounted %d bytes, TCP %d", a.BytesSent, b.BytesSent)
	}
	if a.Messages != b.Messages {
		t.Fatalf("local fabric %d messages, TCP %d", a.Messages, b.Messages)
	}
}

func TestTCPConcurrentFetches(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(300, 1500, 4)
	asg := partition.NewAssignment(4, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < g.NumVertices(); v += 7 {
				id := graph.VertexID(v)
				owner := asg.Owner(id)
				from := (owner + 1 + w%3) % 4
				lists, err := f.Fetch(from, owner, []graph.VertexID{id})
				if err != nil {
					errs <- err
					return
				}
				if len(lists[0]) != int(g.Degree(id)) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFetchUnknownNode(t *testing.T) {
	f := NewLocal(nil, nil)
	if _, err := f.Fetch(0, 3, []graph.VertexID{1}); err == nil {
		t.Fatal("want error for unknown destination")
	}
}

func TestByteFormulas(t *testing.T) {
	if RequestBytes(0) != 4 {
		t.Fatalf("RequestBytes(0) = %d", RequestBytes(0))
	}
	if RequestBytes(3) != 16 {
		t.Fatalf("RequestBytes(3) = %d", RequestBytes(3))
	}
	lists := [][]graph.VertexID{{1, 2}, {}, {3}}
	// 4 + (4+8) + (4+0) + (4+4) = 28
	if got := ResponseBytes(lists); got != 28 {
		t.Fatalf("ResponseBytes = %d, want 28", got)
	}
}

func TestTCPLargePayload(t *testing.T) {
	leakcheck.Check(t)
	// A hub list far larger than the bufio buffers must frame correctly.
	b := graph.NewBuilder(0)
	for v := 1; v <= 50000; v++ {
		b.AddEdge(0, graph.VertexID(v))
	}
	g := b.Build()
	asg := partition.NewAssignment(2, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	owner := asg.Owner(0)
	lists, err := f.Fetch(1-owner, owner, []graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(lists[0]) != 50000 {
		t.Fatalf("hub list truncated: %d", len(lists[0]))
	}
	for i, v := range lists[0] {
		if v != graph.VertexID(i+1) {
			t.Fatalf("corrupted at %d: %d", i, v)
		}
	}
}

func TestTCPEmptyBatch(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(4)
	asg := partition.NewAssignment(2, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lists, err := f.Fetch(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 0 {
		t.Fatalf("empty batch returned %d lists", len(lists))
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(4)
	asg := partition.NewAssignment(2, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
