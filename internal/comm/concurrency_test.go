package comm

import (
	"fmt"
	"sync"
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// graphForComm returns the standard small test graph for fabric tests.
func graphForComm(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.RMATDefault(200, 800, 3)
}

// serversForComm partitions g over n nodes and returns the assignment,
// per-node servers and a fresh metrics cluster.
func serversForComm(g *graph.Graph, n int) (partition.Assignment, []Server, *metrics.Cluster) {
	asg := partition.NewAssignment(n, 1)
	return asg, testServers(g, asg), metrics.NewCluster(n)
}

// hammer issues the same deterministic fetch workload against a fabric from
// many goroutines and returns a per-vertex checksum of the results. The
// workload is identical across fabrics, so checksums and accounted byte
// totals must match between transports.
func hammer(t *testing.T, f Fabric, g *graph.Graph, asg partition.Assignment, workers int) []uint64 {
	t.Helper()
	sums := make([]uint64, g.NumVertices())
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker fetches a strided slice of the vertex set, batching
			// per owner the way the engine's circulant batches do.
			byOwner := make(map[int][]graph.VertexID)
			for v := w; v < g.NumVertices(); v += workers {
				id := graph.VertexID(v)
				byOwner[asg.Owner(id)] = append(byOwner[asg.Owner(id)], id)
			}
			for owner, batch := range byOwner {
				from := (owner + 1 + w%(asg.NumNodes()-1)) % asg.NumNodes()
				if from == owner {
					from = (from + 1) % asg.NumNodes()
				}
				lists, err := f.Fetch(from, owner, batch)
				if err != nil {
					errCh <- err
					return
				}
				if len(lists) != len(batch) {
					errCh <- fmt.Errorf("batch of %d returned %d lists", len(batch), len(lists))
					return
				}
				mu.Lock()
				for i, id := range batch {
					var sum uint64
					for _, nb := range lists[i] {
						sum = sum*31 + uint64(nb) + 1
					}
					sums[id] = sum
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return sums
}

// TestFabricsEquivalentUnderConcurrency extends the single-threaded
// equivalence test: many goroutines hammer the Local and TCP fabrics with
// the same workload; results and accounted byte totals must be identical.
// Run under -race this also proves both fabrics' internal synchronization.
func TestFabricsEquivalentUnderConcurrency(t *testing.T) {
	leakcheck.Check(t)
	const nodes, workers = 4, 24
	g := graphForComm(t)

	asg, servers, mLocal := serversForComm(g, nodes)
	fl := NewLocal(servers, mLocal)
	defer fl.Close()
	localSums := hammer(t, fl, g, asg, workers)

	_, servers2, mTCP := serversForComm(g, nodes)
	ft, err := NewTCP(servers2, mTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	tcpSums := hammer(t, ft, g, asg, workers)

	for v := range localSums {
		if localSums[v] != tcpSums[v] {
			t.Fatalf("vertex %d: local checksum %d, tcp %d", v, localSums[v], tcpSums[v])
		}
	}
	a, b := mLocal.Summarize(), mTCP.Summarize()
	if a.BytesSent != b.BytesSent {
		t.Fatalf("accounted bytes differ: local %d, tcp %d", a.BytesSent, b.BytesSent)
	}
	if a.Messages != b.Messages {
		t.Fatalf("accounted messages differ: local %d, tcp %d", a.Messages, b.Messages)
	}
	if a.BytesSent == 0 {
		t.Fatal("no traffic accounted")
	}
}

// TestResilientFabricEquivalentUnderConcurrency runs the same concurrent
// workload through the resilient layer over both transports: the resilience
// machinery must not change results or accounting on a healthy cluster.
func TestResilientFabricEquivalentUnderConcurrency(t *testing.T) {
	leakcheck.Check(t)
	const nodes, workers = 3, 16
	g := graphForComm(t)

	asg, servers, mLocal := serversForComm(g, nodes)
	rl := NewResilient(NewLocal(servers, mLocal), nodes, RetryConfig{Timeout: 5e9, Retries: 2}, mLocal)
	defer rl.Close()
	localSums := hammer(t, rl, g, asg, workers)

	_, servers2, mTCP := serversForComm(g, nodes)
	tf, err := NewTCP(servers2, mTCP)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewResilient(tf, nodes, RetryConfig{Timeout: 5e9, Retries: 2}, mTCP)
	defer rt.Close()
	tcpSums := hammer(t, rt, g, asg, workers)

	for v := range localSums {
		if localSums[v] != tcpSums[v] {
			t.Fatalf("vertex %d: local checksum %d, tcp %d", v, localSums[v], tcpSums[v])
		}
	}
	a, b := mLocal.Summarize(), mTCP.Summarize()
	if a.BytesSent != b.BytesSent || a.Messages != b.Messages {
		t.Fatalf("resilient accounting differs: local %d/%d, tcp %d/%d",
			a.BytesSent, a.Messages, b.BytesSent, b.Messages)
	}
}
