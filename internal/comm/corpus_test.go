package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"khuzdul/internal/graph"
)

// The seed corpora under testdata/fuzz are committed so every `go test` run
// (and CI's fuzz smoke job) exercises the decoders against the interesting
// wire shapes — valid frames, truncations, CRC flips, version mismatches,
// lying length prefixes — without needing a fuzzing session to rediscover
// them. TestWriteFuzzCorpus regenerates them:
//
//	KHUZDUL_WRITE_FUZZ_CORPUS=1 go test ./internal/comm -run TestWriteFuzzCorpus
//
// Without the environment variable it verifies the committed files instead,
// so the corpus can never silently drift from the frame layout.

// corpusSeeds builds every seed, keyed by fuzz target and seed name.
func corpusSeeds() map[string]map[string][]byte {
	frame := func(version, typ uint8, payload []byte) []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		writeFrame(w, version, typ, payload, -1)
		w.Flush()
		return buf.Bytes()
	}
	ids := encodeIDs(nil, []graph.VertexID{1, 2, 3, 0xFFFFFFFF})
	lists := encodeLists(nil, [][]graph.VertexID{{1, 2}, {}, {3, 4, 5}})

	request := frame(1, frameRequest, ids)
	crcFlip := append([]byte(nil), request...)
	crcFlip[len(crcFlip)-1] ^= 0xFF // payload no longer matches header CRC
	badVersion := frame(1, framePing, nil)
	badVersion[2] = 0x63 // outside the supported window
	badType := frame(1, framePing, nil)
	badType[3] = 0x7F // type above frameTypeMax
	hugePayload := frame(1, framePing, nil)
	binary.LittleEndian.PutUint32(hugePayload[4:], maxFramePayload+1)
	badMagic := frame(1, framePing, nil)
	badMagic[0] = 0x00

	idsTruncated := append([]byte(nil), ids[:len(ids)-3]...)
	idsLyingCount := binary.LittleEndian.AppendUint32(nil, maxFrameEntries+1)
	idsTrailing := append(encodeIDs(nil, []graph.VertexID{7}), 0xEE)

	// v3 multiplexed frames: request-ID-prefixed payloads, plus the hostile
	// shapes around the prefix (missing ID, frame truncated mid-payload).
	muxRequest := frame(ProtoVersionMux, frameMuxRequest, encodeMuxIDs(nil, 42, []graph.VertexID{1, 2, 3}))
	muxResponse := frame(ProtoVersionMux, frameMuxResponse, encodeMuxLists(nil, 42, [][]graph.VertexID{{1, 2}, {}, {3, 4, 5}}))
	muxError := frame(ProtoVersionMux, frameMuxError, binary.LittleEndian.AppendUint32(nil, 42))
	muxMissingID := frame(ProtoVersionMux, frameMuxRequest, []byte{0x2A})

	// Query-plane frames (v3): the service protocol's four message types,
	// plus the hostile shapes the codecs must reject (a spec-length prefix
	// that lies about the payload, a result truncated mid-fixed-header).
	querySubmit := frame(ProtoVersionMux, frameQuerySubmit,
		encodeQuerySubmit(nil, &QuerySubmit{ID: 7, Spec: "triangle"}))
	querySubmitRef := frame(ProtoVersionMux, frameQuerySubmit,
		encodeQuerySubmit(nil, &QuerySubmit{ID: 8, Kind: QueryPlanRef, PlanID: 3}))
	queryProgress := frame(ProtoVersionMux, frameQueryProgress,
		encodeQueryProgress(nil, &QueryProgress{ID: 7, Partial: 12345}))
	queryResult := frame(ProtoVersionMux, frameQueryResult,
		encodeQueryResult(nil, &QueryResult{ID: 7, Status: QueryOK, PlanID: 1, Count: 99, Elapsed: 1500000}))
	queryRejected := frame(ProtoVersionMux, frameQueryResult,
		encodeQueryResult(nil, &QueryResult{ID: 9, Status: QueryRejected, Detail: "admission window full"}))
	queryCancel := frame(ProtoVersionMux, frameQueryCancel, encodeQueryCancel(nil, 7))
	querySubmitDeadline := frame(ProtoVersionMux, frameQuerySubmit,
		encodeQuerySubmit(nil, &QuerySubmit{ID: 9, Spec: "triangle", Deadline: 5e9}))
	submitLyingSpec := frame(ProtoVersionMux, frameQuerySubmit,
		encodeQuerySubmit(nil, &QuerySubmit{ID: 7, Spec: "triangle"})[:querySubmitFixed+2])
	resultTruncated := frame(ProtoVersionMux, frameQueryResult,
		encodeQueryResult(nil, &QueryResult{ID: 7})[:queryResultFixed-4])

	// QUERY_HEALTH in both directions (the empty probe and a populated
	// report), plus the hostile shapes: a suspect-count prefix that lies
	// about the payload and a report truncated mid-fixed-header.
	queryHealthProbe := frame(ProtoVersionMux, frameQueryHealth, nil)
	queryHealthReport := frame(ProtoVersionMux, frameQueryHealth,
		encodeQueryHealth(nil, &QueryHealth{Draining: true, ActiveQueries: 2, Window: 4, Submitted: 17, DeadlineExceeded: 1, Suspects: []uint32{1, 3}}))
	healthLyingSuspects := frame(ProtoVersionMux, frameQueryHealth,
		encodeQueryHealth(nil, &QueryHealth{Window: 4, Suspects: []uint32{2}})[:queryHealthFixed])
	healthTruncated := frame(ProtoVersionMux, frameQueryHealth,
		encodeQueryHealth(nil, &QueryHealth{Window: 4})[:queryHealthFixed-5])
	// Self-consistent report announcing more suspects than the cap: the
	// length prefix is honest, so only the maxHealthSuspects clamp rejects it.
	oversized := make([]uint32, maxHealthSuspects+1)
	for i := range oversized {
		oversized[i] = uint32(i)
	}
	healthOversizedSuspects := frame(ProtoVersionMux, frameQueryHealth,
		encodeQueryHealth(nil, &QueryHealth{Window: 4, Suspects: oversized}))

	listsTruncated := append([]byte(nil), lists[:len(lists)-2]...)
	listsLyingLen := binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(nil, 1), maxFrameEntries+1)
	listsTrailing := append(encodeLists(nil, [][]graph.VertexID{{9}}), 0xEE)

	return map[string]map[string][]byte{
		"FuzzReadFrame": {
			"valid-ping":         frame(1, framePing, nil),
			"valid-request":      request,
			"valid-response":     frame(1, frameResponse, lists),
			"valid-hello":        frame(1, frameHello, encodeHello(ProtoVersionMin, ProtoVersionMax, 3)),
			"crc-flip":           crcFlip,
			"truncated-header":   request[:frameHeaderSize/2],
			"truncated-payload":  request[:frameHeaderSize+2],
			"version-mismatch":   badVersion,
			"unknown-frame-type": badType,
			"huge-payload-claim": hugePayload,
			"bad-magic":          badMagic,
			"valid-mux-request":  muxRequest,
			"valid-mux-response": muxResponse,
			"valid-mux-error":    muxError,
			"mux-missing-reqid":  muxMissingID,
			"mux-truncated":      muxRequest[:frameHeaderSize+5],

			"valid-query-submit":     querySubmit,
			"valid-query-planref":    querySubmitRef,
			"valid-query-progress":   queryProgress,
			"valid-query-result":     queryResult,
			"valid-query-rejected":   queryRejected,
			"valid-query-cancel":     queryCancel,
			"query-submit-deadline":  querySubmitDeadline,
			"query-submit-lying-len": submitLyingSpec,
			"query-result-truncated": resultTruncated,

			"valid-query-health-probe":  queryHealthProbe,
			"valid-query-health-report": queryHealthReport,
			"query-health-lying-len":    healthLyingSuspects,
			"query-health-truncated":    healthTruncated,

			"query-health-oversized-suspects": healthOversizedSuspects,
		},
		"FuzzReadIDs": {
			"valid-empty":    encodeIDs(nil, nil),
			"valid-ids":      ids,
			"truncated":      idsTruncated,
			"lying-count":    idsLyingCount,
			"trailing-bytes": idsTrailing,
		},
		"FuzzReadLists": {
			"valid-empty":     encodeLists(nil, nil),
			"valid-lists":     lists,
			"truncated":       listsTruncated,
			"lying-list-len":  listsLyingLen,
			"trailing-bytes":  listsTrailing,
			"nested-overflow": binary.LittleEndian.AppendUint32(nil, maxFrameEntries+1),
			// A mux payload handed to the inner decoder without stripping the
			// request ID must be rejected, not mis-parsed as a count.
			"mux-prefixed": encodeMuxLists(nil, 42, [][]graph.VertexID{{1, 2}}),
		},
	}
}

// corpusFile renders one seed in the go fuzzing corpus file format.
func corpusFile(data []byte) string {
	return fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
}

// TestWriteFuzzCorpus verifies the committed seed corpora match the current
// frame layout, or regenerates them when KHUZDUL_WRITE_FUZZ_CORPUS=1.
func TestWriteFuzzCorpus(t *testing.T) {
	write := os.Getenv("KHUZDUL_WRITE_FUZZ_CORPUS") != ""
	for target, seeds := range corpusSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if write {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for name, data := range seeds {
			path := filepath.Join(dir, "seed-"+name)
			want := corpusFile(data)
			if write {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("missing committed seed %s (regenerate with KHUZDUL_WRITE_FUZZ_CORPUS=1): %v", path, err)
				continue
			}
			if string(got) != want {
				t.Errorf("committed seed %s is stale; regenerate with KHUZDUL_WRITE_FUZZ_CORPUS=1", path)
			}
		}
	}
}
