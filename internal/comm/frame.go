package comm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"khuzdul/internal/graph"
)

// Wire-integrity protocol. Every byte exchanged by the TCP fabric travels
// inside a versioned, checksummed frame:
//
//	offset  size  field
//	0       2     magic 0x4B48 ("KH", little-endian on the wire)
//	2       1     protocol version (negotiated per connection)
//	3       1     frame type
//	4       4     payload length (u32)
//	8       4     CRC32C (Castagnoli) of the payload
//	12      …     payload
//
// A connection opens with a handshake: the client sends a HELLO frame whose
// payload carries its supported version window [min,max] plus its node ID;
// the server picks the highest version both sides support and answers with a
// HELLO_ACK carrying the choice (or closes the connection when the windows
// do not overlap). All subsequent frames on the connection carry the
// negotiated version, and a mismatched magic, version, type, oversized
// length or CRC failure surfaces as ErrCorruptFrame — a retryable error —
// instead of silently mis-parsed edge lists.
//
// Protocol generations. Versions 1 and 2 speak the serial exchange: one
// request/response pair at a time per connection, responses in request
// order. Version 3 multiplexes: MUX_REQUEST/MUX_RESPONSE/MUX_ERROR frames
// prefix their payload with a u32 request ID, so many exchanges can be in
// flight on one connection and responses may return out of order. The
// handshake keeps mixed clusters honest — a peer capped at the serial
// generation negotiates ≤2 and both sides fall back to the serial exchange.
//
// The frame header is genuine wire overhead, but traffic accounting keeps
// quoting the paper's payload formulas (RequestBytes/ResponseBytes) so
// experiment numbers stay comparable across fabrics.

// ErrCorruptFrame marks a frame rejected by the integrity checks (bad magic,
// bad version, unknown type, oversized length, or CRC mismatch). Retrying
// on a fresh connection may succeed.
var ErrCorruptFrame = errors.New("comm: corrupt frame")

// ErrVersionMismatch marks a handshake whose version windows do not overlap.
var ErrVersionMismatch = errors.New("comm: protocol version mismatch")

const (
	frameMagic = 0x4B48 // "KH"

	// ProtoVersionMin..ProtoVersionMax is the version window this build
	// speaks. Versions up to ProtoVersionSerialMax use the serial exchange;
	// ProtoVersionMux adds request multiplexing. The handshake keeps old and
	// new builds interoperable: the negotiated version selects the exchange
	// discipline on both sides of the connection.
	ProtoVersionMin       = 1
	ProtoVersionSerialMax = 2
	ProtoVersionMux       = 3
	ProtoVersionMax       = ProtoVersionMux

	frameHeaderSize = 12

	// maxFramePayload bounds the announced payload length before any
	// allocation happens: a corrupt length field must become an error, not a
	// multi-gigabyte read.
	maxFramePayload = MaxWireLen
)

// MaxWireLen is the single ceiling every server-side wire-length decode is
// clamped against: no length or count read off the socket may admit more
// than this many bytes into one allocation. The frame payload cap equals it
// directly; entry-count caps derive from it by element width
// (maxFrameEntries); the tighter string and suspect-list caps in query.go
// refine it for fields that are semantically tiny. Every violation surfaces
// as an ErrCorruptFrame-classified error, so callers retry on a fresh
// connection instead of OOM-ing on a hostile peer.
const MaxWireLen = 1 << 29

// Frame types.
const (
	frameHello    = 0x01 // client → server: version window + client node ID
	frameHelloAck = 0x02 // server → client: chosen version
	frameRequest  = 0x03 // edge-list request: u32 count + count u32 IDs
	frameResponse = 0x04 // edge-list response: u32 count + per list (u32 len + vertices)
	framePing     = 0x05 // heartbeat probe (empty payload)
	framePong     = 0x06 // heartbeat reply (empty payload)
	frameError    = 0x07 // connection-level rejection (e.g. corrupt request); empty payload

	// v3 multiplexed exchange: payloads carry a u32 request ID prefix so the
	// CRC covers it, followed by the canonical request/response payload.
	frameMuxRequest  = 0x08 // edge-list request: u32 request ID + IDs payload
	frameMuxResponse = 0x09 // edge-list response: u32 request ID + lists payload
	frameMuxError    = 0x0A // per-request rejection: u32 request ID (CRC-valid but malformed request)

	// Query-service frames (v3+ only; see query.go for the payload codecs).
	// The query plane rides the same framed wire as edge-list traffic: a
	// client submits pattern queries by ID and the server streams progress
	// and a final result per query, many queries in flight per connection.
	frameQuerySubmit   = 0x0B // client → server: query ID + pattern spec or plan reference
	frameQueryProgress = 0x0C // server → client: query ID + partial match count
	frameQueryResult   = 0x0D // server → client: query ID + terminal status + count
	frameQueryCancel   = 0x0E // client → server: query ID to abort
	frameQueryHealth   = 0x0F // client → server: empty probe; server → client: health report

	frameTypeMax = frameQueryHealth
)

// castagnoli is the CRC32C table (iSCSI polynomial, hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame emits one frame. corruptByte, when non-negative, XOR-flips the
// payload byte at that index AFTER the CRC is computed — the fault
// injector's hook for exercising real end-to-end corruption detection.
func writeFrame(w *bufio.Writer, version, typ uint8, payload []byte, corruptByte int) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = version
	hdr[3] = typ
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if corruptByte >= 0 && len(payload) > 0 {
		i := corruptByte % len(payload)
		payload[i] ^= 0xFF
		_, err := w.Write(payload)
		payload[i] ^= 0xFF // restore the caller's buffer
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and integrity-checks one frame. wantVersion 0 accepts any
// version in the supported window (used for the handshake, which runs before
// negotiation); otherwise the header must carry exactly wantVersion. The
// returned payload aliases a fresh buffer.
func readFrame(r *bufio.Reader, wantVersion uint8) (typ uint8, payload []byte, err error) {
	return readFrameAlloc(r, wantVersion, freshPayload)
}

// readFramePooled is readFrame with the payload drawn from payloadPool. The
// caller owns the buffer and returns it with putPayloadBuf once decoded.
func readFramePooled(r *bufio.Reader, wantVersion uint8) (typ uint8, payload []byte, err error) {
	return readFrameAlloc(r, wantVersion, getPayloadBuf)
}

func freshPayload(n int) []byte { return make([]byte, n) }

func readFrameAlloc(r *bufio.Reader, wantVersion uint8, alloc func(int) []byte) (typ uint8, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if m := binary.LittleEndian.Uint16(hdr[0:]); m != frameMagic {
		return 0, nil, fmt.Errorf("bad magic %#04x: %w", m, ErrCorruptFrame)
	}
	v := hdr[2]
	if wantVersion == 0 {
		if v < ProtoVersionMin || v > ProtoVersionMax {
			return 0, nil, fmt.Errorf("unsupported version %d: %w", v, ErrCorruptFrame)
		}
	} else if v != wantVersion {
		return 0, nil, fmt.Errorf("version %d on a v%d connection: %w", v, wantVersion, ErrCorruptFrame)
	}
	typ = hdr[3]
	if typ < frameHello || typ > frameTypeMax {
		return 0, nil, fmt.Errorf("unknown frame type %#02x: %w", typ, ErrCorruptFrame)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("frame announces %d payload bytes (max %d): %w", n, maxFramePayload, ErrCorruptFrame)
	}
	want := binary.LittleEndian.Uint32(hdr[8:])
	payload = alloc(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("truncated frame (want %d payload bytes): %w", n, io.ErrUnexpectedEOF)
		}
		return 0, nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return 0, nil, fmt.Errorf("payload CRC %#08x, header says %#08x: %w", got, want, ErrCorruptFrame)
	}
	return typ, payload, nil
}

// Handshake payloads.

// encodeHello builds the HELLO payload: [minVersion, maxVersion, nodeID u32].
func encodeHello(minVer, maxVer uint8, node int) []byte {
	p := make([]byte, 6)
	p[0] = minVer
	p[1] = maxVer
	binary.LittleEndian.PutUint32(p[2:], uint32(node))
	return p
}

// decodeHello parses a HELLO payload.
func decodeHello(p []byte) (minVer, maxVer uint8, node int, err error) {
	if len(p) != 6 {
		return 0, 0, 0, fmt.Errorf("hello payload is %d bytes, want 6: %w", len(p), ErrCorruptFrame)
	}
	return p[0], p[1], int(binary.LittleEndian.Uint32(p[2:])), nil
}

// negotiateVersion picks the highest version inside both windows, or 0 when
// the windows do not overlap.
func negotiateVersion(aMin, aMax, bMin, bMax uint8) uint8 {
	hi := aMax
	if bMax < hi {
		hi = bMax
	}
	lo := aMin
	if bMin > lo {
		lo = bMin
	}
	if hi < lo {
		return 0
	}
	return hi
}

// Payload codecs. The request payload is u32 count + count u32 IDs; the
// response payload is u32 count + per list (u32 len + len u32 vertices) —
// byte-identical to the accounted formulas.

// encodeIDs appends the request payload for ids to buf.
func encodeIDs(buf []byte, ids []graph.VertexID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// decodeIDs parses a request payload.
func decodeIDs(p []byte) ([]graph.VertexID, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("comm: request payload %d bytes: %w", len(p), ErrCorruptFrame)
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxFrameEntries {
		return nil, fmt.Errorf("comm: request announces %d ids (max %d): %w", n, maxFrameEntries, ErrCorruptFrame)
	}
	if uint64(len(p)) != 4+4*uint64(n) {
		return nil, fmt.Errorf("comm: request announces %d ids in %d payload bytes: %w", n, len(p), ErrCorruptFrame)
	}
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(binary.LittleEndian.Uint32(p[4+4*i:]))
	}
	return ids, nil
}

// encodeLists appends the response payload for lists to buf.
func encodeLists(buf []byte, lists [][]graph.VertexID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lists)))
	for _, l := range lists {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l)))
		for _, v := range l {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf
}

// decodeLists parses a response payload. All vertices land in one backing
// slab sub-sliced per list, so decoding costs two allocations regardless of
// how many lists the response carries. The sub-slices are capacity-clipped:
// appending to one list can never scribble over its neighbour.
func decodeLists(p []byte) ([][]graph.VertexID, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("comm: response payload %d bytes: %w", len(p), ErrCorruptFrame)
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxFrameEntries {
		return nil, fmt.Errorf("comm: response announces %d lists (max %d): %w", n, maxFrameEntries, ErrCorruptFrame)
	}
	// First pass: validate the framing and size the slab. The total vertex
	// count is bounded by the payload length, so a hostile header cannot
	// inflate the allocation past the bytes actually received.
	body := p[4:]
	var total uint64
	for i := uint32(0); i < n; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("comm: response truncated at list %d/%d header: %w", i, n, ErrCorruptFrame)
		}
		ln := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if ln > maxFrameEntries {
			return nil, fmt.Errorf("comm: response announces %d-vertex list (max %d): %w", ln, maxFrameEntries, ErrCorruptFrame)
		}
		if uint64(len(body)) < 4*uint64(ln) {
			return nil, fmt.Errorf("comm: response truncated in list %d/%d (want %d vertices): %w", i, n, ln, ErrCorruptFrame)
		}
		body = body[4*ln:]
		total += uint64(ln)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("comm: %d trailing bytes after response lists: %w", len(body), ErrCorruptFrame)
	}
	// Second pass: fill the slab.
	lists := make([][]graph.VertexID, n)
	slab := make([]graph.VertexID, total)
	body = p[4:]
	var off uint64
	for i := range lists {
		ln := uint64(binary.LittleEndian.Uint32(body))
		body = body[4:]
		l := slab[off : off+ln : off+ln]
		for j := range l {
			l[j] = graph.VertexID(binary.LittleEndian.Uint32(body[4*uint64(j):]))
		}
		body = body[4*ln:]
		off += ln
		lists[i] = l
	}
	return lists, nil
}

// Multiplexed (v3) payload helpers. The request ID rides inside the payload
// rather than the header so the CRC covers it and the frame layout stays
// identical across protocol versions.

// encodeMuxIDs appends the v3 request payload: request ID + IDs payload.
func encodeMuxIDs(buf []byte, id uint32, ids []graph.VertexID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, id)
	return encodeIDs(buf, ids)
}

// encodeMuxLists appends the v3 response payload: request ID + lists payload.
func encodeMuxLists(buf []byte, id uint32, lists [][]graph.VertexID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, id)
	return encodeLists(buf, lists)
}

// muxID splits a v3 payload into its request ID and the inner payload.
func muxID(p []byte) (id uint32, rest []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("comm: mux payload %d bytes, want request ID: %w", len(p), ErrCorruptFrame)
	}
	return binary.LittleEndian.Uint32(p), p[4:], nil
}

// payloadPool recycles payload buffers — request encodes, pooled frame
// reads, response encodes — across exchanges, so the steady-state wire path
// performs no per-exchange buffer allocations.
var payloadPool sync.Pool

// maxPooledPayload caps what the pool retains: a hub-vertex response can run
// to hundreds of megabytes, and parking such a buffer in the pool would pin
// its high-water mark indefinitely.
const maxPooledPayload = 1 << 20

// getPayloadBuf returns a length-n buffer, reusing a pooled one when its
// capacity suffices. getPayloadBuf(0) seeds an encode buffer for append.
func getPayloadBuf(n int) []byte {
	if p, ok := payloadPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// putPayloadBuf returns a buffer to the pool. Oversized buffers are dropped
// so one huge response does not pin memory for the fabric's lifetime.
func putPayloadBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledPayload {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// WireFaults is the hook surface the fault injector uses to perturb the TCP
// fabric at the byte level: CorruptFrame flips a payload byte after the CRC
// is computed (so the receiver's integrity check must catch it), and
// DropAfterSend severs the connection between sending a request and reading
// its response (a mid-exchange connection drop). Both are consulted once per
// request with the client's (from, to) pair — on the multiplexed path each
// in-flight request rolls its own faults, not the connection.
type WireFaults interface {
	CorruptFrame(from, to int) bool
	DropAfterSend(from, to int) bool
}

// WireFaultable is implemented by fabrics that can apply byte-level wire
// faults (today: the TCP fabric).
type WireFaultable interface {
	SetWireFaults(WireFaults)
}
