package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xAB, 0xCD}, 5000)}
	for _, p := range payloads {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeFrame(w, 1, frameRequest, p, -1); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		typ, got, err := readFrame(bufio.NewReader(&buf), 1)
		if err != nil {
			t.Fatalf("readFrame(%d-byte payload): %v", len(p), err)
		}
		if typ != frameRequest || !bytes.Equal(got, p) {
			t.Fatalf("round trip: type %#02x, %d bytes, want %#02x, %d", typ, len(got), frameRequest, len(p))
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]byte(nil), payload...)
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, 1, frameResponse, payload, 3); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !bytes.Equal(payload, orig) {
		t.Fatal("writeFrame did not restore the caller's buffer after corrupting")
	}
	_, _, err := readFrame(bufio.NewReader(&buf), 1)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupted payload read as %v, want ErrCorruptFrame", err)
	}
}

func TestFrameHeaderValidation(t *testing.T) {
	// A well-formed empty PING frame as the baseline, then break one header
	// field at a time.
	mk := func(mutate func(hdr []byte)) []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		writeFrame(w, 1, framePing, nil, -1)
		w.Flush()
		b := buf.Bytes()
		mutate(b)
		return b
	}
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"bad magic", func(b []byte) { b[0] = 0xFF }},
		{"zero version", func(b []byte) { b[2] = 0 }},
		{"future version", func(b []byte) { b[2] = ProtoVersionMax + 1 }},
		{"zero type", func(b []byte) { b[3] = 0 }},
		{"unknown type", func(b []byte) { b[3] = frameTypeMax + 1 }},
		{"oversized length", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], maxFramePayload+1) }},
		{"bad crc", func(b []byte) { b[8] ^= 0xFF }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bufio.NewReader(bytes.NewReader(mk(tc.mutate))), 1)
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("got %v, want ErrCorruptFrame", err)
			}
		})
	}
	t.Run("wrong negotiated version", func(t *testing.T) {
		// Version inside the window but not the one this connection agreed on.
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(mk(func([]byte) {}))), ProtoVersionMax+3)
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("got %v, want ErrCorruptFrame", err)
		}
	})
}

func TestNegotiateVersion(t *testing.T) {
	cases := []struct {
		aMin, aMax, bMin, bMax, want uint8
	}{
		{1, 1, 1, 1, 1},
		{1, 3, 2, 5, 3},
		{2, 5, 1, 3, 3},
		{1, 2, 3, 4, 0}, // disjoint
		{3, 4, 1, 2, 0}, // disjoint, other side
		{1, 9, 4, 4, 4},
	}
	for _, tc := range cases {
		if got := negotiateVersion(tc.aMin, tc.aMax, tc.bMin, tc.bMax); got != tc.want {
			t.Fatalf("negotiate([%d,%d],[%d,%d]) = %d, want %d",
				tc.aMin, tc.aMax, tc.bMin, tc.bMax, got, tc.want)
		}
	}
}

func TestCodecsMatchAccountingFormulas(t *testing.T) {
	// The wire payloads are byte-identical to the accounted formulas — the
	// invariant that keeps TCP and in-process traffic numbers comparable.
	ids := []graph.VertexID{3, 1, 4, 1, 5, 9}
	if got := len(encodeIDs(nil, ids)); uint64(got) != RequestBytes(len(ids)) {
		t.Fatalf("request payload %d bytes, formula says %d", got, RequestBytes(len(ids)))
	}
	lists := [][]graph.VertexID{{1, 2}, {}, {3, 4, 5}}
	if got := len(encodeLists(nil, lists)); uint64(got) != ResponseBytes(lists) {
		t.Fatalf("response payload %d bytes, formula says %d", got, ResponseBytes(lists))
	}

	gotIDs, err := decodeIDs(encodeIDs(nil, ids))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("id %d decoded as %d, want %d", i, gotIDs[i], ids[i])
		}
	}
	gotLists, err := decodeLists(encodeLists(nil, lists))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLists) != len(lists) {
		t.Fatalf("%d lists, want %d", len(gotLists), len(lists))
	}
	for i, l := range lists {
		if len(gotLists[i]) != len(l) {
			t.Fatalf("list %d: %d vertices, want %d", i, len(gotLists[i]), len(l))
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	huge := binary.LittleEndian.AppendUint32(nil, maxFrameEntries+1)
	cases := [][]byte{
		nil,                   // too short for the count
		{1, 2},                // still too short
		{2, 0, 0, 0, 9, 9, 9}, // announces 2 ids, carries <1
		huge,                  // absurd count must not allocate
	}
	for i, p := range cases {
		if _, err := decodeIDs(p); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("decodeIDs case %d: got %v, want ErrCorruptFrame", i, err)
		}
		if _, err := decodeLists(p); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("decodeLists case %d: got %v, want ErrCorruptFrame", i, err)
		}
	}
	// Trailing garbage after a valid list set is corruption, not slack.
	p := append(encodeLists(nil, [][]graph.VertexID{{1}}), 0xEE)
	if _, err := decodeLists(p); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing bytes: got %v, want ErrCorruptFrame", err)
	}
}

func TestTCPVersionMismatch(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(8)
	asg := partition.NewAssignment(2, 1)
	srv, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Point the client at the server fabric and make it speak a future
	// protocol generation only.
	cli.addrs = srv.addrs
	cli.minVer, cli.maxVer = ProtoVersionMax+1, ProtoVersionMax+3
	_, err = cli.Fetch(0, 1, []graph.VertexID{1})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

func TestTCPPing(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(8)
	asg := partition.NewAssignment(2, 1)
	m := metrics.NewCluster(2)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		if err := f.Ping(0, 1); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if err := f.Ping(0, 7); err == nil {
		t.Fatal("ping to unknown node succeeded")
	}
	// Pings are control traffic: nothing lands in the byte accounting.
	if s := m.Summarize(); s.BytesSent != 0 || s.Messages != 0 {
		t.Fatalf("pings were accounted: %d bytes, %d messages", s.BytesSent, s.Messages)
	}
}

// scriptedFaults injects wire faults on chosen exchange ordinals.
type scriptedFaults struct {
	mu       sync.Mutex
	n        int
	corruptN map[int]bool
	dropN    map[int]bool
}

func (s *scriptedFaults) CorruptFrame(from, to int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.corruptN[s.n]
}

func (s *scriptedFaults) DropAfterSend(from, to int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropN[s.n]
}

func TestTCPCorruptExchangeDetected(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(100, 400, 5)
	asg := partition.NewAssignment(2, 1)
	m := metrics.NewCluster(2)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetWireFaults(&scriptedFaults{corruptN: map[int]bool{1: true}})

	ids := []graph.VertexID{}
	for v := 0; v < g.NumVertices(); v++ {
		if asg.Owner(graph.VertexID(v)) == 1 {
			ids = append(ids, graph.VertexID(v))
			if len(ids) == 8 {
				break
			}
		}
	}
	// First exchange carries a flipped payload byte; the server's CRC check
	// must reject it and the client must see a retryable integrity error.
	if _, err := f.Fetch(0, 1, ids); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupted exchange returned %v, want ErrCorruptFrame", err)
	}
	// The retry redials and succeeds with intact data.
	lists, err := f.Fetch(0, 1, ids)
	if err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
	for i, id := range ids {
		if len(lists[i]) != int(g.Degree(id)) {
			t.Fatalf("retry returned wrong list for %d", id)
		}
	}
	s := m.Summarize()
	if s.CorruptFrames == 0 {
		t.Fatal("no corrupt frames accounted")
	}
	if s.Redials == 0 {
		t.Fatal("no redial accounted after the corruption teardown")
	}
}

func TestTCPDropAfterSend(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(100, 400, 6)
	asg := partition.NewAssignment(2, 1)
	m := metrics.NewCluster(2)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetWireFaults(&scriptedFaults{dropN: map[int]bool{1: true}})

	var id graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if asg.Owner(graph.VertexID(v)) == 1 {
			id = graph.VertexID(v)
			break
		}
	}
	if _, err := f.Fetch(0, 1, []graph.VertexID{id}); err == nil {
		t.Fatal("mid-exchange drop returned no error")
	}
	lists, err := f.Fetch(0, 1, []graph.VertexID{id})
	if err != nil {
		t.Fatalf("retry after drop failed: %v", err)
	}
	if len(lists[0]) != int(g.Degree(id)) {
		t.Fatal("retry returned wrong list")
	}
	if s := m.Summarize(); s.Redials == 0 {
		t.Fatal("no redial accounted after the drop")
	}
}
