package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"khuzdul/internal/graph"
)

// The wire decoders face bytes straight off a socket; fuzzing asserts they
// never panic, never over-allocate on lying length prefixes, and accept only
// payloads that re-encode to the exact same bytes (the format is canonical).

func FuzzReadIDs(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(encodeIDs(nil, nil))
	f.Add(encodeIDs(nil, []graph.VertexID{0, 1, 2, 0xFFFFFFFF}))
	f.Add(binary.LittleEndian.AppendUint32(nil, maxFrameEntries+1))
	f.Add([]byte{2, 0, 0, 0, 7, 7, 7}) // count says 2, bytes say less
	f.Fuzz(func(t *testing.T, p []byte) {
		ids, err := decodeIDs(p)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decodeIDs rejection is not ErrCorruptFrame: %v", err)
			}
			return
		}
		if re := encodeIDs(nil, ids); !bytes.Equal(re, p) {
			t.Fatalf("accepted %d bytes that re-encode to %d different bytes", len(p), len(re))
		}
	})
}

func FuzzReadLists(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(encodeLists(nil, nil))
	f.Add(encodeLists(nil, [][]graph.VertexID{{1, 2}, {}, {3}}))
	f.Add(binary.LittleEndian.AppendUint32(nil, maxFrameEntries+1))
	f.Add(append(encodeLists(nil, [][]graph.VertexID{{9}}), 0xEE)) // trailing byte
	f.Fuzz(func(t *testing.T, p []byte) {
		lists, err := decodeLists(p)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decodeLists rejection is not ErrCorruptFrame: %v", err)
			}
			return
		}
		if re := encodeLists(nil, lists); !bytes.Equal(re, p) {
			t.Fatalf("accepted %d bytes that re-encode to %d different bytes", len(p), len(re))
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	valid := func(typ uint8, payload []byte) []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		writeFrame(w, 1, typ, payload, -1)
		w.Flush()
		return buf.Bytes()
	}
	f.Add([]byte(nil))
	f.Add(valid(framePing, nil))
	f.Add(valid(frameRequest, encodeIDs(nil, []graph.VertexID{1, 2, 3})))
	f.Add(valid(frameHello, encodeHello(ProtoVersionMin, ProtoVersionMax, 0)))
	f.Add(valid(frameMuxRequest, encodeMuxIDs(nil, 42, []graph.VertexID{1, 2, 3})))
	f.Add(valid(frameMuxResponse, encodeMuxLists(nil, 42, [][]graph.VertexID{{1, 2}, {}})))
	f.Add(valid(frameMuxError, binary.LittleEndian.AppendUint32(nil, 42)))
	f.Add(valid(frameMuxRequest, []byte{0x2A})) // truncated: shorter than a request ID
	// Query-plane frames (v3): submissions, progress, results, cancels,
	// health probes/reports, and a submit whose spec-length prefix lies
	// about the payload.
	f.Add(valid(frameQuerySubmit, encodeQuerySubmit(nil, &QuerySubmit{ID: 7, Spec: "triangle"})))
	f.Add(valid(frameQuerySubmit, encodeQuerySubmit(nil, &QuerySubmit{ID: 8, Kind: QueryPlanRef, PlanID: 3})))
	f.Add(valid(frameQuerySubmit, encodeQuerySubmit(nil, &QuerySubmit{ID: 9, Spec: "triangle", Deadline: 5e9})))
	f.Add(valid(frameQueryProgress, encodeQueryProgress(nil, &QueryProgress{ID: 7, Partial: 99})))
	f.Add(valid(frameQueryResult, encodeQueryResult(nil, &QueryResult{ID: 7, Status: QueryOK, PlanID: 1, Count: 12})))
	f.Add(valid(frameQueryCancel, encodeQueryCancel(nil, 7)))
	f.Add(valid(frameQuerySubmit, encodeQuerySubmit(nil, &QuerySubmit{ID: 7, Spec: "triangle"})[:querySubmitFixed+2]))
	f.Add(valid(frameQueryHealth, nil)) // the probe direction: empty payload
	f.Add(valid(frameQueryHealth, encodeQueryHealth(nil, &QueryHealth{Draining: true, ActiveQueries: 2, Window: 4, Submitted: 17, Suspects: []uint32{1, 3}})))
	f.Add(valid(frameQueryHealth, encodeQueryHealth(nil, &QueryHealth{Window: 4, Suspects: []uint32{2}})[:queryHealthFixed]))
	huge := valid(framePing, nil)
	binary.LittleEndian.PutUint32(huge[4:], maxFramePayload+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)), 0)
		if err != nil {
			ok := errors.Is(err, ErrCorruptFrame) ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
			if !ok {
				t.Fatalf("readFrame rejection is neither integrity nor IO error: %v", err)
			}
			return
		}
		if typ < frameHello || typ > frameTypeMax {
			t.Fatalf("readFrame accepted unknown frame type %#02x", typ)
		}
		// An accepted frame must re-serialize to a prefix of the input.
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		writeFrame(w, data[2], typ, payload, -1)
		w.Flush()
		if !bytes.Equal(buf.Bytes(), data[:len(buf.Bytes())]) {
			t.Fatal("accepted frame does not round-trip")
		}
	})
}
