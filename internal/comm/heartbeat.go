package comm

import (
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/metrics"
)

// Heartbeat failure detection. One lightweight goroutine per simulated
// machine exchanges periodic pings with every peer over the fabric (through
// the fault injector, so crashes and partitions are felt exactly like data
// traffic feels them). A peer that misses Misses consecutive pings from any
// live node is declared suspect — one cluster-wide verdict that every
// worker's retry layer consumes via Resilient's suspector hook, instead of
// each worker independently burning its retry budget against a dead peer.
// This is the proactive half of failure handling; the per-fetch circuit
// breaker remains as a fallback when the detector is disabled.

// DetectorConfig tunes the heartbeat failure detector.
type DetectorConfig struct {
	// Interval is the ping period per (node, peer) pair. Default 20ms.
	Interval time.Duration
	// Timeout bounds one ping round trip. Default 2×Interval.
	Timeout time.Duration
	// Misses is the number of consecutive failed pings to a peer after
	// which it is declared suspect. Default 3.
	Misses int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * c.Interval
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	return c
}

// Detector is a running heartbeat failure detector over one fabric.
type Detector struct {
	fabric Fabric
	pinger Pinger // fabric's ping surface, nil when unsupported
	n      int
	cfg    DetectorConfig
	m      *metrics.Cluster

	// selfDead, when set, reports that a node's own process is gone (e.g.
	// crashed by fault injection); its detector goroutine stops accusing
	// peers, exactly as a dead process's timers stop firing.
	selfDead func(node int) bool

	suspected []atomic.Bool
	misses    []atomic.Int32 // consecutive misses per (from,to) pair
	inflight  []atomic.Bool  // one outstanding ping per pair

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewDetector builds a detector for a numNodes cluster over fabric. m may be
// nil to disable accounting; selfDead may be nil when nodes cannot die
// outside the detector's own view.
func NewDetector(fabric Fabric, numNodes int, cfg DetectorConfig, m *metrics.Cluster, selfDead func(int) bool) *Detector {
	p, _ := fabric.(Pinger)
	return &Detector{
		fabric:    fabric,
		pinger:    p,
		n:         numNodes,
		cfg:       cfg.withDefaults(),
		m:         m,
		selfDead:  selfDead,
		suspected: make([]atomic.Bool, numNodes),
		misses:    make([]atomic.Int32, numNodes*numNodes),
		inflight:  make([]atomic.Bool, numNodes*numNodes),
		stop:      make(chan struct{}),
	}
}

// Start launches one heartbeat goroutine per node.
func (d *Detector) Start() {
	for node := 0; node < d.n; node++ {
		d.wg.Add(1)
		go d.runNode(node)
	}
}

// Stop halts the heartbeat goroutines. Pings already in flight against hung
// peers are abandoned; they unpark when the fabric closes.
func (d *Detector) Stop() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// Suspected reports whether the detector has declared node suspect.
func (d *Detector) Suspected(node int) bool {
	return node >= 0 && node < d.n && d.suspected[node].Load()
}

// SuspectedNodes returns every suspect node so far, ascending.
func (d *Detector) SuspectedNodes() []int {
	var out []int
	for i := range d.suspected {
		if d.suspected[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// runNode is one machine's heartbeat loop: ping every peer each interval,
// with at most one outstanding ping per pair.
//
//khuzdulvet:longrun heartbeat loop; must exit promptly on stop
func (d *Detector) runNode(node int) {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
		}
		if d.selfDead != nil && d.selfDead(node) {
			return // a crashed process stops heartbeating
		}
		for peer := 0; peer < d.n; peer++ {
			if peer == node || d.suspected[peer].Load() {
				continue
			}
			pair := node*d.n + peer
			if !d.inflight[pair].CompareAndSwap(false, true) {
				continue // previous ping to this peer still outstanding
			}
			d.wg.Add(1)
			go d.pingOnce(node, peer, pair)
		}
	}
}

// pingOnce sends one deadline-bounded ping and applies the verdict. A ping
// that outlives its deadline counts as a miss and releases the pair for the
// next probe — otherwise one hung ping would freeze the miss counter at one
// forever. The hung goroutine itself stays parked until the transport
// releases it (fabric close); accumulation is bounded at Misses goroutines
// per pair, because suspicion stops further probing of that peer.
func (d *Detector) pingOnce(node, peer, pair int) {
	defer d.wg.Done()
	defer d.inflight[pair].Store(false)
	done := make(chan error, 1)
	go func() { done <- d.ping(node, peer) }()
	t := time.NewTimer(d.cfg.Timeout)
	defer t.Stop()
	var err error
	select {
	case err = <-done:
	case <-t.C:
		err = ErrFetchTimeout
	}
	if err == nil {
		d.misses[pair].Store(0)
		return
	}
	if d.m != nil {
		d.m.Nodes[node].HeartbeatMisses.Add(1)
	}
	if n := d.misses[pair].Add(1); int(n) >= d.cfg.Misses {
		// Only a live accuser's verdict counts; a node marked dead between
		// scheduling and verdict must not take peers down with it.
		if d.selfDead != nil && d.selfDead(node) {
			return
		}
		if d.suspected[peer].CompareAndSwap(false, true) && d.m != nil {
			d.m.Nodes[node].NodesSuspected.Add(1)
		}
	}
}

// ping issues one probe over the fabric's control channel, falling back to
// an empty fetch when the transport has no ping surface.
func (d *Detector) ping(node, peer int) error {
	if d.pinger != nil {
		return d.pinger.Ping(node, peer)
	}
	_, err := d.fabric.Fetch(node, peer, nil)
	return err
}
