package comm

import (
	"errors"
	"testing"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// pingStub is a fabric whose ping outcomes are programmable per target.
type pingStub struct {
	fail func(from, to int) bool
}

func (p *pingStub) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	return nil, nil
}
func (p *pingStub) Close() error { return nil }
func (p *pingStub) Ping(from, to int) error {
	if p.fail != nil && p.fail(from, to) {
		return errors.New("stub: peer unreachable")
	}
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestDetectorSuspectsUnreachablePeer(t *testing.T) {
	const n = 4
	m := metrics.NewCluster(n)
	fab := &pingStub{fail: func(from, to int) bool { return to == 2 }}
	d := NewDetector(fab, n, DetectorConfig{
		Interval: 3 * time.Millisecond,
		Timeout:  6 * time.Millisecond,
		Misses:   2,
	}, m, nil)
	d.Start()
	defer d.Stop()

	if !waitFor(t, 2*time.Second, func() bool { return d.Suspected(2) }) {
		t.Fatal("node 2 never suspected")
	}
	for node := 0; node < n; node++ {
		if node != 2 && d.Suspected(node) {
			t.Fatalf("healthy node %d suspected", node)
		}
	}
	got := d.SuspectedNodes()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("SuspectedNodes = %v, want [2]", got)
	}
	s := m.Summarize()
	if s.HeartbeatMisses == 0 {
		t.Fatal("no heartbeat misses accounted")
	}
	if s.NodesSuspected == 0 {
		t.Fatal("no suspicion accounted")
	}
}

func TestDetectorNoFalsePositives(t *testing.T) {
	const n = 4
	m := metrics.NewCluster(n)
	d := NewDetector(&pingStub{}, n, DetectorConfig{
		Interval: 2 * time.Millisecond,
		Timeout:  20 * time.Millisecond,
		Misses:   2,
	}, m, nil)
	d.Start()
	time.Sleep(100 * time.Millisecond)
	d.Stop()
	if got := d.SuspectedNodes(); len(got) != 0 {
		t.Fatalf("healthy cluster produced suspects %v", got)
	}
	if s := m.Summarize(); s.NodesSuspected != 0 {
		t.Fatalf("accounted %d suspicions on a healthy cluster", s.NodesSuspected)
	}
}

func TestDetectorDeadAccuserIsSilenced(t *testing.T) {
	// Every ping fails (total partition), but every accuser is itself dead:
	// a crashed process's timers stop firing, so nobody gets suspected.
	const n = 3
	d := NewDetector(&pingStub{fail: func(int, int) bool { return true }}, n, DetectorConfig{
		Interval: 2 * time.Millisecond,
		Timeout:  4 * time.Millisecond,
		Misses:   1,
	}, nil, func(node int) bool { return true })
	d.Start()
	time.Sleep(80 * time.Millisecond)
	d.Stop()
	if got := d.SuspectedNodes(); len(got) != 0 {
		t.Fatalf("dead accusers suspected %v", got)
	}
}

func TestDetectorOverTCPFabric(t *testing.T) {
	leakcheck.Check(t)
	// End to end over real sockets: all peers answer pings, none suspected.
	g := graph.Path(16)
	asg := partition.NewAssignment(3, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := NewDetector(f, 3, DetectorConfig{
		Interval: 3 * time.Millisecond,
		Timeout:  100 * time.Millisecond,
		Misses:   3,
	}, nil, nil)
	d.Start()
	time.Sleep(60 * time.Millisecond)
	d.Stop()
	if got := d.SuspectedNodes(); len(got) != 0 {
		t.Fatalf("TCP heartbeats produced suspects %v", got)
	}
}
