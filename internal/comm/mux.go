package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// Request multiplexing (protocol v3). A serial connection head-of-line
// blocks: concurrent fetches to the same peer queue behind tcpConn.mu even
// though the engine's circulant schedule deliberately overlaps them. A v3
// connection instead runs two goroutines — a writer draining a request
// queue, and a demux completing pending requests out of a request-ID map —
// so up to `window` exchanges pipeline over one socket and responses may
// return out of order.
//
// Failure semantics stay per-request: a CRC-valid but malformed request is
// rejected with a MUX_ERROR frame carrying its request ID, and the stream
// survives. A damaged frame (CRC failure, framing violation) poisons the
// whole stream — every in-flight request fails with a retryable error, the
// connection is forgotten, and the Resilient layer redials per request.

// muxState is the client half of one multiplexed fetch connection.
type muxState struct {
	t    *TCP
	key  connKey
	conn *tcpConn

	window chan struct{} // in-flight tokens; capacity = the fabric's window
	sendq  chan muxReq   // fetchers → writer; capacity = window, so sends never block

	mu      sync.Mutex
	pending map[uint32]chan muxReply
	nextID  uint32
	failed  error // sticky teardown error; set before stop is closed

	stop     chan struct{} // closed on teardown; releases the writer and waiters
	stopOnce sync.Once
}

type muxReq struct {
	payload []byte // request-ID-prefixed payload (pooled; writer returns it)
	corrupt int    // injected byte-flip index, -1 for none
	drop    bool   // injected mid-exchange drop: sever the socket after sending
}

type muxReply struct {
	payload []byte // request-ID-prefixed response payload (pooled; fetcher returns it)
	err     error
}

func newMuxState(t *TCP, key connKey, conn *tcpConn) *muxState {
	win := int(t.inflight.Load())
	return &muxState{
		t:       t,
		key:     key,
		conn:    conn,
		window:  make(chan struct{}, win),
		sendq:   make(chan muxReq, win),
		pending: make(map[uint32]chan muxReply),
		stop:    make(chan struct{}),
	}
}

// nodeMetrics returns the per-node metrics sink, or nil when accounting is
// disabled or the node is out of range (negative test senders).
func (m *muxState) nodeMetrics(node int) *metrics.Node {
	if m.t.m == nil || node < 0 || node >= len(m.t.m.Nodes) {
		return nil
	}
	return m.t.m.Nodes[node]
}

// fetch runs one multiplexed exchange: acquire a window token, register in
// the pending map, queue the request for the writer, and wait for the demux
// to complete it (or for the per-request timeout to poison the connection).
func (m *muxState) fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	select {
	case m.window <- struct{}{}:
	case <-m.stop:
		return nil, m.err()
	}
	defer func() { <-m.window }()

	if met := m.nodeMetrics(from); met != nil {
		met.RecordInFlightPeak(uint64(met.InFlightFetches.Add(1)))
		defer met.InFlightFetches.Add(-1)
	}

	m.mu.Lock()
	if m.failed != nil {
		// Capture under the lock: re-reading m.failed after Unlock races
		// with a concurrent transport failure installing a different error.
		err := m.failed
		m.mu.Unlock()
		return nil, err
	}
	id := m.nextID
	m.nextID++
	ch := make(chan muxReply, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	payload := encodeMuxIDs(getPayloadBuf(0)[:0], id, ids)
	req := muxReq{payload: payload, corrupt: -1}
	if wf := m.t.wireFaults; wf != nil {
		if wf.CorruptFrame(from, to) {
			// Flip a byte past the request-ID prefix so the receiver's CRC
			// check must catch real end-to-end damage.
			req.corrupt = 4 + (len(payload)-4)/2
		}
		req.drop = wf.DropAfterSend(from, to)
	}
	select {
	case m.sendq <- req:
	case <-m.stop:
		m.unregister(id)
		putPayloadBuf(payload)
		return nil, m.err()
	}

	// Liveness: the demux reads without a deadline, so each fetch bounds its
	// own wait. A hung peer fails every waiter and poisons the connection.
	var timeout <-chan time.Time
	if d := time.Duration(m.t.ioTimeout.Load()); d > 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case rep := <-ch:
		if rep.err != nil {
			return nil, rep.err
		}
		_, inner, err := muxID(rep.payload)
		if err != nil {
			putPayloadBuf(rep.payload)
			return nil, err
		}
		lists, err := decodeLists(inner)
		putPayloadBuf(rep.payload) // decodeLists copies into its slab
		return lists, err
	case <-timeout:
		m.fail(fmt.Errorf("no response within %v: %w",
			time.Duration(m.t.ioTimeout.Load()), os.ErrDeadlineExceeded))
		return nil, m.err()
	}
}

// deliver completes one pending request. Reply channels have capacity 1 and
// receive exactly one message ever — whoever deletes the pending entry (the
// demux or fail, atomically under the mutex) owns the single send — so this
// can never block and never drops.
func deliver(ch chan muxReply, rep muxReply) {
	select {
	case ch <- rep:
	default:
	}
}

func (m *muxState) unregister(id uint32) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// err returns the sticky teardown error once the connection has failed.
func (m *muxState) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return m.failed
	}
	return fmt.Errorf("connection torn down mid-fetch: %w", net.ErrClosed)
}

// fail poisons the connection: it is forgotten (the next fetch redials),
// the socket is severed, and every pending request completes with a
// retryable error. Idempotent; the first error wins.
func (m *muxState) fail(cause error) {
	m.t.forgetConn(m.key, m.conn)
	m.conn.c.Close()
	m.mu.Lock()
	if m.failed == nil {
		m.failed = cause
	}
	err := m.failed
	p := m.pending
	m.pending = map[uint32]chan muxReply{}
	m.mu.Unlock()
	// Complete the orphaned waiters in request-ID order (deterministic), on
	// buffered channels, outside the lock.
	ids := make([]uint32, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	//khuzdulvet:ignore cancelpoll deliver sends on cap-1 channels with a default case; it can never park
	for _, id := range ids {
		deliver(p[id], muxReply{err: err})
	}
	m.stopOnce.Do(func() { close(m.stop) })
}

// writeLoop serializes request frames onto the socket, flushing when the
// queue drains so back-to-back requests batch into one syscall.
func (m *muxState) writeLoop() {
	defer m.t.wg.Done()
	for {
		select {
		case req := <-m.sendq:
			m.t.deadline(m.conn.c.SetWriteDeadline)
			err := writeFrame(m.conn.w, m.conn.version, frameMuxRequest, req.payload, req.corrupt)
			if err == nil && len(m.sendq) == 0 {
				err = m.conn.w.Flush()
			}
			putPayloadBuf(req.payload)
			if req.drop {
				// Injected mid-exchange drop: the request may or may not be
				// served; every response in flight is lost with the socket.
				m.conn.w.Flush()
				m.conn.c.Close()
			}
			if err != nil {
				m.fail(fmt.Errorf("send: %w", err))
				return
			}
		case <-m.stop:
			return
		}
	}
}

// readLoop is the demux: it reads response frames and completes the pending
// request each one names. Any framing damage poisons the stream — the server
// cannot tell us which request a corrupt frame belonged to.
func (m *muxState) readLoop() {
	defer m.t.wg.Done()
	// No read deadline: the demux legitimately parks between responses.
	// Liveness is each fetch's per-request timeout.
	m.conn.c.SetReadDeadline(time.Time{})
	for {
		select {
		case <-m.stop:
			// Torn down from elsewhere (fetch timeout, writer error, Close);
			// the socket is already severed, exit without another read.
			return
		default:
		}
		typ, payload, err := readFramePooled(m.conn.r, m.conn.version)
		if err != nil {
			if isCorrupt(err) {
				if met := m.nodeMetrics(m.key.from); met != nil {
					met.CorruptFrames.Add(1)
				}
			}
			m.fail(fmt.Errorf("response: %w", err))
			return
		}
		switch typ {
		case frameMuxResponse, frameMuxError:
			id, _, err := muxID(payload)
			if err != nil {
				putPayloadBuf(payload)
				m.fail(err)
				return
			}
			m.mu.Lock()
			ch, ok := m.pending[id]
			delete(m.pending, id)
			m.mu.Unlock()
			if !ok {
				// A response for a request we never sent: the stream can no
				// longer be trusted.
				putPayloadBuf(payload)
				m.fail(fmt.Errorf("response for unknown request %d: %w", id, ErrCorruptFrame))
				return
			}
			if typ == frameMuxError {
				putPayloadBuf(payload)
				// Per-request rejection: the server decoded a valid frame but
				// a malformed request inside it. Only this request fails; the
				// connection lives on.
				deliver(ch, muxReply{err: fmt.Errorf("server rejected request %d: %w", id, ErrCorruptFrame)})
				continue
			}
			deliver(ch, muxReply{payload: payload})
		case frameError:
			// Connection-level rejection: the server read a damaged frame and
			// cannot attribute it to a request. Everything in flight fails.
			if met := m.nodeMetrics(m.key.from); met != nil {
				met.CorruptFrames.Add(1)
			}
			m.fail(fmt.Errorf("server rejected request: %w", ErrCorruptFrame))
			return
		default:
			putPayloadBuf(payload)
			m.fail(fmt.Errorf("unexpected frame type %#02x in response: %w", typ, ErrCorruptFrame))
			return
		}
	}
}

// serveMux is the server half of a multiplexed connection: requests are
// decoded on the reader goroutine, served concurrently by per-request
// workers, and their responses serialized by one writer goroutine — so a
// slow edge list never head-of-line blocks the exchanges behind it. Worker
// concurrency is bounded by the client's in-flight window (each outstanding
// request holds a client-side token).
func (t *TCP) serveMux(node int, c net.Conn, r *bufio.Reader, w *bufio.Writer, version uint8) {
	type resp struct {
		typ     uint8
		payload []byte // pooled; the writer returns it
	}
	respq := make(chan resp, DefaultInFlight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		broken := false
		//khuzdulvet:ignore cancelpoll respq is closed after the read loop and workers exit; cancellation arrives as a socket close that fails the read, not on a channel
		for rp := range respq {
			if !broken {
				t.deadline(c.SetWriteDeadline)
				err := writeFrame(w, version, rp.typ, rp.payload, -1)
				if err == nil && len(respq) == 0 {
					err = w.Flush()
				}
				if err != nil {
					// Keep draining so workers never block on a dead writer.
					broken = true
					c.Close()
				}
			}
			putPayloadBuf(rp.payload)
		}
	}()
	var workers sync.WaitGroup
read:
	//khuzdulvet:ignore cancelpoll cancellation arrives as a socket close that fails the blocking read; respq sends cannot strand because the writer drains until close
	for {
		c.SetReadDeadline(time.Time{}) // clients legitimately idle between requests
		typ, payload, err := readFramePooled(r, version)
		if err != nil {
			if isCorrupt(err) {
				// A damaged frame may have eaten a request ID; reject at
				// connection level and abandon the stream.
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				respq <- resp{typ: frameError}
			}
			break
		}
		switch typ {
		case framePing:
			putPayloadBuf(payload)
			respq <- resp{typ: framePong}
		case frameMuxRequest:
			id, inner, err := muxID(payload)
			if err != nil {
				putPayloadBuf(payload)
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				respq <- resp{typ: frameError}
				break read
			}
			ids, err := decodeIDs(inner)
			putPayloadBuf(payload)
			if err != nil {
				// The CRC held, so the request ID is trustworthy: reject just
				// this request and keep the stream.
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				respq <- resp{
					typ:     frameMuxError,
					payload: binary.LittleEndian.AppendUint32(getPayloadBuf(0)[:0], id),
				}
				continue
			}
			workers.Add(1)
			go func() {
				defer workers.Done()
				lists := t.servers[node].ServeEdgeLists(ids)
				respq <- resp{
					typ:     frameMuxResponse,
					payload: encodeMuxLists(getPayloadBuf(0)[:0], id, lists),
				}
			}()
		default:
			// Declared frame type, wrong plane (a serial REQUEST on a v3
			// stream, a query frame on the data port). Classify the
			// violation — count it and answer frameError — before
			// abandoning the stream, so the peer fails loudly.
			putPayloadBuf(payload)
			if t.m != nil {
				t.m.Nodes[node].CorruptFrames.Add(1)
			}
			respq <- resp{typ: frameError}
			break read
		}
	}
	workers.Wait()
	close(respq)
	writerWG.Wait()
}
