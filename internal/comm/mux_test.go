package comm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// runOverlap fires two concurrent fetches at a peer whose server reports, per
// request, whether the other request was in flight at the same time. The wait
// bounds how long the first request holds out for the second before giving up,
// so the serial case terminates instead of deadlocking.
func runOverlap(t *testing.T, serial bool, wait time.Duration) []bool {
	t.Helper()
	var (
		mu      sync.Mutex
		arrived int
		both    = make(chan struct{})
		results = make(chan bool, 2)
	)
	srv := ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		mu.Lock()
		arrived++
		if arrived == 2 {
			close(both)
		}
		mu.Unlock()
		select {
		case <-both:
			results <- true
		case <-time.After(wait):
			results <- false
		}
		out := make([][]graph.VertexID, len(ids))
		for i, id := range ids {
			out[i] = []graph.VertexID{id}
		}
		return out
	})
	f, err := NewTCP([]Server{srv, srv}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if serial {
		f.SetVersionWindow(ProtoVersionMin, ProtoVersionSerialMax)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(v graph.VertexID) {
			defer wg.Done()
			lists, err := f.Fetch(0, 1, []graph.VertexID{v})
			if err != nil {
				t.Errorf("Fetch(%d): %v", v, err)
				return
			}
			if len(lists) != 1 || len(lists[0]) != 1 || lists[0][0] != v {
				t.Errorf("Fetch(%d): wrong echo %v", v, lists)
			}
		}(graph.VertexID(i))
	}
	wg.Wait()
	got := []bool{<-results, <-results}
	return got
}

// TestMuxFetchesOverlap proves the tentpole property: two fetches to the same
// peer are in flight on one connection simultaneously. Against the serial
// exchange this rendezvous can never happen (see the companion test below),
// so the first request would wait out its full timeout.
func TestMuxFetchesOverlap(t *testing.T) {
	leakcheck.Check(t)
	for i, overlapped := range runOverlap(t, false, 5*time.Second) {
		if !overlapped {
			t.Errorf("request %d never saw the other request in flight; fetches did not overlap", i)
		}
	}
}

// TestSerialFetchesDoNotOverlap pins the contrast: on a serial connection the
// second request cannot even be written until the first exchange completes, so
// the first request's rendezvous must time out. If this starts failing, the
// overlap test above has lost its teeth.
func TestSerialFetchesDoNotOverlap(t *testing.T) {
	leakcheck.Check(t)
	got := runOverlap(t, true, 200*time.Millisecond)
	if got[0] && got[1] {
		t.Fatal("serial fabric overlapped two fetches; head-of-line blocking assumption broken")
	}
}

// TestMuxSerialInterop proves the v2<->v3 handshake story: a fabric whose
// window stops at the serial generation still completes every fetch against a
// mux-capable peer (and vice versa), and the negotiated-down connection never
// takes the pipelined path.
func TestMuxSerialInterop(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(200, 800, 5)
	asg := partition.NewAssignment(2, 1)
	cases := []struct {
		name                       string
		clientSerial, serverSerial bool
	}{
		{"v2 client, v3 server", true, false},
		{"v3 client, v2 server", false, true},
		{"v3 both ends", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := metrics.NewCluster(2)
			client, err := NewTCP(testServers(g, asg), m)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			server, err := NewTCP(testServers(g, asg), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer server.Close()
			if tc.clientSerial {
				client.SetVersionWindow(ProtoVersionMin, ProtoVersionSerialMax)
			}
			if tc.serverSerial {
				server.SetVersionWindow(ProtoVersionMin, ProtoVersionSerialMax)
			}
			// Point the client's dials at the other fabric's listeners so the
			// two version windows actually meet on the wire.
			client.addrs = server.addrs
			fetchAll(t, client, g, asg)
			s := m.Summarize()
			if tc.clientSerial || tc.serverSerial {
				if s.PipelinedFetches != 0 {
					t.Errorf("negotiated-down connection still pipelined %d fetches", s.PipelinedFetches)
				}
			} else if s.PipelinedFetches != uint64(g.NumVertices()) {
				t.Errorf("pipelined %d fetches, want %d", s.PipelinedFetches, g.NumVertices())
			}
		})
	}
}

// TestMuxInFlightWindowBound proves the window is a real bound: with
// SetInFlight(2), sixteen concurrent fetchers never put more than two requests
// on the server at once, and the in-flight peak gauge agrees.
func TestMuxInFlightWindowBound(t *testing.T) {
	leakcheck.Check(t)
	const window = 2
	var cur, peak atomic.Int64
	srv := ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond) // hold the slot so overlap is observable
		cur.Add(-1)
		return make([][]graph.VertexID, len(ids))
	})
	m := metrics.NewCluster(2)
	f, err := NewTCP([]Server{srv, srv}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetInFlight(window)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(v graph.VertexID) {
			defer wg.Done()
			if _, err := f.Fetch(0, 1, []graph.VertexID{v}); err != nil {
				t.Errorf("Fetch(%d): %v", v, err)
			}
		}(graph.VertexID(i))
	}
	wg.Wait()
	if got := peak.Load(); got > window {
		t.Errorf("server saw %d concurrent requests, window is %d", got, window)
	}
	s := m.Summarize()
	if s.PipelinedFetches != 16 {
		t.Errorf("pipelined %d fetches, want 16", s.PipelinedFetches)
	}
	if s.InFlightPeak == 0 || s.InFlightPeak > window {
		t.Errorf("in-flight peak %d, want in [1,%d]", s.InFlightPeak, window)
	}
}

// TestMuxPerRequestError speaks raw v3 on a socket: a CRC-valid frame whose
// inner request is malformed draws a MUX_ERROR naming that request, and the
// same connection then serves a valid request — per-request failure does not
// poison the stream.
func TestMuxPerRequestError(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(8)
	asg := partition.NewAssignment(2, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, w := bufio.NewReader(c), bufio.NewWriter(c)
	if err := writeFrame(w, ProtoVersionMin, frameHello, encodeHello(ProtoVersionMin, ProtoVersionMax, 0), -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(r, 0)
	if err != nil || typ != frameHelloAck || len(payload) != 1 {
		t.Fatalf("hello ack: type %#02x payload %v err %v", typ, payload, err)
	}
	if payload[0] != ProtoVersionMux {
		t.Fatalf("negotiated version %d, want %d", payload[0], ProtoVersionMux)
	}

	// Request 7: CRC-intact, but the inner batch announces 100 ids and
	// carries none. The request ID is trustworthy, so the rejection must be
	// per-request.
	bad := binary.LittleEndian.AppendUint32(nil, 7)
	bad = binary.LittleEndian.AppendUint32(bad, 100)
	if err := writeFrame(w, ProtoVersionMux, frameMuxRequest, bad, -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(r, ProtoVersionMux)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameMuxError {
		t.Fatalf("malformed request drew frame type %#02x, want MUX_ERROR", typ)
	}
	id, _, err := muxID(payload)
	if err != nil || id != 7 {
		t.Fatalf("MUX_ERROR names request %d (err %v), want 7", id, err)
	}

	// The stream survives: request 8 on the same connection succeeds.
	var v graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if asg.Owner(graph.VertexID(u)) == 1 {
			v = graph.VertexID(u)
			break
		}
	}
	good := encodeMuxIDs(nil, 8, []graph.VertexID{v})
	if err := writeFrame(w, ProtoVersionMux, frameMuxRequest, good, -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(r, ProtoVersionMux)
	if err != nil || typ != frameMuxResponse {
		t.Fatalf("valid request after rejection: type %#02x err %v, want MUX_RESPONSE", typ, err)
	}
	id, inner, err := muxID(payload)
	if err != nil || id != 8 {
		t.Fatalf("response names request %d (err %v), want 8", id, err)
	}
	lists, err := decodeLists(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 1 || len(lists[0]) != int(g.Degree(v)) {
		t.Fatalf("response carries %d lists (first %d long), want the degree-%d list of %d",
			len(lists), len(lists[0]), g.Degree(v), v)
	}
}

// TestDecodeListsAllocs pins the slab decode: one response costs the header
// slice plus one backing slab, independent of how many lists it carries.
func TestDecodeListsAllocs(t *testing.T) {
	lists := make([][]graph.VertexID, 256)
	for i := range lists {
		l := make([]graph.VertexID, 16)
		for j := range l {
			l[j] = graph.VertexID(i*16 + j)
		}
		lists[i] = l
	}
	payload := encodeLists(nil, lists)
	allocs := testing.AllocsPerRun(200, func() {
		out, err := decodeLists(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(lists) {
			t.Fatalf("decoded %d lists, want %d", len(out), len(lists))
		}
	})
	if allocs > 2 {
		t.Errorf("decodeLists allocated %.0f times per call, want at most 2 (headers + slab)", allocs)
	}
}

// TestMuxFetchAfterClose pins the shutdown path: once the fabric is closed, a
// mux fetch fails fast instead of parking on a dead window.
func TestMuxFetchAfterClose(t *testing.T) {
	g := graph.Path(4)
	asg := partition.NewAssignment(2, 1)
	f, err := NewTCP(testServers(g, asg), nil)
	if err != nil {
		t.Fatal(err)
	}
	var v graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if asg.Owner(graph.VertexID(u)) == 1 {
			v = graph.VertexID(u)
			break
		}
	}
	if _, err := f.Fetch(0, 1, []graph.VertexID{v}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Fetch(0, 1, []graph.VertexID{v}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("fetch after close: %v, want net.ErrClosed", err)
	}
}
