package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Query-plane wire messages. The mining service (internal/service) keeps a
// cluster resident and serves pattern queries over the same framed, CRC32C-
// checked wire the fabric speaks. A query connection opens with the usual
// HELLO/HELLO_ACK handshake — pinned to the multiplexed protocol generation,
// because the query plane needs many exchanges in flight per connection —
// and then carries four frame types:
//
//	QUERY_SUBMIT    client → server   query ID + deadline + pattern spec or plan ref
//	QUERY_PROGRESS  server → client   query ID + running partial count
//	QUERY_RESULT    server → client   query ID + terminal status + count
//	QUERY_CANCEL    client → server   query ID to abort
//	QUERY_HEALTH    both directions   empty payload = probe; else the health report
//
// The query ID is client-assigned and scoped to the connection, exactly as
// mux request IDs are; the server echoes it on every progress and result
// frame so responses demultiplex without ordering constraints. All payload
// layouts live here so the wirecodec invariant holds: no byte of the wire
// format is interpreted outside internal/comm.

// QueryKind says how a QUERY_SUBMIT names its pattern.
type QueryKind uint8

const (
	// QueryPatternName submits a named pattern ("triangle", "K5", ...) or an
	// explicit "n:u-v,..." edge list in Spec.
	QueryPatternName QueryKind = 0
	// QueryEdgeList submits an explicit edge-list spec. The server parses it
	// with the same grammar as QueryPatternName; the distinction is
	// informational.
	QueryEdgeList QueryKind = 1
	// QueryPlanRef re-submits a plan the server already compiled, by the
	// PlanID a previous QUERY_RESULT returned. Spec is empty.
	QueryPlanRef QueryKind = 2

	queryKindMax = QueryPlanRef
)

// QueryStatus is the terminal status a QUERY_RESULT carries.
type QueryStatus uint8

const (
	// QueryOK: the query ran to completion; Count is exact.
	QueryOK QueryStatus = 0
	// QueryRejected: the admission window was full. Retryable — nothing ran.
	QueryRejected QueryStatus = 1
	// QueryCanceled: the query was aborted mid-run by QUERY_CANCEL or client
	// disconnect; Count is meaningless.
	QueryCanceled QueryStatus = 2
	// QueryFailed: compilation or execution failed; Detail explains.
	QueryFailed QueryStatus = 3
	// QueryDeadlineExceeded: the query's deadline fired mid-run and aborted
	// it; Count is meaningless. Distinct from QueryCanceled so clients can
	// tell their own budget expiring from an explicit abort.
	QueryDeadlineExceeded QueryStatus = 4

	queryStatusMax = QueryDeadlineExceeded
)

const (
	// maxQuerySpec bounds the pattern-spec string so a corrupt length field
	// cannot force a large allocation. Pattern specs are tens of bytes.
	maxQuerySpec = 1 << 12
	// maxQueryDetail bounds the result detail string likewise.
	maxQueryDetail = 1 << 12
	// maxHealthSuspects bounds the QUERY_HEALTH suspect list. The count
	// travels as a u16, but a cluster has a few dozen nodes, not thousands:
	// a report announcing more is corrupt, not informative.
	maxHealthSuspects = 1 << 12

	querySubmitFixed = 21 // u32 ID + kind + system + flags + u32 planID + u64 deadlineNS + u16 specLen
	queryResultFixed = 27 // u32 ID + status + u32 planID + u64 count + u64 elapsedNS + u16 detailLen
	queryHealthFixed = 27 // state + u32 active + u32 window + u64 submitted + u64 deadlineExceeded + u16 suspectCount

	// maxDurationNS bounds the nanosecond fields carried on the wire
	// (deadlines, elapsed times): anything beyond 2^62 ns (~146 years) is a
	// corrupt frame, not a plausible duration.
	maxDurationNS = uint64(1) << 62
)

// QuerySubmit is the QUERY_SUBMIT payload: a client's request to run one
// pattern query.
type QuerySubmit struct {
	// ID is the client-assigned, connection-scoped query identifier echoed
	// on every frame about this query.
	ID uint32
	// Kind selects how the pattern is named.
	Kind QueryKind
	// System selects the client GPM system compiling the schedule
	// (0 = automine, 1 = graphpi).
	System uint8
	// Induced requests induced (motif) matching semantics.
	Induced bool
	// PlanID references a previously compiled plan (QueryPlanRef only).
	PlanID uint32
	// Deadline bounds the query's server-side execution; past it the server
	// cancels the run and answers QueryDeadlineExceeded. 0 means no
	// client-imposed deadline (the server may still cap it).
	Deadline time.Duration
	// Spec is the pattern name or edge list (empty for QueryPlanRef).
	Spec string
}

// QueryProgress is the QUERY_PROGRESS payload: a running partial count for
// one in-flight query, streamed periodically while it executes.
type QueryProgress struct {
	ID      uint32
	Partial uint64
}

// QueryResult is the QUERY_RESULT payload: the terminal answer for one
// query.
type QueryResult struct {
	ID     uint32
	Status QueryStatus
	// PlanID identifies the compiled plan the server used (or assigned), so
	// the client can re-submit it cheaply with QueryPlanRef. 0 = none.
	PlanID uint32
	// Count is the exact match count (QueryOK only).
	Count uint64
	// Elapsed is the server-side execution time.
	Elapsed time.Duration
	// Detail carries the rejection or failure explanation.
	Detail string
}

// QueryCancel is the QUERY_CANCEL payload: abort one in-flight query.
type QueryCancel struct {
	ID uint32
}

// QueryHealthProbe is a client's empty-payload QUERY_HEALTH frame: a request
// for the server's health report. The same frame type carries the report
// back — direction plus the payload length disambiguate.
type QueryHealthProbe struct{}

// QueryHealth is the server's QUERY_HEALTH report: drain state, query-plane
// load, and the nodes the resident cluster currently believes dead.
type QueryHealth struct {
	// Draining reports whether the server has begun a graceful drain: new
	// submissions are being rejected while in-flight queries finish.
	Draining bool
	// ActiveQueries is the number of queries executing right now.
	ActiveQueries uint32
	// Window is the admission window (max concurrently executing queries).
	Window uint32
	// Submitted is the lifetime QUERY_SUBMIT count.
	Submitted uint64
	// DeadlineExceeded is the lifetime count of queries killed by their
	// deadline.
	DeadlineExceeded uint64
	// Suspects lists the cluster nodes currently suspected dead (crashed or
	// breaker-declared), ascending.
	Suspects []uint32
}

// encodeQuerySubmit appends the QUERY_SUBMIT payload to buf.
func encodeQuerySubmit(buf []byte, q *QuerySubmit) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, q.ID)
	buf = append(buf, byte(q.Kind), q.System)
	var flags byte
	if q.Induced {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, q.PlanID)
	ns := q.Deadline.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ns))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(q.Spec)))
	return append(buf, q.Spec...)
}

// decodeQuerySubmit parses and validates a QUERY_SUBMIT payload. Accepted
// payloads re-encode byte-identically (the canonical-form property the frame
// fuzzers check).
func decodeQuerySubmit(p []byte) (QuerySubmit, error) {
	if len(p) < querySubmitFixed {
		return QuerySubmit{}, fmt.Errorf("comm: query submit payload %d bytes (want ≥ %d): %w", len(p), querySubmitFixed, ErrCorruptFrame)
	}
	q := QuerySubmit{
		ID:     binary.LittleEndian.Uint32(p),
		Kind:   QueryKind(p[4]),
		System: p[5],
		PlanID: binary.LittleEndian.Uint32(p[7:]),
	}
	if q.Kind > queryKindMax {
		return QuerySubmit{}, fmt.Errorf("comm: query submit kind %d: %w", q.Kind, ErrCorruptFrame)
	}
	switch p[6] {
	case 0:
	case 1:
		q.Induced = true
	default:
		return QuerySubmit{}, fmt.Errorf("comm: query submit flags %#02x: %w", p[6], ErrCorruptFrame)
	}
	ns := binary.LittleEndian.Uint64(p[11:])
	if ns > maxDurationNS {
		return QuerySubmit{}, fmt.Errorf("comm: query deadline %d ns: %w", ns, ErrCorruptFrame)
	}
	q.Deadline = time.Duration(ns)
	n := binary.LittleEndian.Uint16(p[19:])
	if n > maxQuerySpec {
		return QuerySubmit{}, fmt.Errorf("comm: query spec announces %d bytes (max %d): %w", n, maxQuerySpec, ErrCorruptFrame)
	}
	if len(p) != querySubmitFixed+int(n) {
		return QuerySubmit{}, fmt.Errorf("comm: query submit announces %d spec bytes in %d payload bytes: %w", n, len(p), ErrCorruptFrame)
	}
	q.Spec = string(p[querySubmitFixed:])
	return q, nil
}

// encodeQueryProgress appends the QUERY_PROGRESS payload to buf.
func encodeQueryProgress(buf []byte, q *QueryProgress) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, q.ID)
	return binary.LittleEndian.AppendUint64(buf, q.Partial)
}

// decodeQueryProgress parses a QUERY_PROGRESS payload.
func decodeQueryProgress(p []byte) (QueryProgress, error) {
	if len(p) != 12 {
		return QueryProgress{}, fmt.Errorf("comm: query progress payload %d bytes, want 12: %w", len(p), ErrCorruptFrame)
	}
	return QueryProgress{
		ID:      binary.LittleEndian.Uint32(p),
		Partial: binary.LittleEndian.Uint64(p[4:]),
	}, nil
}

// encodeQueryResult appends the QUERY_RESULT payload to buf.
func encodeQueryResult(buf []byte, q *QueryResult) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, q.ID)
	buf = append(buf, byte(q.Status))
	buf = binary.LittleEndian.AppendUint32(buf, q.PlanID)
	buf = binary.LittleEndian.AppendUint64(buf, q.Count)
	ns := q.Elapsed.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ns))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(q.Detail)))
	return append(buf, q.Detail...)
}

// decodeQueryResult parses and validates a QUERY_RESULT payload.
func decodeQueryResult(p []byte) (QueryResult, error) {
	if len(p) < queryResultFixed {
		return QueryResult{}, fmt.Errorf("comm: query result payload %d bytes (want ≥ %d): %w", len(p), queryResultFixed, ErrCorruptFrame)
	}
	q := QueryResult{
		ID:     binary.LittleEndian.Uint32(p),
		Status: QueryStatus(p[4]),
		PlanID: binary.LittleEndian.Uint32(p[5:]),
		Count:  binary.LittleEndian.Uint64(p[9:]),
	}
	if q.Status > queryStatusMax {
		return QueryResult{}, fmt.Errorf("comm: query result status %d: %w", q.Status, ErrCorruptFrame)
	}
	ns := binary.LittleEndian.Uint64(p[17:])
	if ns > maxDurationNS {
		return QueryResult{}, fmt.Errorf("comm: query result elapsed %d ns: %w", ns, ErrCorruptFrame)
	}
	q.Elapsed = time.Duration(ns)
	n := binary.LittleEndian.Uint16(p[25:])
	if n > maxQueryDetail {
		return QueryResult{}, fmt.Errorf("comm: query detail announces %d bytes (max %d): %w", n, maxQueryDetail, ErrCorruptFrame)
	}
	if len(p) != queryResultFixed+int(n) {
		return QueryResult{}, fmt.Errorf("comm: query result announces %d detail bytes in %d payload bytes: %w", n, len(p), ErrCorruptFrame)
	}
	q.Detail = string(p[queryResultFixed:])
	return q, nil
}

// encodeQueryCancel appends the QUERY_CANCEL payload to buf.
func encodeQueryCancel(buf []byte, id uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, id)
}

// decodeQueryCancel parses a QUERY_CANCEL payload.
func decodeQueryCancel(p []byte) (QueryCancel, error) {
	if len(p) != 4 {
		return QueryCancel{}, fmt.Errorf("comm: query cancel payload %d bytes, want 4: %w", len(p), ErrCorruptFrame)
	}
	return QueryCancel{ID: binary.LittleEndian.Uint32(p)}, nil
}

// encodeQueryHealth appends the QUERY_HEALTH report payload to buf.
func encodeQueryHealth(buf []byte, h *QueryHealth) []byte {
	var state byte
	if h.Draining {
		state = 1
	}
	buf = append(buf, state)
	buf = binary.LittleEndian.AppendUint32(buf, h.ActiveQueries)
	buf = binary.LittleEndian.AppendUint32(buf, h.Window)
	buf = binary.LittleEndian.AppendUint64(buf, h.Submitted)
	buf = binary.LittleEndian.AppendUint64(buf, h.DeadlineExceeded)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Suspects)))
	for _, n := range h.Suspects {
		buf = binary.LittleEndian.AppendUint32(buf, n)
	}
	return buf
}

// decodeQueryHealth parses and validates a QUERY_HEALTH report payload (the
// non-empty direction; an empty payload is the probe). The suspect list must
// be strictly ascending so accepted payloads re-encode byte-identically.
func decodeQueryHealth(p []byte) (QueryHealth, error) {
	if len(p) < queryHealthFixed {
		return QueryHealth{}, fmt.Errorf("comm: query health payload %d bytes (want ≥ %d): %w", len(p), queryHealthFixed, ErrCorruptFrame)
	}
	h := QueryHealth{
		ActiveQueries:    binary.LittleEndian.Uint32(p[1:]),
		Window:           binary.LittleEndian.Uint32(p[5:]),
		Submitted:        binary.LittleEndian.Uint64(p[9:]),
		DeadlineExceeded: binary.LittleEndian.Uint64(p[17:]),
	}
	switch p[0] {
	case 0:
	case 1:
		h.Draining = true
	default:
		return QueryHealth{}, fmt.Errorf("comm: query health state %#02x: %w", p[0], ErrCorruptFrame)
	}
	n := int(binary.LittleEndian.Uint16(p[25:]))
	if n > maxHealthSuspects {
		return QueryHealth{}, fmt.Errorf("comm: query health announces %d suspects (max %d): %w", n, maxHealthSuspects, ErrCorruptFrame)
	}
	if len(p) != queryHealthFixed+4*n {
		return QueryHealth{}, fmt.Errorf("comm: query health announces %d suspects in %d payload bytes: %w", n, len(p), ErrCorruptFrame)
	}
	if n > 0 {
		h.Suspects = make([]uint32, n)
		for i := range h.Suspects {
			h.Suspects[i] = binary.LittleEndian.Uint32(p[queryHealthFixed+4*i:])
			if i > 0 && h.Suspects[i] <= h.Suspects[i-1] {
				return QueryHealth{}, fmt.Errorf("comm: query health suspects not strictly ascending: %w", ErrCorruptFrame)
			}
		}
	}
	return h, nil
}

// QueryClientNode is the node ID a query client sends in its HELLO: query
// clients are external to the cluster, so they identify as a sentinel
// outside any valid node range.
const QueryClientNode = 0xFFFFFFFF

// QueryConn is one framed query-plane connection: the handshake plus typed
// read/write of the QUERY_* frames. It is symmetric — the service holds the
// accepted half, clients hold the dialed half. Writers are serialized by an
// internal mutex so the server's per-query goroutines can stream progress
// concurrently; ReadMsg must be called from a single reader goroutine.
type QueryConn struct {
	c       net.Conn
	r       *bufio.Reader
	version uint8
	timeout time.Duration // per-write deadline; 0 disables

	wmu sync.Mutex
	w   *bufio.Writer
	buf []byte // encode scratch, reused under wmu
}

// DialQuery connects to a query server and runs the client half of the
// handshake. The offered version window starts at the multiplexed
// generation: a serial-only peer is a version mismatch, not a fallback.
// timeout bounds each socket write (and the handshake); 0 disables
// deadlines.
func DialQuery(addr string, timeout time.Duration) (*QueryConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dial query server: %w", err)
	}
	q := &QueryConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), timeout: timeout}
	// -1 encodes as the QueryClientNode sentinel in the HELLO's u32 node
	// field.
	q.deadline(c.SetWriteDeadline)
	if err := writeFrame(q.w, ProtoVersionMux, frameHello, encodeHello(ProtoVersionMux, ProtoVersionMax, -1), -1); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	if err := q.w.Flush(); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	q.deadline(c.SetReadDeadline)
	typ, payload, err := readFrame(q.r, 0)
	c.SetReadDeadline(time.Time{})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	if typ != frameHelloAck || len(payload) != 1 || payload[0] < ProtoVersionMux {
		c.Close()
		return nil, fmt.Errorf("comm: query handshake: peer cannot speak the mux generation: %w", ErrVersionMismatch)
	}
	q.version = payload[0]
	return q, nil
}

// AcceptQuery runs the server half of the handshake on an accepted
// connection. The negotiated version must reach the multiplexed generation;
// older peers get the connection closed (they are fabric clients on the
// wrong port, or builds predating the query plane).
func AcceptQuery(c net.Conn, timeout time.Duration) (*QueryConn, error) {
	q := &QueryConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), timeout: timeout}
	q.deadline(c.SetReadDeadline)
	typ, payload, err := readFrame(q.r, 0)
	c.SetReadDeadline(time.Time{})
	if err != nil {
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	if typ != frameHello {
		return nil, fmt.Errorf("comm: query handshake: frame %#02x where HELLO expected: %w", typ, ErrCorruptFrame)
	}
	peerMin, peerMax, _, err := decodeHello(payload)
	if err != nil {
		return nil, err
	}
	version := negotiateVersion(ProtoVersionMux, ProtoVersionMax, peerMin, peerMax)
	if version == 0 {
		return nil, fmt.Errorf("comm: query handshake: peer window [%d,%d] below the mux generation: %w", peerMin, peerMax, ErrVersionMismatch)
	}
	q.version = version
	q.deadline(c.SetWriteDeadline)
	if err := writeFrame(q.w, version, frameHelloAck, []byte{version}, -1); err != nil {
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	if err := q.w.Flush(); err != nil {
		return nil, fmt.Errorf("comm: query handshake: %w", err)
	}
	return q, nil
}

// deadline arms a read or write deadline, or clears it when deadlines are
// disabled.
func (q *QueryConn) deadline(set func(time.Time) error) {
	if q.timeout > 0 {
		set(time.Now().Add(q.timeout))
		return
	}
	set(time.Time{})
}

// Close severs the connection, unblocking any parked ReadMsg.
func (q *QueryConn) Close() error { return q.c.Close() }

// ReadMsg reads the next query-plane frame and returns its decoded payload:
// *QuerySubmit, *QueryProgress, *QueryResult, *QueryCancel,
// *QueryHealthProbe (an empty QUERY_HEALTH) or *QueryHealth. Reads park
// without a deadline — a query connection legitimately idles — so only the
// peer or Close unblocks it. Any non-query frame after the handshake is a
// protocol violation surfaced as ErrCorruptFrame.
func (q *QueryConn) ReadMsg() (any, error) {
	typ, payload, err := readFrame(q.r, q.version)
	if err != nil {
		return nil, err
	}
	switch typ {
	case frameQuerySubmit:
		m, err := decodeQuerySubmit(payload)
		if err != nil {
			return nil, err
		}
		return &m, nil
	case frameQueryProgress:
		m, err := decodeQueryProgress(payload)
		if err != nil {
			return nil, err
		}
		return &m, nil
	case frameQueryResult:
		m, err := decodeQueryResult(payload)
		if err != nil {
			return nil, err
		}
		return &m, nil
	case frameQueryCancel:
		m, err := decodeQueryCancel(payload)
		if err != nil {
			return nil, err
		}
		return &m, nil
	case frameQueryHealth:
		if len(payload) == 0 {
			return &QueryHealthProbe{}, nil
		}
		m, err := decodeQueryHealth(payload)
		if err != nil {
			return nil, err
		}
		return &m, nil
	default:
		return nil, fmt.Errorf("comm: frame type %#02x on a query connection: %w", typ, ErrCorruptFrame)
	}
}

// writeMsg frames and flushes one encoded payload under the writer lock.
func (q *QueryConn) writeMsg(typ uint8, encode func([]byte) []byte) error {
	q.wmu.Lock()
	defer q.wmu.Unlock()
	q.buf = encode(q.buf[:0])
	q.deadline(q.c.SetWriteDeadline)
	if err := writeFrame(q.w, q.version, typ, q.buf, -1); err != nil {
		return err
	}
	return q.w.Flush()
}

// WriteSubmit sends a QUERY_SUBMIT (client side).
func (q *QueryConn) WriteSubmit(s *QuerySubmit) error {
	if len(s.Spec) > maxQuerySpec {
		return fmt.Errorf("comm: query spec %d bytes (max %d): %w", len(s.Spec), maxQuerySpec, ErrCorruptFrame)
	}
	return q.writeMsg(frameQuerySubmit, func(b []byte) []byte { return encodeQuerySubmit(b, s) })
}

// WriteProgress sends a QUERY_PROGRESS (server side).
func (q *QueryConn) WriteProgress(p *QueryProgress) error {
	return q.writeMsg(frameQueryProgress, func(b []byte) []byte { return encodeQueryProgress(b, p) })
}

// WriteResult sends a QUERY_RESULT (server side). Oversized detail strings
// are truncated rather than rejected: the result must reach the client.
func (q *QueryConn) WriteResult(r *QueryResult) error {
	if len(r.Detail) > maxQueryDetail {
		trimmed := *r
		trimmed.Detail = r.Detail[:maxQueryDetail]
		r = &trimmed
	}
	return q.writeMsg(frameQueryResult, func(b []byte) []byte { return encodeQueryResult(b, r) })
}

// WriteCancel sends a QUERY_CANCEL (client side).
func (q *QueryConn) WriteCancel(id uint32) error {
	return q.writeMsg(frameQueryCancel, func(b []byte) []byte { return encodeQueryCancel(b, id) })
}

// WriteHealthProbe sends an empty QUERY_HEALTH frame (client side): a
// request for the server's health report.
func (q *QueryConn) WriteHealthProbe() error {
	return q.writeMsg(frameQueryHealth, func(b []byte) []byte { return b })
}

// WriteHealth sends a QUERY_HEALTH report (server side). A suspect list
// beyond the decode cap is trimmed — the mirror of WriteResult's detail
// trimming — so this side never emits a frame its peer must reject.
func (q *QueryConn) WriteHealth(h *QueryHealth) error {
	if len(h.Suspects) > maxHealthSuspects {
		trimmed := *h
		trimmed.Suspects = h.Suspects[:maxHealthSuspects]
		h = &trimmed
	}
	return q.writeMsg(frameQueryHealth, func(b []byte) []byte { return encodeQueryHealth(b, h) })
}
