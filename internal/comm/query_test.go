package comm

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"khuzdul/internal/leakcheck"
)

// TestQueryCodecRoundTrip checks every query-plane payload codec round-trips
// exactly.
func TestQueryCodecRoundTrip(t *testing.T) {
	subs := []QuerySubmit{
		{},
		{ID: 7, Kind: QueryPatternName, System: 1, Induced: true, Spec: "triangle"},
		{ID: 0xFFFFFFFF, Kind: QueryEdgeList, Spec: "4:0-1,1-2,2-3,3-0"},
		{ID: 3, Kind: QueryPlanRef, PlanID: 12},
		{ID: 9, Spec: "triangle", Deadline: 30 * time.Second},
	}
	for _, want := range subs {
		got, err := decodeQuerySubmit(encodeQuerySubmit(nil, &want))
		if err != nil {
			t.Fatalf("submit %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("submit round trip: got %+v, want %+v", got, want)
		}
	}

	prog := QueryProgress{ID: 9, Partial: 1 << 40}
	gotP, err := decodeQueryProgress(encodeQueryProgress(nil, &prog))
	if err != nil || gotP != prog {
		t.Fatalf("progress round trip: got %+v (%v), want %+v", gotP, err, prog)
	}

	results := []QueryResult{
		{ID: 1, Status: QueryOK, PlanID: 4, Count: 123456, Elapsed: 250 * time.Millisecond},
		{ID: 2, Status: QueryRejected, Detail: "admission window full; retry"},
		{ID: 3, Status: QueryCanceled},
		{ID: 4, Status: QueryFailed, Detail: "unknown pattern"},
	}
	for _, want := range results {
		got, err := decodeQueryResult(encodeQueryResult(nil, &want))
		if err != nil {
			t.Fatalf("result %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("result round trip: got %+v, want %+v", got, want)
		}
	}

	gotC, err := decodeQueryCancel(encodeQueryCancel(nil, 42))
	if err != nil || gotC.ID != 42 {
		t.Fatalf("cancel round trip: got %+v (%v)", gotC, err)
	}

	healths := []QueryHealth{
		{},
		{Draining: true, ActiveQueries: 3, Window: 4, Submitted: 99, DeadlineExceeded: 2},
		{ActiveQueries: 1, Window: 8, Suspects: []uint32{0, 2, 5}},
	}
	for _, want := range healths {
		got, err := decodeQueryHealth(encodeQueryHealth(nil, &want))
		if err != nil {
			t.Fatalf("health %+v: %v", want, err)
		}
		if got.Draining != want.Draining || got.ActiveQueries != want.ActiveQueries ||
			got.Window != want.Window || got.Submitted != want.Submitted ||
			got.DeadlineExceeded != want.DeadlineExceeded ||
			len(got.Suspects) != len(want.Suspects) {
			t.Fatalf("health round trip: got %+v, want %+v", got, want)
		}
		for i := range want.Suspects {
			if got.Suspects[i] != want.Suspects[i] {
				t.Fatalf("health suspects: got %v, want %v", got.Suspects, want.Suspects)
			}
		}
	}
}

// TestQueryCodecRejects checks the validation paths all surface
// ErrCorruptFrame.
func TestQueryCodecRejects(t *testing.T) {
	bad := [][]byte{
		{},           // too short for anything
		{1, 2, 3},    // short submit
		{0, 0, 0, 0}, // submit below fixed header
	}
	for _, p := range bad {
		if _, err := decodeQuerySubmit(p); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("submit %v: err %v, want ErrCorruptFrame", p, err)
		}
	}
	// Valid submit, then corrupt single fields.
	base := encodeQuerySubmit(nil, &QuerySubmit{ID: 1, Spec: "triangle"})
	mut := func(i int, v byte) []byte {
		p := append([]byte(nil), base...)
		p[i] = v
		return p
	}
	if _, err := decodeQuerySubmit(mut(4, 9)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad kind: %v", err)
	}
	if _, err := decodeQuerySubmit(mut(6, 7)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad flags: %v", err)
	}
	if _, err := decodeQuerySubmit(mut(19, 0xFF)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("lying spec length: %v", err)
	}
	if _, err := decodeQuerySubmit(mut(18, 0xFF)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("absurd deadline: %v", err)
	}
	if _, err := decodeQuerySubmit(base[:len(base)-1]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated spec: %v", err)
	}

	if _, err := decodeQueryProgress([]byte{1, 2, 3}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("short progress: %v", err)
	}
	res := encodeQueryResult(nil, &QueryResult{ID: 1, Status: QueryOK, Detail: "x"})
	res[4] = 9 // invalid status
	if _, err := decodeQueryResult(res); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad status: %v", err)
	}
	if _, err := decodeQueryCancel([]byte{1, 2, 3, 4, 5}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("long cancel: %v", err)
	}

	if _, err := decodeQueryHealth([]byte{1, 2, 3}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("short health: %v", err)
	}
	h := encodeQueryHealth(nil, &QueryHealth{Window: 4, Suspects: []uint32{1, 3}})
	h[0] = 7 // invalid drain state
	if _, err := decodeQueryHealth(h); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad health state: %v", err)
	}
	h[0] = 0
	h[25] = 9 // lying suspect count
	if _, err := decodeQueryHealth(h); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("lying suspect count: %v", err)
	}
	desc := encodeQueryHealth(nil, &QueryHealth{Suspects: []uint32{3, 1}})
	if _, err := decodeQueryHealth(desc); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("descending suspects: %v", err)
	}
}

// TestQueryConnExchange runs a full handshake plus a typed exchange over a
// real loopback socket in both directions.
func TestQueryConnExchange(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer c.Close()
		qc, err := AcceptQuery(c, time.Second)
		if err != nil {
			srvErr <- err
			return
		}
		msg, err := qc.ReadMsg()
		if err != nil {
			srvErr <- err
			return
		}
		sub, ok := msg.(*QuerySubmit)
		if !ok {
			srvErr <- errors.New("expected *QuerySubmit")
			return
		}
		if err := qc.WriteProgress(&QueryProgress{ID: sub.ID, Partial: 10}); err != nil {
			srvErr <- err
			return
		}
		srvErr <- qc.WriteResult(&QueryResult{ID: sub.ID, Status: QueryOK, PlanID: 1, Count: 20})
	}()

	qc, err := DialQuery(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if err := qc.WriteSubmit(&QuerySubmit{ID: 5, Spec: "triangle"}); err != nil {
		t.Fatal(err)
	}
	msg, err := qc.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := msg.(*QueryProgress); !ok || p.ID != 5 || p.Partial != 10 {
		t.Fatalf("first message: %#v", msg)
	}
	msg, err = qc.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := msg.(*QueryResult); !ok || r.ID != 5 || r.Status != QueryOK || r.Count != 20 {
		t.Fatalf("second message: %#v", msg)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestQueryConnRejectsSerialPeer: a client capped at the serial protocol
// generation must be refused — the query plane needs multiplexing.
func TestQueryConnRejectsSerialPeer(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = AcceptQuery(c, time.Second)
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A serial-generation HELLO: window [1,2].
	w := bufio.NewWriter(c)
	if err := writeFrame(w, ProtoVersionMin, frameHello, encodeHello(ProtoVersionMin, ProtoVersionSerialMax, 0), -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("accept err %v, want ErrVersionMismatch", err)
	}
}
