package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// This file adds the resilience layer over a Fabric: per-attempt deadlines,
// exponential backoff with deterministic jitter, bounded retries, and a
// circuit breaker that classifies a peer as dead after N consecutive
// timeouts. The base fabrics stay oblivious — resilience composes over any
// transport (including the fault-injecting wrapper) exactly like the flow
// control HUGE layers over its RPC substrate.

// ErrFetchTimeout marks a fetch attempt that exceeded its deadline.
var ErrFetchTimeout = errors.New("comm: fetch timeout")

// ErrPeerDead marks a fetch addressed to a peer the circuit breaker has
// declared dead. The cluster driver treats it as a recovery trigger.
var ErrPeerDead = errors.New("comm: peer dead")

// ErrRetriesExhausted marks a fetch that failed on every allowed attempt
// without the peer being declared dead (e.g. persistent transient errors).
var ErrRetriesExhausted = errors.New("comm: retries exhausted")

// ErrFetchCanceled marks a fetch abandoned because its cancel channel fired
// or the fabric was closed mid-retry. It is not a peer failure: the cluster
// driver maps it to engine cancellation, never to recovery.
var ErrFetchCanceled = errors.New("comm: fetch canceled")

// CancelFetcher is implemented by fabrics whose fetches can be cut short by
// a caller-owned cancel channel — closing it aborts backoff waits and
// in-flight attempt deadlines instead of letting them run to completion.
// Speculation uses this: when a speculative copy wins, the straggler's next
// fetch must unblock now, not after the remaining backoff schedule.
type CancelFetcher interface {
	FetchCancel(from, to int, ids []graph.VertexID, cancel <-chan struct{}) ([][]graph.VertexID, error)
}

// PermanentError is implemented by errors that retrying cannot fix; the
// resilient fabric fails fast on them.
type PermanentError interface{ Permanent() bool }

// RetryConfig tunes the resilient fabric.
type RetryConfig struct {
	// Timeout bounds each fetch attempt (0 = attempts never time out).
	Timeout time.Duration
	// Retries is the number of additional attempts after the first.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per attempt.
	// Default 1ms.
	Backoff time.Duration
	// MaxBackoff caps the backoff growth. Default 100ms.
	MaxBackoff time.Duration
	// BreakerThreshold is the number of consecutive timed-out attempts to one
	// peer after which it is declared dead. Default 3.
	BreakerThreshold int
	// Seed drives the deterministic backoff jitter.
	Seed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	return c
}

// Resilient wraps a Fabric with deadlines, retries and a circuit breaker.
// It is safe for concurrent use; breaker state is shared by all callers.
type Resilient struct {
	inner Fabric
	cfg   RetryConfig
	m     *metrics.Cluster
	dead  []atomic.Bool
	// suspect, when set, contributes external death verdicts (the heartbeat
	// failure detector) to Dead: a suspected peer fails fast for every
	// worker at once, before any of them burns a retry budget against it.
	// Set before the fabric is shared across goroutines.
	suspect func(node int) bool
	// consec counts consecutive timed-out attempts per peer; any successful
	// attempt resets it.
	consec []atomic.Int64
	seq    atomic.Uint64 // jitter decision counter
	// closed unblocks every backoff wait and pending attempt when the fabric
	// shuts down, so Close never strands a caller mid-retry.
	closed    chan struct{}
	closeOnce sync.Once
}

// NewResilient returns a resilient fabric over inner for a numNodes
// cluster. m may be nil to disable accounting of retries/timeouts/trips.
func NewResilient(inner Fabric, numNodes int, cfg RetryConfig, m *metrics.Cluster) *Resilient {
	return &Resilient{
		inner:  inner,
		cfg:    cfg.withDefaults(),
		m:      m,
		dead:   make([]atomic.Bool, numNodes),
		consec: make([]atomic.Int64, numNodes),
		closed: make(chan struct{}),
	}
}

// SetSuspector installs an external death oracle (the heartbeat failure
// detector) consulted alongside the breaker. Call before sharing the fabric
// across goroutines.
func (r *Resilient) SetSuspector(suspect func(node int) bool) { r.suspect = suspect }

// Dead reports whether the breaker or the failure detector has declared
// node dead.
func (r *Resilient) Dead(node int) bool {
	if node < 0 || node >= len(r.dead) {
		return false
	}
	return r.dead[node].Load() || (r.suspect != nil && r.suspect(node))
}

// DeadNodes returns every peer declared dead so far — by the breaker or by
// the failure detector — ascending.
func (r *Resilient) DeadNodes() []int {
	var out []int
	for i := range r.dead {
		if r.Dead(i) {
			out = append(out, i)
		}
	}
	return out
}

// MarkDead force-trips the breaker for node (used by the driver to carry
// death verdicts across recovery rounds).
func (r *Resilient) MarkDead(node int) {
	if node >= 0 && node < len(r.dead) {
		r.dead[node].Store(true)
	}
}

// Fetch implements Fabric with the retry/deadline/breaker discipline.
func (r *Resilient) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	return r.FetchCancel(from, to, ids, nil)
}

// FetchCancel implements CancelFetcher: Fetch, but abandonable. Closing
// cancel (or closing the fabric) interrupts backoff waits and the current
// attempt's deadline wait; the fetch then fails with ErrFetchCanceled
// instead of running out its retry schedule. A nil cancel never fires.
func (r *Resilient) FetchCancel(from, to int, ids []graph.VertexID, cancel <-chan struct{}) ([][]graph.VertexID, error) {
	if r.Dead(to) {
		return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, ErrPeerDead)
	}
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			if r.m != nil {
				r.m.Nodes[from].FetchRetries.Add(1)
			}
			if err := r.waitBackoff(from, to, r.backoff(attempt), cancel); err != nil {
				return nil, err
			}
			if r.Dead(to) {
				return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, ErrPeerDead)
			}
		}
		lists, err := r.attempt(from, to, ids, cancel)
		if err == nil {
			r.consec[to].Store(0)
			return lists, nil
		}
		lastErr = err
		var pe PermanentError
		if errors.As(err, &pe) && pe.Permanent() {
			return nil, err
		}
		if errors.Is(err, ErrFetchCanceled) {
			// Cancellation is final; retrying a canceled fetch would defeat it.
			return nil, err
		}
		if errors.Is(err, ErrFetchTimeout) {
			if r.m != nil {
				r.m.Nodes[from].FetchTimeouts.Add(1)
			}
			if n := r.consec[to].Add(1); n == int64(r.cfg.BreakerThreshold) {
				r.dead[to].Store(true)
				if r.m != nil {
					r.m.Nodes[from].BreakerTrips.Add(1)
				}
			}
			if r.Dead(to) {
				return nil, fmt.Errorf("comm: fetch %d->%d: breaker open after %d consecutive timeouts: %w",
					from, to, r.cfg.BreakerThreshold, ErrPeerDead)
			}
		}
	}
	return nil, fmt.Errorf("comm: fetch %d->%d failed after %d attempts: %w (last error: %v)",
		from, to, r.cfg.Retries+1, ErrRetriesExhausted, lastErr)
}

// waitBackoff blocks for the pre-retry backoff d, or until cancellation:
// the caller's cancel channel firing or the fabric closing. A sleep here
// would strand the cancellation path for the whole backoff schedule — this
// wait is exactly the sleepban invariant's motivating case.
func (r *Resilient) waitBackoff(from, to int, d time.Duration, cancel <-chan struct{}) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-cancel:
		return fmt.Errorf("comm: fetch %d->%d interrupted in backoff: %w", from, to, ErrFetchCanceled)
	case <-r.closed:
		return fmt.Errorf("comm: fetch %d->%d: fabric closed in backoff: %w", from, to, ErrFetchCanceled)
	}
}

// attempt performs one bounded fetch attempt. The inner fetch runs in its
// own goroutine so a hung transport cannot block the caller past the
// deadline; an abandoned attempt's goroutine parks until the inner fabric
// is closed.
func (r *Resilient) attempt(from, to int, ids []graph.VertexID, cancel <-chan struct{}) ([][]graph.VertexID, error) {
	if r.cfg.Timeout <= 0 {
		return r.inner.Fetch(from, to, ids)
	}
	type result struct {
		lists [][]graph.VertexID
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		lists, err := r.inner.Fetch(from, to, ids)
		ch <- result{lists, err}
	}()
	t := time.NewTimer(r.cfg.Timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res.lists, res.err
	case <-t.C:
		return nil, fmt.Errorf("comm: fetch %d->%d exceeded %v deadline: %w",
			from, to, r.cfg.Timeout, ErrFetchTimeout)
	case <-cancel:
		return nil, fmt.Errorf("comm: fetch %d->%d abandoned mid-attempt: %w", from, to, ErrFetchCanceled)
	case <-r.closed:
		return nil, fmt.Errorf("comm: fetch %d->%d: fabric closed mid-attempt: %w", from, to, ErrFetchCanceled)
	}
}

// backoff returns the pre-retry sleep for the given attempt: exponential
// growth capped at MaxBackoff, with deterministic jitter in [50%,100%] of
// the nominal value so synchronized retries from many workers spread out.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.cfg.Backoff << (attempt - 1)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	h := retryMix(uint64(r.cfg.Seed), r.seq.Add(1))
	return d/2 + time.Duration(h%uint64(d/2+1))
}

// Ping implements Pinger by delegating to the inner transport. Heartbeats
// bypass the retry/breaker discipline: the detector owns its own timeout
// and miss accounting.
func (r *Resilient) Ping(from, to int) error {
	if p, ok := r.inner.(Pinger); ok {
		return p.Ping(from, to)
	}
	return nil
}

// Close implements Fabric. It releases every caller parked in a backoff or
// deadline wait (they fail with ErrFetchCanceled) before closing the inner
// transport.
func (r *Resilient) Close() error {
	r.closeOnce.Do(func() { close(r.closed) })
	return r.inner.Close()
}

// retryMix hashes the jitter decision counter with the seed.
func retryMix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
