package comm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// flakyFabric fails the first failN fetches to each destination with a
// transient error, then succeeds.
type flakyFabric struct {
	failN  int64
	calls  []atomic.Int64
	hangTo int // destination whose fetches hang forever (-1 = none)
	hung   chan struct{}
}

func newFlakyFabric(nodes int, failN int64, hangTo int) *flakyFabric {
	return &flakyFabric{failN: failN, calls: make([]atomic.Int64, nodes), hangTo: hangTo, hung: make(chan struct{})}
}

func (f *flakyFabric) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	if to == f.hangTo {
		<-f.hung
		return nil, errors.New("flaky: released")
	}
	if n := f.calls[to].Add(1); n <= f.failN {
		return nil, fmt.Errorf("flaky: transient failure %d to node %d", n, to)
	}
	return make([][]graph.VertexID, len(ids)), nil
}

func (f *flakyFabric) Close() error {
	select {
	case <-f.hung:
	default:
		close(f.hung)
	}
	return nil
}

type permErr struct{}

func (permErr) Error() string   { return "perm" }
func (permErr) Permanent() bool { return true }

// permFabric always fails with a permanent error.
type permFabric struct{ calls atomic.Int64 }

func (f *permFabric) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	f.calls.Add(1)
	return nil, fmt.Errorf("wrapped: %w", permErr{})
}
func (f *permFabric) Close() error { return nil }

func TestResilientRetriesTransientErrors(t *testing.T) {
	m := metrics.NewCluster(2)
	inner := newFlakyFabric(2, 2, -1)
	r := NewResilient(inner, 2, RetryConfig{Retries: 4, Backoff: time.Microsecond}, m)
	defer r.Close()
	lists, err := r.Fetch(0, 1, []graph.VertexID{1, 2})
	if err != nil {
		t.Fatalf("fetch failed despite retries: %v", err)
	}
	if len(lists) != 2 {
		t.Fatalf("lists = %d", len(lists))
	}
	if got := m.Summarize().FetchRetries; got != 2 {
		t.Fatalf("FetchRetries = %d, want 2", got)
	}
}

func TestResilientExhaustsRetries(t *testing.T) {
	inner := newFlakyFabric(2, 1000, -1)
	r := NewResilient(inner, 2, RetryConfig{Retries: 3, Backoff: time.Microsecond}, nil)
	defer r.Close()
	_, err := r.Fetch(0, 1, nil)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if got := inner.calls[1].Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + 3 retries)", got)
	}
}

func TestResilientTimeoutAndBreaker(t *testing.T) {
	m := metrics.NewCluster(3)
	inner := newFlakyFabric(3, 0, 2) // node 2 hangs forever
	r := NewResilient(inner, 3, RetryConfig{
		Timeout: 5 * time.Millisecond, Retries: 5,
		Backoff: time.Microsecond, BreakerThreshold: 3,
	}, m)
	defer r.Close()

	// Healthy destination still works.
	if _, err := r.Fetch(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Hung destination: attempts time out until the breaker trips.
	_, err := r.Fetch(0, 2, nil)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	if !r.Dead(2) || r.Dead(1) {
		t.Fatalf("dead state: node2=%v node1=%v", r.Dead(2), r.Dead(1))
	}
	if nodes := r.DeadNodes(); len(nodes) != 1 || nodes[0] != 2 {
		t.Fatalf("DeadNodes = %v", nodes)
	}
	s := m.Summarize()
	if s.FetchTimeouts < 3 {
		t.Fatalf("FetchTimeouts = %d, want >= 3", s.FetchTimeouts)
	}
	if s.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", s.BreakerTrips)
	}
	// Subsequent fetches to the dead peer fail immediately, without attempts.
	before := s.FetchTimeouts
	if _, err := r.Fetch(1, 2, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("post-trip err = %v", err)
	}
	if got := m.Summarize().FetchTimeouts; got != before {
		t.Fatalf("dead peer still attempted: timeouts %d -> %d", before, got)
	}
}

func TestResilientPermanentErrorFailsFast(t *testing.T) {
	inner := &permFabric{}
	r := NewResilient(inner, 2, RetryConfig{Retries: 5, Backoff: time.Microsecond}, nil)
	defer r.Close()
	_, err := r.Fetch(0, 1, nil)
	var pe PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("permanent error lost: %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("permanent error retried: %d attempts", got)
	}
}

func TestResilientMarkDead(t *testing.T) {
	r := NewResilient(newFlakyFabric(2, 0, -1), 2, RetryConfig{}, nil)
	defer r.Close()
	r.MarkDead(1)
	if _, err := r.Fetch(0, 1, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
}

func TestResilientBackoffBounds(t *testing.T) {
	r := NewResilient(newFlakyFabric(2, 0, -1), 2, RetryConfig{
		Backoff: 4 * time.Millisecond, MaxBackoff: 16 * time.Millisecond,
	}, nil)
	defer r.Close()
	for attempt := 1; attempt <= 10; attempt++ {
		d := r.backoff(attempt)
		if d <= 0 || d > 16*time.Millisecond {
			t.Fatalf("backoff(%d) = %v out of (0, 16ms]", attempt, d)
		}
	}
}

// TestResilientBackoffCancel pins the interruptible-backoff behaviour: with
// a multi-second backoff ahead of it, a fetch must return the moment its
// cancel channel closes, classified as ErrFetchCanceled. Against the old
// time.Sleep backoff this test fails — the sleep cannot be interrupted, so
// the fetch stays parked for the full backoff and trips the deadline below.
func TestResilientBackoffCancel(t *testing.T) {
	inner := newFlakyFabric(2, 1000, -1) // every attempt fails
	r := NewResilient(inner, 2, RetryConfig{
		Retries: 3, Backoff: 2 * time.Second, MaxBackoff: 2 * time.Second,
	}, nil)
	defer r.Close()

	cancel := make(chan struct{})
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := r.FetchCancel(0, 1, nil, cancel)
		done <- err
	}()
	// Let the first attempt fail and the fetch park in its 2s backoff, then
	// cancel.
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrFetchCanceled) {
			t.Fatalf("err = %v, want ErrFetchCanceled", err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("cancellation took %v, want well under the 2s backoff", elapsed)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("fetch still parked in backoff 500ms after cancel")
	}
	if got := inner.calls[1].Load(); got != 1 {
		t.Fatalf("attempts after cancel = %d, want 1 (cancel must stop the retry schedule)", got)
	}
}

// TestResilientCloseUnblocksBackoff checks the fabric-wide half of the same
// fix: Close releases callers parked in a backoff even when they passed no
// cancel channel.
func TestResilientCloseUnblocksBackoff(t *testing.T) {
	inner := newFlakyFabric(2, 1000, -1)
	r := NewResilient(inner, 2, RetryConfig{
		Retries: 3, Backoff: 2 * time.Second, MaxBackoff: 2 * time.Second,
	}, nil)

	done := make(chan error, 1)
	go func() {
		_, err := r.Fetch(0, 1, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFetchCanceled) {
			t.Fatalf("err = %v, want ErrFetchCanceled", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("fetch still parked in backoff 500ms after Close")
	}
}

// TestResilientPassThroughOnRealFabric runs the resilient layer over the
// real Local fabric and checks results and accounting are untouched.
func TestResilientPassThroughOnRealFabric(t *testing.T) {
	g := graphForComm(t)
	asg, servers, m := serversForComm(g, 3)
	r := NewResilient(NewLocal(servers, m), 3, RetryConfig{Timeout: time.Second, Retries: 2}, m)
	defer r.Close()
	fetchAll(t, r, g, asg)
	if s := m.Summarize(); s.FetchRetries != 0 || s.FetchTimeouts != 0 || s.BreakerTrips != 0 {
		t.Fatalf("healthy run recorded resilience events: %+v", s)
	}
}
