package comm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// DefaultIOTimeout bounds every socket read/write of a single fetch
// exchange so a hung peer can never block a worker forever. SetIOTimeout
// overrides it; 0 disables deadlines entirely.
const DefaultIOTimeout = 30 * time.Second

// DefaultInFlight bounds how many multiplexed requests may be outstanding
// per connection on the v3 wire path. SetInFlight overrides it. The window
// also sizes the server's response queue, so it doubles as the transport's
// memory bound per connection.
const DefaultInFlight = 16

// serverBufRetain caps the response encode buffer a serial server loop
// keeps between requests: one hub-vertex reply must not pin its high-water
// mark for the connection's lifetime.
const serverBufRetain = 1 << 20

// maxFrameEntries bounds the u32 count prefixes of the wire format. A
// corrupt or truncated frame can announce up to 2^32-1 entries; accepting
// that would attempt a multi-gigabyte allocation before the stream even
// fails. Derived from MaxWireLen at 8 bytes per entry (a vertex ID plus
// slice overhead): 1<<26 entries is far beyond any real request or hub
// list.
const maxFrameEntries = MaxWireLen / 8

// TCP is a loopback-socket fabric: each simulated machine runs a responder
// listening on 127.0.0.1, and every exchange travels in integrity-checked
// frames (see frame.go) over real TCP connections. Each connection opens
// with a version handshake; payloads are CRC32C-checked on both ends, so
// corruption surfaces as ErrCorruptFrame instead of mis-parsed counts. It
// exercises genuine serialization, syscalls and kernel buffering — the
// closest laptop equivalent of the paper's MPI communication subsystem.
type TCP struct {
	servers   []Server
	m         *metrics.Cluster
	listeners []net.Listener
	addrs     []string
	ioTimeout atomic.Int64 // nanoseconds; read by server goroutines
	inflight  atomic.Int64 // per-connection mux window (v3 connections only)

	// minVer/maxVer is the version window this fabric offers in handshakes
	// (defaults to the build's window; narrowed only by tests).
	minVer, maxVer uint8

	// wireFaults, when set, injects byte-level corruption and mid-exchange
	// connection drops (fault-injection hook; nil costs one comparison).
	wireFaults WireFaults

	mu     sync.Mutex
	conns  map[connKey]*tcpConn
	dialed map[connKey]bool // pairs dialed at least once, for Redials

	// accepted tracks inbound connections so Close can sever them. It has its
	// own lock: registration must not contend with t.mu, which a dialing
	// client holds across its handshake — on a loopback fabric that client
	// may be waiting for the very responder trying to register.
	amu      sync.Mutex
	accepted map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
}

// connKey identifies one client connection: the {from,to} pair plus a
// channel class (0 = fetch traffic, 1 = heartbeat pings), so pings never
// queue behind a slow bulk exchange.
type connKey struct {
	from, to int
	class    int
}

type tcpConn struct {
	mu      sync.Mutex // serializes serial exchanges (v1/v2 fetches, pings)
	c       net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	version uint8  // negotiated protocol version
	buf     []byte // reusable payload encode buffer (serial exchanges)

	// mux carries the request-multiplexing state when the connection
	// negotiated ProtoVersionMux; nil on serial and ping connections.
	mux *muxState
}

// NewTCP starts one loopback listener per node and returns the fabric.
func NewTCP(servers []Server, m *metrics.Cluster) (*TCP, error) {
	t := &TCP{
		servers:  servers,
		m:        m,
		conns:    map[connKey]*tcpConn{},
		dialed:   map[connKey]bool{},
		accepted: map[net.Conn]struct{}{},
		closed:   make(chan struct{}),
		minVer:   ProtoVersionMin,
		maxVer:   ProtoVersionMax,
	}
	t.ioTimeout.Store(int64(DefaultIOTimeout))
	t.inflight.Store(DefaultInFlight)
	for node := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: listen for node %d: %w", node, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	return t, nil
}

func (t *TCP) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(node, c)
	}
}

// SetIOTimeout sets the per-operation socket deadline for subsequent
// fetches (0 disables deadlines).
func (t *TCP) SetIOTimeout(d time.Duration) { t.ioTimeout.Store(int64(d)) }

// SetWireFaults installs the byte-level fault hooks (fault injection). Call
// before sharing the fabric across goroutines.
func (t *TCP) SetWireFaults(wf WireFaults) { t.wireFaults = wf }

// SetInFlight bounds how many multiplexed requests may be outstanding per
// connection (default DefaultInFlight). The window is snapshotted when a
// connection is dialed, so set it before traffic starts.
func (t *TCP) SetInFlight(n int) {
	if n > 0 {
		t.inflight.Store(int64(n))
	}
}

// SetVersionWindow narrows the protocol window this fabric offers in
// handshakes — e.g. capping at ProtoVersionSerialMax pins the serial
// exchange (ablations, interop tests). Call before sharing the fabric.
func (t *TCP) SetVersionWindow(lo, hi uint8) {
	t.minVer, t.maxVer = lo, hi
}

// deadline arms a read or write deadline on c, or clears it when the
// fabric's IO timeout is disabled.
func (t *TCP) deadline(set func(time.Time) error) {
	if d := time.Duration(t.ioTimeout.Load()); d > 0 {
		set(time.Now().Add(d))
	} else {
		set(time.Time{})
	}
}

// serveConn performs the server half of the handshake, then hands the
// connection to the exchange discipline the negotiated version selects:
// serial request/response pairs up to ProtoVersionSerialMax, concurrent
// multiplexed exchanges from ProtoVersionMux on.
func (t *TCP) serveConn(node int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	// Register the inbound connection so Close can sever it: a responder
	// parks in deadline-free reads between requests, and only the peer — or
	// Close — closing the socket releases it.
	t.amu.Lock()
	select {
	case <-t.closed:
		t.amu.Unlock()
		return
	default:
	}
	t.accepted[c] = struct{}{}
	t.amu.Unlock()
	defer func() {
		t.amu.Lock()
		delete(t.accepted, c)
		t.amu.Unlock()
	}()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	// Handshake: the client leads with HELLO; pick the highest common
	// version or close (no overlap means the peer speaks a different
	// protocol generation).
	t.deadline(c.SetReadDeadline)
	typ, payload, err := readFrame(r, 0)
	if err != nil || typ != frameHello {
		return
	}
	peerMin, peerMax, _, err := decodeHello(payload)
	if err != nil {
		return
	}
	version := negotiateVersion(t.minVer, t.maxVer, peerMin, peerMax)
	if version == 0 {
		return
	}
	t.deadline(c.SetWriteDeadline)
	if err := writeFrame(w, version, frameHelloAck, []byte{version}, -1); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	if version >= ProtoVersionMux {
		t.serveMux(node, c, r, w, version)
		return
	}
	t.serveSerial(node, c, r, w, version)
}

// serveSerial answers framed requests and pings one at a time — the v1/v2
// exchange discipline.
func (t *TCP) serveSerial(node int, c net.Conn, r *bufio.Reader, w *bufio.Writer, version uint8) {
	var buf []byte
	for {
		// No read deadline here: a client connection legitimately idles
		// between requests. Writes are bounded so a stalled client cannot
		// pin the responder goroutine.
		c.SetReadDeadline(time.Time{})
		typ, payload, err := readFramePooled(r, version)
		if err != nil {
			if isCorrupt(err) {
				// Integrity check caught a damaged request: account it,
				// tell the client (best effort), and drop the stream — its
				// framing can no longer be trusted.
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				t.deadline(c.SetWriteDeadline)
				writeFrame(w, version, frameError, nil, -1)
				w.Flush()
			}
			return
		}
		switch typ {
		case framePing:
			putPayloadBuf(payload)
			t.deadline(c.SetWriteDeadline)
			if writeFrame(w, version, framePong, nil, -1) != nil || w.Flush() != nil {
				return
			}
		case frameRequest:
			ids, err := decodeIDs(payload)
			putPayloadBuf(payload)
			if err != nil {
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				t.deadline(c.SetWriteDeadline)
				writeFrame(w, version, frameError, nil, -1)
				w.Flush()
				return
			}
			lists := t.servers[node].ServeEdgeLists(ids)
			buf = encodeLists(buf[:0], lists)
			t.deadline(c.SetWriteDeadline)
			err = writeFrame(w, version, frameResponse, buf, -1)
			if cap(buf) > serverBufRetain {
				// One oversized reply (a hub vertex) must not pin its
				// high-water mark for the connection's lifetime.
				buf = nil
			}
			if err != nil || w.Flush() != nil {
				return
			}
		default:
			// The frame passed the integrity checks, so the type is declared
			// but has no business on a serial data-plane exchange (a query
			// frame on the wrong port, a mux frame on a v1/v2 connection).
			// Classify the violation — count it and answer frameError — so
			// the peer sees a protocol error instead of a silent close.
			putPayloadBuf(payload)
			if t.m != nil {
				t.m.Nodes[node].CorruptFrames.Add(1)
			}
			t.deadline(c.SetWriteDeadline)
			writeFrame(w, version, frameError, nil, -1)
			w.Flush()
			return
		}
	}
}

// isCorrupt reports whether err is an integrity-check failure (as opposed to
// EOF or a socket error).
func isCorrupt(err error) bool {
	return errors.Is(err, ErrCorruptFrame)
}

// Fetch implements Fabric. On a v3 connection the exchange is multiplexed —
// many fetches pipeline over one socket and complete out of order; on older
// connections it falls back to the serial request/response pair.
func (t *TCP) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn, err := t.conn(from, to, 0)
	if err != nil {
		return nil, err
	}
	if conn.mux != nil {
		lists, err := conn.mux.fetch(from, to, ids)
		if err != nil {
			return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, err)
		}
		account(t.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
		if t.m != nil {
			t.m.Nodes[from].PipelinedFetches.Add(1)
		}
		return lists, nil
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	lists, err := t.exchange(conn, from, to, ids)
	if err != nil {
		// The stream may be mid-frame; drop the connection so a retry
		// redials instead of resuming on broken framing.
		t.dropConn(connKey{from, to, 0}, conn)
		return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, err)
	}
	account(t.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
	return lists, nil
}

// exchange performs one request/response pair on a held connection,
// applying any injected wire faults.
func (t *TCP) exchange(conn *tcpConn, from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn.buf = encodeIDs(conn.buf[:0], ids)
	corrupt := -1
	if t.wireFaults != nil && t.wireFaults.CorruptFrame(from, to) {
		corrupt = len(conn.buf) / 2
	}
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeFrame(conn.w, conn.version, frameRequest, conn.buf, corrupt); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	if err := conn.w.Flush(); err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	if t.wireFaults != nil && t.wireFaults.DropAfterSend(from, to) {
		// Sever the connection mid-exchange: the request may or may not have
		// been served, the response is lost either way.
		conn.c.Close()
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, payload, err := readFramePooled(conn.r, conn.version)
	if err != nil {
		if isCorrupt(err) && t.m != nil {
			t.m.Nodes[from].CorruptFrames.Add(1)
		}
		return nil, fmt.Errorf("response: %w", err)
	}
	switch typ {
	case frameResponse:
		lists, err := decodeLists(payload)
		putPayloadBuf(payload) // decodeLists copies into its slab
		return lists, err
	case frameError:
		putPayloadBuf(payload)
		// The server rejected our request as corrupt; surface it as the
		// retryable integrity error it is.
		return nil, fmt.Errorf("server rejected request: %w", ErrCorruptFrame)
	default:
		putPayloadBuf(payload)
		return nil, fmt.Errorf("unexpected frame type %#02x in response: %w", typ, ErrCorruptFrame)
	}
}

// Ping performs one heartbeat round trip on the dedicated ping connection
// for the pair. Pings are control traffic: they are framed and
// CRC-protected like everything else but excluded from byte accounting.
func (t *TCP) Ping(from, to int) error {
	conn, err := t.conn(from, to, 1)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeFrame(conn.w, conn.version, framePing, nil, -1); err == nil {
		err = conn.w.Flush()
	} else {
		t.dropConn(connKey{from, to, 1}, conn)
		return fmt.Errorf("comm: ping %d->%d: %w", from, to, err)
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, _, err := readFrame(conn.r, conn.version)
	if err != nil || typ != framePong {
		t.dropConn(connKey{from, to, 1}, conn)
		if err == nil {
			err = fmt.Errorf("unexpected frame type %#02x: %w", typ, ErrCorruptFrame)
		}
		return fmt.Errorf("comm: ping %d->%d: %w", from, to, err)
	}
	return nil
}

// dropConn closes and forgets a connection whose stream state is suspect.
func (t *TCP) dropConn(key connKey, conn *tcpConn) {
	conn.c.Close()
	t.forgetConn(key, conn)
}

// forgetConn removes a connection from the pool so the next fetch redials.
func (t *TCP) forgetConn(key connKey, conn *tcpConn) {
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
	}
	t.mu.Unlock()
}

// conn returns (dialing and handshaking if necessary) the connection for
// the ordered pair and channel class.
func (t *TCP) conn(from, to, class int) (*tcpConn, error) {
	key := connKey{from, to, class}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	select {
	case <-t.closed:
		// Refuse to dial (and spawn mux goroutines) once Close has started;
		// Close's WaitGroup wait must not race new connections.
		return nil, fmt.Errorf("comm: dial node %d: %w", to, net.ErrClosed)
	default:
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("comm: fetch to node %d: %w", to, ErrUnknownNode)
	}
	if t.dialed[key] {
		// This pair had a live connection before; re-establishing it is a
		// redial (connection drop, corruption teardown, or peer restart).
		if t.m != nil && from >= 0 && from < len(t.m.Nodes) {
			t.m.Nodes[from].Redials.Add(1)
		}
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("comm: dial node %d: %w", to, err)
	}
	tc := &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	if err := t.handshake(tc, from); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: handshake with node %d: %w", to, err)
	}
	if class == 0 && tc.version >= ProtoVersionMux {
		tc.mux = newMuxState(t, key, tc)
		// Both mux goroutines are owned by the fabric's WaitGroup: Close
		// severs the socket, the demux fails the connection, and both exit
		// before Close returns.
		t.wg.Add(2)
		go tc.mux.writeLoop()
		go tc.mux.readLoop()
	}
	t.dialed[key] = true
	t.conns[key] = tc
	return tc, nil
}

// handshake runs the client half of the version negotiation on a fresh
// connection.
func (t *TCP) handshake(conn *tcpConn, from int) error {
	t.deadline(conn.c.SetWriteDeadline)
	// The HELLO header carries our minimum version so a peer from an older
	// protocol generation can still parse the frame and negotiate down.
	if err := writeFrame(conn.w, t.minVer, frameHello, encodeHello(t.minVer, t.maxVer, from), -1); err != nil {
		return err
	}
	if err := conn.w.Flush(); err != nil {
		return err
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, payload, err := readFrame(conn.r, 0)
	if err != nil {
		// The server closes without an ack when the windows do not overlap.
		return fmt.Errorf("%w (%v)", ErrVersionMismatch, err)
	}
	if typ != frameHelloAck || len(payload) != 1 {
		return fmt.Errorf("bad hello ack: %w", ErrCorruptFrame)
	}
	v := payload[0]
	if v < t.minVer || v > t.maxVer {
		return fmt.Errorf("server chose unsupported version %d: %w", v, ErrVersionMismatch)
	}
	conn.version = v
	return nil
}

// Close shuts down listeners and connections.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		ln.Close()
	}
	// Severing a mux connection makes its demux goroutine re-take t.mu (to
	// forget the connection) before exiting; that is safe because the lock
	// is released before the WaitGroup wait below.
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.amu.Lock()
	for c := range t.accepted {
		c.Close()
	}
	t.amu.Unlock()
	t.wg.Wait()
	return nil
}
