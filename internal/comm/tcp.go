package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// TCP is a loopback-socket fabric: each simulated machine runs a responder
// listening on 127.0.0.1, and fetches are length-prefixed little-endian
// frames over real TCP connections. It exercises genuine serialization,
// syscalls and kernel buffering — the closest laptop equivalent of the
// paper's MPI communication subsystem.
type TCP struct {
	servers   []Server
	m         *metrics.Cluster
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns map[[2]int]*tcpConn // keyed by {from,to}

	wg     sync.WaitGroup
	closed chan struct{}
}

type tcpConn struct {
	mu sync.Mutex // serializes request/response pairs on this connection
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// NewTCP starts one loopback listener per node and returns the fabric.
func NewTCP(servers []Server, m *metrics.Cluster) (*TCP, error) {
	t := &TCP{
		servers: servers,
		m:       m,
		conns:   map[[2]int]*tcpConn{},
		closed:  make(chan struct{}),
	}
	for node := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: listen for node %d: %w", node, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	return t, nil
}

func (t *TCP) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(node, c)
	}
}

// serveConn answers framed requests on one inbound connection.
func (t *TCP) serveConn(node int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		ids, err := readIDs(r)
		if err != nil {
			return // EOF or peer closed
		}
		lists := t.servers[node].ServeEdgeLists(ids)
		if err := writeLists(w, lists); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Fetch implements Fabric.
func (t *TCP) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn, err := t.conn(from, to)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := writeIDs(conn.w, ids); err != nil {
		return nil, fmt.Errorf("comm: send to node %d: %w", to, err)
	}
	if err := conn.w.Flush(); err != nil {
		return nil, fmt.Errorf("comm: flush to node %d: %w", to, err)
	}
	lists, err := readLists(conn.r)
	if err != nil {
		return nil, fmt.Errorf("comm: response from node %d: %w", to, err)
	}
	account(t.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
	return lists, nil
}

// conn returns (dialing if necessary) the connection for the ordered pair.
func (t *TCP) conn(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("comm: fetch to unknown node %d", to)
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("comm: dial node %d: %w", to, err)
	}
	tc := &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	t.conns[key] = tc
	return tc, nil
}

// Close shuts down listeners and connections.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// Wire format helpers. Frames match the accounted byte formulas exactly:
// request = u32 count + count u32 IDs; response = u32 count + per list
// (u32 len + len u32 vertices).

func writeIDs(w *bufio.Writer, ids []graph.VertexID) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, ids)
}

func readIDs(r *bufio.Reader) ([]graph.VertexID, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	ids := make([]graph.VertexID, n)
	if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
		return nil, err
	}
	return ids, nil
}

func writeLists(w *bufio.Writer, lists [][]graph.VertexID) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(lists))); err != nil {
		return err
	}
	for _, l := range lists {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(l))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, l); err != nil {
			return err
		}
	}
	return nil
}

func readLists(r *bufio.Reader) ([][]graph.VertexID, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	lists := make([][]graph.VertexID, n)
	for i := range lists {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		l := make([]graph.VertexID, ln)
		if err := binary.Read(r, binary.LittleEndian, l); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, io.EOF
			}
			return nil, err
		}
		lists[i] = l
	}
	return lists, nil
}
