package comm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// DefaultIOTimeout bounds every socket read/write of a single fetch
// exchange so a hung peer can never block a worker forever. SetIOTimeout
// overrides it; 0 disables deadlines entirely.
const DefaultIOTimeout = 30 * time.Second

// maxFrameEntries bounds the u32 count prefixes of the wire format. A
// corrupt or truncated frame can announce up to 2^32-1 entries; accepting
// that would attempt a multi-gigabyte allocation before the stream even
// fails. 1<<26 entries (256 MiB of vertex IDs) is far beyond any real
// request or hub list.
const maxFrameEntries = 1 << 26

// TCP is a loopback-socket fabric: each simulated machine runs a responder
// listening on 127.0.0.1, and every exchange travels in integrity-checked
// frames (see frame.go) over real TCP connections. Each connection opens
// with a version handshake; payloads are CRC32C-checked on both ends, so
// corruption surfaces as ErrCorruptFrame instead of mis-parsed counts. It
// exercises genuine serialization, syscalls and kernel buffering — the
// closest laptop equivalent of the paper's MPI communication subsystem.
type TCP struct {
	servers   []Server
	m         *metrics.Cluster
	listeners []net.Listener
	addrs     []string
	ioTimeout atomic.Int64 // nanoseconds; read by server goroutines

	// minVer/maxVer is the version window this fabric offers in handshakes
	// (defaults to the build's window; narrowed only by tests).
	minVer, maxVer uint8

	// wireFaults, when set, injects byte-level corruption and mid-exchange
	// connection drops (fault-injection hook; nil costs one comparison).
	wireFaults WireFaults

	mu     sync.Mutex
	conns  map[connKey]*tcpConn
	dialed map[connKey]bool // pairs dialed at least once, for Redials

	wg     sync.WaitGroup
	closed chan struct{}
}

// connKey identifies one client connection: the {from,to} pair plus a
// channel class (0 = fetch traffic, 1 = heartbeat pings), so pings never
// queue behind a slow bulk exchange.
type connKey struct {
	from, to int
	class    int
}

type tcpConn struct {
	mu      sync.Mutex // serializes request/response pairs on this connection
	c       net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	version uint8  // negotiated protocol version
	buf     []byte // reusable payload encode buffer
}

// NewTCP starts one loopback listener per node and returns the fabric.
func NewTCP(servers []Server, m *metrics.Cluster) (*TCP, error) {
	t := &TCP{
		servers: servers,
		m:       m,
		conns:   map[connKey]*tcpConn{},
		dialed:  map[connKey]bool{},
		closed:  make(chan struct{}),
		minVer:  ProtoVersionMin,
		maxVer:  ProtoVersionMax,
	}
	t.ioTimeout.Store(int64(DefaultIOTimeout))
	for node := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: listen for node %d: %w", node, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	return t, nil
}

func (t *TCP) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(node, c)
	}
}

// SetIOTimeout sets the per-operation socket deadline for subsequent
// fetches (0 disables deadlines).
func (t *TCP) SetIOTimeout(d time.Duration) { t.ioTimeout.Store(int64(d)) }

// SetWireFaults installs the byte-level fault hooks (fault injection). Call
// before sharing the fabric across goroutines.
func (t *TCP) SetWireFaults(wf WireFaults) { t.wireFaults = wf }

// deadline arms a read or write deadline on c, or clears it when the
// fabric's IO timeout is disabled.
func (t *TCP) deadline(set func(time.Time) error) {
	if d := time.Duration(t.ioTimeout.Load()); d > 0 {
		set(time.Now().Add(d))
	} else {
		set(time.Time{})
	}
}

// serveConn performs the server half of the handshake, then answers framed
// requests and pings on one inbound connection.
func (t *TCP) serveConn(node int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	// Handshake: the client leads with HELLO; pick the highest common
	// version or close (no overlap means the peer speaks a different
	// protocol generation).
	t.deadline(c.SetReadDeadline)
	typ, payload, err := readFrame(r, 0)
	if err != nil || typ != frameHello {
		return
	}
	peerMin, peerMax, _, err := decodeHello(payload)
	if err != nil {
		return
	}
	version := negotiateVersion(t.minVer, t.maxVer, peerMin, peerMax)
	if version == 0 {
		return
	}
	t.deadline(c.SetWriteDeadline)
	if err := writeFrame(w, version, frameHelloAck, []byte{version}, -1); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}

	var buf []byte
	for {
		// No read deadline here: a client connection legitimately idles
		// between requests. Writes are bounded so a stalled client cannot
		// pin the responder goroutine.
		c.SetReadDeadline(time.Time{})
		typ, payload, err := readFrame(r, version)
		if err != nil {
			if isCorrupt(err) {
				// Integrity check caught a damaged request: account it,
				// tell the client (best effort), and drop the stream — its
				// framing can no longer be trusted.
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				t.deadline(c.SetWriteDeadline)
				writeFrame(w, version, frameError, nil, -1)
				w.Flush()
			}
			return
		}
		switch typ {
		case framePing:
			t.deadline(c.SetWriteDeadline)
			if writeFrame(w, version, framePong, nil, -1) != nil || w.Flush() != nil {
				return
			}
		case frameRequest:
			ids, err := decodeIDs(payload)
			if err != nil {
				if t.m != nil {
					t.m.Nodes[node].CorruptFrames.Add(1)
				}
				t.deadline(c.SetWriteDeadline)
				writeFrame(w, version, frameError, nil, -1)
				w.Flush()
				return
			}
			lists := t.servers[node].ServeEdgeLists(ids)
			buf = encodeLists(buf[:0], lists)
			t.deadline(c.SetWriteDeadline)
			if writeFrame(w, version, frameResponse, buf, -1) != nil || w.Flush() != nil {
				return
			}
		default:
			return // protocol violation
		}
	}
}

// isCorrupt reports whether err is an integrity-check failure (as opposed to
// EOF or a socket error).
func isCorrupt(err error) bool {
	return errors.Is(err, ErrCorruptFrame)
}

// Fetch implements Fabric.
func (t *TCP) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn, err := t.conn(from, to, 0)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	lists, err := t.exchange(conn, from, to, ids)
	if err != nil {
		// The stream may be mid-frame; drop the connection so a retry
		// redials instead of resuming on broken framing.
		t.dropConn(connKey{from, to, 0}, conn)
		return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, err)
	}
	account(t.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
	return lists, nil
}

// exchange performs one request/response pair on a held connection,
// applying any injected wire faults.
func (t *TCP) exchange(conn *tcpConn, from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn.buf = encodeIDs(conn.buf[:0], ids)
	corrupt := -1
	if t.wireFaults != nil && t.wireFaults.CorruptFrame(from, to) {
		corrupt = len(conn.buf) / 2
	}
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeFrame(conn.w, conn.version, frameRequest, conn.buf, corrupt); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	if err := conn.w.Flush(); err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	if t.wireFaults != nil && t.wireFaults.DropAfterSend(from, to) {
		// Sever the connection mid-exchange: the request may or may not have
		// been served, the response is lost either way.
		conn.c.Close()
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, payload, err := readFrame(conn.r, conn.version)
	if err != nil {
		if isCorrupt(err) && t.m != nil {
			t.m.Nodes[from].CorruptFrames.Add(1)
		}
		return nil, fmt.Errorf("response: %w", err)
	}
	switch typ {
	case frameResponse:
		return decodeLists(payload)
	case frameError:
		// The server rejected our request as corrupt; surface it as the
		// retryable integrity error it is.
		return nil, fmt.Errorf("server rejected request: %w", ErrCorruptFrame)
	default:
		return nil, fmt.Errorf("unexpected frame type %#02x in response: %w", typ, ErrCorruptFrame)
	}
}

// Ping performs one heartbeat round trip on the dedicated ping connection
// for the pair. Pings are control traffic: they are framed and
// CRC-protected like everything else but excluded from byte accounting.
func (t *TCP) Ping(from, to int) error {
	conn, err := t.conn(from, to, 1)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeFrame(conn.w, conn.version, framePing, nil, -1); err == nil {
		err = conn.w.Flush()
	} else {
		t.dropConn(connKey{from, to, 1}, conn)
		return fmt.Errorf("comm: ping %d->%d: %w", from, to, err)
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, _, err := readFrame(conn.r, conn.version)
	if err != nil || typ != framePong {
		t.dropConn(connKey{from, to, 1}, conn)
		if err == nil {
			err = fmt.Errorf("unexpected frame type %#02x: %w", typ, ErrCorruptFrame)
		}
		return fmt.Errorf("comm: ping %d->%d: %w", from, to, err)
	}
	return nil
}

// dropConn closes and forgets a connection whose stream state is suspect.
func (t *TCP) dropConn(key connKey, conn *tcpConn) {
	conn.c.Close()
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
	}
	t.mu.Unlock()
}

// conn returns (dialing and handshaking if necessary) the connection for
// the ordered pair and channel class.
func (t *TCP) conn(from, to, class int) (*tcpConn, error) {
	key := connKey{from, to, class}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("comm: fetch to node %d: %w", to, ErrUnknownNode)
	}
	if t.dialed[key] {
		// This pair had a live connection before; re-establishing it is a
		// redial (connection drop, corruption teardown, or peer restart).
		if t.m != nil && from >= 0 && from < len(t.m.Nodes) {
			t.m.Nodes[from].Redials.Add(1)
		}
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("comm: dial node %d: %w", to, err)
	}
	tc := &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	if err := t.handshake(tc, from); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: handshake with node %d: %w", to, err)
	}
	t.dialed[key] = true
	t.conns[key] = tc
	return tc, nil
}

// handshake runs the client half of the version negotiation on a fresh
// connection.
func (t *TCP) handshake(conn *tcpConn, from int) error {
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeFrame(conn.w, t.maxVer, frameHello, encodeHello(t.minVer, t.maxVer, from), -1); err != nil {
		return err
	}
	if err := conn.w.Flush(); err != nil {
		return err
	}
	t.deadline(conn.c.SetReadDeadline)
	typ, payload, err := readFrame(conn.r, 0)
	if err != nil {
		// The server closes without an ack when the windows do not overlap.
		return fmt.Errorf("%w (%v)", ErrVersionMismatch, err)
	}
	if typ != frameHelloAck || len(payload) != 1 {
		return fmt.Errorf("bad hello ack: %w", ErrCorruptFrame)
	}
	v := payload[0]
	if v < t.minVer || v > t.maxVer {
		return fmt.Errorf("server chose unsupported version %d: %w", v, ErrVersionMismatch)
	}
	conn.version = v
	return nil
}

// Close shuts down listeners and connections.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
