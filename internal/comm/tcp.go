package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// DefaultIOTimeout bounds every socket read/write of a single fetch
// exchange so a hung peer can never block a worker forever. SetIOTimeout
// overrides it; 0 disables deadlines entirely.
const DefaultIOTimeout = 30 * time.Second

// maxFrameEntries bounds the u32 count prefixes of the wire format. A
// corrupt or truncated frame can announce up to 2^32-1 entries; accepting
// that would attempt a multi-gigabyte allocation before the stream even
// fails. 1<<26 entries (256 MiB of vertex IDs) is far beyond any real
// request or hub list.
const maxFrameEntries = 1 << 26

// TCP is a loopback-socket fabric: each simulated machine runs a responder
// listening on 127.0.0.1, and fetches are length-prefixed little-endian
// frames over real TCP connections. It exercises genuine serialization,
// syscalls and kernel buffering — the closest laptop equivalent of the
// paper's MPI communication subsystem.
type TCP struct {
	servers   []Server
	m         *metrics.Cluster
	listeners []net.Listener
	addrs     []string
	ioTimeout time.Duration

	mu    sync.Mutex
	conns map[[2]int]*tcpConn // keyed by {from,to}

	wg     sync.WaitGroup
	closed chan struct{}
}

type tcpConn struct {
	mu sync.Mutex // serializes request/response pairs on this connection
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// NewTCP starts one loopback listener per node and returns the fabric.
func NewTCP(servers []Server, m *metrics.Cluster) (*TCP, error) {
	t := &TCP{
		servers:   servers,
		m:         m,
		conns:     map[[2]int]*tcpConn{},
		closed:    make(chan struct{}),
		ioTimeout: DefaultIOTimeout,
	}
	for node := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: listen for node %d: %w", node, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	return t, nil
}

func (t *TCP) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(node, c)
	}
}

// SetIOTimeout sets the per-operation socket deadline for subsequent
// fetches (0 disables deadlines). Call before sharing the fabric across
// goroutines.
func (t *TCP) SetIOTimeout(d time.Duration) { t.ioTimeout = d }

// deadline arms a read or write deadline on c, or clears it when the
// fabric's IO timeout is disabled.
func (t *TCP) deadline(set func(time.Time) error) {
	if t.ioTimeout > 0 {
		set(time.Now().Add(t.ioTimeout))
	} else {
		set(time.Time{})
	}
}

// serveConn answers framed requests on one inbound connection.
func (t *TCP) serveConn(node int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		// No read deadline here: a client connection legitimately idles
		// between requests. Writes are bounded so a stalled client cannot
		// pin the responder goroutine.
		ids, err := readIDs(r)
		if err != nil {
			return // EOF or peer closed
		}
		lists := t.servers[node].ServeEdgeLists(ids)
		t.deadline(c.SetWriteDeadline)
		if err := writeLists(w, lists); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Fetch implements Fabric.
func (t *TCP) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	conn, err := t.conn(from, to)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	lists, err := t.exchange(conn, ids)
	if err != nil {
		// The stream may be mid-frame; drop the connection so a retry
		// redials instead of resuming on broken framing.
		t.dropConn(from, to, conn)
		return nil, fmt.Errorf("comm: fetch %d->%d: %w", from, to, err)
	}
	account(t.m, from, to, RequestBytes(len(ids)), ResponseBytes(lists))
	return lists, nil
}

// exchange performs one request/response pair on a held connection.
func (t *TCP) exchange(conn *tcpConn, ids []graph.VertexID) ([][]graph.VertexID, error) {
	t.deadline(conn.c.SetWriteDeadline)
	if err := writeIDs(conn.w, ids); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	if err := conn.w.Flush(); err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	t.deadline(conn.c.SetReadDeadline)
	lists, err := readLists(conn.r)
	if err != nil {
		return nil, fmt.Errorf("response: %w", err)
	}
	return lists, nil
}

// dropConn closes and forgets a connection whose stream state is suspect.
func (t *TCP) dropConn(from, to int, conn *tcpConn) {
	conn.c.Close()
	t.mu.Lock()
	if t.conns[[2]int{from, to}] == conn {
		delete(t.conns, [2]int{from, to})
	}
	t.mu.Unlock()
}

// conn returns (dialing if necessary) the connection for the ordered pair.
func (t *TCP) conn(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("comm: fetch to unknown node %d", to)
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("comm: dial node %d: %w", to, err)
	}
	tc := &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	t.conns[key] = tc
	return tc, nil
}

// Close shuts down listeners and connections.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// Wire format helpers. Frames match the accounted byte formulas exactly:
// request = u32 count + count u32 IDs; response = u32 count + per list
// (u32 len + len u32 vertices).

func writeIDs(w *bufio.Writer, ids []graph.VertexID) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, ids)
}

func readIDs(r *bufio.Reader) ([]graph.VertexID, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	// Validate the announced count before allocating: a corrupt frame must
	// become an error, not a multi-gigabyte make().
	if n > maxFrameEntries {
		return nil, fmt.Errorf("comm: request frame announces %d ids (max %d): corrupt frame", n, maxFrameEntries)
	}
	ids := make([]graph.VertexID, n)
	if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("comm: truncated request frame (want %d ids): %w", n, io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return ids, nil
}

func writeLists(w *bufio.Writer, lists [][]graph.VertexID) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(lists))); err != nil {
		return err
	}
	for _, l := range lists {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(l))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, l); err != nil {
			return err
		}
	}
	return nil
}

func readLists(r *bufio.Reader) ([][]graph.VertexID, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxFrameEntries {
		return nil, fmt.Errorf("comm: response frame announces %d lists (max %d): corrupt frame", n, maxFrameEntries)
	}
	lists := make([][]graph.VertexID, n)
	for i := range lists {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return nil, fmt.Errorf("comm: truncated response frame (list %d/%d header): %w", i, n, io.ErrUnexpectedEOF)
			}
			return nil, err
		}
		if ln > maxFrameEntries {
			return nil, fmt.Errorf("comm: response frame announces %d-vertex list (max %d): corrupt frame", ln, maxFrameEntries)
		}
		l := make([]graph.VertexID, ln)
		if err := binary.Read(r, binary.LittleEndian, l); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return nil, fmt.Errorf("comm: truncated response frame (list %d/%d, want %d vertices): %w", i, n, ln, io.ErrUnexpectedEOF)
			}
			return nil, err
		}
		lists[i] = l
	}
	return lists, nil
}
