package comm

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// dialHandshake raw-dials a fabric listener and runs the client half of the
// version negotiation with the given ceiling, returning the framed
// connection and the negotiated version.
func dialHandshake(t *testing.T, addr string, maxVer uint8) (net.Conn, *bufio.Reader, *bufio.Writer, uint8) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	if err := writeFrame(w, ProtoVersionMin, frameHello, encodeHello(ProtoVersionMin, maxVer, 0), -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(r, 0)
	if err != nil || typ != frameHelloAck || len(payload) != 1 {
		c.Close()
		t.Fatalf("handshake: typ %#02x payload %d err %v", typ, len(payload), err)
	}
	return c, r, w, payload[0]
}

// TestServeSerialRejectsUnexpectedFrameType: a frame whose type is declared
// but has no business on a serial data-plane exchange must come back as an
// explicit frameError (and count as a corrupt frame), not a silent close.
func TestServeSerialRejectsUnexpectedFrameType(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(8)
	asg := partition.NewAssignment(2, 1)
	m := metrics.NewCluster(2)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, r, w, version := dialHandshake(t, f.addrs[1], ProtoVersionSerialMax)
	defer c.Close()
	if version != ProtoVersionSerialMax {
		t.Fatalf("negotiated version %d, want %d", version, ProtoVersionSerialMax)
	}
	if err := writeFrame(w, version, frameQuerySubmit, nil, -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err := readFrame(r, version)
	if err != nil {
		t.Fatalf("server hung up without classifying the violation: %v", err)
	}
	if typ != frameError {
		t.Fatalf("got frame %#02x, want frameError", typ)
	}
	if m.Nodes[1].CorruptFrames.Load() == 0 {
		t.Fatal("protocol violation not accounted as a corrupt frame")
	}
}

// TestServeMuxRejectsUnexpectedFrameType is the v3 twin: a serial REQUEST on
// a multiplexed stream is a protocol violation the server must answer with
// frameError before abandoning the connection.
func TestServeMuxRejectsUnexpectedFrameType(t *testing.T) {
	leakcheck.Check(t)
	g := graph.Path(8)
	asg := partition.NewAssignment(2, 1)
	m := metrics.NewCluster(2)
	f, err := NewTCP(testServers(g, asg), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, r, w, version := dialHandshake(t, f.addrs[1], ProtoVersionMax)
	defer c.Close()
	if version < ProtoVersionMux {
		t.Fatalf("negotiated version %d, want ≥ %d", version, ProtoVersionMux)
	}
	if err := writeFrame(w, version, frameRequest, nil, -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err := readFrame(r, version)
	if err != nil {
		t.Fatalf("server hung up without classifying the violation: %v", err)
	}
	if typ != frameError {
		t.Fatalf("got frame %#02x, want frameError", typ)
	}
	if m.Nodes[1].CorruptFrames.Load() == 0 {
		t.Fatal("protocol violation not accounted as a corrupt frame")
	}
}

// TestDecodeQueryHealthSuspectCap: a health report announcing more suspects
// than maxHealthSuspects is corrupt even when its length field is internally
// consistent — the count must be clamped, not just cross-checked.
func TestDecodeQueryHealthSuspectCap(t *testing.T) {
	h := &QueryHealth{ActiveQueries: 1, Window: 4, Submitted: 9}
	h.Suspects = make([]uint32, maxHealthSuspects+1)
	for i := range h.Suspects {
		h.Suspects[i] = uint32(i + 1) // strictly ascending, so only the cap rejects it
	}
	p := encodeQueryHealth(nil, h)
	if _, err := decodeQueryHealth(p); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized suspect list decoded: err = %v", err)
	}

	h.Suspects = h.Suspects[:maxHealthSuspects]
	p = encodeQueryHealth(nil, h)
	got, err := decodeQueryHealth(p)
	if err != nil {
		t.Fatalf("at-cap suspect list rejected: %v", err)
	}
	if len(got.Suspects) != maxHealthSuspects {
		t.Fatalf("round-trip kept %d suspects, want %d", len(got.Suspects), maxHealthSuspects)
	}
}

// TestWriteHealthTrimsSuspects: the server side never emits a report its
// peer must reject — an over-cap suspect list is trimmed on write, the
// mirror of WriteResult's detail trimming.
func TestWriteHealthTrimsSuspects(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer c.Close()
		qc, err := AcceptQuery(c, time.Second)
		if err != nil {
			srvErr <- err
			return
		}
		h := &QueryHealth{}
		h.Suspects = make([]uint32, maxHealthSuspects+100)
		for i := range h.Suspects {
			h.Suspects[i] = uint32(i + 1)
		}
		srvErr <- qc.WriteHealth(h)
	}()

	qc, err := DialQuery(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	msg, err := qc.ReadMsg()
	if err != nil {
		t.Fatalf("trimmed health report did not decode: %v", err)
	}
	h, ok := msg.(*QueryHealth)
	if !ok {
		t.Fatalf("expected *QueryHealth, got %#v", msg)
	}
	if len(h.Suspects) != maxHealthSuspects {
		t.Fatalf("received %d suspects, want the cap %d", len(h.Suspects), maxHealthSuspects)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}
