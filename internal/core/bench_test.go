package core_test

import (
	"testing"

	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// BenchmarkExtendEngine drives the whole per-embedding hot path — extendOne,
// PlanExtender.Extend, the setops kernels, and the VCS intermediate-copy
// machinery (clique plans store raw intersections) — on a single node so no
// network noise enters the numbers. This is the benchmark behind
// BENCH_hotpath.json.
func BenchmarkExtendEngine(b *testing.B) {
	g := graph.RMATDefault(400, 3200, 7)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	asg := partition.NewAssignment(1, 1)
	local := partition.NewLocal(g, asg, 0)
	fabric := comm.NewLocal([]comm.Server{comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		panic("single node should not fetch")
	})}, nil)
	defer fabric.Close()
	src := &testSource{local: local, fabric: fabric}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &core.CountSink{}
		eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, sink, core.Config{Threads: 1})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if sink.Count() == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkExtendEngineHub is the skewed counterpart: a hub-heavy RMAT graph
// where the dispatcher promotes high-degree lists to the bitmap kernel.
// Comparing against the same run with the bitmap disabled (HubThreshold far
// above the max degree, leaving merge/gallop only) is the evidence for the
// kernel-selection layer.
func BenchmarkExtendEngineHub(b *testing.B) {
	g := graph.RMAT(2000, 40000, 0.75, 0.1, 0.1, 7)
	pl := plan.MustCompile(pattern.Triangle(),
		plan.Options{Style: plan.StyleGraphPi, DisableVCS: true, Stats: plan.StatsOf(g)})
	asg := partition.NewAssignment(1, 1)
	local := partition.NewLocal(g, asg, 0)
	fabric := comm.NewLocal([]comm.Server{comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		panic("single node should not fetch")
	})}, nil)
	defer fabric.Close()
	src := &testSource{local: local, fabric: fabric}

	for _, cfg := range []struct {
		name string
		hub  uint32
	}{
		{"bitmap", 0},        // compiled threshold: hub lists promoted
		{"generic", 1 << 30}, // bitmap off: merge/gallop only
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink := &core.CountSink{}
				eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, sink,
					core.Config{Threads: 1, HubThreshold: cfg.hub})
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				if sink.Count() == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}
