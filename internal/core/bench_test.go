package core_test

import (
	"testing"

	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// BenchmarkExtendEngine drives the whole per-embedding hot path — extendOne,
// PlanExtender.Extend, the setops kernels, and the VCS intermediate-copy
// machinery (clique plans store raw intersections) — on a single node so no
// network noise enters the numbers. This is the benchmark behind
// BENCH_hotpath.json.
func BenchmarkExtendEngine(b *testing.B) {
	g := graph.RMATDefault(400, 3200, 7)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	asg := partition.NewAssignment(1, 1)
	local := partition.NewLocal(g, asg, 0)
	fabric := comm.NewLocal([]comm.Server{comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		panic("single node should not fetch")
	})}, nil)
	defer fabric.Close()
	src := &testSource{local: local, fabric: fabric}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &core.CountSink{}
		eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, sink, core.Config{Threads: 1})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if sink.Count() == 0 {
			b.Fatal("no matches")
		}
	}
}
