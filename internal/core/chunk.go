package core

import (
	"sync/atomic"

	"khuzdul/internal/graph"
)

// chunk is a fixed-capacity batch of extendable embeddings of one tree level
// (paper §4.2). An embedding is stored as its new vertex plus a parent index
// into the previous level's chunk — the hierarchical representation of
// Figure 8 that realizes vertical data sharing: the active edge lists of the
// earlier positions are reached through the parent chain instead of being
// copied or re-fetched.
type chunk struct {
	level  int
	parent []int32          // index into the parent chunk (-1 for roots)
	vertex []graph.VertexID // the vertex this embedding added
	// lists[i] is the edge list of vertex[i] once fetched (nil when the
	// level does not need lists). It may alias the local partition, the
	// static cache, a fetched buffer, or — via horizontal sharing — another
	// embedding's list in the same chunk.
	lists [][]graph.VertexID
	// inter[i] is the raw intersection stored for vertical computation
	// sharing; children reuse it instead of recomputing multi-way
	// intersections. Shared by all children of one Extend call.
	inter [][]graph.VertexID
	// batches partition the chunk's embeddings by data source in circulant
	// order (paper §4.3); extension proceeds batch by batch, waiting for
	// each batch's communication to complete while later batches fetch in
	// the background.
	batches []*fetchBatch
	cap     int
	// size mirrors len(vertex) so workers can poll fullness without taking
	// the flush lock.
	size atomic.Int32
}

// fetchBatch is one circulant communication batch: the embeddings whose
// active edge lists come from one machine (or are already resolved).
type fetchBatch struct {
	idxs  []int32
	next  int // extension progress: idxs[:next] already extended
	ready chan struct{}
	err   error
	// lazyFetch, when set (strict pipelining), performs the batch's fetch
	// synchronously the first time the extender waits on it.
	lazyFetch func()
}

func newFetchBatch() *fetchBatch {
	return &fetchBatch{ready: make(chan struct{})}
}

// closeReady marks the batch's data as available.
func (b *fetchBatch) closeReady() { close(b.ready) }

func newChunk(level, capacity int) *chunk {
	return &chunk{
		level:  level,
		parent: make([]int32, 0, capacity),
		vertex: make([]graph.VertexID, 0, capacity),
		cap:    capacity,
	}
}

// len returns the number of embeddings currently in the chunk.
func (c *chunk) len() int { return int(c.size.Load()) }

// full reports whether the chunk reached its configured capacity. Capacity
// is a soft bound: workers finish the mini-batch they claimed, so a chunk
// can exceed it by a bounded overshoot (threads × mini-batch worth of
// children), preserving the paper's bounded-memory property up to a constant.
func (c *chunk) full() bool { return int(c.size.Load()) >= c.cap }

// reset clears the chunk for reuse at the given level.
func (c *chunk) reset(level int) {
	c.level = level
	c.parent = c.parent[:0]
	c.vertex = c.vertex[:0]
	c.lists = c.lists[:0]
	c.inter = c.inter[:0]
	c.batches = nil
	c.size.Store(0)
}

// append adds one embedding and returns its index.
func (c *chunk) append(parent int32, v graph.VertexID, inter []graph.VertexID) int32 {
	idx := int32(len(c.vertex))
	c.parent = append(c.parent, parent)
	c.vertex = append(c.vertex, v)
	c.lists = append(c.lists, nil)
	c.inter = append(c.inter, inter)
	c.size.Store(int32(len(c.vertex)))
	return idx
}

// child is a freshly generated extendable embedding buffered by a worker
// before being flushed into the next-level chunk.
type child struct {
	parent int32
	vertex graph.VertexID
	inter  []graph.VertexID
}
