package core

import (
	"testing"

	"khuzdul/internal/graph"
)

func TestChunkAppendAndReset(t *testing.T) {
	c := newChunk(1, 4)
	if c.len() != 0 || c.full() {
		t.Fatal("fresh chunk not empty")
	}
	inter := []graph.VertexID{7, 8}
	idx := c.append(3, 42, inter)
	if idx != 0 || c.len() != 1 {
		t.Fatalf("append idx=%d len=%d", idx, c.len())
	}
	if c.vertex[0] != 42 || c.parent[0] != 3 || len(c.inter[0]) != 2 {
		t.Fatal("append stored wrong fields")
	}
	for i := 0; i < 3; i++ {
		c.append(0, graph.VertexID(i), nil)
	}
	if !c.full() {
		t.Fatalf("chunk with %d/%d entries not full", c.len(), c.cap)
	}
	c.reset(2)
	if c.len() != 0 || c.level != 2 || c.full() {
		t.Fatal("reset did not clear the chunk")
	}
	if c.batches != nil {
		t.Fatal("reset kept batches")
	}
}

func TestChunkSoftCapacityOvershoot(t *testing.T) {
	// Capacity is a soft bound: append never fails, full() just turns true.
	c := newChunk(0, 2)
	for i := 0; i < 5; i++ {
		c.append(-1, graph.VertexID(i), nil)
	}
	if c.len() != 5 || !c.full() {
		t.Fatalf("len=%d full=%v", c.len(), c.full())
	}
}

func TestFetchBatchReady(t *testing.T) {
	b := newFetchBatch()
	select {
	case <-b.ready:
		t.Fatal("fresh batch already ready")
	default:
	}
	b.closeReady()
	select {
	case <-b.ready:
	default:
		t.Fatal("closed batch not ready")
	}
}

func TestAllIdxs(t *testing.T) {
	idxs := allIdxs(4)
	if len(idxs) != 4 {
		t.Fatalf("len = %d", len(idxs))
	}
	for i, v := range idxs {
		if int(v) != i {
			t.Fatalf("idxs[%d] = %d", i, v)
		}
	}
	if len(allIdxs(0)) != 0 {
		t.Fatal("allIdxs(0) not empty")
	}
}

func TestHashVertexSpreads(t *testing.T) {
	// The HDS table hash must spread consecutive IDs (the common case for
	// R-MAT hubs) across slots.
	const mask = 255
	buckets := map[uint32]int{}
	for v := 0; v < 1024; v++ {
		buckets[hashVertex(graph.VertexID(v))&mask]++
	}
	// With 1024 keys into 256 slots, a catastrophic hash would leave most
	// slots empty; require at least half occupied.
	if len(buckets) < 128 {
		t.Fatalf("hashVertex hit only %d/256 slots", len(buckets))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ChunkSize <= 0 || cfg.Threads <= 0 || cfg.MiniBatch <= 0 || cfg.FlushSize <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Metrics == nil {
		t.Fatal("nil metrics after defaults")
	}
	// Explicit values survive.
	cfg2 := Config{ChunkSize: 7, Threads: 3, MiniBatch: 5, FlushSize: 9}.withDefaults()
	if cfg2.ChunkSize != 7 || cfg2.Threads != 3 || cfg2.MiniBatch != 5 || cfg2.FlushSize != 9 {
		t.Fatalf("explicit config overridden: %+v", cfg2)
	}
}
