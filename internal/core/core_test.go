package core_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"khuzdul/internal/cache"
	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// testSource implements core.DataSource over a partitioned graph and a
// fabric. It is a miniature of what internal/cluster provides.
type testSource struct {
	local  *partition.Local
	fabric comm.Fabric
	met    *metrics.Node
}

func (s *testSource) Classify(v graph.VertexID) (core.Locality, int) {
	owner := s.local.Assignment().Owner(v)
	if owner == s.local.Node() {
		return core.LocalityLocal, owner
	}
	return core.LocalityRemote, owner
}

func (s *testSource) LocalList(v graph.VertexID) []graph.VertexID {
	return s.local.MustNeighbors(v)
}

func (s *testSource) CrossSocketList(v graph.VertexID) []graph.VertexID {
	panic("testSource has one socket")
}

func (s *testSource) Fetch(owner int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	return s.fabric.Fetch(s.local.Node(), owner, ids)
}

func (s *testSource) NumNodes() int                      { return s.local.Assignment().NumNodes() }
func (s *testSource) LocalNode() int                     { return s.local.Node() }
func (s *testSource) Roots() []graph.VertexID            { return s.local.OwnedVertices() }
func (s *testSource) Label(v graph.VertexID) graph.Label { return s.local.Label(v) }

// runCluster executes one engine per node over a local fabric and returns
// the total match count and the metrics.
func runCluster(t *testing.T, g *graph.Graph, pl *plan.Plan, numNodes int, cfg core.Config) (uint64, *metrics.Cluster) {
	t.Helper()
	asg := partition.NewAssignment(numNodes, 1)
	met := metrics.NewCluster(numNodes)
	servers := make([]comm.Server, numNodes)
	locals := make([]*partition.Local, numNodes)
	for node := 0; node < numNodes; node++ {
		locals[node] = partition.NewLocal(g, asg, node)
		l := locals[node]
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = l.MustNeighbors(id)
			}
			return out
		})
	}
	fabric := comm.NewLocal(servers, met)
	defer fabric.Close()

	var labelOf plan.LabelFunc
	if g.Labeled() {
		labelOf = g.Label
	}
	var total uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, numNodes)
	for node := 0; node < numNodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			src := &testSource{local: locals[node], fabric: fabric, met: met.Nodes[node]}
			sink := &core.CountSink{}
			c := cfg
			c.Metrics = met.Nodes[node]
			eng := core.NewEngine(core.NewPlanExtender(pl, labelOf), src, sink, c)
			errs[node] = eng.Run()
			mu.Lock()
			total += sink.Count()
			mu.Unlock()
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	return total, met
}

func TestEngineSingleNodeMatchesPlan(t *testing.T) {
	g := graph.RMATDefault(120, 600, 7)
	for _, pat := range []*pattern.Pattern{
		pattern.Triangle(), pattern.Clique(4), pattern.CycleP(4),
		pattern.PathP(4), pattern.House(), pattern.Clique(5),
	} {
		pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleGraphPi})
		want := plan.CountGraph(pl, g)
		got, _ := runCluster(t, g, pl, 1, core.Config{Threads: 1})
		if got != want {
			t.Errorf("%v: engine %d, plan executor %d", pat, got, want)
		}
	}
}

func TestEngineMultiNodeMatchesBruteForce(t *testing.T) {
	g := graph.RMATDefault(90, 450, 11)
	for _, nodes := range []int{2, 3, 5} {
		for _, pat := range []*pattern.Pattern{
			pattern.Triangle(), pattern.Clique(4), pattern.CycleP(4), pattern.TailedTriangle(),
		} {
			pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleGraphPi})
			want := plan.BruteForceCount(g, pat, false)
			got, met := runCluster(t, g, pl, nodes, core.Config{Threads: 2, HDS: true})
			if got != want {
				t.Errorf("%v on %d nodes: engine %d, brute force %d", pat, nodes, got, want)
			}
			if nodes > 1 && met.Summarize().BytesSent == 0 {
				t.Errorf("%v on %d nodes: no network traffic recorded", pat, nodes)
			}
		}
	}
}

func TestEngineInducedMatching(t *testing.T) {
	g := graph.RMATDefault(70, 350, 13)
	for _, pat := range []*pattern.Pattern{pattern.CycleP(4), pattern.PathP(4), pattern.StarP(4)} {
		pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleAutomine, Induced: true})
		want := plan.BruteForceCount(g, pat, true)
		got, _ := runCluster(t, g, pl, 3, core.Config{Threads: 2})
		if got != want {
			t.Errorf("induced %v: engine %d, brute force %d", pat, got, want)
		}
	}
}

func TestEngineTinyChunksForcePauseResume(t *testing.T) {
	// Chunk capacity far below the embedding population exercises the
	// BFS-DFS pause/resume machinery.
	g := graph.RMATDefault(80, 500, 3)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	want := plan.CountGraph(pl, g)
	for _, chunkSize := range []int{1, 2, 7, 64} {
		got, _ := runCluster(t, g, pl, 2, core.Config{ChunkSize: chunkSize, Threads: 1})
		if got != want {
			t.Errorf("chunk=%d: got %d, want %d", chunkSize, got, want)
		}
	}
}

func TestEngineHDSCorrectAndSaves(t *testing.T) {
	g := graph.RMATDefault(200, 1400, 5)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	want := plan.CountGraph(pl, g)

	gotOff, metOff := runCluster(t, g, pl, 4, core.Config{HDS: false, Threads: 2})
	gotOn, metOn := runCluster(t, g, pl, 4, core.Config{HDS: true, Threads: 2})
	if gotOff != want || gotOn != want {
		t.Fatalf("HDS changed counts: off=%d on=%d want=%d", gotOff, gotOn, want)
	}
	off, on := metOff.Summarize(), metOn.Summarize()
	if on.HDSHits == 0 {
		t.Fatal("HDS recorded no hits on a skewed graph")
	}
	if on.BytesSent >= off.BytesSent {
		t.Fatalf("HDS did not reduce traffic: on=%d off=%d", on.BytesSent, off.BytesSent)
	}
}

func TestEngineStaticCacheCorrectAndSaves(t *testing.T) {
	g := graph.RMATDefault(200, 1400, 9)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{Style: plan.StyleGraphPi})
	want := plan.CountGraph(pl, g)

	gotOff, metOff := runCluster(t, g, pl, 4, core.Config{Threads: 2})
	// One shared cache would be wrong (caches are per machine); runCluster
	// passes one Config to all nodes, so use a fresh runCluster variant via
	// per-node caches below in cluster tests. Here a single node's cache
	// still must not change counts.
	c := cache.NewStatic(1<<20, 2)
	gotOn, metOn := runCluster(t, g, pl, 4, core.Config{Threads: 2, Cache: c})
	if gotOff != want || gotOn != want {
		t.Fatalf("cache changed counts: off=%d on=%d want=%d", gotOff, gotOn, want)
	}
	off, on := metOff.Summarize(), metOn.Summarize()
	if on.CacheHits == 0 {
		t.Fatal("cache recorded no hits")
	}
	if on.BytesSent >= off.BytesSent {
		t.Fatalf("cache did not reduce traffic: on=%d off=%d", on.BytesSent, off.BytesSent)
	}
}

func TestEngineManyThreads(t *testing.T) {
	g := graph.RMATDefault(150, 900, 15)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	want := plan.CountGraph(pl, g)
	for _, threads := range []int{2, 4, 8} {
		got, _ := runCluster(t, g, pl, 2, core.Config{Threads: threads, HDS: true})
		if got != want {
			t.Errorf("threads=%d: got %d, want %d", threads, got, want)
		}
	}
}

// embSink collects embeddings for verification.
type embSink struct {
	mu   sync.Mutex
	embs [][]graph.VertexID
}

func (s *embSink) OnMatch(emb []graph.VertexID) {
	cp := append([]graph.VertexID(nil), emb...)
	s.mu.Lock()
	s.embs = append(s.embs, cp)
	s.mu.Unlock()
}

func (s *embSink) CountOnly() bool { return false }

func TestEngineEmitsValidEmbeddings(t *testing.T) {
	g := graph.RMATDefault(60, 300, 19)
	pat := pattern.Triangle()
	pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleGraphPi})
	asg := partition.NewAssignment(1, 1)
	local := partition.NewLocal(g, asg, 0)
	fabric := comm.NewLocal([]comm.Server{comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		panic("single node should not fetch")
	})}, nil)
	src := &testSource{local: local, fabric: fabric}
	sink := &embSink{}
	eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, sink, core.Config{Threads: 2})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := plan.CountGraph(pl, g)
	if uint64(len(sink.embs)) != want {
		t.Fatalf("emitted %d embeddings, want %d", len(sink.embs), want)
	}
	for _, emb := range sink.embs {
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				if !g.HasEdge(emb[a], emb[b]) {
					t.Fatalf("emitted non-triangle %v", emb)
				}
			}
		}
	}
}

// TestEngineCancelMidRange pins the cancelpoll fix: cancellation raised
// after exploration of a range has begun must still stop the engine (process
// polls Config.Canceled at batch boundaries). The old engine only checked at
// range boundaries, so a single-range run could never be canceled.
func TestEngineCancelMidRange(t *testing.T) {
	g := graph.RMATDefault(120, 700, 7)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	asg := partition.NewAssignment(1, 1)
	local := partition.NewLocal(g, asg, 0)
	fabric := comm.NewLocal([]comm.Server{comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
		panic("single node should not fetch")
	})}, nil)
	defer fabric.Close()
	src := &testSource{local: local, fabric: fabric}
	// The first poll happens at Run's range boundary and reports false; every
	// later poll — all of them inside process — reports true. ChunkSize far
	// above the root count keeps the whole run in one range, so only the
	// mid-range polls can observe the cancellation.
	var calls atomic.Int64
	cfg := core.Config{Threads: 1, ChunkSize: 1 << 20, Canceled: func() bool {
		return calls.Add(1) > 1
	}}
	eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, &core.CountSink{}, cfg)
	if err := eng.Run(); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
}

func TestEngineLabeledPattern(t *testing.T) {
	g0 := graph.RMATDefault(100, 500, 23)
	g, err := g0.WithLabels(graph.RandomLabels(100, 3, 42))
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.PathP(3).WithLabels([]graph.Label{0, 1, 2})
	pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleGraphPi})
	want := plan.BruteForceCount(g, pat, false)
	got, _ := runCluster(t, g, pl, 3, core.Config{Threads: 2})
	if got != want {
		t.Fatalf("labeled path: engine %d, brute force %d", got, want)
	}
}

func TestEngineMetricsPopulated(t *testing.T) {
	g := graph.RMATDefault(150, 900, 31)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	_, met := runCluster(t, g, pl, 3, core.Config{Threads: 2, HDS: true})
	s := met.Summarize()
	if s.Extensions == 0 {
		t.Error("no extensions recorded")
	}
	if s.Fetches == 0 {
		t.Error("no fetches recorded")
	}
	if s.Matches == 0 {
		t.Error("no matches recorded")
	}
	if s.Breakdown.Compute == 0 {
		t.Error("no compute time recorded")
	}
}

func TestEngineVCSOffStillCorrect(t *testing.T) {
	g := graph.RMATDefault(100, 600, 37)
	for _, disable := range []bool{false, true} {
		pl := plan.MustCompile(pattern.Clique(5), plan.Options{Style: plan.StyleGraphPi, DisableVCS: disable})
		want := plan.CountGraph(pl, g)
		got, _ := runCluster(t, g, pl, 3, core.Config{Threads: 2})
		if got != want {
			t.Errorf("VCS disable=%v: got %d, want %d", disable, got, want)
		}
	}
}

func TestEngineStrictPipelineCorrect(t *testing.T) {
	g := graph.RMATDefault(150, 900, 61)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	want := plan.CountGraph(pl, g)
	got, met := runCluster(t, g, pl, 4, core.Config{Threads: 2, StrictPipeline: true, HDS: true})
	if got != want {
		t.Fatalf("strict pipeline: %d, want %d", got, want)
	}
	if met.Summarize().BytesSent == 0 {
		t.Fatal("no traffic under strict pipelining")
	}
}

func TestPropertyEngineMatchesBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(40)
		g := graph.Uniform(n, uint64(rng.Intn(5*n)), rng.Int63())
		pats := []*pattern.Pattern{
			pattern.Triangle(), pattern.CycleP(4), pattern.Clique(4), pattern.PathP(4),
		}
		pat := pats[rng.Intn(len(pats))]
		induced := rng.Intn(2) == 0
		nodes := 1 + rng.Intn(4)
		chunk := 1 << uint(rng.Intn(8))
		pl := plan.MustCompile(pat, plan.Options{Style: plan.StyleGraphPi, Induced: induced})
		want := plan.BruteForceCount(g, pat, induced)
		var got uint64
		tt := &testing.T{}
		got, _ = runCluster(tt, g, pl, nodes, core.Config{Threads: 2, ChunkSize: chunk, HDS: rng.Intn(2) == 0})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
