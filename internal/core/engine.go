package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/cache"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/plan"
	"khuzdul/internal/setops"
)

// Config tunes one engine instance (one socket of one machine).
type Config struct {
	// ChunkSize is the soft capacity of a chunk in embeddings (paper §4.2;
	// the paper sizes chunks in bytes, this implementation in embeddings —
	// the bounded-memory argument is identical). Default 1<<15.
	ChunkSize int
	// Threads is the number of compute workers (paper §6 uses a 3:1
	// compute:communication ratio; communication here is goroutines).
	Threads int
	// MiniBatch is the work-distribution unit in embeddings (paper: 64).
	MiniBatch int
	// FlushSize is the per-worker child buffer flushed into the next-level
	// chunk under one lock acquisition (paper: half the L1-D cache).
	FlushSize int
	// HDS enables horizontal data sharing within a chunk (§5.2).
	HDS bool
	// StrictPipeline makes each circulant batch's fetch start only when the
	// extender reaches that batch, instead of firing all fetches at chunk
	// seal time. The paper explicitly rejects strict pipelining ("the
	// computation does not stall communication", §4.3); this knob exists to
	// measure what that choice buys (ablation experiment).
	StrictPipeline bool
	// HubThreshold, when nonzero, overrides the plan's compiled hub-vertex
	// degree threshold for the bitmap intersection kernel on this engine's
	// workers (set it above the graph's maximum degree to disable the
	// kernel). 0 keeps the compiled value. The override lands on per-worker
	// scratch, never on the shared plan.
	HubThreshold uint32
	// Cache is the edge-list cache consulted before remote fetches; nil
	// disables caching (§5.3, Figure 16/17 ablations).
	Cache cache.Cache
	// Metrics receives counters; nil disables metric collection.
	Metrics *metrics.Node
	// OnRangeDone, when set, is called after each contiguous root range
	// [start, end) (indices into DataSource.Roots()) has been explored to
	// completion — every match from those embedding trees has reached the
	// sink. Root ranges complete strictly in order, so the latest end is a
	// checkpoint: on failure, only roots at or past it need re-execution
	// (the chunk lifecycle of §3.3 makes lost work re-derivable from source
	// vertices). Nil disables checkpointing at zero cost.
	OnRangeDone func(start, end int)
	// Canceled, when set, is polled between root ranges; when it returns true
	// Run stops before starting the next range and returns ErrCanceled. The
	// check sits only at range boundaries, so a cancelled engine always
	// leaves a clean prefix of fully-explored ranges behind — the property
	// straggler speculation relies on to reconcile counts exactly.
	Canceled func() bool
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 1 << 15
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MiniBatch <= 0 {
		c.MiniBatch = 64
	}
	if c.FlushSize <= 0 {
		c.FlushSize = 1024
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Node{}
	}
	return c
}

// BulkSink is implemented by sinks that can absorb match counts without
// materialized embeddings (the counting fast path).
type BulkSink interface {
	Sink
	Add(n uint64)
}

// Engine executes one client system's EXTEND function over one partition
// with the BFS-DFS hybrid exploration. Create one per socket per machine.
type Engine struct {
	ext       Extender
	src       DataSource
	sink      Sink
	bulk      BulkSink // non-nil when sink supports bulk counting
	cfg       Config
	met       *metrics.Node
	k         int
	countOnly bool

	path    []*chunk // current chunk per level along the DFS path
	free    []*chunk
	workers []*workerCtx
	flushMu sync.Mutex
	// live tracks currently allocated extendable embeddings across all live
	// chunks, feeding the PeakEmbeddings metric — the measurable form of
	// the paper's bounded-memory claim (§4.2).
	live atomic.Int64
}

type workerCtx struct {
	scratch *plan.Scratch
	anc     []int32
	emb     []graph.VertexID
	lists   [][]graph.VertexID
	buf     []child
	matches uint64
	exts    uint64
	// vertHits counts active lists resolved through the parent chain —
	// vertical data sharing (§3.1): each extension at level L reuses L
	// already-fetched lists instead of re-fetching them.
	vertHits uint64
	// getListFn is the method value of getList, created once here so that
	// extendOne does not allocate a fresh closure per embedding.
	getListFn func(pos int) []graph.VertexID
	// arena is bump storage for the raw-intersection copies that vertical
	// candidate sharing stores on child embeddings. Copies are carved out of
	// one large block instead of one heap allocation per embedding; a full
	// block is abandoned to the garbage collector (chunks may still reference
	// its slices) and replaced.
	arena []graph.VertexID
}

func (w *workerCtx) getList(pos int) []graph.VertexID { return w.lists[pos] }

// arenaBlock is the worker arena's block capacity: large enough to amortize
// refills over thousands of typical raw intersections, small enough that an
// abandoned tail wastes little.
const arenaBlock = 1 << 14

// copyInter copies a raw intersection into the worker's arena and returns a
// full-capacity-clipped slice of it, so later appends by the arena cannot
// write through.
func (w *workerCtx) copyInter(raw []graph.VertexID) []graph.VertexID {
	if len(raw) == 0 {
		return nil
	}
	if len(w.arena)+len(raw) > cap(w.arena) {
		n := arenaBlock
		if len(raw) > n {
			n = len(raw)
		}
		//khuzdulvet:ignore hotalloc amortized block refill, not a per-embedding allocation
		w.arena = make([]graph.VertexID, 0, n)
	}
	start := len(w.arena)
	w.arena = append(w.arena, raw...)
	return w.arena[start:len(w.arena):len(w.arena)]
}

// NewEngine assembles an engine from a client system's extender, a machine's
// data source and an application sink.
func NewEngine(ext Extender, src DataSource, sink Sink, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		ext:  ext,
		src:  src,
		sink: sink,
		cfg:  cfg,
		met:  cfg.Metrics,
		k:    ext.K(),
	}
	if b, ok := sink.(BulkSink); ok && sink.CountOnly() {
		e.bulk = b
		e.countOnly = true
	}
	e.path = make([]*chunk, e.k)
	e.workers = make([]*workerCtx, cfg.Threads)
	for i := range e.workers {
		w := &workerCtx{
			scratch: ext.NewScratch(),
			anc:     make([]int32, e.k),
			emb:     make([]graph.VertexID, e.k),
			lists:   make([][]graph.VertexID, e.k),
			buf:     make([]child, 0, cfg.FlushSize),
		}
		w.getListFn = w.getList
		if cfg.HubThreshold > 0 {
			w.scratch.SetHubThreshold(cfg.HubThreshold)
		}
		e.workers[i] = w
	}
	return e
}

// ErrCanceled is returned by Run when Config.Canceled reports true at a
// range or batch boundary. Every range completed before the cancellation has
// fully reached the sink; the range in flight may have partially counted, so
// callers must discard everything after the last committed range (exactly
// what the recovery trackers' (prefix, committed) checkpoints do).
var ErrCanceled = errors.New("core: engine canceled")

// checkCanceled polls Config.Canceled. process calls it at every batch
// boundary so a canceled engine — a losing speculative copy, a shutdown —
// releases its memory and its fetches promptly instead of exploring the rest
// of the chunk tree.
func (e *Engine) checkCanceled() error {
	if e.cfg.Canceled != nil && e.cfg.Canceled() {
		return ErrCanceled
	}
	return nil
}

// Run explores the embedding trees of every root this engine owns. It
// blocks until exploration completes and returns the first fetch error.
//
//khuzdulvet:longrun whole-partition exploration; must observe Config.Canceled
func (e *Engine) Run() error {
	roots := e.src.Roots()
	for start := 0; start < len(roots); start += e.cfg.ChunkSize {
		if e.cfg.Canceled != nil && e.cfg.Canceled() {
			return ErrCanceled
		}
		end := start + e.cfg.ChunkSize
		if end > len(roots) {
			end = len(roots)
		}
		ch := e.rootChunk(roots[start:end])
		if ch.len() == 0 {
			e.putChunk(ch)
			if e.cfg.OnRangeDone != nil {
				e.cfg.OnRangeDone(start, end)
			}
			continue
		}
		e.path[0] = ch
		err := e.process(ch)
		e.putChunk(ch)
		if err != nil {
			return err
		}
		if e.cfg.OnRangeDone != nil {
			e.cfg.OnRangeDone(start, end)
		}
	}
	return nil
}

// rootChunk builds a level-0 chunk from a batch of roots. Root edge lists
// are always local: a machine explores the trees of its own partition.
func (e *Engine) rootChunk(roots []graph.VertexID) *chunk {
	ch := e.getChunk(0)
	for _, v := range roots {
		if e.ext.RootOK(v) {
			ch.append(-1, v, nil)
		}
	}
	if e.ext.NeedsList(0) {
		for i, v := range ch.vertex {
			ch.lists[i] = e.src.LocalList(v)
		}
	}
	b := newFetchBatch()
	b.idxs = make([]int32, ch.len())
	for i := range b.idxs {
		b.idxs[i] = int32(i)
	}
	b.closeReady()
	ch.batches = []*fetchBatch{b}
	e.met.RecordPeakEmbeddings(uint64(e.live.Add(int64(ch.len()))))
	return ch
}

// process extends every embedding of ch to completion: DFS among chunks,
// BFS within a chunk (paper Figure 7). ch's communication batches must
// already be prepared and its entry installed in e.path.
func (e *Engine) process(ch *chunk) error {
	final := ch.level == e.k-2
	if final {
		for _, b := range ch.batches {
			if err := e.checkCanceled(); err != nil {
				return err
			}
			if err := e.waitBatch(b); err != nil {
				return err
			}
			e.extendRound(ch, b, nil, true)
		}
		return nil
	}
	bi := 0
	for bi < len(ch.batches) {
		next := e.getChunk(ch.level + 1)
		for bi < len(ch.batches) && !next.full() {
			if err := e.checkCanceled(); err != nil {
				e.putChunk(next)
				return err
			}
			b := ch.batches[bi]
			if err := e.waitBatch(b); err != nil {
				e.putChunk(next)
				return err
			}
			e.extendRound(ch, b, next, false)
			if b.next >= len(b.idxs) {
				bi++
			}
		}
		if next.len() > 0 {
			e.prepare(next)
			e.path[next.level] = next
			if err := e.process(next); err != nil {
				e.putChunk(next)
				return err
			}
		}
		// Backtrack: all of next's descendants are complete, so its memory
		// is released (the zombie → terminated transition of Figure 6,
		// bottom-up deallocation).
		e.putChunk(next)
	}
	return nil
}

// waitBatch blocks until a batch's communication completes, accounting the
// wait as network time. Under strict pipelining the fetch itself runs here.
func (e *Engine) waitBatch(b *fetchBatch) error {
	if f := b.lazyFetch; f != nil {
		b.lazyFetch = nil
		t0 := time.Now()
		f()
		e.met.AddNetwork(time.Since(t0))
		return b.err
	}
	select {
	case <-b.ready:
	default:
		t0 := time.Now()
		<-b.ready
		e.met.AddNetwork(time.Since(t0))
	}
	return b.err
}

// extendRound extends the unprocessed embeddings of batch b, appending
// children into next (or counting matches when final). It stops early when
// next fills up, recording progress in b.next.
func (e *Engine) extendRound(ch *chunk, b *fetchBatch, next *chunk, final bool) {
	rem := b.idxs[b.next:]
	if len(rem) == 0 {
		return
	}
	mini := e.cfg.MiniBatch
	nWorkers := (len(rem) + mini - 1) / mini
	if nWorkers > e.cfg.Threads {
		nWorkers = e.cfg.Threads
	}
	var cursor atomic.Int64
	work := func(w *workerCtx) {
		t0 := time.Now()
		for {
			if next != nil && next.full() {
				break
			}
			m := int(cursor.Add(1)) - 1
			start := m * mini
			if start >= len(rem) {
				break
			}
			end := start + mini
			if end > len(rem) {
				end = len(rem)
			}
			for _, idx := range rem[start:end] {
				e.extendOne(w, ch, idx, next, final)
			}
		}
		if next != nil {
			e.flush(w, next)
		}
		e.met.AddCompute(time.Since(t0))
	}
	if nWorkers <= 1 {
		work(e.workers[0])
	} else {
		var wg sync.WaitGroup
		for i := 0; i < nWorkers; i++ {
			wg.Add(1)
			go func(w *workerCtx) {
				defer wg.Done()
				work(w)
			}(e.workers[i])
		}
		wg.Wait()
	}
	consumed := int(cursor.Load()) * mini
	if consumed > len(rem) {
		consumed = len(rem)
	}
	b.next += consumed
	// Drain per-worker counters.
	for _, w := range e.workers {
		if w.matches > 0 {
			e.met.Matches.Add(w.matches)
			if e.bulk != nil {
				e.bulk.Add(w.matches)
			}
			w.matches = 0
		}
		if w.exts > 0 {
			e.met.Extensions.Add(w.exts)
			w.exts = 0
		}
		if w.vertHits > 0 {
			e.met.VerticalHits.Add(w.vertHits)
			w.vertHits = 0
		}
		kc := w.scratch.KernelCounts()
		if kc[setops.KernelMerge] > 0 {
			e.met.KernelMerge.Add(kc[setops.KernelMerge])
			kc[setops.KernelMerge] = 0
		}
		if kc[setops.KernelGallop] > 0 {
			e.met.KernelGallop.Add(kc[setops.KernelGallop])
			kc[setops.KernelGallop] = 0
		}
		if kc[setops.KernelBitmap] > 0 {
			e.met.KernelBitmap.Add(kc[setops.KernelBitmap])
			kc[setops.KernelBitmap] = 0
		}
		if kc[setops.KernelPivot] > 0 {
			e.met.KernelPivot.Add(kc[setops.KernelPivot])
			kc[setops.KernelPivot] = 0
		}
	}
}

// extendOne performs one fine-grained task: extend a single extendable
// embedding by one vertex (paper §3.1). Active edge lists of earlier
// positions are resolved through the parent chain — vertical data sharing.
//
//khuzdulvet:hotpath per-embedding driver around Extend
func (e *Engine) extendOne(w *workerCtx, ch *chunk, idx int32, next *chunk, final bool) {
	level := ch.level
	w.anc[level] = idx
	for l := level; l > 0; l-- {
		w.anc[l-1] = e.path[l].parent[w.anc[l]]
	}
	for l := 0; l <= level; l++ {
		c := e.path[l]
		w.emb[l] = c.vertex[w.anc[l]]
		w.lists[l] = c.lists[w.anc[l]]
	}
	w.exts++
	w.vertHits += uint64(level)
	cands, raw := e.ext.Extend(w.scratch, level+1, w.emb[:level+1], w.getListFn, ch.inter[idx])
	if final {
		if e.countOnly {
			w.matches += uint64(len(cands))
			return
		}
		for _, v := range cands {
			w.emb[level+1] = v
			e.sink.OnMatch(w.emb[:e.k])
		}
		w.matches += uint64(len(cands))
		return
	}
	var interCopy []graph.VertexID
	if e.ext.StoreInter(level+1) && len(cands) > 0 {
		interCopy = w.copyInter(raw)
	}
	for _, v := range cands {
		w.buf = append(w.buf, child{parent: idx, vertex: v, inter: interCopy})
	}
	if len(w.buf) >= e.cfg.FlushSize {
		e.flush(w, next)
	}
}

// flush moves a worker's buffered children into the next-level chunk under
// one lock acquisition (paper §6: per-thread buffers to avoid contention).
func (e *Engine) flush(w *workerCtx, next *chunk) {
	if len(w.buf) == 0 {
		return
	}
	e.flushMu.Lock()
	for _, c := range w.buf {
		next.append(c.parent, c.vertex, c.inter)
	}
	e.flushMu.Unlock()
	e.met.RecordPeakEmbeddings(uint64(e.live.Add(int64(len(w.buf)))))
	w.buf = w.buf[:0]
}

func (e *Engine) getChunk(level int) *chunk {
	if n := len(e.free); n > 0 {
		ch := e.free[n-1]
		e.free = e.free[:n-1]
		ch.reset(level)
		return ch
	}
	return newChunk(level, e.cfg.ChunkSize)
}

func (e *Engine) putChunk(ch *chunk) {
	e.live.Add(-int64(ch.len()))
	e.free = append(e.free, ch)
}

// Metrics returns the engine's metrics node.
func (e *Engine) Metrics() *metrics.Node { return e.met }

// String describes the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("engine{k=%d chunk=%d threads=%d hds=%v cache=%v}",
		e.k, e.cfg.ChunkSize, e.cfg.Threads, e.cfg.HDS, e.cfg.Cache != nil)
}
