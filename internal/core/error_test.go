package core_test

import (
	"errors"
	"strings"
	"testing"

	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// failingSource serves local data but fails every remote fetch, to exercise
// the engine's error propagation through batches and process recursion.
type failingSource struct {
	g   *graph.Graph
	err error
}

func (s *failingSource) Classify(v graph.VertexID) (core.Locality, int) {
	if v%2 == 0 {
		return core.LocalityLocal, 0
	}
	return core.LocalityRemote, 1
}

func (s *failingSource) LocalList(v graph.VertexID) []graph.VertexID { return s.g.Neighbors(v) }

func (s *failingSource) CrossSocketList(v graph.VertexID) []graph.VertexID {
	panic("no sockets")
}

func (s *failingSource) Fetch(owner int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	return nil, s.err
}

func (s *failingSource) NumNodes() int  { return 2 }
func (s *failingSource) LocalNode() int { return 0 }

func (s *failingSource) Roots() []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < s.g.NumVertices(); v += 2 {
		out = append(out, graph.VertexID(v))
	}
	return out
}

func (s *failingSource) Label(v graph.VertexID) graph.Label { return 0 }

func TestEngineSurfacesFetchErrors(t *testing.T) {
	g := graph.RMATDefault(100, 600, 77)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	wantErr := errors.New("fabric down")
	for _, strict := range []bool{false, true} {
		src := &failingSource{g: g, err: wantErr}
		eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, &core.CountSink{},
			core.Config{Threads: 2, StrictPipeline: strict})
		err := eng.Run()
		if err == nil {
			t.Fatalf("strict=%v: engine swallowed the fetch error", strict)
		}
		if !errors.Is(err, wantErr) && !strings.Contains(err.Error(), "fabric down") {
			t.Fatalf("strict=%v: unexpected error %v", strict, err)
		}
	}
}

func TestEngineStringer(t *testing.T) {
	g := graph.Path(4)
	pl := plan.MustCompile(pattern.PathP(2), plan.Options{})
	src := &failingSource{g: g}
	eng := core.NewEngine(core.NewPlanExtender(pl, nil), src, &core.CountSink{}, core.Config{})
	if eng.String() == "" {
		t.Fatal("empty engine string")
	}
	if eng.Metrics() == nil {
		t.Fatal("nil metrics")
	}
}
