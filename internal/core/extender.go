// Package core is the Khuzdul distributed execution engine — the paper's
// primary contribution. It realizes the extendable-embedding abstraction:
// fine-grained tasks, each extending one partially-constructed embedding by
// one vertex given its active edge lists, scheduled with a BFS-DFS hybrid
// over fixed-size chunks (§4), circulant communication batching (§4.3), and
// three forms of GPM-specific data reuse (§5): vertical sharing through
// parent pointers, horizontal sharing within a chunk, and the static cache.
//
// The engine is client-agnostic: client GPM systems (internal/automine,
// internal/graphpi) supply an Extender — the paper's EXTEND function — and a
// DataSource supplies partitioned graph data.
package core

import (
	"khuzdul/internal/graph"
	"khuzdul/internal/plan"
)

// Extender is the EXTEND interface between a client GPM system and the
// Khuzdul engine (paper §3.2). An extender knows, for each level of the
// embedding tree, how to turn an extendable embedding into its children; the
// engine owns scheduling, communication, and memory.
type Extender interface {
	// K returns the pattern size (number of levels).
	K() int
	// NeedsList reports whether the vertex matched at the given level is an
	// active vertex of a deeper level, i.e. its edge list must be fetched
	// into the extendable embedding.
	NeedsList(level int) bool
	// StoreInter reports whether the raw intersection computed when matching
	// the given level should be stored for reuse by the next level (the
	// paper's vertical computation sharing).
	StoreInter(level int) bool
	// ListPositions returns the positions whose edge lists Extend reads when
	// matching the given level.
	ListPositions(level int) []int
	// Extend computes the candidate vertices for matching position level,
	// given the embedding's earlier vertices and an accessor for the active
	// edge lists. parentRaw is the intersection stored by the parent level
	// (nil when absent). It returns the candidates and the raw intersection
	// to store when StoreInter(level) is true. Both returned slices may
	// alias scratch storage owned by s.
	Extend(s *plan.Scratch, level int, emb []graph.VertexID, getList func(pos int) []graph.VertexID, parentRaw []graph.VertexID) (cands, raw []graph.VertexID)
	// RootOK reports whether a vertex may occupy position 0.
	RootOK(v graph.VertexID) bool
	// NewScratch allocates per-worker scratch storage.
	NewScratch() *plan.Scratch
}

// PlanExtender adapts a compiled plan to the Extender interface. LabelOf
// and EdgeLabelOf may be nil for graphs without the corresponding labels.
type PlanExtender struct {
	Plan    *plan.Plan
	LabelOf plan.LabelFunc
	// EdgeLabelOf filters candidates by edge label for edge-labeled
	// patterns. Labels are treated as replicated metadata in this
	// simulation; a production deployment would ship them alongside
	// fetched edge lists (one extra label word per edge on the wire).
	EdgeLabelOf plan.EdgeLabelFunc
}

// NewPlanExtender wraps a plan as an Extender.
func NewPlanExtender(p *plan.Plan, labelOf plan.LabelFunc) *PlanExtender {
	return &PlanExtender{Plan: p, LabelOf: labelOf}
}

// K implements Extender.
func (e *PlanExtender) K() int { return e.Plan.K }

// NeedsList implements Extender.
func (e *PlanExtender) NeedsList(level int) bool { return e.Plan.Levels[level].NeedsList }

// StoreInter implements Extender.
func (e *PlanExtender) StoreInter(level int) bool { return e.Plan.Levels[level].StoreInter }

// ListPositions implements Extender.
func (e *PlanExtender) ListPositions(level int) []int {
	lv := &e.Plan.Levels[level]
	if !e.Plan.Induced || len(lv.Subtract) == 0 {
		return lv.Intersect
	}
	out := make([]int, 0, len(lv.Intersect)+len(lv.Subtract))
	out = append(out, lv.Intersect...)
	out = append(out, lv.Subtract...)
	return out
}

// Extend implements Extender. It runs once per extendable embedding, so it
// is the hottest code in the repository.
//
//khuzdulvet:hotpath per-embedding extension kernel
func (e *PlanExtender) Extend(s *plan.Scratch, level int, emb []graph.VertexID, getList func(pos int) []graph.VertexID, parentRaw []graph.VertexID) (cands, raw []graph.VertexID) {
	raw = e.Plan.RawIntersect(s, level, emb, getList, parentRaw)
	cands = e.Plan.Candidates(s, level, emb, raw, getList, e.LabelOf)
	cands = e.Plan.FilterEdgeLabels(level, emb, cands, e.EdgeLabelOf)
	return cands, raw
}

// RootOK implements Extender.
func (e *PlanExtender) RootOK(v graph.VertexID) bool {
	if e.LabelOf == nil || !e.Plan.Labeled() {
		return true
	}
	return e.LabelOf(v) == e.Plan.PosLabel(0)
}

// NewScratch implements Extender.
func (e *PlanExtender) NewScratch() *plan.Scratch { return plan.NewScratch(e.Plan) }
