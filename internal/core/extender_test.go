package core_test

import (
	"testing"

	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
	"khuzdul/internal/setops"
)

// handTriangle is a hand-written EXTEND function for triangle counting,
// written the way the paper's Figure 5 shows a GPM system developer would:
// branch on the embedding's current size, extend via edge-list access and
// intersection, mark which vertices stay active. It bypasses the plan
// compiler entirely, demonstrating that the engine is client-agnostic and
// the Extender interface is the sole integration point.
type handTriangle struct{}

func (handTriangle) K() int { return 3 }

// Position 0 and 1 are active (their lists feed the final intersection);
// position 2 is the last vertex and needs nothing.
func (handTriangle) NeedsList(level int) bool { return level <= 1 }

func (handTriangle) StoreInter(level int) bool { return false }

func (handTriangle) ListPositions(level int) []int {
	if level == 1 {
		return []int{0}
	}
	return []int{0, 1}
}

func (handTriangle) Extend(s *plan.Scratch, level int, emb []graph.VertexID,
	getList func(int) []graph.VertexID, parentRaw []graph.VertexID) (cands, raw []graph.VertexID) {
	switch level {
	case 1:
		// e' contains one vertex: every neighbor with a larger ID extends it
		// (v0 < v1 breaks the first symmetry).
		n0 := getList(0)
		out := make([]graph.VertexID, 0, len(n0))
		for _, v := range n0 {
			if v > emb[0] {
				out = append(out, v)
			}
		}
		return out, out
	case 2:
		// e' contains two vertices: candidates are N(v0) ∩ N(v1) above v1.
		out := setops.IntersectBounded(nil, getList(0), getList(1), emb[1], ^graph.VertexID(0))
		return out, out
	default:
		panic("handTriangle: bad level")
	}
}

func (handTriangle) RootOK(v graph.VertexID) bool { return true }

func (handTriangle) NewScratch() *plan.Scratch {
	return plan.NewScratch(plan.MustCompile(pattern.Triangle(), plan.Options{}))
}

func TestHandWrittenExtendFunction(t *testing.T) {
	g := graph.RMATDefault(150, 800, 27)
	want := plan.BruteForceCount(g, pattern.Triangle(), false)

	numNodes := 3
	asg := partition.NewAssignment(numNodes, 1)
	servers := make([]comm.Server, numNodes)
	locals := make([]*partition.Local, numNodes)
	for node := 0; node < numNodes; node++ {
		locals[node] = partition.NewLocal(g, asg, node)
		l := locals[node]
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = l.MustNeighbors(id)
			}
			return out
		})
	}
	fabric := comm.NewLocal(servers, nil)
	defer fabric.Close()

	var total uint64
	for node := 0; node < numNodes; node++ {
		src := &testSource{local: locals[node], fabric: fabric}
		sink := &core.CountSink{}
		eng := core.NewEngine(handTriangle{}, src, sink, core.Config{Threads: 2})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		total += sink.Count()
	}
	if total != want {
		t.Fatalf("hand-written EXTEND counted %d triangles, want %d", total, want)
	}
}
