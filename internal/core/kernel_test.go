package core_test

import (
	"testing"

	"khuzdul/internal/core"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"

	"khuzdul/internal/graph"
)

// TestEngineKernelCountersFlow drives the full counter path — dispatcher →
// scratch → extendRound drain → metrics.Node → Summarize — and checks the
// specialized kernels both fire and stay exact under the distributed engine.
func TestEngineKernelCountersFlow(t *testing.T) {
	g := graph.RMATDefault(120, 900, 13)

	// Pivot: clique(4) without VCS recomputes its 3-list intersection, which
	// the compiler hints HintPivot.
	cl := plan.MustCompile(pattern.Clique(4),
		plan.Options{Style: plan.StyleGraphPi, DisableVCS: true, Stats: plan.StatsOf(g)})
	want := plan.BruteForceCount(g, pattern.Clique(4), false)
	got, met := runCluster(t, g, cl, 2, core.Config{Threads: 2})
	if got != want {
		t.Fatalf("clique(4) with pivot kernel: engine %d, brute force %d", got, want)
	}
	if s := met.Summarize(); s.KernelPivot == 0 {
		t.Errorf("no pivot invocations surfaced in metrics: %+v", s)
	}

	// Bitmap: a forced tiny hub threshold promotes every keyed list.
	tri := plan.MustCompile(pattern.Triangle(),
		plan.Options{Style: plan.StyleGraphPi, DisableVCS: true, Stats: plan.StatsOf(g)})
	wantTri := plan.BruteForceCount(g, pattern.Triangle(), false)
	gotTri, met2 := runCluster(t, g, tri, 2, core.Config{Threads: 2, HubThreshold: 1})
	if gotTri != wantTri {
		t.Fatalf("triangle with forced bitmap kernel: engine %d, brute force %d", gotTri, wantTri)
	}
	if s2 := met2.Summarize(); s2.KernelBitmap == 0 {
		t.Errorf("no bitmap invocations surfaced in metrics: %+v", s2)
	}

	// A threshold above every degree disables hub promotion outright.
	_, met3 := runCluster(t, g, tri, 1, core.Config{Threads: 1, HubThreshold: 1 << 30})
	if s3 := met3.Summarize(); s3.KernelBitmap != 0 {
		t.Errorf("bitmap fired with threshold above max degree: %+v", s3)
	}
	if s3 := met3.Summarize(); s3.KernelMerge+s3.KernelGallop == 0 {
		t.Errorf("pairwise kernels never counted: %+v", met3.Summarize())
	}
}
