package core_test

import (
	"testing"

	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// TestBoundedMemoryClaim verifies the paper's §4.2 argument: with the
// BFS-DFS hybrid, live extendable embeddings stay bounded by roughly
// K × chunk size (plus the bounded worker overshoot), no matter how many
// embeddings the workload generates — while a BFS-ish configuration (one
// huge chunk) holds the whole level in memory.
func TestBoundedMemoryClaim(t *testing.T) {
	g := graph.RMATDefault(300, 2500, 997)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})

	const chunkSize = 128
	threads := 2
	cfg := core.Config{ChunkSize: chunkSize, Threads: threads, MiniBatch: 16}
	_, metSmall := runCluster(t, g, pl, 1, cfg)
	peakSmall := metSmall.Summarize().PeakEmbeddings
	if peakSmall == 0 {
		t.Fatal("no peak recorded")
	}
	// Bound: K live chunks of chunkSize plus per-round overshoot (claimed
	// mini-batches each emitting up to maxdeg children).
	bound := uint64(pl.K)*chunkSize + uint64(threads*16)*uint64(g.MaxDegree())
	if peakSmall > bound {
		t.Fatalf("peak %d exceeds hybrid bound %d", peakSmall, bound)
	}

	_, metHuge := runCluster(t, g, pl, 1, core.Config{ChunkSize: 1 << 22, Threads: threads})
	peakHuge := metHuge.Summarize().PeakEmbeddings
	if peakHuge <= peakSmall {
		t.Fatalf("BFS-style peak %d not above hybrid peak %d", peakHuge, peakSmall)
	}
}
