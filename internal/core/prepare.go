package core

import (
	"time"

	"khuzdul/internal/graph"
)

// fetchGroup collects the per-owner fetch work for one chunk.
type fetchGroup struct {
	owner     int
	fetchIdxs []int32          // embeddings whose vertex list must be fetched
	vs        []graph.VertexID // vertices to fetch, parallel to fetchIdxs
	aliasFrom []int32          // horizontal sharing: ch.lists[aliasTo[i]] = ch.lists[aliasFrom[i]]
	aliasTo   []int32
}

// prepare seals a chunk: it classifies every embedding's new vertex by
// locality, resolves local / cross-socket / cached / horizontally-shared
// lists immediately, groups the rest into per-machine batches in circulant
// order (local machine's resolved batch first, then machines K+1, K+2, …
// mod N — paper §4.3), and fires one background fetch per remote batch so
// communication overlaps with the extension of earlier batches.
func (e *Engine) prepare(ch *chunk) {
	t0 := time.Now()
	defer func() { e.met.AddScheduler(time.Since(t0)) }()

	n := ch.len()
	if !e.ext.NeedsList(ch.level) {
		b := newFetchBatch()
		b.idxs = allIdxs(n)
		b.closeReady()
		ch.batches = []*fetchBatch{b}
		return
	}

	numNodes := e.src.NumNodes()
	local := e.src.LocalNode()
	resolved := newFetchBatch()
	groups := make([]*fetchGroup, numNodes)

	// Horizontal data sharing: a per-chunk open-addressed table keyed by
	// vertex, one slot per hash, no collision chains — colliding inserts are
	// simply dropped (paper §5.2), trading a little duplicate traffic for a
	// near-free table.
	var table []int32
	var mask uint32
	if e.cfg.HDS {
		size := 1
		for size < 2*n {
			size <<= 1
		}
		table = make([]int32, size)
		for i := range table {
			table[i] = -1
		}
		mask = uint32(size - 1)
	}

	var cacheDur time.Duration
	var fetches, remote, cacheHits, cacheMisses, hdsHits uint64
	for i := 0; i < n; i++ {
		v := ch.vertex[i]
		fetches++
		loc, owner := e.src.Classify(v)
		switch loc {
		case LocalityLocal:
			ch.lists[i] = e.src.LocalList(v)
			resolved.idxs = append(resolved.idxs, int32(i))
			continue
		case LocalityCrossSocket:
			ch.lists[i] = e.src.CrossSocketList(v)
			resolved.idxs = append(resolved.idxs, int32(i))
			continue
		}
		if e.cfg.Cache != nil {
			tc := time.Now()
			l, ok := e.cfg.Cache.Get(v)
			cacheDur += time.Since(tc)
			if ok {
				ch.lists[i] = l
				resolved.idxs = append(resolved.idxs, int32(i))
				cacheHits++
				continue
			}
			cacheMisses++
		}
		g := groups[owner]
		if g == nil {
			g = &fetchGroup{owner: owner}
			groups[owner] = g
		}
		if e.cfg.HDS {
			h := hashVertex(v) & mask
			switch first := table[h]; {
			case first == -1:
				table[h] = int32(i)
			case ch.vertex[first] == v:
				// Same vertex already being fetched in this chunk: share it.
				g.aliasFrom = append(g.aliasFrom, first)
				g.aliasTo = append(g.aliasTo, int32(i))
				hdsHits++
				continue
			default:
				// Hash collision with a different vertex: fetch redundantly
				// rather than maintain a collision chain.
			}
		}
		g.fetchIdxs = append(g.fetchIdxs, int32(i))
		g.vs = append(g.vs, v)
		remote++
	}

	e.met.Fetches.Add(fetches)
	e.met.RemoteFetches.Add(remote)
	e.met.CacheHits.Add(cacheHits)
	e.met.CacheMisses.Add(cacheMisses)
	e.met.HDSHits.Add(hdsHits)
	if cacheDur > 0 {
		e.met.AddCache(cacheDur)
	}

	resolved.closeReady()
	batches := []*fetchBatch{resolved}
	// Circulant order over remote machines: (local+1)%N, (local+2)%N, …
	// Aliased embeddings ride in the batch of the embedding that fetches.
	for d := 1; d < numNodes; d++ {
		owner := (local + d) % numNodes
		g := groups[owner]
		if g == nil {
			continue
		}
		b := newFetchBatch()
		b.idxs = append(b.idxs, g.fetchIdxs...)
		b.idxs = append(b.idxs, g.aliasTo...)
		batches = append(batches, b)
		if e.cfg.StrictPipeline {
			g := g
			b.lazyFetch = func() { e.runFetch(ch, b, g) }
		} else {
			go e.runFetch(ch, b, g)
		}
	}
	ch.batches = batches
}

// runFetch performs one circulant batch's blocking fetch and publishes the
// lists, then releases extenders waiting on the batch.
func (e *Engine) runFetch(ch *chunk, b *fetchBatch, g *fetchGroup) {
	lists, err := e.src.Fetch(g.owner, g.vs)
	if err != nil {
		b.err = err
		b.closeReady()
		return
	}
	var cacheDur time.Duration
	for j, idx := range g.fetchIdxs {
		ch.lists[idx] = lists[j]
		if e.cfg.Cache != nil {
			tc := time.Now()
			e.cfg.Cache.MaybePut(g.vs[j], lists[j])
			cacheDur += time.Since(tc)
		}
	}
	for j := range g.aliasTo {
		ch.lists[g.aliasTo[j]] = ch.lists[g.aliasFrom[j]]
	}
	if cacheDur > 0 {
		e.met.AddCache(cacheDur)
	}
	b.closeReady()
}

func allIdxs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// hashVertex mixes a vertex ID for the HDS table.
func hashVertex(v graph.VertexID) uint32 {
	h := uint32(v)
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}
