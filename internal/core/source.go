package core

import (
	"sync/atomic"

	"khuzdul/internal/graph"
)

// Locality classifies where a vertex's edge list lives relative to the
// engine instance asking for it.
type Locality int

const (
	// LocalityLocal means the list is in this engine's own (sub-)partition.
	LocalityLocal Locality = iota
	// LocalityCrossSocket means the list is on another socket of the same
	// machine (NUMA mode only).
	LocalityCrossSocket
	// LocalityRemote means the list is on another machine and must be
	// fetched over the fabric.
	LocalityRemote
)

// DataSource supplies partitioned graph data to one engine instance (one
// socket of one machine). Implementations live in internal/cluster.
type DataSource interface {
	// Classify returns where v's edge list lives; for LocalityRemote the
	// second result is the owning machine.
	Classify(v graph.VertexID) (Locality, int)
	// LocalList returns the edge list of a LocalityLocal vertex.
	LocalList(v graph.VertexID) []graph.VertexID
	// CrossSocketList returns the edge list of a LocalityCrossSocket vertex,
	// accounting the cross-socket traffic.
	CrossSocketList(v graph.VertexID) []graph.VertexID
	// Fetch blocks until the edge lists of ids arrive from the owner
	// machine. The engine batches requests; pipelining happens above.
	Fetch(owner int, ids []graph.VertexID) ([][]graph.VertexID, error)
	// NumNodes returns the number of machines in the cluster.
	NumNodes() int
	// LocalNode returns this machine's ID.
	LocalNode() int
	// Roots returns the vertices this engine instance starts embedding
	// trees from (its sub-partition's vertices).
	Roots() []graph.VertexID
	// Label returns the label of any vertex (labels are replicated).
	Label(v graph.VertexID) graph.Label
}

// Sink receives the embeddings the engine finds. Implementations must be
// safe for concurrent use; the engine calls OnMatch from worker threads.
type Sink interface {
	// OnMatch receives one matched embedding in matching-order positions.
	// The slice is reused by the engine; implementations must copy to
	// retain it.
	OnMatch(emb []graph.VertexID)
	// CountOnly reports whether the sink only needs match counts; the
	// engine then skips materializing final-level embeddings and counts
	// candidates directly (the common fast path for counting applications).
	CountOnly() bool
}

// CountSink counts matches without materializing them.
type CountSink struct {
	n atomic.Uint64
}

// OnMatch implements Sink.
func (s *CountSink) OnMatch(emb []graph.VertexID) { s.n.Add(1) }

// CountOnly implements Sink.
func (s *CountSink) CountOnly() bool { return true }

// Add records n matches found in bulk.
func (s *CountSink) Add(n uint64) { s.n.Add(n) }

// Count returns the number of matches recorded.
func (s *CountSink) Count() uint64 { return s.n.Load() }

// FuncSink adapts a function to Sink for applications that need every
// embedding (e.g. FSM support computation).
type FuncSink struct {
	F func(emb []graph.VertexID)
}

// OnMatch implements Sink.
func (s *FuncSink) OnMatch(emb []graph.VertexID) { s.F(emb) }

// CountOnly implements Sink.
func (s *FuncSink) CountOnly() bool { return false }
