// Package fault injects deterministic, seedable faults into a communication
// fabric. It wraps any comm.Fabric (the in-process fabric or the TCP
// loopback fabric) and perturbs fetches with three fault classes drawn from
// the failure model of production GPM deployments:
//
//   - transient fetch errors (dropped/reset connections, recoverable by
//     retrying),
//   - added latency (congestion, stragglers),
//   - permanent node crashes: from fault time on, the crashed node's server
//     answers nothing (callers hang until their deadline) and fetches issued
//     *by* the crashed node fail fast with a permanent error (the process is
//     gone).
//
// All decisions derive from a seed hashed with the (from, to) pair and a
// per-pair sequence number, so a given seed reproduces the same fault
// pattern per connection pair regardless of how goroutines interleave
// globally. Injection is off by default and costs nothing when no Injector
// wraps the fabric.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/comm"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// ErrInjected marks a transient injected fetch error; retrying may succeed.
var ErrInjected = errors.New("fault: injected transient error")

// ErrNodeCrashed marks a fetch attempted by a node that has permanently
// crashed. It is a permanent error: retrying cannot fix it.
var ErrNodeCrashed = errors.New("fault: node crashed")

// crashedError reports a fetch from a crashed node and satisfies
// comm.PermanentError so the retry layer fails fast instead of retrying.
type crashedError struct{ node int }

func (e crashedError) Error() string {
	return fmt.Sprintf("fault: node %d crashed: %v", e.node, ErrNodeCrashed)
}
func (e crashedError) Unwrap() error   { return ErrNodeCrashed }
func (e crashedError) Permanent() bool { return true }

// Crash schedules one permanent node failure.
type Crash struct {
	// Node is the machine that crashes.
	Node int
	// After is the number of fetches the node serves before crashing: the
	// first After fetches targeting it are answered, every later one hangs.
	After uint64
}

// Profile configures fault injection. The zero value injects nothing.
type Profile struct {
	// Seed makes the injected fault pattern reproducible.
	Seed int64
	// ErrorRate is the probability in [0,1] that a fetch fails with a
	// transient error before reaching the transport.
	ErrorRate float64
	// MaxLatency, when positive, adds a deterministic pseudo-random delay in
	// [0, MaxLatency) to every fetch.
	MaxLatency time.Duration
	// Crashes lists permanent node failures.
	Crashes []Crash
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return p.ErrorRate <= 0 && p.MaxLatency <= 0 && len(p.Crashes) == 0
}

// ParseProfile parses a CLI fault-profile spec: comma-separated
// key=value items among
//
//	seed=N          decision seed (default 1)
//	err=F           transient error probability in [0,1]
//	latency=D       max injected latency (Go duration, e.g. 500us)
//	crash=NODE@N    node NODE crashes after serving N fetches (repeatable)
//
// Example: "seed=7,err=0.05,latency=200us,crash=2@500". Empty string and
// "none" return nil (no injection).
func ParseProfile(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" || spec == "off" {
		return nil, nil
	}
	p := &Profile{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad profile item %q (want key=value)", item)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			p.Seed = n
		case "err":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("fault: bad error rate %q (want [0,1])", v)
			}
			p.ErrorRate = f
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad latency %q", v)
			}
			p.MaxLatency = d
		case "crash":
			nodeStr, afterStr, ok := strings.Cut(v, "@")
			if !ok {
				return nil, fmt.Errorf("fault: bad crash spec %q (want NODE@N)", v)
			}
			node, err1 := strconv.Atoi(nodeStr)
			after, err2 := strconv.ParseUint(afterStr, 10, 64)
			if err1 != nil || err2 != nil || node < 0 {
				return nil, fmt.Errorf("fault: bad crash spec %q", v)
			}
			p.Crashes = append(p.Crashes, Crash{Node: node, After: after})
		default:
			return nil, fmt.Errorf("fault: unknown profile key %q", k)
		}
	}
	return p, nil
}

// String renders the profile in ParseProfile syntax.
func (p Profile) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.ErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", p.ErrorRate))
	}
	if p.MaxLatency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v", p.MaxLatency))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", c.Node, c.After))
	}
	return strings.Join(parts, ",")
}

// Injector holds the fault state of one simulated cluster. The state is
// shared by every fabric the injector wraps, so a node that crashed during
// the main run stays crashed in recovery rounds run over a fresh fabric.
type Injector struct {
	prof    Profile
	n       int
	met     *metrics.Cluster
	crashed []atomic.Bool
	served  []atomic.Uint64 // fetches served per target node (crash trigger)
	pairSeq []atomic.Uint64 // per (from,to) decision sequence numbers
}

// NewInjector returns fault state for a numNodes cluster. m may be nil to
// disable fault accounting.
func NewInjector(p Profile, numNodes int, m *metrics.Cluster) *Injector {
	return &Injector{
		prof:    p,
		n:       numNodes,
		met:     m,
		crashed: make([]atomic.Bool, numNodes),
		served:  make([]atomic.Uint64, numNodes),
		pairSeq: make([]atomic.Uint64, numNodes*numNodes),
	}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.prof }

// Crashed reports whether node has permanently crashed.
func (in *Injector) Crashed(node int) bool {
	return node >= 0 && node < in.n && in.crashed[node].Load()
}

// CrashedNodes returns every node that has crashed so far, ascending.
func (in *Injector) CrashedNodes() []int {
	var out []int
	for i := range in.crashed {
		if in.crashed[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// Wrap returns a fabric that injects this injector's faults in front of
// inner. Closing the wrapper releases callers hanging on crashed nodes and
// closes inner.
func (in *Injector) Wrap(inner comm.Fabric) comm.Fabric {
	return &fabric{in: in, inner: inner, closed: make(chan struct{})}
}

type fabric struct {
	in     *Injector
	inner  comm.Fabric
	closed chan struct{}
	once   sync.Once
}

// Fetch implements comm.Fabric with fault injection around inner.Fetch.
func (f *fabric) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	in := f.in
	if in.Crashed(from) {
		// The requesting process is dead; its engine must stop immediately.
		return nil, crashedError{node: from}
	}
	if to >= 0 && to < in.n {
		// Count the serve attempt against the target, possibly crossing its
		// crash threshold.
		n := in.served[to].Add(1)
		for _, c := range in.prof.Crashes {
			if c.Node == to && n > c.After {
				in.crashed[to].Store(true)
			}
		}
		if in.Crashed(to) {
			// A crashed server answers nothing from fault time on: hang until
			// the fabric is torn down (callers escape via their deadline).
			<-f.closed
			return nil, fmt.Errorf("fault: fabric closed while awaiting crashed node %d: %w", to, ErrNodeCrashed)
		}
	}
	if !in.prof.Zero() && from >= 0 && from < in.n && to >= 0 && to < in.n {
		seq := in.pairSeq[from*in.n+to].Add(1)
		h := mix64(uint64(in.prof.Seed), uint64(from)<<32|uint64(to), seq)
		if d := in.prof.MaxLatency; d > 0 {
			time.Sleep(time.Duration(mix64(h, 0xa5, seq) % uint64(d)))
		}
		if r := in.prof.ErrorRate; r > 0 && unitFloat(mix64(h, 0x5a, seq)) < r {
			if in.met != nil {
				in.met.Nodes[from].FaultsInjected.Add(1)
			}
			return nil, fmt.Errorf("fault: fetch %d->%d (pair seq %d): %w", from, to, seq, ErrInjected)
		}
	}
	return f.inner.Fetch(from, to, ids)
}

// Close implements comm.Fabric.
func (f *fabric) Close() error {
	f.once.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// mix64 is a splitmix64-style hash over three words, driving all injection
// decisions deterministically.
func mix64(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0,1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }
