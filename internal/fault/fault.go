// Package fault injects deterministic, seedable faults into a communication
// fabric. It wraps any comm.Fabric (the in-process fabric or the TCP
// loopback fabric) and perturbs fetches with three fault classes drawn from
// the failure model of production GPM deployments:
//
//   - transient fetch errors (dropped/reset connections, recoverable by
//     retrying),
//   - added latency (congestion, stragglers),
//   - permanent node crashes: from fault time on, the crashed node's server
//     answers nothing (callers hang until their deadline) and fetches issued
//     *by* the crashed node fail fast with a permanent error (the process is
//     gone).
//
// All decisions derive from a seed hashed with the (from, to) pair and a
// per-pair sequence number, so a given seed reproduces the same fault
// pattern per connection pair regardless of how goroutines interleave
// globally. Injection is off by default and costs nothing when no Injector
// wraps the fabric.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/comm"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// ErrInjected marks a transient injected fetch error; retrying may succeed.
var ErrInjected = errors.New("fault: injected transient error")

// ErrConnDropped marks an injected mid-exchange connection drop on a fabric
// with no real connections to sever (the in-process fabric); retrying
// redials and may succeed.
var ErrConnDropped = errors.New("fault: injected connection drop")

// ErrNodeCrashed marks a fetch attempted by a node that has permanently
// crashed. It is a permanent error: retrying cannot fix it.
var ErrNodeCrashed = errors.New("fault: node crashed")

// crashedError reports a fetch from a crashed node and satisfies
// comm.PermanentError so the retry layer fails fast instead of retrying.
type crashedError struct{ node int }

func (e crashedError) Error() string {
	return fmt.Sprintf("fault: node %d crashed: %v", e.node, ErrNodeCrashed)
}
func (e crashedError) Unwrap() error   { return ErrNodeCrashed }
func (e crashedError) Permanent() bool { return true }

// Crash schedules one permanent node failure.
type Crash struct {
	// Node is the machine that crashes.
	Node int
	// After is the number of fetches the node serves before crashing: the
	// first After fetches targeting it are answered, every later one hangs.
	After uint64
}

// Partition schedules one asymmetric network partition: once the cluster's
// total fetch count passes After, every fetch (and heartbeat) from a node in
// A to a node in B hangs until its deadline — B's traffic toward A remains
// untouched, so the two sides disagree about who is reachable, the hard case
// for failure detection.
type Partition struct {
	A, B  []int
	After uint64
}

// Slowdown makes one node a straggler: every fetch the node issues is
// delayed by Factor × the profile's latency unit (MaxLatency when set,
// otherwise 200µs). The node stays alive and its server answers at full
// speed — it is merely slow, which is exactly what straggler speculation
// (not failure recovery) must handle.
type Slowdown struct {
	Node   int
	Factor float64
}

// slowUnit is the per-fetch delay base for Slowdown when the profile sets
// no MaxLatency.
const slowUnit = 200 * time.Microsecond

// Profile configures fault injection. The zero value injects nothing.
type Profile struct {
	// Seed makes the injected fault pattern reproducible.
	Seed int64
	// ErrorRate is the probability in [0,1] that a fetch fails with a
	// transient error before reaching the transport.
	ErrorRate float64
	// CorruptRate is the probability in [0,1] that a fetch's request frame
	// is corrupted. On the TCP fabric a payload byte is flipped after the
	// CRC is computed, so the receiver's integrity check must catch it; on
	// the in-process fabric (no bytes exist) the detection outcome —
	// comm.ErrCorruptFrame — is injected directly.
	CorruptRate float64
	// DropRate is the probability in [0,1] that the connection is severed
	// mid-exchange, after the request is sent and before the response
	// arrives. On the TCP fabric the socket really closes (forcing a
	// redial); the in-process fabric surfaces ErrConnDropped.
	DropRate float64
	// MaxLatency, when positive, adds a deterministic pseudo-random delay in
	// [0, MaxLatency) to every fetch.
	MaxLatency time.Duration
	// Crashes lists permanent node failures.
	Crashes []Crash
	// Partitions lists asymmetric network partitions.
	Partitions []Partition
	// Slowdowns lists per-node straggler factors.
	Slowdowns []Slowdown
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return p.ErrorRate <= 0 && p.CorruptRate <= 0 && p.DropRate <= 0 &&
		p.MaxLatency <= 0 && len(p.Crashes) == 0 && len(p.Partitions) == 0 &&
		len(p.Slowdowns) == 0
}

// ParseProfile parses a CLI fault-profile spec: comma-separated
// key=value items among
//
//	seed=N            decision seed (default 1)
//	err=F             transient error probability in [0,1]
//	corrupt=F         frame corruption probability in [0,1]
//	drop=F            mid-exchange connection-drop probability in [0,1]
//	latency=D         max injected latency (Go duration, e.g. 500us)
//	crash=NODE@N      node NODE crashes after serving N fetches (repeatable)
//	partition=A|B@N   after N total fetches, nodes A cannot reach nodes B
//	                  (A, B are +-separated lists, e.g. 0+1|2+3@100; repeatable)
//	slow=NODE:FACTOR  node NODE's fetches are delayed FACTOR× the latency
//	                  unit (repeatable)
//
// Example: "seed=7,err=0.05,corrupt=0.01,crash=2@500,slow=1:4". Empty
// string and "none" return nil (no injection).
func ParseProfile(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" || spec == "off" {
		return nil, nil
	}
	p := &Profile{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad profile item %q (want key=value)", item)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			p.Seed = n
		case "err", "corrupt", "drop":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("fault: bad %s rate %q (want [0,1])", k, v)
			}
			switch k {
			case "err":
				p.ErrorRate = f
			case "corrupt":
				p.CorruptRate = f
			case "drop":
				p.DropRate = f
			}
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad latency %q", v)
			}
			p.MaxLatency = d
		case "crash":
			nodeStr, afterStr, ok := strings.Cut(v, "@")
			if !ok {
				return nil, fmt.Errorf("fault: bad crash spec %q (want NODE@N)", v)
			}
			node, err1 := strconv.Atoi(nodeStr)
			after, err2 := strconv.ParseUint(afterStr, 10, 64)
			if err1 != nil || err2 != nil || node < 0 {
				return nil, fmt.Errorf("fault: bad crash spec %q", v)
			}
			p.Crashes = append(p.Crashes, Crash{Node: node, After: after})
		case "partition":
			part, err := parsePartition(v)
			if err != nil {
				return nil, err
			}
			p.Partitions = append(p.Partitions, part)
		case "slow":
			nodeStr, facStr, ok := strings.Cut(v, ":")
			if !ok {
				return nil, fmt.Errorf("fault: bad slow spec %q (want NODE:FACTOR)", v)
			}
			node, err1 := strconv.Atoi(nodeStr)
			fac, err2 := strconv.ParseFloat(facStr, 64)
			if err1 != nil || err2 != nil || node < 0 || fac <= 0 {
				return nil, fmt.Errorf("fault: bad slow spec %q (want NODE:FACTOR with FACTOR > 0)", v)
			}
			p.Slowdowns = append(p.Slowdowns, Slowdown{Node: node, Factor: fac})
		default:
			return nil, fmt.Errorf("fault: unknown profile key %q", k)
		}
	}
	return p, nil
}

// parsePartition parses "A|B@N" with A, B as +-separated node lists.
func parsePartition(v string) (Partition, error) {
	spec, afterStr, ok := strings.Cut(v, "@")
	if !ok {
		return Partition{}, fmt.Errorf("fault: bad partition spec %q (want A|B@N)", v)
	}
	after, err := strconv.ParseUint(afterStr, 10, 64)
	if err != nil {
		return Partition{}, fmt.Errorf("fault: bad partition trigger %q", afterStr)
	}
	aStr, bStr, ok := strings.Cut(spec, "|")
	if !ok {
		return Partition{}, fmt.Errorf("fault: bad partition spec %q (want A|B@N)", v)
	}
	parseSide := func(s string) ([]int, error) {
		var out []int
		for _, f := range strings.Split(s, "+") {
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad partition node %q in %q", f, v)
			}
			out = append(out, n)
		}
		return out, nil
	}
	a, err := parseSide(aStr)
	if err != nil {
		return Partition{}, err
	}
	b, err := parseSide(bStr)
	if err != nil {
		return Partition{}, err
	}
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return Partition{}, fmt.Errorf("fault: partition sides overlap on node %d in %q", x, v)
			}
		}
	}
	return Partition{A: a, B: b, After: after}, nil
}

// String renders the profile in ParseProfile syntax.
func (p Profile) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.ErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", p.ErrorRate))
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.MaxLatency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v", p.MaxLatency))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", c.Node, c.After))
	}
	for _, pa := range p.Partitions {
		side := func(ns []int) string {
			ss := make([]string, len(ns))
			for i, n := range ns {
				ss[i] = strconv.Itoa(n)
			}
			return strings.Join(ss, "+")
		}
		parts = append(parts, fmt.Sprintf("partition=%s|%s@%d", side(pa.A), side(pa.B), pa.After))
	}
	for _, s := range p.Slowdowns {
		parts = append(parts, fmt.Sprintf("slow=%d:%g", s.Node, s.Factor))
	}
	return strings.Join(parts, ",")
}

// Injector holds the fault state of one simulated cluster. The state is
// shared by every fabric the injector wraps, so a node that crashed during
// the main run stays crashed in recovery rounds run over a fresh fabric.
type Injector struct {
	prof    Profile
	n       int
	met     *metrics.Cluster
	crashed []atomic.Bool
	served  []atomic.Uint64 // fetches served per target node (crash trigger)
	total   atomic.Uint64   // total fetches across the cluster (partition trigger)
	pairSeq []atomic.Uint64 // per (from,to) decision sequence numbers
	// wireSeq drives the byte-level wire-fault decisions (corrupt/drop) on
	// fabrics that apply them natively, independent of pairSeq so the two
	// decision streams never perturb each other.
	wireSeq []atomic.Uint64
	// hwWireFaults records that some wrapped fabric applies corrupt/drop at
	// the byte level, so the wrapper must not also inject them
	// synthetically.
	hwWireFaults atomic.Bool
	slowOf       []float64 // per-node straggler factor (0 = full speed)
}

// NewInjector returns fault state for a numNodes cluster. m may be nil to
// disable fault accounting.
func NewInjector(p Profile, numNodes int, m *metrics.Cluster) *Injector {
	in := &Injector{
		prof:    p,
		n:       numNodes,
		met:     m,
		crashed: make([]atomic.Bool, numNodes),
		served:  make([]atomic.Uint64, numNodes),
		pairSeq: make([]atomic.Uint64, numNodes*numNodes),
		wireSeq: make([]atomic.Uint64, numNodes*numNodes),
		slowOf:  make([]float64, numNodes),
	}
	for _, s := range p.Slowdowns {
		if s.Node >= 0 && s.Node < numNodes {
			in.slowOf[s.Node] = s.Factor
		}
	}
	return in
}

// partitioned reports whether the (from → to) direction is inside an active
// asymmetric partition.
func (in *Injector) partitioned(from, to int) bool {
	if len(in.prof.Partitions) == 0 {
		return false
	}
	total := in.total.Load()
	for _, p := range in.prof.Partitions {
		if total <= p.After {
			continue
		}
		inA, inB := false, false
		for _, n := range p.A {
			if n == from {
				inA = true
				break
			}
		}
		for _, n := range p.B {
			if n == to {
				inB = true
				break
			}
		}
		if inA && inB {
			return true
		}
	}
	return false
}

// slowDelay returns the straggler delay for fetches issued by node, or 0.
func (in *Injector) slowDelay(node int) time.Duration {
	if node < 0 || node >= in.n || in.slowOf[node] == 0 {
		return 0
	}
	unit := in.prof.MaxLatency
	if unit <= 0 {
		unit = slowUnit
	}
	return time.Duration(in.slowOf[node] * float64(unit))
}

// CorruptFrame implements comm.WireFaults: decide deterministically whether
// this exchange's request frame gets a byte flipped on the wire.
func (in *Injector) CorruptFrame(from, to int) bool {
	if in.prof.CorruptRate <= 0 || from < 0 || from >= in.n || to < 0 || to >= in.n {
		return false
	}
	seq := in.wireSeq[from*in.n+to].Add(1)
	return unitFloat(mix64(uint64(in.prof.Seed), uint64(from)<<32|uint64(to)|0xc0<<56, seq)) < in.prof.CorruptRate
}

// DropAfterSend implements comm.WireFaults: decide deterministically whether
// the connection is severed between request and response.
func (in *Injector) DropAfterSend(from, to int) bool {
	if in.prof.DropRate <= 0 || from < 0 || from >= in.n || to < 0 || to >= in.n {
		return false
	}
	seq := in.wireSeq[from*in.n+to].Add(1)
	return unitFloat(mix64(uint64(in.prof.Seed), uint64(from)<<32|uint64(to)|0xd0<<56, seq)) < in.prof.DropRate
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.prof }

// Crashed reports whether node has permanently crashed.
func (in *Injector) Crashed(node int) bool {
	return node >= 0 && node < in.n && in.crashed[node].Load()
}

// CrashedNodes returns every node that has crashed so far, ascending.
func (in *Injector) CrashedNodes() []int {
	var out []int
	for i := range in.crashed {
		if in.crashed[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// Wrap returns a fabric that injects this injector's faults in front of
// inner. When inner can apply corrupt/drop faults at the byte level (the
// TCP fabric), the injector delegates those two classes to it — real bytes
// get flipped and real sockets get severed, and the integrity protocol must
// catch them; otherwise the detection outcome is injected synthetically.
// Closing the wrapper releases callers hanging on crashed nodes and closes
// inner.
func (in *Injector) Wrap(inner comm.Fabric) comm.Fabric {
	if wf, ok := inner.(comm.WireFaultable); ok && (in.prof.CorruptRate > 0 || in.prof.DropRate > 0) {
		wf.SetWireFaults(in)
		in.hwWireFaults.Store(true)
	}
	return &fabric{in: in, inner: inner, closed: make(chan struct{})}
}

type fabric struct {
	in     *Injector
	inner  comm.Fabric
	closed chan struct{}
	once   sync.Once
}

// Fetch implements comm.Fabric with fault injection around inner.Fetch.
func (f *fabric) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	in := f.in
	if in.Crashed(from) {
		// The requesting process is dead; its engine must stop immediately.
		return nil, crashedError{node: from}
	}
	in.total.Add(1)
	if to >= 0 && to < in.n {
		// Count the serve attempt against the target, possibly crossing its
		// crash threshold.
		n := in.served[to].Add(1)
		for _, c := range in.prof.Crashes {
			if c.Node == to && n > c.After {
				in.crashed[to].Store(true)
			}
		}
		if in.Crashed(to) {
			// A crashed server answers nothing from fault time on: hang until
			// the fabric is torn down (callers escape via their deadline).
			<-f.closed
			return nil, fmt.Errorf("fault: fabric closed while awaiting crashed node %d: %w", to, ErrNodeCrashed)
		}
	}
	if in.partitioned(from, to) {
		// An unreachable peer looks exactly like a dead one from this side:
		// the request vanishes and the caller waits out its deadline.
		<-f.closed
		return nil, fmt.Errorf("fault: fabric closed while awaiting partitioned node %d: %w", to, ErrInjected)
	}
	if d := in.slowDelay(from); d > 0 {
		time.Sleep(d)
	}
	if !in.prof.Zero() && from >= 0 && from < in.n && to >= 0 && to < in.n {
		seq := in.pairSeq[from*in.n+to].Add(1)
		h := mix64(uint64(in.prof.Seed), uint64(from)<<32|uint64(to), seq)
		if d := in.prof.MaxLatency; d > 0 {
			time.Sleep(time.Duration(mix64(h, 0xa5, seq) % uint64(d)))
		}
		if r := in.prof.ErrorRate; r > 0 && unitFloat(mix64(h, 0x5a, seq)) < r {
			if in.met != nil {
				in.met.Nodes[from].FaultsInjected.Add(1)
			}
			return nil, fmt.Errorf("fault: fetch %d->%d (pair seq %d): %w", from, to, seq, ErrInjected)
		}
		if !in.hwWireFaults.Load() {
			// The transport cannot flip real bytes; inject the detection
			// outcomes the integrity layer would have produced.
			if r := in.prof.CorruptRate; r > 0 && unitFloat(mix64(h, 0xc0, seq)) < r {
				if in.met != nil {
					in.met.Nodes[from].CorruptFrames.Add(1)
					in.met.Nodes[from].FaultsInjected.Add(1)
				}
				return nil, fmt.Errorf("fault: fetch %d->%d (pair seq %d): %w", from, to, seq, comm.ErrCorruptFrame)
			}
			if r := in.prof.DropRate; r > 0 && unitFloat(mix64(h, 0xd0, seq)) < r {
				if in.met != nil {
					in.met.Nodes[from].FaultsInjected.Add(1)
				}
				return nil, fmt.Errorf("fault: fetch %d->%d (pair seq %d): %w", from, to, seq, ErrConnDropped)
			}
		}
	}
	return f.inner.Fetch(from, to, ids)
}

// Ping implements comm.Pinger with the liveness-relevant fault classes:
// pings hang toward crashed or partitioned peers (heartbeat misses), but
// skip latency, straggler delay and the probabilistic error classes — a
// slow or flaky node is still alive, and the failure detector must not
// confuse the two. Pings do not advance the crash/partition trigger
// counters, so detector traffic never perturbs the deterministic fault
// schedule of the data path.
func (f *fabric) Ping(from, to int) error {
	in := f.in
	if in.Crashed(from) {
		return crashedError{node: from}
	}
	if in.Crashed(to) || in.partitioned(from, to) {
		<-f.closed
		return fmt.Errorf("fault: fabric closed while pinging unreachable node %d: %w", to, ErrNodeCrashed)
	}
	if p, ok := f.inner.(comm.Pinger); ok {
		return p.Ping(from, to)
	}
	return nil
}

// Close implements comm.Fabric.
func (f *fabric) Close() error {
	f.once.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// mix64 is a splitmix64-style hash over three words, driving all injection
// decisions deterministically.
func mix64(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0,1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }
