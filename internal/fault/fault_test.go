package fault

import (
	"errors"
	"testing"
	"time"

	"khuzdul/internal/comm"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// testFabric builds a Local fabric over a small partitioned graph.
func testFabric(g *graph.Graph, nodes int, m *metrics.Cluster) comm.Fabric {
	asg := partition.NewAssignment(nodes, 1)
	servers := make([]comm.Server, nodes)
	for node := 0; node < nodes; node++ {
		local := partition.NewLocal(g, asg, node)
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = local.MustNeighbors(id)
			}
			return out
		})
	}
	return comm.NewLocal(servers, m)
}

// decisions replays the injector's transient-error decision sequence for one
// pair by issuing fetches serially and recording which ones fail.
func decisions(t *testing.T, seed int64, count int) []bool {
	t.Helper()
	g := graph.RMATDefault(100, 400, 5)
	asg := partition.NewAssignment(2, 1)
	in := NewInjector(Profile{Seed: seed, ErrorRate: 0.3}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	defer f.Close()
	var v graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if asg.Owner(graph.VertexID(u)) == 1 {
			v = graph.VertexID(u)
			break
		}
	}
	out := make([]bool, count)
	for i := range out {
		_, err := f.Fetch(0, 1, []graph.VertexID{v})
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error class: %v", err)
		}
		out[i] = err != nil
	}
	return out
}

func TestInjectionDeterministicGivenSeed(t *testing.T) {
	a := decisions(t, 42, 400)
	b := decisions(t, 42, 400)
	var failures int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs with equal seed", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("degenerate error injection: %d/%d failures", failures, len(a))
	}
	c := decisions(t, 43, 400)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	g := graph.RMATDefault(100, 400, 5)
	m := metrics.NewCluster(2)
	in := NewInjector(Profile{Seed: 1}, 2, m)
	f := in.Wrap(testFabric(g, 2, m))
	defer f.Close()
	asg := partition.NewAssignment(2, 1)
	for u := 0; u < g.NumVertices(); u++ {
		id := graph.VertexID(u)
		owner := asg.Owner(id)
		if _, err := f.Fetch(1-owner, owner, []graph.VertexID{id}); err != nil {
			t.Fatalf("zero profile injected a fault: %v", err)
		}
	}
	if got := m.Summarize().FaultsInjected; got != 0 {
		t.Fatalf("FaultsInjected = %d, want 0", got)
	}
}

func TestCrashSemantics(t *testing.T) {
	g := graph.RMATDefault(100, 400, 5)
	asg := partition.NewAssignment(2, 1)
	in := NewInjector(Profile{Seed: 1, Crashes: []Crash{{Node: 1, After: 3}}}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	var v graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if asg.Owner(graph.VertexID(u)) == 1 {
			v = graph.VertexID(u)
			break
		}
	}
	// The first three fetches are served.
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(0, 1, []graph.VertexID{v}); err != nil {
			t.Fatalf("fetch %d before crash: %v", i, err)
		}
	}
	if in.Crashed(1) {
		t.Fatal("node crashed before its threshold")
	}
	// The fourth hangs (answers nothing); it is released by Close.
	done := make(chan error, 1)
	go func() {
		_, err := f.Fetch(0, 1, []graph.VertexID{v})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("fetch to crashed node returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.Close()
	if err := <-done; !errors.Is(err, ErrNodeCrashed) {
		t.Fatalf("post-close error = %v, want ErrNodeCrashed", err)
	}
	if !in.Crashed(1) {
		t.Fatal("node not marked crashed")
	}
	if nodes := in.CrashedNodes(); len(nodes) != 1 || nodes[0] != 1 {
		t.Fatalf("CrashedNodes = %v", nodes)
	}
}

func TestCrashedRequesterFailsFastAndPermanent(t *testing.T) {
	g := graph.RMATDefault(50, 200, 5)
	in := NewInjector(Profile{Seed: 1, Crashes: []Crash{{Node: 0, After: 0}}}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	defer f.Close()
	// Crash node 0 by having it serve one fetch (After: 0 → the first serve
	// crosses the threshold and hangs; the deferred Close releases it).
	go func() { _, _ = f.Fetch(1, 0, nil) }()
	deadline := time.Now().Add(2 * time.Second)
	for !in.Crashed(0) {
		if time.Now().After(deadline) {
			t.Fatal("node 0 never crashed")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := f.Fetch(0, 1, nil)
	if !errors.Is(err, ErrNodeCrashed) {
		t.Fatalf("err = %v, want ErrNodeCrashed", err)
	}
	var pe comm.PermanentError
	if !errors.As(err, &pe) || !pe.Permanent() {
		t.Fatalf("crashed-requester error not permanent: %v", err)
	}
}

func TestInjectedLatency(t *testing.T) {
	g := graph.RMATDefault(50, 200, 5)
	asg := partition.NewAssignment(2, 1)
	in := NewInjector(Profile{Seed: 1, MaxLatency: 2 * time.Millisecond}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	defer f.Close()
	var v graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if asg.Owner(graph.VertexID(u)) == 1 {
			v = graph.VertexID(u)
			break
		}
	}
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := f.Fetch(0, 1, []graph.VertexID{v}); err != nil {
			t.Fatal(err)
		}
	}
	// 20 fetches with uniform latency in [0,2ms) should take ~20ms; assert a
	// loose lower bound to confirm latency is actually injected.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("20 fetches in %v: latency not injected", elapsed)
	}
}

func TestParseProfileWireAndTopologyKeys(t *testing.T) {
	p, err := ParseProfile("seed=9,corrupt=0.01,drop=0.02,partition=0+1|2+3@100,slow=2:12.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.CorruptRate != 0.01 || p.DropRate != 0.02 {
		t.Fatalf("wire rates parsed as %+v", p)
	}
	if len(p.Partitions) != 1 {
		t.Fatalf("partitions %+v", p.Partitions)
	}
	pa := p.Partitions[0]
	if len(pa.A) != 2 || pa.A[0] != 0 || pa.A[1] != 1 ||
		len(pa.B) != 2 || pa.B[0] != 2 || pa.B[1] != 3 || pa.After != 100 {
		t.Fatalf("partition %+v", pa)
	}
	if len(p.Slowdowns) != 1 || p.Slowdowns[0] != (Slowdown{Node: 2, Factor: 12.5}) {
		t.Fatalf("slowdowns %+v", p.Slowdowns)
	}
	// Round trip through String must preserve every facet.
	q, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if q.CorruptRate != p.CorruptRate || q.DropRate != p.DropRate ||
		len(q.Partitions) != 1 || len(q.Slowdowns) != 1 ||
		q.Partitions[0].After != 100 || q.Slowdowns[0].Factor != 12.5 {
		t.Fatalf("round trip lost facets: %q -> %+v", p.String(), q)
	}
	bad := []string{
		"corrupt=2", "corrupt=x", "drop=-0.5",
		"partition=0|@5", "partition=|1@5", "partition=0|1", "partition=0@5",
		"partition=0|0@5", "partition=a|1@5", "partition=0|1@x",
		"slow=1:0", "slow=1:-2", "slow=1", "slow=x:2", "slow=-1:2",
	}
	for _, spec := range bad {
		if _, err := ParseProfile(spec); err == nil {
			t.Fatalf("ParseProfile(%q) accepted", spec)
		}
	}
}

func TestPartitionAsymmetric(t *testing.T) {
	g := graph.RMATDefault(100, 400, 5)
	asg := partition.NewAssignment(2, 1)
	in := NewInjector(Profile{Seed: 1, Partitions: []Partition{{A: []int{0}, B: []int{1}, After: 2}}}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	var v0, v1 graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		id := graph.VertexID(u)
		if asg.Owner(id) == 0 {
			v0 = id
		} else {
			v1 = id
		}
	}
	// The first two fetches pass; they also advance the trigger counter.
	for i := 0; i < 2; i++ {
		if _, err := f.Fetch(0, 1, []graph.VertexID{v1}); err != nil {
			t.Fatalf("fetch %d before partition: %v", i, err)
		}
	}
	// The reverse direction keeps working even after the trigger: the
	// partition is asymmetric, only A→B traffic vanishes.
	if _, err := f.Fetch(1, 0, []graph.VertexID{v0}); err != nil {
		t.Fatalf("B→A fetch during partition: %v", err)
	}
	// A→B now hangs until the fabric is torn down.
	done := make(chan error, 1)
	go func() {
		_, err := f.Fetch(0, 1, []graph.VertexID{v1})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("partitioned fetch returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("post-close error = %v, want ErrInjected", err)
	}
}

func TestSlowdownDelaysOnlyStraggler(t *testing.T) {
	g := graph.RMATDefault(100, 400, 5)
	asg := partition.NewAssignment(2, 1)
	in := NewInjector(Profile{Seed: 1, Slowdowns: []Slowdown{{Node: 0, Factor: 20}}}, 2, nil)
	f := in.Wrap(testFabric(g, 2, nil))
	defer f.Close()
	var v0, v1 graph.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		id := graph.VertexID(u)
		if asg.Owner(id) == 0 {
			v0 = id
		} else {
			v1 = id
		}
	}
	// Straggler-issued fetches carry 20 × 200µs = 4ms each.
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := f.Fetch(0, 1, []graph.VertexID{v1}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("5 straggler fetches in %v: slowdown not applied", elapsed)
	}
	// Fetches issued by healthy nodes (even toward the straggler) are not
	// delayed: the straggler is slow to ask, not slow to answer.
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := f.Fetch(1, 0, []graph.VertexID{v0}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("5 healthy fetches took %v: slowdown leaked to the wrong node", elapsed)
	}
}

func TestSyntheticWireFaultsDeterministic(t *testing.T) {
	// Over a fabric with no byte-level fault surface (Local), corrupt and
	// drop inject their detection outcomes synthetically, with the documented
	// error classes and a schedule fixed by the seed.
	run := func(seed int64) (corrupt, dropped []bool) {
		g := graph.RMATDefault(100, 400, 5)
		asg := partition.NewAssignment(2, 1)
		m := metrics.NewCluster(2)
		in := NewInjector(Profile{Seed: seed, CorruptRate: 0.15, DropRate: 0.15}, 2, m)
		f := in.Wrap(testFabric(g, 2, m))
		defer f.Close()
		var v graph.VertexID
		for u := 0; u < g.NumVertices(); u++ {
			if asg.Owner(graph.VertexID(u)) == 1 {
				v = graph.VertexID(u)
				break
			}
		}
		for i := 0; i < 200; i++ {
			_, err := f.Fetch(0, 1, []graph.VertexID{v})
			corrupt = append(corrupt, errors.Is(err, comm.ErrCorruptFrame))
			dropped = append(dropped, errors.Is(err, ErrConnDropped))
			if err != nil && !errors.Is(err, comm.ErrCorruptFrame) && !errors.Is(err, ErrConnDropped) {
				t.Fatalf("fetch %d: unexpected error class %v", i, err)
			}
		}
		if got := m.Summarize().CorruptFrames; got == 0 {
			t.Fatal("no corrupt frames accounted")
		}
		return corrupt, dropped
	}
	c1, d1 := run(42)
	c2, d2 := run(42)
	nc, nd := 0, 0
	for i := range c1 {
		if c1[i] != c2[i] || d1[i] != d2[i] {
			t.Fatalf("wire-fault decision %d differs across runs with equal seed", i)
		}
		if c1[i] {
			nc++
		}
		if d1[i] {
			nd++
		}
	}
	if nc == 0 || nd == 0 {
		t.Fatalf("degenerate schedule: %d corruptions, %d drops in 200 fetches", nc, nd)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("seed=7,err=0.05,latency=200us,crash=2@500,crash=3@900")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.ErrorRate != 0.05 || p.MaxLatency != 200*time.Microsecond {
		t.Fatalf("parsed %+v", p)
	}
	if len(p.Crashes) != 2 || p.Crashes[0] != (Crash{Node: 2, After: 500}) || p.Crashes[1] != (Crash{Node: 3, After: 900}) {
		t.Fatalf("crashes %+v", p.Crashes)
	}
	if p.Zero() {
		t.Fatal("non-trivial profile reported Zero")
	}
	// Round trip through String.
	q, err := ParseProfile(p.String())
	if err != nil || q.Seed != p.Seed || q.ErrorRate != p.ErrorRate || len(q.Crashes) != 2 {
		t.Fatalf("round trip: %+v, %v", q, err)
	}
	for _, spec := range []string{"", "none", "off"} {
		if p, err := ParseProfile(spec); p != nil || err != nil {
			t.Fatalf("ParseProfile(%q) = %v, %v", spec, p, err)
		}
	}
	for _, bad := range []string{"err=2", "seed=x", "crash=5", "latency=-1s", "bogus=1", "err"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("ParseProfile(%q) accepted", bad)
		}
	}
}
