// Package fsm implements Frequent Subgraph Mining (paper §7.1, Table 4):
// finding all labeled patterns whose support in a labeled input graph
// reaches a user threshold. Support is the minimum-node-image (MNI) measure
// of Bringmann & Nijssen — the paper's frequency definition [6]: for each
// pattern position, collect the set of distinct graph vertices that appear
// at that position across all embeddings; support is the smallest such set.
//
// Following the paper (and Peregrine's evaluation), candidate patterns are
// grown edge by edge up to three edges, pruned by the anti-monotonicity of
// MNI support. Enumeration for support counting runs on the Khuzdul cluster
// with an embedding sink that accumulates per-position vertex bitsets;
// bitsets are OR-merged across machines — the reduction a real deployment
// would run over MPI.
package fsm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"khuzdul/internal/cluster"
	"khuzdul/internal/core"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Config tunes the mining run.
type Config struct {
	// MinSupport is the frequency threshold.
	MinSupport uint64
	// MaxEdges bounds the pattern size (paper: 3).
	MaxEdges int
	// Style selects the client system's plan style.
	Style plan.Style
}

func (c Config) withDefaults() Config {
	if c.MaxEdges <= 0 {
		c.MaxEdges = 3
	}
	return c
}

// FrequentPattern is one mining result.
type FrequentPattern struct {
	Pattern *pattern.Pattern
	Support uint64
}

// Result reports a mining run.
type Result struct {
	Frequent []FrequentPattern
	Elapsed  time.Duration
	// ModeledElapsed accumulates the modeled parallel makespan of every
	// support computation (see cluster.Result.ModeledElapsed); candidate
	// generation itself is serial and negligible.
	ModeledElapsed time.Duration
	// Examined counts candidate patterns whose support was computed.
	Examined int
}

// Mine runs FSM on a Khuzdul cluster over a labeled graph.
func Mine(c *cluster.Cluster, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g := c.Graph()
	if !g.Labeled() {
		return Result{}, fmt.Errorf("fsm: graph is unlabeled")
	}
	support := func(pat *pattern.Pattern) (uint64, time.Duration, error) {
		return clusterSupport(c, pat, cfg.Style)
	}
	return mine(g, cfg, support)
}

// MineSingle runs FSM on one machine with the given thread count — the
// AutomineIH/Peregrine single-machine baselines of Table 4.
func MineSingle(g *graph.Graph, cfg Config, threads int) (Result, error) {
	cfg = cfg.withDefaults()
	if !g.Labeled() {
		return Result{}, fmt.Errorf("fsm: graph is unlabeled")
	}
	support := func(pat *pattern.Pattern) (uint64, time.Duration, error) {
		return localSupportTimed(g, pat, cfg.Style, threads)
	}
	return mine(g, cfg, support)
}

// mine is the shared candidate-generation loop: seed with frequent labeled
// edges, extend frequent patterns by one edge, dedup canonically, stop at
// MaxEdges.
func mine(g *graph.Graph, cfg Config, support func(*pattern.Pattern) (uint64, time.Duration, error)) (Result, error) {
	start := time.Now()
	labels := distinctLabels(g)
	var res Result

	// Seed: single-edge labeled patterns.
	var frontier []FrequentPattern
	seen := map[string]bool{}
	for i, la := range labels {
		for _, lb := range labels[i:] {
			pat := pattern.PathP(2).WithLabels([]graph.Label{la, lb})
			code := pattern.CanonicalCode(pat)
			if seen[code] {
				continue
			}
			seen[code] = true
			res.Examined++
			s, modeled, err := support(pat)
			if err != nil {
				return Result{}, err
			}
			res.ModeledElapsed += modeled
			if s >= cfg.MinSupport {
				fp := FrequentPattern{Pattern: pat, Support: s}
				frontier = append(frontier, fp)
				res.Frequent = append(res.Frequent, fp)
			}
		}
	}

	// Grow: one edge at a time.
	for edges := 2; edges <= cfg.MaxEdges; edges++ {
		var next []FrequentPattern
		for _, fp := range frontier {
			for _, cand := range extendByOneEdge(fp.Pattern, labels) {
				code := pattern.CanonicalCode(cand)
				if seen[code] {
					continue
				}
				seen[code] = true
				res.Examined++
				s, modeled, err := support(cand)
				if err != nil {
					return Result{}, err
				}
				res.ModeledElapsed += modeled
				if s >= cfg.MinSupport {
					nfp := FrequentPattern{Pattern: cand, Support: s}
					next = append(next, nfp)
					res.Frequent = append(res.Frequent, nfp)
				}
			}
		}
		frontier = next
	}
	sortResults(res.Frequent)
	res.Elapsed = time.Since(start)
	return res, nil
}

// extendByOneEdge generates the candidates reachable from pat by adding one
// edge: either closing two existing non-adjacent vertices, or attaching a
// new vertex (any label) to an existing one.
func extendByOneEdge(pat *pattern.Pattern, labels []graph.Label) []*pattern.Pattern {
	var out []*pattern.Pattern
	k := pat.NumVertices()
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if !pat.HasEdge(u, v) {
				q := pat.Clone()
				q.AddEdge(u, v)
				out = append(out, q)
			}
		}
	}
	if k < pattern.MaxVertices {
		for u := 0; u < k; u++ {
			for _, l := range labels {
				lbls := make([]graph.Label, k+1)
				for i := 0; i < k; i++ {
					lbls[i] = pat.Label(i)
				}
				lbls[k] = l
				q := pattern.New(k + 1)
				for a := 0; a < k; a++ {
					for b := a + 1; b < k; b++ {
						if pat.HasEdge(a, b) {
							q.AddEdge(a, b)
						}
					}
				}
				q.AddEdge(u, k)
				out = append(out, q.WithLabels(lbls))
			}
		}
	}
	return out
}

// domainSink accumulates MNI domains: one bitset of graph vertices per
// pattern position (in original pattern indices).
type domainSink struct {
	order []int // matching-order position → original pattern vertex
	mu    sync.Mutex
	doms  []bitset
}

func newDomainSink(pl *plan.Plan, n int) *domainSink {
	s := &domainSink{order: pl.Order, doms: make([]bitset, pl.K)}
	for i := range s.doms {
		s.doms[i] = newBitset(n)
	}
	return s
}

func (s *domainSink) OnMatch(emb []graph.VertexID) {
	s.mu.Lock()
	for pos, v := range emb {
		s.doms[s.order[pos]].set(uint32(v))
	}
	s.mu.Unlock()
}

func (s *domainSink) CountOnly() bool { return false }

// merge ORs another sink's domains into this one (the cross-machine
// reduction).
func (s *domainSink) merge(o *domainSink) {
	for i := range s.doms {
		s.doms[i].or(o.doms[i])
	}
}

// support is the MNI measure: the smallest per-position domain.
func (s *domainSink) support() uint64 {
	min := s.doms[0].count()
	for _, d := range s.doms[1:] {
		if c := d.count(); c < min {
			min = c
		}
	}
	return min
}

// clusterSupport computes MNI support distributedly: every engine instance
// gets its own domain sink; sinks are merged afterwards. Symmetry breaking
// must be off — MNI needs every position image, not one canonical embedding
// per orbit.
func clusterSupport(c *cluster.Cluster, pat *pattern.Pattern, style plan.Style) (uint64, time.Duration, error) {
	pl, err := plan.Compile(pat, plan.Options{
		Style: style, DisableSymmetryBreak: true, Stats: plan.StatsOf(c.Graph()),
	})
	if err != nil {
		return 0, 0, err
	}
	n := c.Graph().NumVertices()
	var mu sync.Mutex
	var sinks []*domainSink
	res, err := c.Run(pl, func(node, socket int) core.Sink {
		s := newDomainSink(pl, n)
		mu.Lock()
		sinks = append(sinks, s)
		mu.Unlock()
		return s
	})
	if err != nil {
		return 0, 0, err
	}
	root := sinks[0]
	for _, s := range sinks[1:] {
		root.merge(s)
	}
	return root.support(), res.ModeledElapsed, nil
}

// localSupport computes MNI support on one machine.
func localSupport(g *graph.Graph, pat *pattern.Pattern, style plan.Style, threads int) (uint64, error) {
	s, _, err := localSupportTimed(g, pat, style, threads)
	return s, err
}

// localSupportTimed additionally reports the modeled parallel makespan:
// static worker shards execute sequentially and are timed individually, and
// the makespan is the slowest shard. Sequential execution keeps the
// measurement valid on hosts with fewer cores than threads, and the
// shard-max exposes static-block imbalance (relevant for the Fractal-like
// baseline of Table 4).
func localSupportTimed(g *graph.Graph, pat *pattern.Pattern, style plan.Style, threads int) (uint64, time.Duration, error) {
	pl, err := plan.Compile(pat, plan.Options{
		Style: style, DisableSymmetryBreak: true, Stats: plan.StatsOf(g),
	})
	if err != nil {
		return 0, 0, err
	}
	if threads < 1 {
		threads = 1
	}
	n := g.NumVertices()
	block := (n + threads - 1) / threads
	sink := newDomainSink(pl, n)
	ex := plan.NewExecutor(pl, g.Neighbors, g.Label)
	var makespan time.Duration
	for t := 0; t < threads; t++ {
		lo, hi := t*block, (t+1)*block
		if hi > n {
			hi = n
		}
		t0 := time.Now()
		for v := lo; v < hi; v++ {
			ex.VisitRoot(graph.VertexID(v), sink.OnMatch)
		}
		if d := time.Since(t0); d > makespan {
			makespan = d
		}
	}
	return sink.support(), makespan, nil
}

// distinctLabels returns the sorted distinct labels of g.
func distinctLabels(g *graph.Graph) []graph.Label {
	seen := map[graph.Label]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		seen[g.Label(graph.VertexID(v))] = true
	}
	out := make([]graph.Label, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortResults(fps []FrequentPattern) {
	sort.Slice(fps, func(i, j int) bool {
		a, b := fps[i], fps[j]
		if a.Pattern.NumEdges() != b.Pattern.NumEdges() {
			return a.Pattern.NumEdges() < b.Pattern.NumEdges()
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return pattern.CanonicalCode(a.Pattern) < pattern.CanonicalCode(b.Pattern)
	})
}

// bitset is a dense vertex set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i uint32) { b[i/64] |= 1 << (i % 64) }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) count() uint64 {
	var n uint64
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
