package fsm

import (
	"testing"

	"khuzdul/internal/cluster"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// refSupport computes MNI support by brute-force enumeration of all
// injective label- and edge-respecting maps.
func refSupport(g *graph.Graph, pat *pattern.Pattern) uint64 {
	k := pat.NumVertices()
	doms := make([]map[graph.VertexID]bool, k)
	for i := range doms {
		doms[i] = map[graph.VertexID]bool{}
	}
	emb := make([]graph.VertexID, k)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			for i, v := range emb {
				doms[i][v] = true
			}
			return
		}
	next:
		for v := 0; v < g.NumVertices(); v++ {
			cand := graph.VertexID(v)
			if g.Label(cand) != pat.Label(pos) {
				continue
			}
			for j := 0; j < pos; j++ {
				if emb[j] == cand {
					continue next
				}
				if pat.HasEdge(j, pos) && !g.HasEdge(emb[j], cand) {
					continue next
				}
			}
			emb[pos] = cand
			rec(pos + 1)
		}
	}
	rec(0)
	min := uint64(1<<63 - 1)
	for _, d := range doms {
		if uint64(len(d)) < min {
			min = uint64(len(d))
		}
	}
	return min
}

func labeledGraph(n int, m uint64, numLabels int, seed int64) *graph.Graph {
	g0 := graph.RMATDefault(n, m, seed)
	g, err := g0.WithLabels(graph.RandomLabels(n, numLabels, seed+1))
	if err != nil {
		panic(err)
	}
	return g
}

func TestSupportMatchesReference(t *testing.T) {
	g := labeledGraph(40, 160, 2, 151)
	pats := []*pattern.Pattern{
		pattern.PathP(2).WithLabels([]graph.Label{0, 1}),
		pattern.PathP(3).WithLabels([]graph.Label{0, 1, 0}),
		pattern.Triangle().WithLabels([]graph.Label{0, 0, 1}),
		pattern.StarP(4).WithLabels([]graph.Label{1, 0, 0, 0}),
	}
	for _, pat := range pats {
		want := refSupport(g, pat)
		got, err := localSupport(g, pat, plan.StyleAutomine, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("localSupport(%v) = %d, want %d", pat, got, want)
		}
	}
}

func TestClusterSupportMatchesLocal(t *testing.T) {
	g := labeledGraph(60, 240, 3, 157)
	c, err := cluster.New(g, cluster.Config{NumNodes: 3, ThreadsPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pats := []*pattern.Pattern{
		pattern.PathP(2).WithLabels([]graph.Label{0, 1}),
		pattern.PathP(3).WithLabels([]graph.Label{1, 2, 1}),
		pattern.Triangle().WithLabels([]graph.Label{0, 1, 2}),
	}
	for _, pat := range pats {
		want, err := localSupport(g, pat, plan.StyleAutomine, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := clusterSupport(c, pat, plan.StyleAutomine)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("clusterSupport(%v) = %d, want %d", pat, got, want)
		}
	}
}

func TestMineSingleFindsFrequentPatterns(t *testing.T) {
	// A graph made of many disjoint labeled triangles (0-1-2): every labeled
	// sub-pattern of the triangle is frequent, anything else has support 0.
	b := graph.NewBuilder(0)
	labels := []graph.Label{}
	const copies = 20
	for i := 0; i < copies; i++ {
		base := graph.VertexID(3 * i)
		b.AddEdge(base, base+1)
		b.AddEdge(base+1, base+2)
		b.AddEdge(base+2, base)
		labels = append(labels, 0, 1, 2)
	}
	b.SetLabels(labels)
	g := b.Build()

	res, err := MineSingle(g, Config{MinSupport: copies, MaxEdges: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent: 3 labeled edges (0-1, 1-2, 0-2), 3 labeled wedges, 1 labeled
	// triangle = 7 patterns, all with support exactly `copies`.
	if len(res.Frequent) != 7 {
		for _, fp := range res.Frequent {
			t.Logf("frequent: %v support=%d", fp.Pattern, fp.Support)
		}
		t.Fatalf("found %d frequent patterns, want 7", len(res.Frequent))
	}
	for _, fp := range res.Frequent {
		if fp.Support != copies {
			t.Errorf("%v support = %d, want %d", fp.Pattern, fp.Support, copies)
		}
	}
	// The triangle itself must be among them.
	foundTriangle := false
	for _, fp := range res.Frequent {
		if fp.Pattern.NumEdges() == 3 && fp.Pattern.NumVertices() == 3 {
			foundTriangle = true
		}
	}
	if !foundTriangle {
		t.Fatal("labeled triangle not found frequent")
	}
}

func TestMineThresholdFilters(t *testing.T) {
	g := labeledGraph(80, 320, 2, 163)
	lo, err := MineSingle(g, Config{MinSupport: 2, MaxEdges: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MineSingle(g, Config{MinSupport: 1 << 40, MaxEdges: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi.Frequent) != 0 {
		t.Fatalf("impossible threshold found %d patterns", len(hi.Frequent))
	}
	if len(lo.Frequent) == 0 {
		t.Fatal("low threshold found nothing")
	}
	// Anti-monotone sanity: every reported support meets the threshold.
	for _, fp := range lo.Frequent {
		if fp.Support < 2 {
			t.Errorf("%v support %d below threshold", fp.Pattern, fp.Support)
		}
	}
}

func TestMineClusterMatchesSingle(t *testing.T) {
	g := labeledGraph(50, 200, 2, 167)
	single, err := MineSingle(g, Config{MinSupport: 3, MaxEdges: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, cluster.Config{NumNodes: 3, ThreadsPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dist, err := Mine(c, Config{MinSupport: 3, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Frequent) != len(dist.Frequent) {
		t.Fatalf("single found %d, cluster %d", len(single.Frequent), len(dist.Frequent))
	}
	for i := range single.Frequent {
		a, b := single.Frequent[i], dist.Frequent[i]
		if a.Support != b.Support || !pattern.Isomorphic(a.Pattern, b.Pattern) {
			t.Fatalf("mismatch at %d: %v/%d vs %v/%d",
				i, a.Pattern, a.Support, b.Pattern, b.Support)
		}
	}
}

func TestMineRejectsUnlabeled(t *testing.T) {
	g := graph.Path(5)
	if _, err := MineSingle(g, Config{MinSupport: 1}, 1); err == nil {
		t.Fatal("want error for unlabeled graph")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if b.count() != 3 {
		t.Fatalf("count = %d", b.count())
	}
	o := newBitset(130)
	o.set(64)
	o.set(65)
	b.or(o)
	if b.count() != 4 {
		t.Fatalf("count after or = %d", b.count())
	}
}
