package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V VertexID
}

// Builder accumulates edges and produces an immutable CSR Graph.
// Self-loops and duplicate edges are removed during Build, matching the
// preprocessing the paper applies to all datasets.
type Builder struct {
	n      int
	edges  []Edge
	labels []Label
}

// NewBuilder returns a builder for a graph with at least n vertices. The
// vertex count grows automatically if edges mention larger IDs.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records an undirected edge {u,v}. Self-loops are dropped at Build.
func (b *Builder) AddEdge(u, v VertexID) {
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// AddEdges records a batch of undirected edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// SetLabels assigns vertex labels; missing entries default to 0 at Build.
func (b *Builder) SetLabels(labels []Label) {
	b.labels = labels
}

// NumPendingEdges returns the number of edges recorded so far, before
// dedup/self-loop removal.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the CSR graph: symmetrizes, sorts adjacency lists,
// removes self-loops and duplicate edges.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]uint64, n+1)
	for _, e := range b.edges {
		if e.U == e.V {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	edges := make([]VertexID, deg[n])
	cur := make([]uint64, n)
	for _, e := range b.edges {
		if e.U == e.V {
			continue
		}
		edges[deg[e.U]+cur[e.U]] = e.V
		cur[e.U]++
		edges[deg[e.V]+cur[e.V]] = e.U
		cur[e.V]++
	}
	// Sort each adjacency list and dedup in place, compacting the edge array.
	offsets := make([]uint64, n+1)
	w := uint64(0)
	var maxDeg uint32
	for v := 0; v < n; v++ {
		offsets[v] = w
		adj := edges[deg[v] : deg[v]+cur[v]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		var last VertexID
		first := true
		for _, u := range adj {
			if !first && u == last {
				continue
			}
			edges[w] = u
			w++
			last = u
			first = false
		}
		if d := uint32(w - offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	offsets[n] = w
	g := &Graph{offsets: offsets, edges: edges[:w:w], maxDeg: maxDeg}
	if b.labels != nil {
		labels := make([]Label, n)
		copy(labels, b.labels)
		g.labels = labels
	}
	return g
}

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}

// FromAdjacency builds a graph from explicit adjacency (used by tests).
func FromAdjacency(adj [][]VertexID) *Graph {
	b := NewBuilder(len(adj))
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if VertexID(u) < v { // add each undirected edge once
				b.AddEdge(VertexID(u), v)
			}
		}
	}
	return b.Build()
}

// FromCSR wraps pre-built CSR arrays. Adjacency lists must already be sorted
// and deduplicated; this is validated and an error returned otherwise.
func FromCSR(offsets []uint64, edges []VertexID, labels []Label) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: empty offsets")
	}
	if offsets[len(offsets)-1] != uint64(len(edges)) {
		return nil, fmt.Errorf("graph: offsets end %d != len(edges) %d",
			offsets[len(offsets)-1], len(edges))
	}
	n := len(offsets) - 1
	var maxDeg uint32
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		adj := edges[offsets[v]:offsets[v+1]]
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				return nil, fmt.Errorf("graph: adjacency of %d not sorted/deduped", v)
			}
		}
		if d := uint32(len(adj)); d > maxDeg {
			maxDeg = d
		}
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), n)
	}
	return &Graph{offsets: offsets, edges: edges, labels: labels, maxDeg: maxDeg}, nil
}
