package graph

import (
	"sort"
)

// Edge-label support. The paper notes (§2.1) that "Khuzdul supports vertex
// labels, but the edge label support can be added without fundamental
// difficulty" — this file adds it: labels are stored per directed adjacency
// entry, parallel to the CSR edge array, so EdgeLabel lookups cost one
// binary search in the endpoint's adjacency list.

// LabeledEdge is an undirected edge carrying a label.
type LabeledEdge struct {
	U, V  VertexID
	Label Label
}

// EdgeLabeled reports whether the graph carries edge labels.
func (g *Graph) EdgeLabeled() bool { return g.elabels != nil }

// EdgeLabel returns the label of edge {u,v} and whether the edge exists.
// For unlabeled graphs the label is 0.
func (g *Graph) EdgeLabel(u, v VertexID) (Label, bool) {
	if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
		return 0, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i >= len(adj) || adj[i] != v {
		return 0, false
	}
	if g.elabels == nil {
		return 0, true
	}
	return g.elabels[g.offsets[u]+uint64(i)], true
}

// FromLabeledEdges builds an edge-labeled graph with n vertices. Duplicate
// edges keep the label of their first occurrence; self-loops are dropped.
func FromLabeledEdges(n int, edges []LabeledEdge) (*Graph, error) {
	for _, e := range edges {
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	type entry struct {
		nbr   VertexID
		label Label
	}
	adj := make([][]entry, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[e.U] = append(adj[e.U], entry{e.V, e.Label})
		adj[e.V] = append(adj[e.V], entry{e.U, e.Label})
	}
	offsets := make([]uint64, n+1)
	var flatEdges []VertexID
	var flatLabels []Label
	var maxDeg uint32
	for v := 0; v < n; v++ {
		lst := adj[v]
		sort.SliceStable(lst, func(i, j int) bool { return lst[i].nbr < lst[j].nbr })
		offsets[v] = uint64(len(flatEdges))
		var last VertexID
		first := true
		for _, e := range lst {
			if !first && e.nbr == last {
				continue
			}
			flatEdges = append(flatEdges, e.nbr)
			flatLabels = append(flatLabels, e.label)
			last = e.nbr
			first = false
		}
		if d := uint32(uint64(len(flatEdges)) - offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	offsets[n] = uint64(len(flatEdges))
	// Duplicate edges resolve symmetrically: both directions are inserted in
	// the same order and the stable sort keeps the first occurrence, so the
	// two directions of an edge always carry the same label.
	return &Graph{offsets: offsets, edges: flatEdges, elabels: flatLabels, maxDeg: maxDeg}, nil
}

// WithRandomEdgeLabels returns a copy of g sharing adjacency storage with
// numLabels random edge labels (symmetric across directions), for synthetic
// edge-labeled workloads.
func (g *Graph) WithRandomEdgeLabels(numLabels int, seed int64) *Graph {
	elabels := make([]Label, len(g.edges))
	// Deterministic symmetric label: hash the unordered endpoint pair.
	for v := 0; v < g.NumVertices(); v++ {
		for i, u := range g.Neighbors(VertexID(v)) {
			a, b := VertexID(v), u
			if a > b {
				a, b = b, a
			}
			h := uint64(a)<<32 | uint64(b)
			h ^= uint64(seed)
			h *= 0x9e3779b97f4a7c15
			h ^= h >> 32
			elabels[g.offsets[v]+uint64(i)] = Label(h % uint64(numLabels))
		}
	}
	ng := *g
	ng.elabels = elabels
	return &ng
}
