package graph

import (
	"testing"
)

func TestFromLabeledEdges(t *testing.T) {
	g, err := FromLabeledEdges(0, []LabeledEdge{
		{U: 0, V: 1, Label: 5},
		{U: 1, V: 2, Label: 7},
		{U: 2, V: 0, Label: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.EdgeLabeled() {
		t.Fatal("graph not edge-labeled")
	}
	cases := []struct {
		u, v VertexID
		want Label
	}{{0, 1, 5}, {1, 0, 5}, {1, 2, 7}, {2, 1, 7}, {0, 2, 9}, {2, 0, 9}}
	for _, c := range cases {
		got, ok := g.EdgeLabel(c.u, c.v)
		if !ok || got != c.want {
			t.Errorf("EdgeLabel(%d,%d) = %d,%v want %d", c.u, c.v, got, ok, c.want)
		}
	}
	if _, ok := g.EdgeLabel(0, 3); ok {
		t.Fatal("EdgeLabel on absent edge reported ok")
	}
}

func TestFromLabeledEdgesDedupAndLoops(t *testing.T) {
	g, err := FromLabeledEdges(3, []LabeledEdge{
		{U: 0, V: 1, Label: 1},
		{U: 1, V: 0, Label: 1}, // duplicate, same label: fine
		{U: 2, V: 2, Label: 9}, // self-loop: dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestFromLabeledEdgesFirstOccurrenceWins(t *testing.T) {
	g, err := FromLabeledEdges(2, []LabeledEdge{
		{U: 0, V: 1, Label: 1},
		{U: 1, V: 0, Label: 2}, // duplicate with a different label
	})
	if err != nil {
		t.Fatal(err)
	}
	// First occurrence wins, symmetrically in both directions.
	a, _ := g.EdgeLabel(0, 1)
	b, _ := g.EdgeLabel(1, 0)
	if a != 1 || b != 1 {
		t.Fatalf("labels = %d/%d, want 1/1", a, b)
	}
}

func TestWithRandomEdgeLabelsSymmetric(t *testing.T) {
	g := RMATDefault(200, 800, 33).WithRandomEdgeLabels(3, 11)
	if !g.EdgeLabeled() {
		t.Fatal("not edge-labeled")
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			a, okA := g.EdgeLabel(VertexID(v), u)
			b, okB := g.EdgeLabel(u, VertexID(v))
			if !okA || !okB || a != b {
				t.Fatalf("asymmetric edge label on {%d,%d}: %d/%v vs %d/%v", v, u, a, okA, b, okB)
			}
			if a > 2 {
				t.Fatalf("label %d out of range", a)
			}
		}
	}
}

func TestUnlabeledEdgeLabelZero(t *testing.T) {
	g := Path(3)
	if g.EdgeLabeled() {
		t.Fatal("plain graph claims edge labels")
	}
	l, ok := g.EdgeLabel(0, 1)
	if !ok || l != 0 {
		t.Fatalf("EdgeLabel on unlabeled graph = %d,%v", l, ok)
	}
}
