package graph

import (
	"math/rand"
)

// RMAT generates a scale-free graph with the recursive-matrix method of
// Chakrabarti et al. It is the stand-in for the skewed SNAP/WebGraph datasets
// of the paper (LiveJournal, UK, Twitter, ...): the (a,b,c,d) probabilities
// control skew. n is rounded up to a power of two for edge placement but the
// graph keeps exactly n vertices (edges falling outside are re-drawn).
func RMAT(n int, m uint64, a, b, c float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	scale := 0
	for 1<<scale < n {
		scale++
	}
	bld := NewBuilder(n)
	for placed := uint64(0); placed < m; {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left quadrant: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		bld.AddEdge(VertexID(u), VertexID(v))
		placed++
	}
	return bld.Build()
}

// RMATDefault generates an R-MAT graph with the conventional skewed
// parameters (0.57, 0.19, 0.19).
func RMATDefault(n int, m uint64, seed int64) *Graph {
	return RMAT(n, m, 0.57, 0.19, 0.19, seed)
}

// Uniform generates a uniformly random graph with n vertices and ~m distinct
// edges (Erdős–Rényi G(n,m) flavor). It is the stand-in for less-skewed
// datasets like Patents.
func Uniform(n int, m uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for placed := uint64(0); placed < m; {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		bld.AddEdge(u, v)
		placed++
	}
	return bld.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	bld := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			bld.AddEdge(VertexID(u), VertexID(v))
		}
	}
	return bld.Build()
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *Graph {
	bld := NewBuilder(n)
	for v := 0; v < n; v++ {
		bld.AddEdge(VertexID(v), VertexID((v+1)%n))
	}
	return bld.Build()
}

// Path returns the path graph P_n (n vertices, n-1 edges).
func Path(n int) *Graph {
	bld := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		bld.AddEdge(VertexID(v), VertexID(v+1))
	}
	return bld.Build()
}

// Star returns the star graph with one hub (vertex 0) and n-1 leaves.
func Star(n int) *Graph {
	bld := NewBuilder(n)
	for v := 1; v < n; v++ {
		bld.AddEdge(0, VertexID(v))
	}
	return bld.Build()
}

// Grid returns the rows×cols 2-D grid graph.
func Grid(rows, cols int) *Graph {
	bld := NewBuilder(rows * cols)
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				bld.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				bld.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return bld.Build()
}

// RandomLabels returns a label assignment with numLabels distinct labels
// drawn uniformly, as the paper does for unlabeled FSM datasets ("randomly
// synthesized their labels").
func RandomLabels(n, numLabels int, seed int64) []Label {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(rng.Intn(numLabels))
	}
	return labels
}
