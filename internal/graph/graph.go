// Package graph provides the in-memory graph substrate used by every engine
// in this repository: a compressed sparse row (CSR) representation of an
// undirected graph with optional vertex labels, builders, synthetic
// generators, text and binary I/O, and the degree-order orientation
// preprocessing used for triangle/clique workloads.
//
// Vertices are dense integers in [0, NumVertices). Adjacency lists are sorted
// ascending, which the set-operation kernels in internal/setops rely on.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. 32 bits is enough for every graph this
// repository targets (up to a few billion edges) while halving the memory
// footprint of adjacency data compared to 64-bit IDs.
type VertexID uint32

// Label is a vertex label. FSM workloads use small label alphabets.
type Label uint32

// Graph is an immutable undirected graph in CSR form. Each undirected edge
// {u,v} is stored twice, once in each endpoint's adjacency list.
type Graph struct {
	offsets []uint64 // len = n+1; adjacency of v is edges[offsets[v]:offsets[v+1]]
	edges   []VertexID
	labels  []Label // nil if the graph is unlabeled
	elabels []Label // per directed adjacency entry; nil if edges are unlabeled
	maxDeg  uint32
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges (each {u,v} counted once).
func (g *Graph) NumEdges() uint64 { return uint64(len(g.edges)) / 2 }

// NumDirectedEdges returns the number of directed adjacency entries. For an
// oriented (DAG) graph this equals the number of edges; for an undirected
// graph it is twice NumEdges.
func (g *Graph) NumDirectedEdges() uint64 { return uint64(len(g.edges)) }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v VertexID) uint32 {
	return uint32(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree over all vertices.
func (g *Graph) MaxDegree() uint32 { return g.maxDeg }

// Labeled reports whether the graph carries vertex labels.
func (g *Graph) Labeled() bool { return g.labels != nil }

// Label returns the label of v, or 0 for unlabeled graphs.
func (g *Graph) Label(v VertexID) Label {
	if g.labels == nil {
		return 0
	}
	return g.labels[v]
}

// Labels returns the label slice (nil for unlabeled graphs). The slice
// aliases internal storage.
func (g *Graph) Labels() []Label { return g.labels }

// HasEdge reports whether {u,v} is an edge, by binary search on the shorter
// adjacency list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// SizeBytes returns the approximate in-memory size of the adjacency data.
// Used to express cache sizes as a fraction of graph size, as the paper does.
func (g *Graph) SizeBytes() uint64 {
	return uint64(len(g.edges))*4 + uint64(len(g.offsets))*8
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d maxdeg=%d labeled=%v}",
		g.NumVertices(), g.NumEdges(), g.maxDeg, g.Labeled())
}

// WithLabels returns a copy of g sharing adjacency storage but carrying the
// given labels. len(labels) must equal NumVertices.
func (g *Graph) WithLabels(labels []Label) (*Graph, error) {
	if len(labels) != g.NumVertices() {
		return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	ng := *g
	ng.labels = labels
	return &ng, nil
}

// DegreeHistogram returns counts of vertices per degree bucket boundaries
// [1,2,4,8,...]; bucket i counts vertices with degree in [2^i, 2^(i+1)).
// Bucket 0 additionally includes isolated vertices.
func (g *Graph) DegreeHistogram() []int {
	var hist []int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		b := 0
		for d>>uint(b+1) > 0 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
