package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop
	b.AddEdge(1, 3)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Neighbors(1) = %v, want [0 3]", got)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0 (self-loop dropped)", g.Degree(2))
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := RMATDefault(1000, 5000, 42)
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(VertexID(v))
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("adjacency of %d not strictly sorted: %v", v, adj)
			}
		}
	}
}

func TestSymmetry(t *testing.T) {
	g := Uniform(500, 2000, 7)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if !g.HasEdge(u, VertexID(v)) {
				t.Fatalf("edge (%d,%d) present but (%d,%d) missing", v, u, u, v)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := Complete(5)
	for u := VertexID(0); u < 5; u++ {
		for v := VertexID(0); v < 5; v++ {
			want := u != v
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if g.HasEdge(0, 0) {
		t.Fatal("HasEdge(0,0) = true on K5")
	}
}

func TestStructuredGenerators(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		n     int
		m     uint64
		maxDe uint32
	}{
		{"K6", Complete(6), 6, 15, 5},
		{"C10", Cycle(10), 10, 10, 2},
		{"P7", Path(7), 7, 6, 2},
		{"Star9", Star(9), 9, 8, 8},
		{"Grid3x4", Grid(3, 4), 12, 17, 4},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.n {
			t.Errorf("%s: |V| = %d, want %d", c.name, c.g.NumVertices(), c.n)
		}
		if c.g.NumEdges() != c.m {
			t.Errorf("%s: |E| = %d, want %d", c.name, c.g.NumEdges(), c.m)
		}
		if c.g.MaxDegree() != c.maxDe {
			t.Errorf("%s: maxdeg = %d, want %d", c.name, c.g.MaxDegree(), c.maxDe)
		}
	}
}

func TestRMATSkewedVsUniform(t *testing.T) {
	// The R-MAT generator must produce a heavier tail than the uniform one;
	// this is what the dataset presets rely on.
	rm := RMATDefault(1<<12, 40000, 1)
	un := Uniform(1<<12, 40000, 1)
	if rm.MaxDegree() <= 2*un.MaxDegree() {
		t.Fatalf("R-MAT max degree %d not clearly above uniform %d",
			rm.MaxDegree(), un.MaxDegree())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMATDefault(256, 1024, 99)
	b := RMATDefault(256, 1024, 99)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Neighbors(VertexID(v)), b.Neighbors(VertexID(v))
		if len(av) != len(bv) {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("vertex %d: adjacency mismatch", v)
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMATDefault(200, 800, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	// Trailing isolated vertices are not representable in edge-list text,
	// so compare over the round-tripped vertex count.
	for v := 0; v < g2.NumVertices(); v++ {
		a, b := g.Neighbors(VertexID(v)), g2.Neighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch after round trip", v)
		}
	}
}

func TestEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Fatalf("got |V|=%d |E|=%d, want 3, 2", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListMalformed(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("0\n")); err == nil {
		t.Fatal("want error for single-field line")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("a b\n")); err == nil {
		t.Fatal("want error for non-numeric vertex")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g0 := RMATDefault(300, 1200, 11)
	g, err := g0.WithLabels(RandomLabels(300, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch after binary round trip")
	}
	if !g2.Labeled() {
		t.Fatal("labels lost in binary round trip")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Label(VertexID(v)) != g2.Label(VertexID(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
		a, b := g.Neighbors(VertexID(v)), g2.Neighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("not a graph at all........")); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestFromCSRValidation(t *testing.T) {
	if _, err := FromCSR([]uint64{0, 2}, []VertexID{3, 1}, nil); err == nil {
		t.Fatal("want error for unsorted adjacency")
	}
	if _, err := FromCSR([]uint64{0, 1}, []VertexID{}, nil); err == nil {
		t.Fatal("want error for offsets/edges mismatch")
	}
	if _, err := FromCSR([]uint64{0, 1}, []VertexID{0}, []Label{1, 2}); err == nil {
		t.Fatal("want error for label length mismatch")
	}
}

func TestOrientCountsHalve(t *testing.T) {
	g := RMATDefault(500, 3000, 13)
	d := Orient(g)
	if d.NumDirectedEdges() != g.NumEdges() {
		t.Fatalf("oriented directed edges %d, want undirected count %d",
			d.NumDirectedEdges(), g.NumEdges())
	}
	// Every directed edge goes up in (degree, id) rank; hence acyclic.
	for v := 0; v < d.NumVertices(); v++ {
		for _, u := range d.Neighbors(VertexID(v)) {
			dv, du := g.Degree(VertexID(v)), g.Degree(u)
			if du < dv || (du == dv && u < VertexID(v)) {
				t.Fatalf("edge %d->%d violates rank order", v, u)
			}
		}
	}
}

func TestOrientReducesMaxDegree(t *testing.T) {
	g := Star(1000)
	d := Orient(g)
	// The hub has max rank, so its out-degree must be 0 after orientation.
	if d.Degree(0) != 0 {
		t.Fatalf("hub out-degree = %d, want 0", d.Degree(0))
	}
}

func TestWithLabels(t *testing.T) {
	g := Path(4)
	if _, err := g.WithLabels([]Label{1, 2}); err == nil {
		t.Fatal("want error for wrong label count")
	}
	lg, err := g.WithLabels([]Label{3, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lg.Label(2) != 4 {
		t.Fatalf("Label(2) = %d, want 4", lg.Label(2))
	}
	if g.Labeled() {
		t.Fatal("WithLabels mutated the receiver")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(9) // hub degree 8, leaves degree 1
	h := g.DegreeHistogram()
	if h[0] != 8 {
		t.Fatalf("bucket 0 = %d, want 8 leaves", h[0])
	}
	if h[3] != 1 {
		t.Fatalf("bucket 3 = %d, want 1 hub (degree 8)", h[3])
	}
}

// quickGraph generates a random small graph for property tests.
func quickGraph(rng *rand.Rand) *Graph {
	n := 2 + rng.Intn(30)
	m := uint64(rng.Intn(3 * n))
	return Uniform(n, m, rng.Int63())
}

func TestPropertySymmetricDegreeSum(t *testing.T) {
	// Sum of degrees is exactly twice the edge count for any built graph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng)
		var sum uint64
		for v := 0; v < g.NumVertices(); v++ {
			sum += uint64(g.Degree(VertexID(v)))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOrientPartition(t *testing.T) {
	// Orientation keeps exactly one direction of every undirected edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng)
		d := Orient(g)
		seen := uint64(0)
		for v := 0; v < d.NumVertices(); v++ {
			for _, u := range d.Neighbors(VertexID(v)) {
				if !g.HasEdge(VertexID(v), u) {
					return false
				}
				seen++
			}
		}
		return seen == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
