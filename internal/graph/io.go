package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list text stream: one
// "u v" pair per line; lines starting with '#' or '%' are comments. This is
// the SNAP dataset format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	bld := NewBuilder(0)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineno, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		bld.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return bld.Build(), nil
}

// WriteEdgeList writes each undirected edge once as "u v" lines.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = 0x4b485a44 // "KHZD"

// WriteBinary serializes the graph in a compact little-endian CSR format:
// magic, version, n, labeled flag, offsets, edges, labels.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, 1, uint64(g.NumVertices())}
	if g.Labeled() {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.edges); err != nil {
		return err
	}
	if g.Labeled() {
		if err := binary.Write(bw, binary.LittleEndian, g.labels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	n := int(hdr[2])
	offsets := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, err
	}
	edges := make([]VertexID, offsets[n])
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, err
	}
	var labels []Label
	if hdr[3] == 1 {
		labels = make([]Label, n)
		if err := binary.Read(br, binary.LittleEndian, labels); err != nil {
			return nil, err
		}
	}
	return FromCSR(offsets, edges, labels)
}
