package graph

// Orient converts the undirected graph into a DAG by keeping, for every edge
// {u,v}, only the direction from the lower-ranked to the higher-ranked
// endpoint, where rank orders vertices by (degree, id). This is the
// "orientation" optimization the paper adopts (from Pangolin) for triangle
// and clique counting on skewed graphs: every k-clique of the original graph
// appears exactly once as a directed k-clique of the DAG, and maximum
// out-degree is bounded by the graph degeneracy-ish order.
//
// The result is returned as a Graph whose adjacency lists contain only
// out-neighbors (so NumEdges of the result equals the undirected edge count
// of the input). Labels are preserved.
func Orient(g *Graph) *Graph {
	n := g.NumVertices()
	rankLess := func(u, v VertexID) bool {
		du, dv := g.Degree(u), g.Degree(v)
		if du != dv {
			return du < dv
		}
		return u < v
	}
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		cnt := uint64(0)
		for _, u := range g.Neighbors(VertexID(v)) {
			if rankLess(VertexID(v), u) {
				cnt++
			}
		}
		offsets[v+1] = offsets[v] + cnt
	}
	edges := make([]VertexID, offsets[n])
	var maxDeg uint32
	for v := 0; v < n; v++ {
		w := offsets[v]
		for _, u := range g.Neighbors(VertexID(v)) {
			if rankLess(VertexID(v), u) {
				edges[w] = u
				w++
			}
		}
		// Input adjacency is sorted by ID; out-neighbors keep that order.
		if d := uint32(w - offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return &Graph{offsets: offsets, edges: edges, labels: g.labels, maxDeg: maxDeg}
}
