// Package graphpi is the k-GraphPi client system: the port of GraphPi's
// schedule-optimized pattern enumeration onto the Khuzdul engine (paper §6).
// GraphPi's contribution is searching the space of (matching order,
// symmetry-breaking restriction set) pairs with a cost model; the port keeps
// that search (plan.StyleGraphPi enumerates every connected-prefix order and
// scores it) and hands the winning schedule to the engine as an EXTEND plan.
// The paper observes k-GraphPi beating k-Automine on 3-motif counting thanks
// to these better schedules; the same effect reproduces here.
package graphpi

import (
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Name identifies the system in experiment output.
const Name = "k-GraphPi"

// Options tunes compilation.
type Options struct {
	// Induced selects induced (motif) matching semantics.
	Induced bool
	// DisableVCS turns off vertical computation sharing (Figure 11).
	DisableVCS bool
	// DisableSymmetryBreak drops restrictions; used with orientation
	// preprocessing, which breaks symmetry structurally.
	DisableSymmetryBreak bool
}

// Compile produces a GraphPi-style EXTEND plan for pat, using g's degree
// statistics to drive the schedule cost model (g may be nil for defaults).
func Compile(pat *pattern.Pattern, g *graph.Graph, opts Options) (*plan.Plan, error) {
	po := plan.Options{
		Style:                plan.StyleGraphPi,
		Induced:              opts.Induced,
		DisableVCS:           opts.DisableVCS,
		DisableSymmetryBreak: opts.DisableSymmetryBreak,
	}
	if g != nil {
		po.Stats = plan.StatsOf(g)
	}
	return plan.Compile(pat, po)
}

// CompileMotifs compiles plans for every connected size-k pattern with
// induced semantics.
func CompileMotifs(k int, g *graph.Graph, opts Options) ([]*plan.Plan, error) {
	opts.Induced = true
	pats := pattern.ConnectedPatterns(k)
	plans := make([]*plan.Plan, 0, len(pats))
	for _, pat := range pats {
		pl, err := Compile(pat, g, opts)
		if err != nil {
			return nil, err
		}
		plans = append(plans, pl)
	}
	return plans, nil
}
