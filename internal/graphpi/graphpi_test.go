package graphpi

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestCompileProducesGraphPiStyle(t *testing.T) {
	g := graph.RMATDefault(100, 500, 821)
	pl, err := Compile(pattern.House(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Style != plan.StyleGraphPi {
		t.Fatalf("style = %v", pl.Style)
	}
	if got, want := plan.CountGraph(pl, g), plan.BruteForceCount(g, pattern.House(), false); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestScheduleSearchUsesCostModel(t *testing.T) {
	// GraphPi's search must never pick a schedule worse than Automine's
	// canonical one under the same cost model.
	g := graph.RMATDefault(100, 500, 823)
	for _, pat := range []*pattern.Pattern{
		pattern.House(), pattern.TailedTriangle(), pattern.CycleP(5), pattern.Diamond(),
	} {
		gp, err := Compile(pat, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		am, err := plan.Compile(pat, plan.Options{Style: plan.StyleAutomine, Stats: plan.StatsOf(g)})
		if err != nil {
			t.Fatal(err)
		}
		if gp.EstCost > am.EstCost {
			t.Errorf("%v: GraphPi schedule cost %.1f worse than Automine's %.1f",
				pat, gp.EstCost, am.EstCost)
		}
	}
}

func TestCompileMotifs(t *testing.T) {
	g := graph.RMATDefault(60, 300, 827)
	plans, err := CompileMotifs(3, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("3-motif plans = %d, want 2", len(plans))
	}
	var total uint64
	for _, pl := range plans {
		total += plan.CountGraph(pl, g)
	}
	var want uint64
	for _, pat := range pattern.ConnectedPatterns(3) {
		want += plan.BruteForceCount(g, pat, true)
	}
	if total != want {
		t.Fatalf("3-motif total = %d, want %d", total, want)
	}
}
