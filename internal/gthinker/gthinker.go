// Package gthinker reimplements the G-thinker baseline the paper compares
// against (§2.3, Table 2, Figure 15): a distributed GPM system with
// partitioned graph and "moving data to computation", where each coarse
// task explores one whole embedding tree after fetching the k-hop subgraph
// it needs, and remote edge lists are managed by a general software cache
// that maintains a task↔data dependency map.
//
// The design decisions — coarse tasks, up-front k-hop fetch, per-access map
// bookkeeping under a lock, periodic reference-count garbage collection —
// are implemented as described; the resulting scheduler and cache overheads
// the paper measures emerge from the design rather than from any artificial
// slowdown.
package gthinker

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/comm"
	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Name identifies the baseline in experiment output.
const Name = "G-thinker"

// Config describes the simulated G-thinker deployment.
type Config struct {
	// NumNodes is the machine count.
	NumNodes int
	// ThreadsPerNode bounds the concurrently executing coarse tasks per
	// machine — the paper observes only a few hundred trees in flight.
	ThreadsPerNode int
	// CacheBytes is the per-machine software cache capacity.
	CacheBytes uint64
	// Induced selects induced (motif) matching semantics.
	Induced bool
	// Sequential runs the simulated machines one after another so that
	// per-machine busy times (and hence ModeledElapsed) stay accurate on
	// hosts with fewer cores than simulated workers.
	Sequential bool
}

// Result reports one run.
type Result struct {
	Count   uint64
	Elapsed time.Duration
	// ModeledElapsed is the modeled cluster makespan: the slowest machine's
	// total busy time (compute + scheduler + cache bookkeeping + blocking
	// network waits) divided by its task threads. G-thinker's network time
	// stays on the critical path because each coarse task blocks on its
	// k-hop fetch before computing.
	ModeledElapsed time.Duration
	Summary        metrics.Summary
}

// Count counts pat's embeddings with the G-thinker execution model.
func Count(g *graph.Graph, pat *pattern.Pattern, cfg Config) (Result, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 1
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	pl, err := plan.Compile(pat, plan.Options{
		Style: plan.StyleAutomine, Induced: cfg.Induced, Stats: plan.StatsOf(g),
	})
	if err != nil {
		return Result{}, err
	}

	asg := partition.NewAssignment(cfg.NumNodes, 1)
	met := metrics.NewCluster(cfg.NumNodes)
	locals := make([]*partition.Local, cfg.NumNodes)
	servers := make([]comm.Server, cfg.NumNodes)
	for node := 0; node < cfg.NumNodes; node++ {
		locals[node] = partition.NewLocal(g, asg, node)
		l := locals[node]
		servers[node] = comm.ServerFunc(func(ids []graph.VertexID) [][]graph.VertexID {
			out := make([][]graph.VertexID, len(ids))
			for i, id := range ids {
				out[i] = l.MustNeighbors(id)
			}
			return out
		})
	}
	fabric := comm.NewLocal(servers, met)
	defer fabric.Close()

	start := time.Now()
	var total atomic.Uint64
	if cfg.Sequential {
		for node := 0; node < cfg.NumNodes; node++ {
			n := newNode(locals[node], fabric, met.Nodes[node], cfg, pl)
			total.Add(n.run())
		}
	} else {
		var wg sync.WaitGroup
		for node := 0; node < cfg.NumNodes; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				n := newNode(locals[node], fabric, met.Nodes[node], cfg, pl)
				total.Add(n.run())
			}(node)
		}
		wg.Wait()
	}
	var modeled time.Duration
	for _, n := range met.Nodes {
		b := n.Breakdown()
		if m := b.Total() / time.Duration(cfg.ThreadsPerNode); m > modeled {
			modeled = m
		}
	}
	return Result{
		Count:          total.Load(),
		Elapsed:        time.Since(start),
		ModeledElapsed: modeled,
		Summary:        met.Summarize(),
	}, nil
}

// node is one G-thinker machine: a task queue over its owned roots, a
// worker pool, and the shared software cache.
type node struct {
	local  *partition.Local
	fabric comm.Fabric
	met    *metrics.Node
	cfg    Config
	pl     *plan.Plan
	cache  *swCache
	taskID atomic.Int64
}

func newNode(local *partition.Local, fabric comm.Fabric, met *metrics.Node, cfg Config, pl *plan.Plan) *node {
	return &node{
		local:  local,
		fabric: fabric,
		met:    met,
		cfg:    cfg,
		pl:     pl,
		cache:  newSWCache(cfg.CacheBytes),
	}
}

func (n *node) run() uint64 {
	roots := n.local.OwnedVertices()
	var cursor atomic.Int64
	var total atomic.Uint64
	var wg sync.WaitGroup
	for t := 0; t < n.cfg.ThreadsPerNode; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(roots) {
					break
				}
				local += n.runTask(roots[i])
			}
			total.Add(local)
		}()
	}
	wg.Wait()
	return total.Load()
}

// runTask is one coarse task: fetch the (K-2)-hop subgraph rooted at root,
// then explore the entire embedding tree locally (paper Figure 2).
func (n *node) runTask(root graph.VertexID) uint64 {
	id := n.taskID.Add(1)
	hops := n.pl.K - 1 // positions 0..K-2 need edge lists

	// Phase 1: gather the k-hop subgraph. Each hop discovers the next
	// frontier, so fetching proceeds hop by hop: local lookups are direct,
	// remote lists go through the software cache with task-dependency
	// bookkeeping, missing ones are fetched in per-owner batches.
	lists := map[graph.VertexID][]graph.VertexID{}
	frontier := []graph.VertexID{root}
	for hop := 0; hop < hops; hop++ {
		tSched := time.Now()
		var missing []graph.VertexID
		for _, v := range frontier {
			if _, ok := lists[v]; ok {
				continue
			}
			if adj, ok := n.local.Neighbors(v); ok {
				lists[v] = adj
				continue
			}
			missing = append(missing, v)
		}
		n.met.AddScheduler(time.Since(tSched))

		if len(missing) > 0 {
			n.fetchRemote(id, missing, lists)
		}
		if hop+1 == hops {
			break
		}
		tSched = time.Now()
		next := frontier[:0:0]
		seen := map[graph.VertexID]bool{}
		for _, v := range frontier {
			for _, u := range lists[v] {
				if _, have := lists[u]; !have && !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
		n.met.AddScheduler(time.Since(tSched))
	}

	// Phase 2: explore the whole embedding tree over the assembled
	// subgraph — one coarse unit of compute.
	tComp := time.Now()
	var labelOf plan.LabelFunc
	if n.local.NumVertices() > 0 {
		labelOf = n.local.Label
	}
	ex := plan.NewExecutor(n.pl, func(v graph.VertexID) []graph.VertexID {
		return lists[v]
	}, labelOf)
	count := ex.CountRoot(root)
	n.met.AddCompute(time.Since(tComp))
	n.met.Matches.Add(count)

	// Phase 3: release the task's cache references (the bookkeeping the
	// cache must do so entries become garbage-collectable).
	n.cache.releaseTask(id, n.met)
	return count
}

// fetchRemote resolves remote edge lists through the software cache,
// fetching cache misses in per-owner batches over the fabric.
func (n *node) fetchRemote(task int64, missing []graph.VertexID, lists map[graph.VertexID][]graph.VertexID) {
	byOwner := map[int][]graph.VertexID{}
	for _, v := range missing {
		n.met.Fetches.Add(1)
		if l, ok := n.cache.acquire(task, v, n.met); ok {
			lists[v] = l
			n.met.CacheHits.Add(1)
			continue
		}
		n.met.CacheMisses.Add(1)
		owner := n.local.Assignment().Owner(v)
		byOwner[owner] = append(byOwner[owner], v)
	}
	// Fetch in ascending owner order: map iteration order would put the
	// same misses on the wire in a different order every run, and the wire
	// request sequence must be reproducible (the determinism recovery and
	// speculation reconciliation rely on, and what request tracing assumes).
	owners := make([]int, 0, len(byOwner))
	for owner := range byOwner {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	for _, owner := range owners {
		vs := byOwner[owner]
		tNet := time.Now()
		fetched, err := n.fabric.Fetch(n.local.Node(), owner, vs)
		n.met.AddNetwork(time.Since(tNet))
		if err != nil {
			// The in-process fabric cannot fail for valid nodes; surface
			// loudly if it ever does.
			panic(err)
		}
		n.met.RemoteFetches.Add(uint64(len(vs)))
		for i, v := range vs {
			lists[v] = fetched[i]
			n.cache.insert(task, v, fetched[i], n.met)
		}
	}
}
