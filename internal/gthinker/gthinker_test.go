package gthinker

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestCountMatchesBruteForce(t *testing.T) {
	g := graph.RMATDefault(100, 500, 71)
	for _, pat := range []*pattern.Pattern{
		pattern.Triangle(), pattern.Clique(4), pattern.CycleP(4),
	} {
		want := plan.BruteForceCount(g, pat, false)
		for _, nodes := range []int{1, 3} {
			res, err := Count(g, pat, Config{NumNodes: nodes, ThreadsPerNode: 2, CacheBytes: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("%v on %d nodes: %d, want %d", pat, nodes, res.Count, want)
			}
		}
	}
}

func TestOverheadMetricsRecorded(t *testing.T) {
	g := graph.RMATDefault(200, 1200, 73)
	res, err := Count(g, pattern.Triangle(), Config{NumNodes: 4, ThreadsPerNode: 2, CacheBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.BytesSent == 0 {
		t.Error("no traffic recorded")
	}
	if s.Breakdown.Cache == 0 {
		t.Error("no cache bookkeeping time recorded")
	}
	if s.Breakdown.Scheduler == 0 {
		t.Error("no scheduler time recorded")
	}
	if s.CacheHits+s.CacheMisses == 0 {
		t.Error("no cache accesses recorded")
	}
}

func TestSequentialModeIdentical(t *testing.T) {
	g := graph.RMATDefault(120, 600, 701)
	conc, err := Count(g, pattern.Triangle(), Config{NumNodes: 3, ThreadsPerNode: 2, CacheBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Count(g, pattern.Triangle(), Config{NumNodes: 3, ThreadsPerNode: 2, CacheBytes: 1 << 16, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if conc.Count != seq.Count {
		t.Fatalf("sequential changed count: %d vs %d", conc.Count, seq.Count)
	}
	if seq.ModeledElapsed <= 0 {
		t.Fatal("no modeled makespan")
	}
}

func TestInducedMode(t *testing.T) {
	g := graph.RMATDefault(80, 400, 709)
	want := plan.BruteForceCount(g, pattern.CycleP(4), true)
	res, err := Count(g, pattern.CycleP(4), Config{NumNodes: 2, ThreadsPerNode: 2, CacheBytes: 1 << 16, Induced: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("induced 4-cycle = %d, want %d", res.Count, want)
	}
}

func TestSWCacheRefcounting(t *testing.T) {
	met := &metrics.Node{}
	c := newSWCache(100) // tiny: 2 entries of 10 overflow it
	l := make([]graph.VertexID, 10)
	c.insert(1, 5, l, met)
	c.insert(1, 6, l, met)
	// Both entries referenced by task 1: GC may not evict them.
	if c.lenEntries() != 2 {
		t.Fatalf("entries = %d, want 2", c.lenEntries())
	}
	// Releasing the task makes them collectable; next over-capacity insert
	// triggers GC.
	c.releaseTask(1, met)
	c.insert(2, 7, l, met)
	if c.lenEntries() > 2 {
		t.Fatalf("GC failed: %d entries", c.lenEntries())
	}
	if _, ok := c.acquire(2, 7, met); !ok {
		t.Fatal("entry inserted by live task evicted")
	}
}

func TestSWCacheAcquireRegistersDependency(t *testing.T) {
	met := &metrics.Node{}
	c := newSWCache(1 << 20)
	l := make([]graph.VertexID, 4)
	c.insert(1, 9, l, met)
	if _, ok := c.acquire(2, 9, met); !ok {
		t.Fatal("miss on present entry")
	}
	if _, ok := c.acquire(2, 42, met); ok {
		t.Fatal("hit on absent entry")
	}
	// Task 2 now references vertex 9; releasing task 1 must not evict.
	c.releaseTask(1, met)
	if _, ok := c.acquire(3, 9, met); !ok {
		t.Fatal("entry lost while still referenced")
	}
}
