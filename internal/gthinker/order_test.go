package gthinker

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
	"khuzdul/internal/partition"
)

// recordingFabric records the destination of every Fetch so tests can assert
// the wire request order.
type recordingFabric struct {
	owners []int
}

func (f *recordingFabric) Fetch(from, to int, ids []graph.VertexID) ([][]graph.VertexID, error) {
	f.owners = append(f.owners, to)
	out := make([][]graph.VertexID, len(ids))
	for i := range out {
		out[i] = []graph.VertexID{}
	}
	return out, nil
}

func (f *recordingFabric) Close() error { return nil }

// TestFetchRemoteOwnerOrder pins the wire determinism maporder enforces:
// fetchRemote must batch by owner in ascending owner order, not in Go's
// randomized map iteration order. Against the old map-range implementation
// a single trial passes with probability 1/7! — twenty-five trials make an
// accidental pass impossible.
func TestFetchRemoteOwnerOrder(t *testing.T) {
	const nodes = 8
	g := graph.RMATDefault(64, 256, 5)
	asg := partition.NewAssignment(nodes, 1)
	local := partition.NewLocal(g, asg, 0)
	met := metrics.NewCluster(nodes).Nodes[0]

	var missing []graph.VertexID
	seen := map[int]bool{}
	for v := graph.VertexID(0); v < 64; v++ {
		if owner := asg.Owner(v); owner != 0 {
			missing = append(missing, v)
			seen[owner] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("test needs several distinct owners, got %d", len(seen))
	}

	for trial := 0; trial < 25; trial++ {
		f := &recordingFabric{}
		n := newNode(local, f, met, Config{NumNodes: nodes, CacheBytes: 1 << 20}, nil)
		lists := map[graph.VertexID][]graph.VertexID{}
		n.fetchRemote(int64(trial), missing, lists)
		if len(f.owners) != len(seen) {
			t.Fatalf("trial %d: %d fetches for %d owners", trial, len(f.owners), len(seen))
		}
		for i := 1; i < len(f.owners); i++ {
			if f.owners[i-1] >= f.owners[i] {
				t.Fatalf("trial %d: owners fetched out of order: %v", trial, f.owners)
			}
		}
	}
}
