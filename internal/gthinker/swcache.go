package gthinker

import (
	"time"

	"sync"

	"khuzdul/internal/graph"
	"khuzdul/internal/metrics"
)

// swCache is G-thinker's general software cache for remote edge lists. It
// maintains the map between tasks and the edge lists they depend on
// (paper Figure 2): every acquire and insert updates reference sets under a
// global lock, and garbage collection scans for unreferenced entries when
// the cache exceeds capacity. This bookkeeping is the "high computation
// overhead" the paper measures as the cache portion of Figure 15.
type swCache struct {
	mu       sync.Mutex
	entries  map[graph.VertexID]*swEntry
	taskDeps map[int64][]graph.VertexID // task → vertices it holds references to
	size     uint64
	capacity uint64
}

type swEntry struct {
	list []graph.VertexID
	refs map[int64]bool // tasks currently depending on this entry
}

func newSWCache(capacity uint64) *swCache {
	return &swCache{
		entries:  map[graph.VertexID]*swEntry{},
		taskDeps: map[int64][]graph.VertexID{},
		capacity: capacity,
	}
}

// acquire looks up v for a task, registering the dependency on hit.
func (c *swCache) acquire(task int64, v graph.VertexID, met *metrics.Node) ([]graph.VertexID, bool) {
	t0 := time.Now()
	defer func() { met.AddCache(time.Since(t0)) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[v]
	if !ok {
		return nil, false
	}
	if !e.refs[task] {
		e.refs[task] = true
		c.taskDeps[task] = append(c.taskDeps[task], v)
	}
	return e.list, true
}

// insert stores a fetched list and registers the fetching task's reference.
func (c *swCache) insert(task int64, v graph.VertexID, list []graph.VertexID, met *metrics.Node) {
	t0 := time.Now()
	defer func() { met.AddCache(time.Since(t0)) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[v]; ok {
		if !e.refs[task] {
			e.refs[task] = true
			c.taskDeps[task] = append(c.taskDeps[task], v)
		}
		return
	}
	e := &swEntry{list: list, refs: map[int64]bool{task: true}}
	c.entries[v] = e
	c.taskDeps[task] = append(c.taskDeps[task], v)
	c.size += 16 + 4*uint64(len(list))
	if c.size > c.capacity {
		c.gcLocked()
	}
}

// releaseTask drops all of a completed task's references and garbage
// collects if over capacity.
func (c *swCache) releaseTask(task int64, met *metrics.Node) {
	t0 := time.Now()
	defer func() { met.AddCache(time.Since(t0)) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.taskDeps[task] {
		if e, ok := c.entries[v]; ok {
			delete(e.refs, task)
		}
	}
	delete(c.taskDeps, task)
	if c.size > c.capacity {
		c.gcLocked()
	}
}

// gcLocked scans for unreferenced entries and evicts until under capacity —
// the cache's periodic "are all tasks accessing this edge list completed?"
// check.
func (c *swCache) gcLocked() {
	for v, e := range c.entries {
		if c.size <= c.capacity {
			return
		}
		if len(e.refs) == 0 {
			c.size -= 16 + 4*uint64(len(e.list))
			delete(c.entries, v)
		}
	}
}

// lenEntries returns the number of cached lists (tests only).
func (c *swCache) lenEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
