// Package harness contains the experiment infrastructure that regenerates
// every table and figure of the paper's evaluation (§7): scaled-down
// synthetic stand-ins for the paper's datasets, an experiment registry, and
// plain-text table rendering. Absolute runtimes differ from the paper's
// testbed by construction; the experiments preserve the comparisons' shape —
// who wins, by what rough factor, where crossovers appear.
package harness

import (
	"fmt"
	"sort"

	"khuzdul/internal/graph"
)

// Dataset is a named synthetic stand-in for one of the paper's graphs
// (Table 1). The generators preserve the original's distinguishing trait at
// laptop scale: Patents is notably less skewed than the web/social graphs,
// UK/Twitter are extremely skewed, Friendster is big but mildly skewed,
// MiCo is small and labeled.
type Dataset struct {
	// Abbr is the paper's abbreviation (mc, pt, lj, …).
	Abbr string
	// PaperName is the dataset the preset stands in for.
	PaperName string
	// Labeled marks datasets generated with vertex labels (FSM inputs).
	Labeled bool
	// gen produces the graph at a given scale factor (1.0 = preset size).
	gen func(scale float64) *graph.Graph
}

// Generate builds the dataset at the given scale (1.0 for the preset size).
func (d Dataset) Generate(scale float64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	return d.gen(scale)
}

func sz(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 16 {
		n = 16
	}
	return n
}

func szE(base uint64, scale float64) uint64 {
	m := uint64(float64(base) * scale)
	if m < 32 {
		m = 32
	}
	return m
}

// rmatSkew generates an R-MAT graph with a chosen skew parameter a
// (0.57 = conventional, higher = heavier tail).
func rmatSkew(n int, m uint64, a float64, seed int64) *graph.Graph {
	rest := (1 - a) / 3
	return graph.RMAT(n, m, a, rest, rest, seed)
}

// datasets is the preset registry, keyed by abbreviation.
var datasets = map[string]Dataset{
	"mc": {
		Abbr: "mc", PaperName: "MiCo", Labeled: true,
		gen: func(s float64) *graph.Graph {
			n := sz(3000, s)
			g := rmatSkew(n, szE(33000, s), 0.55, 1001)
			lg, err := g.WithLabels(graph.RandomLabels(g.NumVertices(), 5, 1002))
			if err != nil {
				panic(err)
			}
			return lg
		},
	},
	"pt": {
		Abbr: "pt", PaperName: "Patents", Labeled: true,
		gen: func(s float64) *graph.Graph {
			// Patents is the paper's less-skewed graph (max degree 0.8K on
			// 3.8M vertices): a mild R-MAT keeps some clustering so clique
			// workloads are non-degenerate while staying far less skewed
			// than lj/uk/tw.
			n := sz(12000, s)
			g := rmatSkew(n, szE(60000, s), 0.42, 1003)
			lg, err := g.WithLabels(graph.RandomLabels(g.NumVertices(), 6, 1004))
			if err != nil {
				panic(err)
			}
			return lg
		},
	},
	"lj": {
		Abbr: "lj", PaperName: "LiveJournal", Labeled: true,
		gen: func(s float64) *graph.Graph {
			n := sz(12000, s)
			g := rmatSkew(n, szE(108000, s), 0.57, 1005)
			lg, err := g.WithLabels(graph.RandomLabels(g.NumVertices(), 8, 1006))
			if err != nil {
				panic(err)
			}
			return lg
		},
	},
	"uk": {
		Abbr: "uk", PaperName: "UK-2005",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(30000, s), szE(700000, s), 0.65, 1007)
		},
	},
	"tw": {
		Abbr: "tw", PaperName: "Twitter-2010",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(30000, s), szE(1100000, s), 0.62, 1008)
		},
	},
	"fr": {
		Abbr: "fr", PaperName: "Friendster",
		gen: func(s float64) *graph.Graph {
			// Friendster: large but mildly skewed (max degree 5.2K on 65.6M
			// vertices in the paper).
			return rmatSkew(sz(40000, s), szE(1100000, s), 0.45, 1009)
		},
	},
	"sk": {
		Abbr: "sk", PaperName: "Skitter",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(15000, s), szE(150000, s), 0.57, 1010)
		},
	},
	"ok": {
		Abbr: "ok", PaperName: "Orkut",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(25000, s), szE(800000, s), 0.5, 1011)
		},
	},
	"cl": {
		Abbr: "cl", PaperName: "Clueweb12",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(120000, s), szE(3000000, s), 0.62, 1012)
		},
	},
	"uk14": {
		Abbr: "uk14", PaperName: "UK-2014",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(100000, s), szE(3300000, s), 0.6, 1013)
		},
	},
	"wdc": {
		Abbr: "wdc", PaperName: "WDC12",
		gen: func(s float64) *graph.Graph {
			return rmatSkew(sz(250000, s), szE(6000000, s), 0.62, 1014)
		},
	},
}

// GetDataset returns the preset with the given abbreviation.
func GetDataset(abbr string) (Dataset, error) {
	d, ok := datasets[abbr]
	if !ok {
		return Dataset{}, fmt.Errorf("harness: unknown dataset %q (have %v)", abbr, DatasetNames())
	}
	return d, nil
}

// DatasetNames lists the registered preset abbreviations, sorted.
func DatasetNames() []string {
	names := make([]string, 0, len(datasets))
	for k := range datasets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
