package harness

import (
	"fmt"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/oblivious"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
	"khuzdul/internal/single"
)

// Ablation experiments beyond the paper's tables/figures, for the design
// choices DESIGN.md calls out: non-strict pipelining (§4.3), the mini-batch
// workload-distribution unit (§6), and the pattern-aware vs
// pattern-oblivious method gap (§1).

func init() {
	register(Experiment{ID: "ablation-pipeline", Title: "Strict vs non-strict circulant pipelining (extra)", Run: runAblationPipeline})
	register(Experiment{ID: "ablation-minibatch", Title: "Mini-batch size sweep (extra)", Run: runAblationMiniBatch})
	register(Experiment{ID: "ablation-oblivious", Title: "Pattern-aware vs pattern-oblivious enumeration (extra)", Run: runAblationOblivious})
	register(Experiment{ID: "ablation-transport", Title: "Serial vs multiplexed TCP exchanges (extra)", Run: runAblationTransport})
}

// runAblationPipeline quantifies what the paper's non-strict pipelining
// (fire every circulant batch's fetch at chunk seal) buys over strict
// stop-and-go fetching.
func runAblationPipeline(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-pipeline",
		Title:  "circulant pipelining (k-GraphPi)",
		Header: []string{"App", "G.", "non-strict", "strict", "speedup", "net wait ratio"},
	}
	graphs := []string{"lj"}
	if !o.Quick {
		graphs = append(graphs, "uk", "fr")
	}
	for _, a := range []appSpec{appTC, app4CC} {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			run := func(strict bool) (cluster.Result, error) {
				c, err := cluster.New(g, cluster.Config{
					NumNodes: o.Nodes, ThreadsPerSocket: o.Threads,
					StrictPipeline: strict, SequentialNodes: true,
				})
				if err != nil {
					return cluster.Result{}, err
				}
				defer c.Close()
				return runOnCluster(c, apps.KGraphPi, a)
			}
			ns, err := run(false)
			if err != nil {
				return nil, err
			}
			st, err := run(true)
			if err != nil {
				return nil, err
			}
			if ns.Count != st.Count {
				return nil, fmt.Errorf("ablation-pipeline: strictness changed count")
			}
			t.AddRow(a.name, abbr, elapsedStr(ns.Elapsed), elapsedStr(st.Elapsed),
				FmtSpeedup(st.Elapsed, ns.Elapsed),
				fmt.Sprintf("%.2f", ratio(uint64(ns.Summary.Breakdown.Network),
					uint64(st.Summary.Breakdown.Network))))
		}
	}
	t.AddNote("non-strict pipelining overlaps every batch's fetch with earlier batches' extension; strict mode exposes the full fetch latency")
	return t, nil
}

// runAblationMiniBatch sweeps the work-distribution unit around the paper's
// choice of 64 embeddings per mini-batch.
func runAblationMiniBatch(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-minibatch",
		Title:  "mini-batch size sweep on lj (k-GraphPi)",
		Header: []string{"App", "mb=4", "mb=16", "mb=64", "mb=256", "mb=1024"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)
	appsList := []appSpec{appTC}
	if !o.Quick {
		appsList = append(appsList, app4CC)
	}
	for _, a := range appsList {
		row := []string{a.name}
		var want uint64
		for i, mb := range []int{4, 16, 64, 256, 1024} {
			c, err := cluster.New(g, cluster.Config{
				NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, MiniBatch: mb,
				SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				want = r.Count
			} else if r.Count != want {
				return nil, fmt.Errorf("ablation-minibatch: size changed count")
			}
			row = append(row, elapsedStr(r.Elapsed))
		}
		t.AddRow(row...)
	}
	t.AddNote("the paper uses 64; tiny units pay claim overhead, huge units lose balance at chunk tails")
	return t, nil
}

// runAblationTransport measures what wire protocol v3's request multiplexing
// buys over the serial exchange. Same cluster, same TCP sockets, same task
// schedule — only the handshake window differs, so serial connections
// head-of-line block concurrent fetches to one peer behind a connection
// mutex while v3 pipelines them on one socket.
func runAblationTransport(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-transport",
		Title:  "serial vs multiplexed TCP exchanges (k-GraphPi)",
		Header: []string{"App", "G.", "serial", "mux", "speedup", "pipelined", "peak in-flight"},
	}
	graphs := []string{"lj"}
	if !o.Quick {
		graphs = append(graphs, "uk")
	}
	appsList := []appSpec{appTC}
	if !o.Quick {
		appsList = append(appsList, app4CC)
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			run := func(serial bool) (cluster.Result, error) {
				// Two sockets per machine so several workers fetch from the
				// same remote peer at once — the contention multiplexing is
				// built to remove.
				c, err := cluster.New(g, cluster.Config{
					NumNodes: o.Nodes, Sockets: 2, ThreadsPerSocket: o.Threads,
					Transport: cluster.TransportTCP, SerialWire: serial,
				})
				if err != nil {
					return cluster.Result{}, err
				}
				defer c.Close()
				return runOnCluster(c, apps.KGraphPi, a)
			}
			ser, err := run(true)
			if err != nil {
				return nil, err
			}
			mux, err := run(false)
			if err != nil {
				return nil, err
			}
			if ser.Count != mux.Count {
				return nil, fmt.Errorf("ablation-transport: wire protocol changed count")
			}
			if ser.Summary.PipelinedFetches != 0 {
				return nil, fmt.Errorf("ablation-transport: serial wire reported %d pipelined fetches",
					ser.Summary.PipelinedFetches)
			}
			t.AddRow(a.name, abbr, elapsedStr(ser.Elapsed), elapsedStr(mux.Elapsed),
				FmtSpeedup(ser.Elapsed, mux.Elapsed),
				FmtCount(mux.Summary.PipelinedFetches),
				fmt.Sprintf("%d", mux.Summary.InFlightPeak))
		}
	}
	t.AddNote("pipelined = fetches completed over v3 multiplexed connections; peak in-flight = most concurrent outstanding requests on any node")
	return t, nil
}

// runAblationOblivious reproduces the paper's §1 motivation: the gap between
// pattern-aware enumeration and Arabesque-style pattern-oblivious
// enumeration with isomorphism checks.
func runAblationOblivious(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-oblivious",
		Title:  "pattern-aware vs pattern-oblivious 3/4-motif counting",
		Header: []string{"G.", "k", "aware", "oblivious", "slowdown", "subgraphs enumerated"},
	}
	graphs := []string{"mc"}
	if !o.Quick {
		graphs = append(graphs, "pt")
	}
	ks := []int{3}
	if !o.Quick {
		ks = append(ks, 4)
	}
	threads := o.Threads * 2
	for _, abbr := range graphs {
		d, err := GetDataset(abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		for _, k := range ks {
			pats := pattern.ConnectedPatterns(k)
			// Pattern-aware: one plan per motif, induced, single machine for
			// a like-for-like comparison.
			awareStart := time.Now()
			var awareCounts []uint64
			for _, pat := range pats {
				pl := plan.MustCompile(pat, plan.Options{
					Style: plan.StyleGraphPi, Induced: true, Stats: plan.StatsOf(g),
				})
				awareCounts = append(awareCounts, single.ParallelCount(pl, g, threads))
			}
			awareElapsed := time.Since(awareStart)

			obl, err := oblivious.CountPatterns(g, pats, k, threads)
			if err != nil {
				return nil, err
			}
			for i := range pats {
				if awareCounts[i] != obl.Counts[i] {
					return nil, fmt.Errorf("ablation-oblivious %s k=%d: count mismatch on %v: %d vs %d",
						abbr, k, pats[i], awareCounts[i], obl.Counts[i])
				}
			}
			t.AddRow(abbr, fmt.Sprintf("%d", k),
				FmtDur(awareElapsed), FmtDur(obl.Elapsed),
				FmtSpeedup(obl.Elapsed, awareElapsed),
				FmtCount(obl.Enumerated))
		}
	}
	t.AddNote("pattern-oblivious systems visit every connected subgraph and pay a canonical-form check each — the paper's reason to focus on pattern-aware enumeration")
	return t, nil
}
