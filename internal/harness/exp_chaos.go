package harness

import (
	"fmt"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/fault"
)

// Chaos experiment (beyond the paper's exhibits): the resilience subsystem's
// cost and correctness. The scenarios cover the full failure surface: the
// plain cluster, the resilience layer with no faults (steady-state overhead),
// a transient error storm absorbed by retries, a mid-run permanent node crash
// repaired by task-level recovery, the TCP wire with its CRC-checked frame
// protocol alone and with the heartbeat detector on top (protocol overhead),
// real byte corruption and severed connections on that wire, an asymmetric
// network partition, and a straggler node with and without speculative
// re-execution. Every faulted run must reproduce the fault-free count
// exactly.

func init() {
	register(Experiment{ID: "ablation-chaos", Title: "Fault injection, retries and task-level recovery (extra)", Run: runAblationChaos})
}

func runAblationChaos(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-chaos",
		Title:  "chaos: resilience cost and recovery (k-GraphPi, lj)",
		Header: []string{"App", "Scenario", "elapsed", "faults", "retries", "rec.rounds", "dead", "wire c/r", "hb m/s", "spec r/w"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)

	type scenario struct {
		name       string
		resilient  bool
		prof       *fault.Profile
		transport  cluster.Transport
		heartbeat  bool
		speculate  bool
		concurrent bool // run node slots concurrently (needed for speculation)
		chunk      int  // root-range granularity override (0 = experiment default)
		reps       int  // repetitions, keeping the fastest (0 = once)
	}
	scenarios := []scenario{
		{name: "baseline"},
		{name: "resilient, no faults", resilient: true},
		{name: "transient err=5%", prof: &fault.Profile{Seed: 7, ErrorRate: 0.05}},
		{name: "err=5% + crash n1", prof: &fault.Profile{
			Seed: 7, ErrorRate: 0.05, Crashes: []fault.Crash{{Node: 1, After: 10}},
		}},
		// The two TCP rows form the protocol-overhead comparison; they are
		// noise-sensitive, so each reports its best of three runs. The
		// detector runs at a 50ms interval — brisk enough to beat the
		// breaker's timeout path to a verdict by an order of magnitude,
		// without 56 ping pairs competing with compute for cycles.
		{name: "tcp wire (crc)", transport: cluster.TransportTCP, reps: 3},
		{name: "tcp + heartbeat", transport: cluster.TransportTCP, heartbeat: true, reps: 3},
		{name: "tcp corrupt+drop=2%", transport: cluster.TransportTCP, prof: &fault.Profile{
			Seed: 7, CorruptRate: 0.02, DropRate: 0.02,
		}},
		{name: "partition 0+1+2|3", prof: &fault.Profile{
			Seed: 7, Partitions: []fault.Partition{{A: []int{0, 1, 2}, B: []int{3}, After: 2}},
		}},
		// The straggler pair uses fine-grained root ranges: the straggler
		// polls for cancellation only at range boundaries, so speculation's
		// win shows up as soon as ranges are small enough to checkpoint often.
		{name: "slow n1 x200", concurrent: true, resilient: true, chunk: 256, prof: &fault.Profile{
			Seed: 7, Slowdowns: []fault.Slowdown{{Node: 1, Factor: 200}},
		}},
		{name: "slow n1 x200 + speculation", concurrent: true, speculate: true, chunk: 256, prof: &fault.Profile{
			Seed: 7, Slowdowns: []fault.Slowdown{{Node: 1, Factor: 200}},
		}},
	}

	elapsed := map[string]time.Duration{}
	appsList := []appSpec{appTC}
	if !o.Quick {
		appsList = append(appsList, app4CC)
	}
	for ai, a := range appsList {
		var want uint64
		for i, sc := range scenarios {
			// A crash permanently poisons the injector, so every scenario gets
			// a fresh cluster.
			chunk := experimentChunkSize
			if sc.chunk > 0 {
				chunk = sc.chunk
			}
			var r cluster.Result
			reps := max(sc.reps, 1)
			for rep := 0; rep < reps; rep++ {
				c, err := cluster.New(g, cluster.Config{
					NumNodes:             o.Nodes,
					ThreadsPerSocket:     o.Threads,
					ChunkSize:            chunk,
					CacheFraction:        0.10,
					CacheDegreeThreshold: 8,
					SequentialNodes:      !sc.concurrent,
					Transport:            sc.transport,
					Resilient:            sc.resilient,
					Heartbeat:            sc.heartbeat,
					HeartbeatInterval:    50 * time.Millisecond,
					Speculate:            sc.speculate,
					Fault:                sc.prof,
					FetchTimeout:         50 * time.Millisecond,
					RetryBackoff:         200 * time.Microsecond,
				})
				if err != nil {
					return nil, err
				}
				got, err := runOnCluster(c, apps.KGraphPi, a)
				c.Close()
				if err != nil {
					return nil, err
				}
				if rep > 0 && got.Count != r.Count {
					return nil, fmt.Errorf("ablation-chaos %s %q: count varies across reps: %d vs %d",
						a.name, sc.name, got.Count, r.Count)
				}
				if rep == 0 || got.Elapsed < r.Elapsed {
					r = got
				}
			}
			if i == 0 {
				want = r.Count
			} else if r.Count != want {
				return nil, fmt.Errorf("ablation-chaos %s %q: count %d, want %d",
					a.name, sc.name, r.Count, want)
			}
			if ai == 0 {
				elapsed[sc.name] = r.Elapsed
			}
			t.AddRow(a.name, sc.name, elapsedStr(r.Elapsed),
				FmtCount(r.Summary.FaultsInjected), FmtCount(r.Summary.FetchRetries),
				fmt.Sprintf("%d", r.RecoveryRounds),
				fmt.Sprintf("%v", r.DeadNodes),
				fmt.Sprintf("%d/%d", r.Summary.CorruptFrames, r.Summary.Redials),
				fmt.Sprintf("%d/%d", r.Summary.HeartbeatMisses, r.Summary.NodesSuspected),
				fmt.Sprintf("%d/%d", r.Summary.SpeculativeRanges, r.Summary.SpeculationWins))
		}
	}
	t.AddNote("all scenarios reproduce the fault-free count exactly; recovery re-executes only unfinished source-vertex ranges on survivors")
	if base, hb := elapsed["tcp wire (crc)"], elapsed["tcp + heartbeat"]; base > 0 {
		t.AddNote("CRC-framed TCP + heartbeat overhead vs CRC-framed TCP alone: %+.1f%%",
			100*(float64(hb)-float64(base))/float64(base))
	}
	if slow, spec := elapsed["slow n1 x200"], elapsed["slow n1 x200 + speculation"]; spec > 0 {
		t.AddNote("speculation vs straggler-bound run: %.2fx elapsed", float64(slow)/float64(spec))
	}
	return t, nil
}
