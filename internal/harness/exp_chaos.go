package harness

import (
	"fmt"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/fault"
)

// Chaos experiment (beyond the paper's exhibits): the resilience subsystem's
// cost and correctness. Four rows per workload: the plain cluster, the
// resilience layer with no faults (its steady-state overhead), a transient
// error storm absorbed by retries, and a mid-run permanent node crash
// repaired by task-level recovery. Every faulted run must reproduce the
// fault-free count exactly.

func init() {
	register(Experiment{ID: "ablation-chaos", Title: "Fault injection, retries and task-level recovery (extra)", Run: runAblationChaos})
}

func runAblationChaos(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-chaos",
		Title:  "chaos: resilience cost and recovery (k-GraphPi, lj)",
		Header: []string{"App", "Scenario", "elapsed", "faults", "retries", "rec.rounds", "rec.roots", "dead"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)

	type scenario struct {
		name      string
		resilient bool
		prof      *fault.Profile
	}
	scenarios := []scenario{
		{name: "baseline"},
		{name: "resilient, no faults", resilient: true},
		{name: "transient err=5%", prof: &fault.Profile{Seed: 7, ErrorRate: 0.05}},
		{name: "err=5% + crash n1", prof: &fault.Profile{
			Seed: 7, ErrorRate: 0.05, Crashes: []fault.Crash{{Node: 1, After: 10}},
		}},
	}

	appsList := []appSpec{appTC}
	if !o.Quick {
		appsList = append(appsList, app4CC)
	}
	for _, a := range appsList {
		var want uint64
		for i, sc := range scenarios {
			// A crash permanently poisons the injector, so every scenario gets
			// a fresh cluster.
			c, err := cluster.New(g, cluster.Config{
				NumNodes:             o.Nodes,
				ThreadsPerSocket:     o.Threads,
				ChunkSize:            experimentChunkSize,
				CacheFraction:        0.10,
				CacheDegreeThreshold: 8,
				SequentialNodes:      true,
				Resilient:            sc.resilient,
				Fault:                sc.prof,
				FetchTimeout:         50 * time.Millisecond,
				RetryBackoff:         200 * time.Microsecond,
			})
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				want = r.Count
			} else if r.Count != want {
				return nil, fmt.Errorf("ablation-chaos %s %q: count %d, want %d",
					a.name, sc.name, r.Count, want)
			}
			t.AddRow(a.name, sc.name, elapsedStr(r.Elapsed),
				FmtCount(r.Summary.FaultsInjected), FmtCount(r.Summary.FetchRetries),
				fmt.Sprintf("%d", r.RecoveryRounds), FmtCount(r.Summary.RecoveredRoots),
				fmt.Sprintf("%v", r.DeadNodes))
		}
	}
	t.AddNote("all scenarios reproduce the fault-free count exactly; recovery re-executes only unfinished source-vertex ranges on survivors")
	return t, nil
}
