package harness

import (
	"fmt"
	"time"

	"khuzdul/internal/adfs"
	"khuzdul/internal/apps"
	"khuzdul/internal/cache"
	"khuzdul/internal/cluster"
	"khuzdul/internal/gthinker"
	"khuzdul/internal/pattern"
	"khuzdul/internal/replicated"
	"khuzdul/internal/single"
)

func init() {
	register(Experiment{ID: "fig10", Title: "Comparison with aDFS (TC)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Speedup from vertical computation sharing", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Effect of horizontal data sharing", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Inter-node scalability (lj)", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "Intra-node scalability and COST", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Runtime breakdown: G-thinker vs k-Automine", Run: runFig15})
	register(Experiment{ID: "fig16", Title: "Cache replacement policies", Run: runFig16})
	register(Experiment{ID: "fig17", Title: "Varying cache size", Run: runFig17})
	register(Experiment{ID: "fig18", Title: "Varying chunk size", Run: runFig18})
	register(Experiment{ID: "fig19", Title: "Network bandwidth utilization", Run: runFig19})
}

// runFig10 reproduces Figure 10: TC against the moving-computation-to-data
// baseline.
func runFig10(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig10",
		Title:  "TC vs aDFS-style baseline",
		Header: []string{"G.", "aDFS", "k-Automine", "k-GraphPi", "aDFS traffic", "Khuzdul traffic"},
	}
	graphs := []string{"sk", "ok"}
	if !o.Quick {
		graphs = append(graphs, "fr")
	}
	for _, abbr := range graphs {
		d, err := GetDataset(abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		ra, err := adfs.Count(g, pattern.Triangle(), adfs.Config{NumNodes: o.Nodes, ThreadsPerNode: o.Threads})
		if err != nil {
			return nil, err
		}
		c, err := defaultCluster(g, o.Nodes, o.Threads)
		if err != nil {
			return nil, err
		}
		rka, err := apps.TriangleCount(c, apps.KAutomine)
		if err != nil {
			c.Close()
			return nil, err
		}
		rkg, err := apps.TriangleCount(c, apps.KGraphPi)
		c.Close()
		if err != nil {
			return nil, err
		}
		if ra.Count != rka.Count || ra.Count != rkg.Count {
			return nil, fmt.Errorf("fig10 %s: count mismatch adfs=%d kA=%d kGP=%d",
				abbr, ra.Count, rka.Count, rkg.Count)
		}
		t.AddRow(abbr, elapsedStr(ra.Elapsed), elapsedStr(rka.Elapsed), elapsedStr(rkg.Elapsed),
			FmtBytes(ra.Summary.BytesSent), FmtBytes(rka.Summary.BytesSent))
	}
	t.AddNote("paper: Khuzdul systems beat aDFS by up to an order of magnitude with fewer cores; carried edge lists inflate aDFS traffic")
	return t, nil
}

// runFig11 reproduces Figure 11: the VCS ablation.
func runFig11(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig11",
		Title:  "vertical computation sharing speedup (k-GraphPi)",
		Header: []string{"App", "G.", "VCS on", "VCS off", "speedup"},
	}
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{app4CC}
	if !o.Quick {
		graphs = append(graphs, "fr")
		appsList = append(appsList, app5CC)
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			c, err := defaultCluster(g, o.Nodes, o.Threads)
			if err != nil {
				return nil, err
			}
			on, off, err := runVCSPair(c, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			t.AddRow(a.name, abbr, elapsedStr(on.Elapsed), elapsedStr(off.Elapsed),
				FmtSpeedup(off.Elapsed, on.Elapsed))
		}
	}
	t.AddNote("paper: 2.10x average (up to 4.44x); weakest on pt where extensions are already cheap")
	return t, nil
}

func runVCSPair(c *cluster.Cluster, a appSpec) (on, off cluster.Result, err error) {
	plOn, err := apps.Compile(apps.KGraphPi, a.pattern(), c.Graph(), apps.CompileOptions{})
	if err != nil {
		return on, off, err
	}
	plOff, err := apps.Compile(apps.KGraphPi, a.pattern(), c.Graph(), apps.CompileOptions{DisableVCS: true})
	if err != nil {
		return on, off, err
	}
	if on, err = c.Count(plOn); err != nil {
		return on, off, err
	}
	if off, err = c.Count(plOff); err != nil {
		return on, off, err
	}
	if on.Count != off.Count {
		return on, off, fmt.Errorf("VCS changed count: %d vs %d", on.Count, off.Count)
	}
	return on, off, nil
}

// runFig12 reproduces Figure 12: the HDS ablation (normalized traffic and
// communication time).
func runFig12(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig12",
		Title:  "horizontal data sharing (normalized to HDS off)",
		Header: []string{"App", "G.", "norm traffic", "norm comm time", "traffic on/off"},
	}
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{app4CC}
	if !o.Quick {
		graphs = append(graphs, "fr")
		appsList = append(appsList, app5CC)
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			mk := func(disableHDS bool) (cluster.Result, error) {
				c, err := cluster.New(g, cluster.Config{
					NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, DisableHDS: disableHDS,
					SequentialNodes: true,
				})
				if err != nil {
					return cluster.Result{}, err
				}
				defer c.Close()
				return runOnCluster(c, apps.KGraphPi, a)
			}
			on, err := mk(false)
			if err != nil {
				return nil, err
			}
			off, err := mk(true)
			if err != nil {
				return nil, err
			}
			if on.Count != off.Count {
				return nil, fmt.Errorf("fig12 %s/%s: HDS changed count", a.name, abbr)
			}
			normT := ratio(on.Summary.BytesSent, off.Summary.BytesSent)
			normC := ratio(uint64(on.Summary.Breakdown.Network), uint64(off.Summary.Breakdown.Network))
			t.AddRow(a.name, abbr,
				fmt.Sprintf("%.3f", normT), fmt.Sprintf("%.3f", normC),
				fmt.Sprintf("%s/%s", FmtBytes(on.Summary.BytesSent), FmtBytes(off.Summary.BytesSent)))
		}
	}
	t.AddNote("paper: HDS cuts traffic 70.5%% and critical-path communication 67.8%% on average; weakest on less-skewed pt")
	return t, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// runFig13 reproduces Figure 13: inter-node scalability on lj.
func runFig13(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig13",
		Title:  "inter-node scalability on lj (runtime per node count)",
		Header: []string{"App", "System", "1", "2", "4", "8", "8-node speedup"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)
	appsList := []appSpec{appTC, app3MC, app4CC}
	if !o.Quick {
		appsList = append(appsList, app5CC)
	}
	nodeCounts := []int{1, 2, 4, 8}
	for _, a := range appsList {
		var kgTimes, replTimes []time.Duration
		for _, nn := range nodeCounts {
			c, err := defaultCluster(g, nn, o.Threads)
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			kgTimes = append(kgTimes, r.ModeledElapsed)
			var rr replicated.Result
			if a.kind == "mc" {
				rr, err = replicated.CountMotifs(g, a.k, replicated.Config{NumNodes: nn, ThreadsPerNode: o.Threads})
			} else {
				rr, err = replicated.Count(g, a.pattern(), replicated.Config{NumNodes: nn, ThreadsPerNode: o.Threads})
			}
			if err != nil {
				return nil, err
			}
			replTimes = append(replTimes, rr.ModeledElapsed)
		}
		t.AddRow(a.name, "k-GraphPi",
			elapsedStr(kgTimes[0]), elapsedStr(kgTimes[1]), elapsedStr(kgTimes[2]), elapsedStr(kgTimes[3]),
			FmtSpeedup(kgTimes[0], kgTimes[3]))
		t.AddRow(a.name, "GraphPi(repl)",
			elapsedStr(replTimes[0]), elapsedStr(replTimes[1]), elapsedStr(replTimes[2]), elapsedStr(replTimes[3]),
			FmtSpeedup(replTimes[0], replTimes[3]))
	}
	t.AddNote("paper: k-GraphPi reaches 6.77x average on 8 nodes vs GraphPi's 4.04x (coarse static partitioning limits the latter)")
	t.AddNote("modeled makespans (single-core host); GraphPi's static blocks expose hub imbalance, Khuzdul's dynamic mini-batches do not")
	return t, nil
}

// runFig14 reproduces Figure 14: intra-node scalability plus the COST
// metric (cores needed to beat the best single-thread implementation).
func runFig14(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig14",
		Title:  "intra-node scalability on lj + COST",
		Header: []string{"App", "1", "2", "4", "8", "16", "best 1-thread ref", "COST(cores)"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)
	appsList := []appSpec{appTC, app3MC}
	if !o.Quick {
		appsList = append(appsList, app4CC)
	}
	cores := []int{1, 2, 4, 8, 16}
	for _, a := range appsList {
		var times []time.Duration
		for _, nc := range cores {
			c, err := defaultCluster(g, 1, nc)
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KAutomine, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			times = append(times, r.ModeledElapsed)
		}
		// Reference: fastest single-thread run among the single-machine
		// systems (the McSherry COST baseline).
		ref := time.Duration(1<<62 - 1)
		for _, sys := range []*single.Engine{single.AutomineIH(), single.PeregrineLike(), single.PangolinLike()} {
			var res single.Result
			var err error
			if a.kind == "mc" {
				_, res, err = sys.CountMotifs(g, a.k, 1)
			} else {
				res, err = sys.CountPattern(g, a.pattern(), false, 1)
			}
			if err != nil {
				return nil, err
			}
			if res.ModeledElapsed < ref {
				ref = res.ModeledElapsed
			}
		}
		cost := "-"
		for i, nc := range cores {
			if times[i] <= ref {
				cost = fmt.Sprintf("%d", nc)
				break
			}
		}
		t.AddRow(a.name,
			elapsedStr(times[0]), elapsedStr(times[1]), elapsedStr(times[2]),
			elapsedStr(times[3]), elapsedStr(times[4]), elapsedStr(ref), cost)
	}
	t.AddNote("paper: 10.7-11.6x speedup at 16 cores; COST of 6-8 cores")
	t.AddNote("modeled makespans; serial per-chunk scheduling bounds the speedup (Amdahl), like the paper's reserved communication cores")
	return t, nil
}

// runFig15 reproduces Figure 15: the runtime breakdown comparison.
func runFig15(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig15",
		Title:  "runtime breakdown (percent of measured category time)",
		Header: []string{"System", "App", "G.", "compute%", "network%", "scheduler%", "cache%"},
	}
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{appTC, app4CC}
	if !o.Quick {
		appsList = []appSpec{appTC, app3MC, app4CC, app5CC}
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			gth, err := runGThinker(g, a, gthinkerCfg(o, g.SizeBytes()))
			if err != nil {
				return nil, err
			}
			cp, np, sp, ca := gth.Summary.Breakdown.Percentages()
			t.AddRow("G-thinker", a.name, abbr, pct(cp), pct(np), pct(sp), pct(ca))

			c, err := defaultCluster(g, o.Nodes, o.Threads)
			if err != nil {
				return nil, err
			}
			rka, err := runOnCluster(c, apps.KAutomine, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			cp, np, sp, ca = rka.Summary.Breakdown.Percentages()
			t.AddRow("k-Automine", a.name, abbr, pct(cp), pct(np), pct(sp), pct(ca))
		}
	}
	t.AddNote("paper: G-thinker spends 41%%/45%% in cache/scheduler; k-Automine raises compute to 59%% average")
	return t, nil
}

func pct(v float64) string { return fmt.Sprintf("%.1f", v) }

func gthinkerCfg(o Options, graphBytes uint64) gthinker.Config {
	return gthinker.Config{
		NumNodes:       o.Nodes,
		ThreadsPerNode: o.Threads,
		CacheBytes:     graphBytes / 8,
		Sequential:     true,
	}
}

// runFig16 reproduces Figure 16: cache replacement policy comparison.
func runFig16(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig16",
		Title:  "cache policies (k-GraphPi, normalized to STATIC)",
		Header: []string{"Workload", "Policy", "norm traffic", "norm runtime"},
	}
	type combo struct {
		a    appSpec
		abbr string
	}
	combos := []combo{{appTC, "lj"}, {app4CC, "lj"}}
	if !o.Quick {
		combos = append(combos, combo{app3MC, "lj"}, combo{app5CC, "lj"},
			combo{appTC, "fr"}, combo{app4CC, "fr"})
	}
	policies := []cache.Policy{cache.Static, cache.FIFO, cache.LIFO, cache.LRU, cache.MRU}
	for _, cb := range combos {
		d, err := GetDataset(cb.abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		var base cluster.Result
		results := make([]cluster.Result, len(policies))
		for i, pol := range policies {
			c, err := cluster.New(g, cluster.Config{
				NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, ChunkSize: experimentChunkSize,
				CacheFraction: 0.10, CachePolicy: pol, CacheDegreeThreshold: 8,
				SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			results[i], err = runOnCluster(c, apps.KGraphPi, cb.a)
			c.Close()
			if err != nil {
				return nil, err
			}
			if pol == cache.Static {
				base = results[i]
			}
		}
		for i, pol := range policies {
			r := results[i]
			if r.Count != base.Count {
				return nil, fmt.Errorf("fig16 %s-%s: policy %v changed count", cb.abbr, cb.a.name, pol)
			}
			t.AddRow(fmt.Sprintf("%s-%s", cb.abbr, cb.a.name), pol.String(),
				fmt.Sprintf("%.3f", ratio(r.Summary.BytesSent, base.Summary.BytesSent)),
				fmt.Sprintf("%.3f", float64(r.Elapsed)/float64(base.Elapsed)))
		}
	}
	t.AddNote("paper: STATIC sometimes loses a little traffic to FIFO/LRU yet wins runtime by ~10x — replacement bookkeeping dominates")
	return t, nil
}

// runFig17 reproduces Figure 17: the cache size sweep.
func runFig17(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig17",
		Title:  "cache size sweep (k-GraphPi, normalized to 1% cache)",
		Header: []string{"Workload", "cache/graph", "norm traffic", "hit rate%", "norm runtime"},
	}
	type combo struct {
		a    appSpec
		abbr string
	}
	combos := []combo{{appTC, "lj"}}
	if !o.Quick {
		combos = append(combos, combo{app4CC, "lj"}, combo{appTC, "uk"}, combo{app4CC, "fr"})
	}
	fracs := []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.50}
	for _, cb := range combos {
		d, err := GetDataset(cb.abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		var baseT uint64
		var baseR time.Duration
		for i, f := range fracs {
			c, err := cluster.New(g, cluster.Config{
				NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, ChunkSize: experimentChunkSize,
				CacheFraction: f, CacheDegreeThreshold: 8,
				SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, cb.a)
			c.Close()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				baseT, baseR = r.Summary.BytesSent, r.Elapsed
			}
			t.AddRow(fmt.Sprintf("%s-%s", cb.abbr, cb.a.name),
				fmt.Sprintf("%.0f%%", 100*f),
				fmt.Sprintf("%.3f", ratio(r.Summary.BytesSent, baseT)),
				fmt.Sprintf("%.1f", 100*r.Summary.CacheHitRate()),
				fmt.Sprintf("%.3f", float64(r.Elapsed)/float64(baseR)))
		}
	}
	t.AddNote("paper: traffic falls and hit rate rises with size, runtime flattens past the point where communication is hidden")
	return t, nil
}

// runFig18 reproduces Figure 18: the chunk size sweep.
func runFig18(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig18",
		Title:  "chunk size sweep on lj (k-GraphPi, chunk capacity in embeddings)",
		Header: []string{"App", "2^6", "2^8", "2^10", "2^12", "2^14", "2^16"},
	}
	d, err := GetDataset("lj")
	if err != nil {
		return nil, err
	}
	g := d.Generate(o.Scale)
	appsList := []appSpec{appTC, app4CC}
	if !o.Quick {
		appsList = []appSpec{appTC, app3MC, app4CC, app5CC}
	}
	sizes := []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	for _, a := range appsList {
		row := []string{a.name}
		var want uint64
		for i, cs := range sizes {
			c, err := cluster.New(g, cluster.Config{
				NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, ChunkSize: cs,
				CacheFraction: 0.1, CacheDegreeThreshold: 8,
				SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				want = r.Count
			} else if r.Count != want {
				return nil, fmt.Errorf("fig18 %s: chunk size changed count", a.name)
			}
			row = append(row, elapsedStr(r.Elapsed))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: larger chunks help (more parallelism, more in-chunk reuse) until memory pressure; the trend should fall left to right")
	return t, nil
}

// runFig19 reproduces Figure 19: network bandwidth utilization.
func runFig19(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig19",
		Title:  "network utilization (k-GraphPi, reference bandwidth 1 GB/s aggregate)",
		Header: []string{"App", "G.", "traffic", "runtime", "utilization%"},
	}
	const refBandwidth = 1 << 30 // 1 GB/s reference aggregate fabric bandwidth
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{appTC, app4CC}
	if !o.Quick {
		graphs = append(graphs, "fr")
		appsList = []appSpec{appTC, app3MC, app4CC, app5CC}
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			c, err := defaultCluster(g, o.Nodes, o.Threads)
			if err != nil {
				return nil, err
			}
			r, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			util := 100 * r.Summary.NetworkUtilization(refBandwidth, r.Elapsed)
			t.AddRow(a.name, abbr, FmtBytes(r.Summary.BytesSent), elapsedStr(r.Elapsed),
				fmt.Sprintf("%.1f", util))
		}
	}
	t.AddNote("paper: mostly compute-bound, network under 50%% utilized; pt is the outlier with poor request locality")
	return t, nil
}
