package harness

import (
	"fmt"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/fsm"
	"khuzdul/internal/graph"
	"khuzdul/internal/gthinker"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
	"khuzdul/internal/replicated"
	"khuzdul/internal/single"
)

func init() {
	register(Experiment{ID: "table2", Title: "k-Automine/k-GraphPi vs GraphPi (replicated) vs G-thinker, distributed", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Single-node k-Automine vs single-machine systems", Run: runTable3})
	register(Experiment{ID: "table4", Title: "FSM performance", Run: runTable4})
	register(Experiment{ID: "table5", Title: "Large-scale graphs (orientation on)", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Static data cache: traffic and runtime", Run: runTable6})
	register(Experiment{ID: "table7", Title: "NUMA-aware support", Run: runTable7})
}

// runTable2 reproduces Table 2: the headline distributed comparison.
func runTable2(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:    "table2",
		Title: "distributed GPM comparison",
		Header: []string{"App", "G.", "k-Automine", "k-GraphPi", "GraphPi(repl)", "G-thinker",
			"kA/G-th", "kGP/G-th"},
	}
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{appTC, app3MC, app4CC}
	if !o.Quick {
		graphs = append(graphs, "fr")
		appsList = append(appsList, app5CC)
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			if a.kind == "cc" && a.k == 5 && (abbr == "fr" || abbr == "uk") {
				// 5-CC on the biggest presets is disproportionately heavy;
				// the paper itself trims combinations (Table 2 omits uk/tw
				// for 5-CC).
				if abbr == "fr" && o.Scale > 0.5 {
					continue
				}
			}
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			c, err := defaultCluster(g, o.Nodes, o.Threads)
			if err != nil {
				return nil, err
			}
			ka, err := runOnCluster(c, apps.KAutomine, a)
			if err != nil {
				c.Close()
				return nil, err
			}
			kg, err := runOnCluster(c, apps.KGraphPi, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			var repl replicated.Result
			if a.kind == "mc" {
				repl, err = replicated.CountMotifs(g, a.k, replicated.Config{NumNodes: o.Nodes, ThreadsPerNode: o.Threads})
			} else {
				repl, err = replicated.Count(g, a.pattern(), replicated.Config{NumNodes: o.Nodes, ThreadsPerNode: o.Threads})
			}
			if err != nil {
				return nil, err
			}
			gth, err := runGThinker(g, a, gthinker.Config{
				NumNodes: o.Nodes, ThreadsPerNode: o.Threads, CacheBytes: g.SizeBytes() / 8,
				Sequential: true,
			})
			if err != nil {
				return nil, err
			}
			if ka.Count != kg.Count || ka.Count != repl.Count || ka.Count != gth.Count {
				return nil, fmt.Errorf("table2 %s/%s: count mismatch kA=%d kGP=%d repl=%d gth=%d",
					a.name, abbr, ka.Count, kg.Count, repl.Count, gth.Count)
			}
			t.AddRow(a.name, abbr,
				elapsedStr(ka.ModeledElapsed), elapsedStr(kg.ModeledElapsed),
				elapsedStr(repl.ModeledElapsed), elapsedStr(gth.ModeledElapsed),
				FmtSpeedup(gth.ModeledElapsed, ka.ModeledElapsed),
				FmtSpeedup(gth.ModeledElapsed, kg.ModeledElapsed))
		}
	}
	t.AddNote("paper: k-Automine/k-GraphPi beat G-thinker by 17.7x/20.3x average, and beat replicated GraphPi on all but tiny workloads")
	t.AddNote("runtimes are modeled cluster makespans from measured busy times (host has fewer cores than simulated workers; see DESIGN.md)")
	t.AddNote("datasets are scaled synthetic stand-ins (scale=%.2f, %d nodes)", o.Scale, o.Nodes)
	return t, nil
}

// runTable3 reproduces Table 3: single-node efficiency vs single-machine
// systems.
func runTable3(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table3",
		Title:  "single-node comparison",
		Header: []string{"App", "G.", "k-Automine(1)", "AutomineIH", "Peregrine", "Pangolin"},
	}
	graphs := []string{"mc", "pt", "lj"}
	appsList := []appSpec{appTC, app3MC, app4CC}
	if !o.Quick {
		appsList = append(appsList, app5CC)
	}
	threads := o.Threads * 2 // single machine gets the whole node's workers
	singles := []*single.Engine{single.AutomineIH(), single.PeregrineLike(), single.PangolinLike()}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			c, err := defaultCluster(g, 1, threads)
			if err != nil {
				return nil, err
			}
			ka, err := runOnCluster(c, apps.KAutomine, a)
			c.Close()
			if err != nil {
				return nil, err
			}
			row := []string{a.name, abbr, elapsedStr(ka.Elapsed)}
			for _, sys := range singles {
				var res single.Result
				if a.kind == "mc" {
					_, res, err = sys.CountMotifs(g, a.k, threads)
				} else {
					res, err = sys.CountPattern(g, a.pattern(), false, threads)
				}
				if err != nil {
					return nil, err
				}
				if res.Count != ka.Count {
					return nil, fmt.Errorf("table3 %s/%s: %s count %d != k-Automine %d",
						a.name, abbr, sys.Name(), res.Count, ka.Count)
				}
				row = append(row, elapsedStr(res.Elapsed))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: k-Automine is comparable to single-machine systems; Pangolin wins TC on skewed graphs via orientation")
	return t, nil
}

// runTable4 reproduces Table 4: FSM on one node and the full cluster.
func runTable4(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:    "table4",
		Title: "FSM performance (MNI support, patterns up to 3 edges)",
		Header: []string{"G.", "Threshold", "k-Automine(1)", "k-Automine(8)",
			"AutomineIH", "Peregrine", "Fractal-like(8)", "#frequent"},
	}
	graphs := []string{"mc"}
	if !o.Quick {
		graphs = append(graphs, "pt")
	}
	threads := o.Threads * 2
	for _, abbr := range graphs {
		d, err := GetDataset(abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		n := uint64(g.NumVertices())
		// Thresholds scale with |V| the way the paper's do (3K-5K on 96K
		// vertices ≈ n/32..n/19); slightly higher fractions keep the
		// frequent set small enough for repeated cross-system runs.
		for _, th := range []uint64{n / 10, n / 12, n / 14} {
			cfg := fsm.Config{MinSupport: th, MaxEdges: 3, Style: plan.StyleAutomine}

			c1, err := cluster.New(g, cluster.Config{
				NumNodes: 1, ThreadsPerSocket: threads, SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			r1, err := fsm.Mine(c1, cfg)
			c1.Close()
			if err != nil {
				return nil, err
			}
			c8, err := cluster.New(g, cluster.Config{
				NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, SequentialNodes: true,
			})
			if err != nil {
				return nil, err
			}
			r8, err := fsm.Mine(c8, cfg)
			c8.Close()
			if err != nil {
				return nil, err
			}
			rIH, err := fsm.MineSingle(g, cfg, threads)
			if err != nil {
				return nil, err
			}
			cfgP := cfg
			cfgP.Style = plan.StyleGraphPi
			rPer, err := fsm.MineSingle(g, cfgP, threads)
			if err != nil {
				return nil, err
			}
			// Fractal replicates the graph on every machine; its aggregate
			// parallelism is nodes × threads over one shared candidate loop.
			rFr, err := fsm.MineSingle(g, cfg, o.Nodes*o.Threads)
			if err != nil {
				return nil, err
			}
			if len(r1.Frequent) != len(r8.Frequent) || len(r1.Frequent) != len(rIH.Frequent) {
				return nil, fmt.Errorf("table4 %s th=%d: frequent-set size mismatch %d/%d/%d",
					abbr, th, len(r1.Frequent), len(r8.Frequent), len(rIH.Frequent))
			}
			t.AddRow(abbr, fmt.Sprintf("%d", th),
				elapsedStr(r1.ModeledElapsed), elapsedStr(r8.ModeledElapsed),
				elapsedStr(rIH.ModeledElapsed), elapsedStr(rPer.ModeledElapsed),
				elapsedStr(rFr.ModeledElapsed),
				fmt.Sprintf("%d", len(r1.Frequent)))
		}
	}
	t.AddNote("paper: distributed k-Automine beats all single-node systems and Fractal; single-node k-Automine pays per-pattern engine startup")
	t.AddNote("modeled makespans (single-core host)")
	return t, nil
}

// runTable5 reproduces Table 5: TC and 4-CC on the massive-graph presets
// with the orientation optimization, 18 simulated nodes vs one big machine.
func runTable5(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table5",
		Title:  "large-scale graphs (orientation preprocessing)",
		Header: []string{"G.", "|V|/|E|", "App", "k-Automine(18)", "AutomineIH(1)", "speedup"},
	}
	graphs := []string{"cl"}
	scale := o.Scale
	if o.Quick {
		scale = o.Scale / 4
	} else {
		graphs = append(graphs, "uk14", "wdc")
	}
	for _, abbr := range graphs {
		d, err := GetDataset(abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(scale)
		dag := graph.Orient(g)
		for _, a := range []appSpec{appTC, app4CC} {
			c, err := cluster.New(dag, cluster.Config{
				NumNodes: 18, ThreadsPerSocket: o.Threads,
				CacheFraction: 0.04, CacheDegreeThreshold: 8,
			})
			if err != nil {
				return nil, err
			}
			k := 3
			if a.kind == "cc" {
				k = a.k
			}
			ka, err := apps.OrientedCliqueCount(c, k, apps.KAutomine)
			c.Close()
			if err != nil {
				return nil, err
			}
			ih, err := single.AutomineIHOriented().CountPattern(g, pattern.Clique(k), false, o.Threads*2)
			if err != nil {
				return nil, err
			}
			if ka.Count != ih.Count {
				return nil, fmt.Errorf("table5 %s/%s: %d != %d", abbr, a.name, ka.Count, ih.Count)
			}
			t.AddRow(abbr,
				fmt.Sprintf("%s/%s", FmtCount(uint64(g.NumVertices())), FmtCount(g.NumEdges())),
				a.name, elapsedStr(ka.ModeledElapsed), elapsedStr(ih.ModeledElapsed),
				FmtSpeedup(ih.ModeledElapsed, ka.ModeledElapsed))
		}
	}
	t.AddNote("paper: k-Automine on 18 nodes beats a 64-core 1TB machine by 3.2x average; graphs exceed single-node memory there")
	t.AddNote("modeled makespans: 18 nodes with T threads vs one machine with 2T threads; the paper's additional memory-capacity advantage cannot be shown at laptop scale")
	return t, nil
}

// runTable6 reproduces Table 6: the static cache's traffic and runtime
// effect.
func runTable6(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table6",
		Title:  "static data cache effect (k-GraphPi)",
		Header: []string{"App", "G.", "traffic(cache)", "traffic(none)", "time(cache)", "time(none)"},
	}
	type combo struct {
		a    appSpec
		abbr string
	}
	combos := []combo{{appTC, "pt"}, {appTC, "lj"}, {app4CC, "pt"}, {app4CC, "lj"}}
	if !o.Quick {
		combos = append(combos, combo{appTC, "uk"}, combo{appTC, "fr"},
			combo{app4CC, "fr"}, combo{app5CC, "pt"}, combo{app5CC, "lj"})
	}
	for _, cb := range combos {
		d, err := GetDataset(cb.abbr)
		if err != nil {
			return nil, err
		}
		g := d.Generate(o.Scale)
		withCache, err := defaultCluster(g, o.Nodes, o.Threads)
		if err != nil {
			return nil, err
		}
		rc, err := runOnCluster(withCache, apps.KGraphPi, cb.a)
		withCache.Close()
		if err != nil {
			return nil, err
		}
		noCache, err := cluster.New(g, cluster.Config{
			NumNodes: o.Nodes, ThreadsPerSocket: o.Threads, ChunkSize: experimentChunkSize,
			SequentialNodes: true,
		})
		if err != nil {
			return nil, err
		}
		rn, err := runOnCluster(noCache, apps.KGraphPi, cb.a)
		noCache.Close()
		if err != nil {
			return nil, err
		}
		if rc.Count != rn.Count {
			return nil, fmt.Errorf("table6 %s/%s: cache changed count", cb.a.name, cb.abbr)
		}
		t.AddRow(cb.a.name, cb.abbr,
			FmtBytes(rc.Summary.BytesSent), FmtBytes(rn.Summary.BytesSent),
			elapsedStr(rc.Elapsed), elapsedStr(rn.Elapsed))
	}
	t.AddNote("paper: cache cuts traffic sharply (57.7TB→487GB for uk-TC); runtime gains appear where communication is not already hidden")
	return t, nil
}

// runTable7 reproduces Table 7: NUMA-aware support on a single node.
func runTable7(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table7",
		Title:  "NUMA-aware support (single node, 2 sockets)",
		Header: []string{"App", "G.", "with NUMA", "no NUMA", "speedup"},
	}
	graphs := []string{"pt", "lj"}
	appsList := []appSpec{app4CC}
	if !o.Quick {
		graphs = append(graphs, "fr")
		appsList = append(appsList, app5CC)
	}
	for _, a := range appsList {
		for _, abbr := range graphs {
			d, err := GetDataset(abbr)
			if err != nil {
				return nil, err
			}
			g := d.Generate(o.Scale)
			// Same total worker count: 2 sockets × T vs 1 socket × 2T.
			numa, err := cluster.New(g, cluster.Config{
				NumNodes: 1, Sockets: 2, ThreadsPerSocket: o.Threads,
				CacheFraction: 0.1, CacheDegreeThreshold: 8,
			})
			if err != nil {
				return nil, err
			}
			rn, err := runOnCluster(numa, apps.KGraphPi, a)
			numa.Close()
			if err != nil {
				return nil, err
			}
			flat, err := cluster.New(g, cluster.Config{
				NumNodes: 1, Sockets: 1, ThreadsPerSocket: 2 * o.Threads,
				CacheFraction: 0.1, CacheDegreeThreshold: 8,
			})
			if err != nil {
				return nil, err
			}
			rf, err := runOnCluster(flat, apps.KGraphPi, a)
			flat.Close()
			if err != nil {
				return nil, err
			}
			if rn.Count != rf.Count {
				return nil, fmt.Errorf("table7 %s/%s: NUMA changed count", a.name, abbr)
			}
			t.AddRow(a.name, abbr, elapsedStr(rn.Elapsed), elapsedStr(rf.Elapsed),
				FmtSpeedup(rf.Elapsed, rn.Elapsed))
		}
	}
	t.AddNote("paper: 1.26x average gain; here the measurable effect is reduced shared-structure contention plus accounted cross-socket traffic (%s)", "see DESIGN.md")
	return t, nil
}
