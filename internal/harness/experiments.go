package harness

import (
	"fmt"
	"sort"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/graph"
	"khuzdul/internal/gthinker"
	"khuzdul/internal/pattern"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies dataset preset sizes (1.0 = preset).
	Scale float64
	// Nodes is the simulated machine count (paper default: 8).
	Nodes int
	// Threads is the compute worker count per machine.
	Threads int
	// Quick trims the heaviest rows, for CI-speed runs and benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Nodes <= 0 {
		o.Nodes = 8
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	return o
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the paper's table/figure identifier ("table2" … "fig19").
	ID string
	// Title summarizes the experiment.
	Title string
	// Run executes the experiment and renders its table.
	Run func(o Options) (*Table, error)
}

// registry holds all experiments, populated by init functions across the
// exp_*.go files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID (tables first,
// then figures, numerically).
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return expKey(out[i].ID) < expKey(out[j].ID) })
	return out
}

// expKey orders "table2" < "table7" < "fig10" < "fig19".
func expKey(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		return n
	}
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return 100 + n
	}
	return 1000
}

// GetExperiment returns the experiment with the given ID.
func GetExperiment(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// appSpec names one of the paper's application workloads.
type appSpec struct {
	name string
	kind string // "tc", "cc", "mc"
	k    int
}

var (
	appTC  = appSpec{name: "TC", kind: "tc"}
	app3MC = appSpec{name: "3-MC", kind: "mc", k: 3}
	app4CC = appSpec{name: "4-CC", kind: "cc", k: 4}
	app5CC = appSpec{name: "5-CC", kind: "cc", k: 5}
)

// runOnCluster executes one application with one client system on a cluster.
func runOnCluster(c *cluster.Cluster, sys apps.System, a appSpec) (cluster.Result, error) {
	switch a.kind {
	case "tc":
		return apps.TriangleCount(c, sys)
	case "cc":
		return apps.CliqueCount(c, a.k, sys)
	case "mc":
		_, combined, err := apps.MotifCount(c, a.k, sys)
		return combined, err
	default:
		return cluster.Result{}, fmt.Errorf("harness: unknown app kind %q", a.kind)
	}
}

// runGThinker executes one application on the G-thinker baseline.
func runGThinker(g *graph.Graph, a appSpec, cfg gthinker.Config) (gthinker.Result, error) {
	switch a.kind {
	case "tc":
		return gthinker.Count(g, pattern.Triangle(), cfg)
	case "cc":
		return gthinker.Count(g, pattern.Clique(a.k), cfg)
	case "mc":
		cfg.Induced = true
		var total gthinker.Result
		for _, pat := range pattern.ConnectedPatterns(a.k) {
			r, err := gthinker.Count(g, pat, cfg)
			if err != nil {
				return gthinker.Result{}, err
			}
			total.Count += r.Count
			total.Elapsed += r.Elapsed
			total.ModeledElapsed += r.ModeledElapsed
			total.Summary.BytesSent += r.Summary.BytesSent
			total.Summary.Breakdown.Compute += r.Summary.Breakdown.Compute
			total.Summary.Breakdown.Network += r.Summary.Breakdown.Network
			total.Summary.Breakdown.Scheduler += r.Summary.Breakdown.Scheduler
			total.Summary.Breakdown.Cache += r.Summary.Breakdown.Cache
		}
		return total, nil
	default:
		return gthinker.Result{}, fmt.Errorf("harness: unknown app kind %q", a.kind)
	}
}

// patternFor returns the single pattern of tc/cc specs.
func (a appSpec) pattern() *pattern.Pattern {
	switch a.kind {
	case "tc":
		return pattern.Triangle()
	case "cc":
		return pattern.Clique(a.k)
	default:
		panic("harness: appSpec.pattern on multi-pattern app")
	}
}

// defaultCluster builds a cluster with the experiment-wide defaults: static
// cache at 10% of graph size with a scaled-down admission threshold (the
// paper's threshold of 64 assumes real-graph degrees), HDS on.
func defaultCluster(g *graph.Graph, nodes, threads int) (*cluster.Cluster, error) {
	return cluster.New(g, cluster.Config{
		NumNodes:             nodes,
		ThreadsPerSocket:     threads,
		ChunkSize:            experimentChunkSize,
		CacheFraction:        0.10,
		CacheDegreeThreshold: 8,
		SequentialNodes:      true,
	})
}

// experimentChunkSize keeps the chunk:graph ratio at preset scale close to
// the paper's (4GB chunks against hundreds-of-GB graphs): small enough that
// every level spans many chunk generations, so the static cache sees repeat
// accesses across chunks.
const experimentChunkSize = 2048

// elapsedStr formats a runtime column.
func elapsedStr(d time.Duration) string { return FmtDur(d) }
