package harness

import (
	"strings"
	"testing"
	"time"
)

func TestDatasetPresets(t *testing.T) {
	for _, abbr := range DatasetNames() {
		d, err := GetDataset(abbr)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(0.05)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", abbr)
		}
		if d.Labeled != g.Labeled() {
			t.Errorf("%s: Labeled flag %v but graph labeled=%v", abbr, d.Labeled, g.Labeled())
		}
	}
	if _, err := GetDataset("nope"); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestDatasetSkewOrdering(t *testing.T) {
	// The presets must preserve the paper's skew ordering: pt is much less
	// skewed than lj and uk.
	get := func(abbr string) float64 {
		d, err := GetDataset(abbr)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(1)
		avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
		return float64(g.MaxDegree()) / avg
	}
	pt, lj, uk := get("pt"), get("lj"), get("uk")
	if pt >= lj {
		t.Errorf("pt skew %.1f not below lj %.1f", pt, lj)
	}
	if lj >= uk {
		t.Errorf("lj skew %.1f not below uk %.1f", lj, uk)
	}
}

func TestDatasetDeterministic(t *testing.T) {
	d, _ := GetDataset("lj")
	a, b := d.Generate(0.1), d.Generate(0.1)
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatal("preset not deterministic")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19",
		"ablation-pipeline", "ablation-minibatch", "ablation-oblivious",
		"ablation-chaos", "ablation-transport",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for _, id := range want {
		if _, err := GetExperiment(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	// Sorted order: tables, then figures, then extras.
	for i := 1; i < len(exps); i++ {
		if expKey(exps[i-1].ID) > expKey(exps[i].ID) {
			t.Fatalf("registry not sorted: %s before %s", exps[i-1].ID, exps[i].ID)
		}
	}
	if _, err := GetExperiment("table99"); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

// TestAllExperimentsRunTiny executes every experiment end-to-end at a tiny
// scale; this is the integration test of the whole repository.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	opts := Options{Scale: 0.08, Nodes: 3, Threads: 2, Quick: true}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			start := time.Now()
			tab, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			out := tab.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s: rendering lacks id:\n%s", e.ID, out)
			}
			t.Logf("%s: %d rows in %v", e.ID, len(tab.Rows), time.Since(start))
		})
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("hello %d", 42)
	s := tab.String()
	for _, want := range []string{"== x: t ==", "333", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := FmtDur(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("FmtDur = %q", got)
	}
	if got := FmtDur(42 * time.Second); got != "42.00s" {
		t.Errorf("FmtDur = %q", got)
	}
	if got := FmtDur(20 * time.Minute); got != "20.0min" {
		t.Errorf("FmtDur = %q", got)
	}
	if got := FmtBytes(5 << 20); got != "5.00MB" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtBytes(100); got != "100B" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtCount(1234567); got != "1,234,567" {
		t.Errorf("FmtCount = %q", got)
	}
	if got := FmtCount(42); got != "42" {
		t.Errorf("FmtCount = %q", got)
	}
	if got := FmtSpeedup(10*time.Second, 2*time.Second); got != "5.00x" {
		t.Errorf("FmtSpeedup = %q", got)
	}
	if got := FmtSpeedup(time.Second, 0); got != "-" {
		t.Errorf("FmtSpeedup zero = %q", got)
	}
}
