package harness

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result: a title, a header row and data
// rows, printed in aligned plain text like the paper's tables.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (scaling, substitutions) printed under the table.
	Notes []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a caveat line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// FmtDur renders a duration compactly (ms below 10s, s above).
func FmtDur(d time.Duration) string {
	switch {
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d < 10*time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}

// FmtBytes renders a byte count with binary units.
func FmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// FmtSpeedup renders a ratio as "N.Nx".
func FmtSpeedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(other))
}

// FmtCount renders a large count with thousands grouping.
func FmtCount(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
		if len(s) > lead {
			sb.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		sb.WriteString(s[i : i+3])
		if i+3 < len(s) {
			sb.WriteByte(',')
		}
	}
	return sb.String()
}
