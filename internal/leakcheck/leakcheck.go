// Package leakcheck fails tests that leak goroutines. The chaos and TCP
// fabric tests exercise exactly the code whose goroutines are easiest to
// strand — abandoned fetch attempts, heartbeat loops, speculative engines —
// and the goroutinejoin analyzer can only prove a join exists, not that it
// is reached. This runtime check closes that gap with nothing but the
// standard library: snapshot the goroutine count at test start, then after
// the test give exiting goroutines a settle window and fail if the count
// never returns to the baseline.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// patience bounds the settle loop: goroutines legitimately unwinding after
// Close (parked fetch attempts, detector loops draining) get this long to
// disappear before the test is declared leaky.
const patience = 2 * time.Second

// Check snapshots the current goroutine count and registers a cleanup that
// fails the test if the count has not settled back to the baseline by the
// end of the test. Call it first thing, before any fabric or cluster is
// built.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if msg := settle(before, patience); msg != "" {
			t.Error(msg)
		}
	})
}

// settle polls until the goroutine count drops to the baseline or the
// patience budget runs out, and returns a leak report (with all stacks) in
// the latter case.
func settle(before int, patience time.Duration) string {
	deadline := time.Now().Add(patience)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return ""
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Sprintf("goroutine leak: %d at test start, %d after settle window\n%s", before, n, buf)
		}
		//khuzdulvet:ignore sleepban settle polling between runtime.NumGoroutine samples has no channel to wait on
		time.Sleep(2 * time.Millisecond)
	}
}
