package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSettleToleratesUnwindingGoroutines: a goroutine that exits shortly
// after the test body must not be reported — the settle window absorbs it.
func TestSettleToleratesUnwindingGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	if msg := settle(before, 2*time.Second); msg != "" {
		t.Fatalf("settle reported an unwinding goroutine as a leak:\n%s", msg)
	}
	<-done
}

// TestSettleReportsStuckGoroutine: a goroutine parked forever must be
// reported once patience runs out, with its stack in the report.
func TestSettleReportsStuckGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	msg := settle(before, 50*time.Millisecond)
	if msg == "" {
		t.Fatal("settle missed a permanently parked goroutine")
	}
	if !strings.Contains(msg, "goroutine leak") || !strings.Contains(msg, "goroutine ") {
		t.Fatalf("leak report lacks count or stacks:\n%s", msg)
	}
	close(block)
}

// TestCheckCleanTest: Check on a test that leaks nothing stays silent.
func TestCheckCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
