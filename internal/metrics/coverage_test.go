package metrics

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSummarizeCoversEveryNodeCounter walks Node's exported atomic fields by
// reflection, gives each a distinct value, and checks the same-named Summary
// field carries it after Summarize — so a counter added to Node without a
// summary surface fails here (the metriclive invariant, pinned at runtime).
func TestSummarizeCoversEveryNodeCounter(t *testing.T) {
	// Point-in-time gauges have no summed summary form; each must name the
	// summarized field that stands in for it.
	gauges := map[string]string{
		"InFlightFetches": "InFlightPeak",
	}
	c := NewCluster(1)
	n := c.Nodes[0]
	nv := reflect.ValueOf(n).Elem()
	nt := nv.Type()
	want := map[string]uint64{}
	val := uint64(3)
	for i := 0; i < nt.NumField(); i++ {
		f := nt.Field(i)
		if !f.IsExported() {
			continue // the *NS fields surface through Breakdown, checked below
		}
		switch x := nv.Field(i).Addr().Interface().(type) {
		case *atomic.Uint64:
			x.Store(val)
		case *atomic.Int64:
			x.Store(int64(val))
		default:
			t.Fatalf("Node.%s has unhandled type %s", f.Name, f.Type)
		}
		want[f.Name] = val
		val += 7
	}
	n.AddCompute(1 * time.Second)
	n.AddNetwork(2 * time.Second)
	n.AddScheduler(3 * time.Second)
	n.AddCache(4 * time.Second)

	s := c.Summarize()
	sv := reflect.ValueOf(s)
	for name, v := range want {
		if stand, ok := gauges[name]; ok {
			if !sv.FieldByName(stand).IsValid() {
				t.Errorf("gauge Node.%s: stand-in Summary.%s missing", name, stand)
			}
			continue
		}
		fld := sv.FieldByName(name)
		if !fld.IsValid() {
			t.Errorf("Node.%s is incremented but has no Summary field: never surfaced", name)
			continue
		}
		if got := fld.Uint(); got != v {
			t.Errorf("Summary.%s = %d, want %d", name, got, v)
		}
	}
	wantBreakdown := Breakdown{Compute: 1 * time.Second, Network: 2 * time.Second,
		Scheduler: 3 * time.Second, Cache: 4 * time.Second}
	if s.Breakdown != wantBreakdown {
		t.Errorf("Summary.Breakdown = %+v, want %+v", s.Breakdown, wantBreakdown)
	}
}

// TestSummaryMergeCoversEveryField fills a Summary with distinct values by
// reflection and merges it into a zero Summary: sums and maxima alike must
// reproduce the source, so a field added to Summary but forgotten in Merge
// fails here (the CountAll bug class — the hand-rolled merge had dropped
// the NUMA counters, PeakEmbeddings and the breakdown).
func TestSummaryMergeCoversEveryField(t *testing.T) {
	var src Summary
	sv := reflect.ValueOf(&src).Elem()
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(100 + 7*i))
		case reflect.Struct: // Breakdown
			for j := 0; j < f.NumField(); j++ {
				f.Field(j).SetInt(int64((j + 1) * int(time.Second)))
			}
		default:
			t.Fatalf("Summary.%s has unhandled kind %s", st.Field(i).Name, f.Kind())
		}
	}
	var dst Summary
	dst.Merge(src)
	if !reflect.DeepEqual(dst, src) {
		t.Errorf("Merge into zero lost fields:\n got %+v\nwant %+v", dst, src)
	}
	// Merging twice doubles counters but keeps peaks: spot-check the two rules.
	dst.Merge(src)
	if dst.BytesSent != 2*src.BytesSent {
		t.Errorf("counters must add: BytesSent = %d, want %d", dst.BytesSent, 2*src.BytesSent)
	}
	if dst.InFlightPeak != src.InFlightPeak || dst.PeakEmbeddings != src.PeakEmbeddings {
		t.Errorf("peaks must max, not add: %d/%d, want %d/%d",
			dst.InFlightPeak, dst.PeakEmbeddings, src.InFlightPeak, src.PeakEmbeddings)
	}
}

// TestServiceSummaryLineCoversEveryCounter gives every exported Service
// counter a distinct value and checks the rendered summary line quotes each
// one — the CLI line is the service counters' only surface.
func TestServiceSummaryLineCoversEveryCounter(t *testing.T) {
	// ActiveQueries is the point-in-time gauge; its high-water mark
	// ActiveQueryPeak is the summarized form.
	gauges := map[string]bool{"ActiveQueries": true}
	var s Service
	sv := reflect.ValueOf(&s).Elem()
	st := sv.Type()
	want := map[string]uint64{}
	val := uint64(1111)
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() {
			continue // queryDurationNS surfaces through the avg, checked below
		}
		switch x := sv.Field(i).Addr().Interface().(type) {
		case *atomic.Uint64:
			x.Store(val)
		case *atomic.Int64:
			x.Store(int64(val))
		default:
			t.Fatalf("Service.%s has unhandled type %s", f.Name, f.Type)
		}
		want[f.Name] = val
		val += 1111
	}
	s.AddQueryDuration(8 * time.Second)
	line := s.SummaryLine()
	for name, v := range want {
		if gauges[name] {
			continue
		}
		if !strings.Contains(line, fmt.Sprintf("%d", v)) {
			t.Errorf("SummaryLine omits Service.%s (=%d): %q", name, v, line)
		}
	}
	if s.AvgQueryDuration() == 0 {
		t.Error("queryDurationNS never surfaced through AvgQueryDuration")
	}
}
