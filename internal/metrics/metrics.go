// Package metrics collects the counters and time breakdowns that the paper's
// evaluation reports: network traffic in bytes, message and fetch counts,
// cache hit rates, and per-category runtime (compute / network / scheduler /
// cache) used for the Figure 15 breakdown and the Figure 19 utilization
// analysis. All counters are atomic so engine worker threads update them
// without coordination.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Node aggregates the counters of one machine.
type Node struct {
	BytesSent          atomic.Uint64 // payload bytes this node sent (requests + responses)
	BytesReceived      atomic.Uint64
	Messages           atomic.Uint64 // network messages sent
	Fetches            atomic.Uint64 // edge-list fetch attempts (local + remote)
	RemoteFetches      atomic.Uint64 // fetches that went over the network
	CacheHits          atomic.Uint64
	CacheMisses        atomic.Uint64
	HDSHits            atomic.Uint64 // horizontal-data-sharing hits within a chunk
	VerticalHits       atomic.Uint64 // active lists resolved through parent pointers
	Extensions         atomic.Uint64 // embedding extensions performed
	Matches            atomic.Uint64 // full pattern embeddings found
	KernelMerge        atomic.Uint64 // set kernels: linear-merge intersections executed
	KernelGallop       atomic.Uint64 // set kernels: galloping intersections executed
	KernelBitmap       atomic.Uint64 // set kernels: hub-bitmap probe intersections executed
	KernelPivot        atomic.Uint64 // set kernels: k-way pivot intersections executed
	CrossSocketFetches atomic.Uint64 // NUMA: lists served from another socket
	CrossSocketBytes   atomic.Uint64 // NUMA: modeled cross-socket traffic
	FetchRetries       atomic.Uint64 // resilience: fetch attempts retried after a failure
	FetchTimeouts      atomic.Uint64 // resilience: fetch attempts that hit the per-attempt deadline
	BreakerTrips       atomic.Uint64 // resilience: peers this node's circuit breaker declared dead
	FaultsInjected     atomic.Uint64 // resilience: transient faults injected into this node's fetches
	RecoveredRoots     atomic.Uint64 // resilience: source vertices re-executed on this node during recovery
	CorruptFrames      atomic.Uint64 // wire integrity: frames this node rejected on a CRC/header mismatch
	Redials            atomic.Uint64 // wire integrity: TCP connections this node re-established after a drop
	HeartbeatMisses    atomic.Uint64 // failure detector: pings from this node that timed out or failed
	NodesSuspected     atomic.Uint64 // failure detector: peers this node's detector declared suspect
	SpeculativeRanges  atomic.Uint64 // speculation: straggler root ranges this node re-executed speculatively
	SpeculationWins    atomic.Uint64 // speculation: speculative re-executions that finished before the straggler
	PipelinedFetches   atomic.Uint64 // transport: fetches completed over a multiplexed (v3) connection
	InFlightFetches    atomic.Int64  // transport gauge: multiplexed requests outstanding from this node right now
	InFlightPeak       atomic.Uint64 // transport: high-water mark of InFlightFetches
	// PeakEmbeddings is the high-water mark of simultaneously allocated
	// extendable embeddings across this machine's live chunks — the
	// quantity the paper's §4.2 bounded-memory argument is about.
	PeakEmbeddings atomic.Uint64

	computeNS   atomic.Int64
	networkNS   atomic.Int64
	schedulerNS atomic.Int64
	cacheNS     atomic.Int64
}

// AddCompute accrues embedding-extension time.
func (n *Node) AddCompute(d time.Duration) { n.computeNS.Add(int64(d)) }

// AddNetwork accrues time spent waiting on or serving communication.
func (n *Node) AddNetwork(d time.Duration) { n.networkNS.Add(int64(d)) }

// AddScheduler accrues chunk/task scheduling and bookkeeping time.
func (n *Node) AddScheduler(d time.Duration) { n.schedulerNS.Add(int64(d)) }

// AddCache accrues software-cache maintenance time.
func (n *Node) AddCache(d time.Duration) { n.cacheNS.Add(int64(d)) }

// Reset zeroes every counter. Callers must ensure no concurrent updates.
func (n *Node) Reset() {
	n.BytesSent.Store(0)
	n.BytesReceived.Store(0)
	n.Messages.Store(0)
	n.Fetches.Store(0)
	n.RemoteFetches.Store(0)
	n.CacheHits.Store(0)
	n.CacheMisses.Store(0)
	n.HDSHits.Store(0)
	n.VerticalHits.Store(0)
	n.Extensions.Store(0)
	n.Matches.Store(0)
	n.KernelMerge.Store(0)
	n.KernelGallop.Store(0)
	n.KernelBitmap.Store(0)
	n.KernelPivot.Store(0)
	n.CrossSocketFetches.Store(0)
	n.CrossSocketBytes.Store(0)
	n.FetchRetries.Store(0)
	n.FetchTimeouts.Store(0)
	n.BreakerTrips.Store(0)
	n.FaultsInjected.Store(0)
	n.RecoveredRoots.Store(0)
	n.CorruptFrames.Store(0)
	n.Redials.Store(0)
	n.HeartbeatMisses.Store(0)
	n.NodesSuspected.Store(0)
	n.SpeculativeRanges.Store(0)
	n.SpeculationWins.Store(0)
	n.PipelinedFetches.Store(0)
	n.InFlightFetches.Store(0)
	n.InFlightPeak.Store(0)
	n.PeakEmbeddings.Store(0)
	n.computeNS.Store(0)
	n.networkNS.Store(0)
	n.schedulerNS.Store(0)
	n.cacheNS.Store(0)
}

// RecordPeakEmbeddings raises the live-embedding high-water mark to cur if
// it exceeds the stored peak. Callers update it single-threadedly per
// engine, but the max loop stays safe under concurrency.
func (n *Node) RecordPeakEmbeddings(cur uint64) {
	for {
		old := n.PeakEmbeddings.Load()
		if cur <= old || n.PeakEmbeddings.CompareAndSwap(old, cur) {
			return
		}
	}
}

// RecordInFlightPeak raises the in-flight-request high-water mark to cur if
// it exceeds the stored peak (same CAS-max discipline as
// RecordPeakEmbeddings, but updated concurrently by fetch goroutines).
func (n *Node) RecordInFlightPeak(cur uint64) {
	for {
		old := n.InFlightPeak.Load()
		if cur <= old || n.InFlightPeak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// Breakdown is a runtime split by category, as in the paper's Figure 15.
type Breakdown struct {
	Compute   time.Duration
	Network   time.Duration
	Scheduler time.Duration
	Cache     time.Duration
}

// Breakdown returns the node's accumulated time split.
func (n *Node) Breakdown() Breakdown {
	return Breakdown{
		Compute:   time.Duration(n.computeNS.Load()),
		Network:   time.Duration(n.networkNS.Load()),
		Scheduler: time.Duration(n.schedulerNS.Load()),
		Cache:     time.Duration(n.cacheNS.Load()),
	}
}

// Total returns the sum of all categories.
func (b Breakdown) Total() time.Duration {
	return b.Compute + b.Network + b.Scheduler + b.Cache
}

// Percentages renders the split as percentages of the total.
func (b Breakdown) Percentages() (compute, network, scheduler, cache float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0, 0
	}
	f := func(d time.Duration) float64 { return 100 * float64(d) / float64(t) }
	return f(b.Compute), f(b.Network), f(b.Scheduler), f(b.Cache)
}

// String formats the breakdown as percentages.
func (b Breakdown) String() string {
	c, n, s, ca := b.Percentages()
	return fmt.Sprintf("compute=%.1f%% network=%.1f%% scheduler=%.1f%% cache=%.1f%%", c, n, s, ca)
}

// Cluster aggregates per-node metrics.
type Cluster struct {
	Nodes []*Node
}

// NewCluster returns metrics storage for n nodes.
func NewCluster(n int) *Cluster {
	c := &Cluster{Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = &Node{}
	}
	return c
}

// Reset zeroes all node counters (between experiment runs).
func (c *Cluster) Reset() {
	for _, n := range c.Nodes {
		n.Reset()
	}
}

// Summary holds cluster-wide totals.
type Summary struct {
	BytesSent uint64
	// BytesReceived mirrors BytesSent from the receiver's side; the two
	// agree for intra-cluster traffic but diverge under node loss (bytes
	// sent to a dead peer are never received).
	BytesReceived      uint64
	Messages           uint64
	Fetches            uint64
	RemoteFetches      uint64
	CacheHits          uint64
	CacheMisses        uint64
	HDSHits            uint64
	VerticalHits       uint64
	Extensions         uint64
	Matches            uint64
	KernelMerge        uint64
	KernelGallop       uint64
	KernelBitmap       uint64
	KernelPivot        uint64
	CrossSocketFetches uint64
	CrossSocketBytes   uint64
	FetchRetries       uint64
	FetchTimeouts      uint64
	BreakerTrips       uint64
	FaultsInjected     uint64
	RecoveredRoots     uint64
	CorruptFrames      uint64
	Redials            uint64
	HeartbeatMisses    uint64
	NodesSuspected     uint64
	SpeculativeRanges  uint64
	SpeculationWins    uint64
	PipelinedFetches   uint64
	// InFlightPeak is the maximum over machines of the per-machine
	// multiplexed in-flight-request high-water mark.
	InFlightPeak uint64
	// PeakEmbeddings is the maximum over machines of the per-machine
	// live-embedding high-water mark.
	PeakEmbeddings uint64
	Breakdown      Breakdown
}

// Summarize sums all node counters.
func (c *Cluster) Summarize() Summary {
	var s Summary
	for _, n := range c.Nodes {
		s.BytesSent += n.BytesSent.Load()
		s.BytesReceived += n.BytesReceived.Load()
		s.Messages += n.Messages.Load()
		s.Fetches += n.Fetches.Load()
		s.RemoteFetches += n.RemoteFetches.Load()
		s.CacheHits += n.CacheHits.Load()
		s.CacheMisses += n.CacheMisses.Load()
		s.HDSHits += n.HDSHits.Load()
		s.VerticalHits += n.VerticalHits.Load()
		s.Extensions += n.Extensions.Load()
		s.Matches += n.Matches.Load()
		s.KernelMerge += n.KernelMerge.Load()
		s.KernelGallop += n.KernelGallop.Load()
		s.KernelBitmap += n.KernelBitmap.Load()
		s.KernelPivot += n.KernelPivot.Load()
		s.CrossSocketFetches += n.CrossSocketFetches.Load()
		s.CrossSocketBytes += n.CrossSocketBytes.Load()
		s.FetchRetries += n.FetchRetries.Load()
		s.FetchTimeouts += n.FetchTimeouts.Load()
		s.BreakerTrips += n.BreakerTrips.Load()
		s.FaultsInjected += n.FaultsInjected.Load()
		s.RecoveredRoots += n.RecoveredRoots.Load()
		s.CorruptFrames += n.CorruptFrames.Load()
		s.Redials += n.Redials.Load()
		s.HeartbeatMisses += n.HeartbeatMisses.Load()
		s.NodesSuspected += n.NodesSuspected.Load()
		s.SpeculativeRanges += n.SpeculativeRanges.Load()
		s.SpeculationWins += n.SpeculationWins.Load()
		s.PipelinedFetches += n.PipelinedFetches.Load()
		if p := n.InFlightPeak.Load(); p > s.InFlightPeak {
			s.InFlightPeak = p
		}
		if p := n.PeakEmbeddings.Load(); p > s.PeakEmbeddings {
			s.PeakEmbeddings = p
		}
		b := n.Breakdown()
		s.Breakdown.Compute += b.Compute
		s.Breakdown.Network += b.Network
		s.Breakdown.Scheduler += b.Scheduler
		s.Breakdown.Cache += b.Cache
	}
	return s
}

// Merge folds another summary into s: counters add, peaks take the maximum,
// and the breakdown accumulates. This is the multi-run combination rule
// (CountAll and the motif harness) — peaks are high-water marks of
// concurrent usage, and sequential runs do not stack their concurrency.
func (s *Summary) Merge(o Summary) {
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.Messages += o.Messages
	s.Fetches += o.Fetches
	s.RemoteFetches += o.RemoteFetches
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.HDSHits += o.HDSHits
	s.VerticalHits += o.VerticalHits
	s.Extensions += o.Extensions
	s.Matches += o.Matches
	s.KernelMerge += o.KernelMerge
	s.KernelGallop += o.KernelGallop
	s.KernelBitmap += o.KernelBitmap
	s.KernelPivot += o.KernelPivot
	s.CrossSocketFetches += o.CrossSocketFetches
	s.CrossSocketBytes += o.CrossSocketBytes
	s.FetchRetries += o.FetchRetries
	s.FetchTimeouts += o.FetchTimeouts
	s.BreakerTrips += o.BreakerTrips
	s.FaultsInjected += o.FaultsInjected
	s.RecoveredRoots += o.RecoveredRoots
	s.CorruptFrames += o.CorruptFrames
	s.Redials += o.Redials
	s.HeartbeatMisses += o.HeartbeatMisses
	s.NodesSuspected += o.NodesSuspected
	s.SpeculativeRanges += o.SpeculativeRanges
	s.SpeculationWins += o.SpeculationWins
	s.PipelinedFetches += o.PipelinedFetches
	if o.InFlightPeak > s.InFlightPeak {
		s.InFlightPeak = o.InFlightPeak
	}
	if o.PeakEmbeddings > s.PeakEmbeddings {
		s.PeakEmbeddings = o.PeakEmbeddings
	}
	s.Breakdown.Compute += o.Breakdown.Compute
	s.Breakdown.Network += o.Breakdown.Network
	s.Breakdown.Scheduler += o.Breakdown.Scheduler
	s.Breakdown.Cache += o.Breakdown.Cache
}

// Service aggregates the query-service counters: the admission controller's
// verdicts, the live-query gauge and its high-water mark, and summed query
// latency. All fields are atomic — the server's per-connection and
// per-query goroutines update them without coordination, mirroring the
// per-node counters above.
type Service struct {
	QueriesSubmitted        atomic.Uint64 // QUERY_SUBMIT frames received
	QueriesRejected         atomic.Uint64 // submissions bounced by the admission window or a draining server
	QueriesOK               atomic.Uint64 // queries that ran to completion
	QueriesCanceled         atomic.Uint64 // queries aborted by CANCEL or client disconnect
	QueriesFailed           atomic.Uint64 // compile or execution failures
	QueriesDeadlineExceeded atomic.Uint64 // queries killed by their per-query deadline
	ActiveQueries           atomic.Int64  // gauge: queries executing right now
	ActiveQueryPeak         atomic.Uint64 // high-water mark of ActiveQueries
	queryDurationNS         atomic.Int64  // summed execution latency of finished queries
}

// RecordActivePeak raises the live-query high-water mark to cur if it
// exceeds the stored peak (the CAS-max discipline of RecordInFlightPeak).
func (s *Service) RecordActivePeak(cur uint64) {
	for {
		old := s.ActiveQueryPeak.Load()
		if cur <= old || s.ActiveQueryPeak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// AddQueryDuration accrues one finished query's execution latency.
func (s *Service) AddQueryDuration(d time.Duration) { s.queryDurationNS.Add(int64(d)) }

// AvgQueryDuration returns the mean execution latency over finished queries
// (completed, canceled, deadline-killed or failed — everything that
// actually ran).
func (s *Service) AvgQueryDuration() time.Duration {
	n := s.QueriesOK.Load() + s.QueriesCanceled.Load() + s.QueriesFailed.Load() +
		s.QueriesDeadlineExceeded.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.queryDurationNS.Load() / int64(n))
}

// SummaryLine renders the service counters in the CLI's one-line summary
// style (the transport summary's sibling).
func (s *Service) SummaryLine() string {
	return fmt.Sprintf("service: %d queries (%d ok, %d rejected, %d canceled, %d deadline-exceeded, %d failed), active peak %d, avg query %v",
		s.QueriesSubmitted.Load(), s.QueriesOK.Load(), s.QueriesRejected.Load(),
		s.QueriesCanceled.Load(), s.QueriesDeadlineExceeded.Load(), s.QueriesFailed.Load(),
		s.ActiveQueryPeak.Load(), s.AvgQueryDuration().Round(time.Microsecond))
}

// CacheHitRate returns hits/(hits+misses), or 0 with no accesses.
func (s Summary) CacheHitRate() float64 {
	t := s.CacheHits + s.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(t)
}

// NetworkUtilization returns the fraction of the given aggregate bandwidth
// that the measured traffic consumed over the elapsed wall time, as in the
// paper's Figure 19.
func (s Summary) NetworkUtilization(bandwidthBytesPerSec float64, elapsed time.Duration) float64 {
	if elapsed <= 0 || bandwidthBytesPerSec <= 0 {
		return 0
	}
	return float64(s.BytesSent) / (bandwidthBytesPerSec * elapsed.Seconds())
}
