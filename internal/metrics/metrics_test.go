package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBreakdownPercentages(t *testing.T) {
	n := &Node{}
	n.AddCompute(60 * time.Millisecond)
	n.AddNetwork(20 * time.Millisecond)
	n.AddScheduler(15 * time.Millisecond)
	n.AddCache(5 * time.Millisecond)
	b := n.Breakdown()
	if b.Total() != 100*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	c, nw, s, ca := b.Percentages()
	if c != 60 || nw != 20 || s != 15 || ca != 5 {
		t.Fatalf("percentages = %v %v %v %v", c, nw, s, ca)
	}
	if b.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestEmptyBreakdown(t *testing.T) {
	var b Breakdown
	c, nw, s, ca := b.Percentages()
	if c+nw+s+ca != 0 {
		t.Fatal("empty breakdown has nonzero percentages")
	}
}

func TestClusterSummarize(t *testing.T) {
	c := NewCluster(3)
	c.Nodes[0].BytesSent.Add(100)
	c.Nodes[1].BytesSent.Add(50)
	c.Nodes[2].CacheHits.Add(3)
	c.Nodes[2].CacheMisses.Add(1)
	c.Nodes[0].Matches.Add(7)
	c.Nodes[1].AddCompute(time.Second)
	s := c.Summarize()
	if s.BytesSent != 150 {
		t.Fatalf("BytesSent = %d", s.BytesSent)
	}
	if s.Matches != 7 {
		t.Fatalf("Matches = %d", s.Matches)
	}
	if s.CacheHitRate() != 0.75 {
		t.Fatalf("CacheHitRate = %v", s.CacheHitRate())
	}
	if s.Breakdown.Compute != time.Second {
		t.Fatalf("Breakdown.Compute = %v", s.Breakdown.Compute)
	}
}

func TestResilienceCountersSummarizeAndReset(t *testing.T) {
	c := NewCluster(3)
	c.Nodes[0].CorruptFrames.Add(2)
	c.Nodes[1].CorruptFrames.Add(1)
	c.Nodes[1].Redials.Add(4)
	c.Nodes[2].HeartbeatMisses.Add(5)
	c.Nodes[2].NodesSuspected.Add(1)
	c.Nodes[0].SpeculativeRanges.Add(7)
	c.Nodes[0].SpeculationWins.Add(1)
	s := c.Summarize()
	if s.CorruptFrames != 3 || s.Redials != 4 || s.HeartbeatMisses != 5 ||
		s.NodesSuspected != 1 || s.SpeculativeRanges != 7 || s.SpeculationWins != 1 {
		t.Fatalf("summarized resilience counters %+v", s)
	}
	for _, n := range c.Nodes {
		n.Reset()
	}
	s = c.Summarize()
	if s.CorruptFrames != 0 || s.Redials != 0 || s.HeartbeatMisses != 0 ||
		s.NodesSuspected != 0 || s.SpeculativeRanges != 0 || s.SpeculationWins != 0 {
		t.Fatalf("reset left resilience counters %+v", s)
	}
}

func TestCacheHitRateNoAccesses(t *testing.T) {
	var s Summary
	if s.CacheHitRate() != 0 {
		t.Fatal("hit rate without accesses")
	}
}

func TestNetworkUtilization(t *testing.T) {
	s := Summary{BytesSent: 500}
	// 500 bytes over 1s at 1000 B/s = 50%.
	if got := s.NetworkUtilization(1000, time.Second); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
	if got := s.NetworkUtilization(0, time.Second); got != 0 {
		t.Fatal("utilization with zero bandwidth")
	}
	if got := s.NetworkUtilization(1000, 0); got != 0 {
		t.Fatal("utilization with zero elapsed")
	}
}

func TestConcurrentCounters(t *testing.T) {
	c := NewCluster(1)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Nodes[0].Extensions.Add(1)
				c.Nodes[0].AddCompute(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	s := c.Summarize()
	if s.Extensions != 16000 {
		t.Fatalf("Extensions = %d, want 16000", s.Extensions)
	}
	if s.Breakdown.Compute != 16000*time.Nanosecond {
		t.Fatalf("Compute = %v", s.Breakdown.Compute)
	}
}
