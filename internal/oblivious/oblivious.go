// Package oblivious implements the pattern-oblivious enumeration method the
// paper contrasts with pattern-aware systems (§1): the approach of early GPM
// systems such as Arabesque, Fractal and RStream. It enumerates *all*
// connected subgraphs up to the pattern size — without consulting the
// pattern during exploration — and classifies each enumerated subgraph with
// an isomorphism (canonical form) check against the target pattern(s).
//
// The paper dismisses this method for its significantly worse performance;
// this implementation exists to reproduce that comparison honestly: it is a
// clean multithreaded ESU (Wernicke) enumeration whose cost comes from
// visiting the full connected-subgraph space and paying a canonical-form
// computation per subgraph, not from artificial slowdowns.
package oblivious

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// Result reports one run.
type Result struct {
	// Counts has one entry per target pattern, in the order given.
	Counts []uint64
	// Enumerated is the total number of connected subgraphs visited (the
	// quantity that explodes and makes the method slow).
	Enumerated uint64
	Elapsed    time.Duration
}

// CountPatterns enumerates every connected k-vertex subgraph of g exactly
// once (ESU) and counts, per target pattern, the subgraphs whose induced
// edge set is isomorphic to it. Targets must all have k vertices; they are
// matched with induced (motif) semantics — the natural mode of
// pattern-oblivious systems.
func CountPatterns(g *graph.Graph, targets []*pattern.Pattern, k, threads int) (Result, error) {
	if k < 1 || k > pattern.MaxVertices {
		return Result{}, fmt.Errorf("oblivious: bad subgraph size %d", k)
	}
	codes := make([]string, len(targets))
	for i, t := range targets {
		if t.NumVertices() != k {
			return Result{}, fmt.Errorf("oblivious: target %v has %d vertices, want %d",
				t, t.NumVertices(), k)
		}
		codes[i] = pattern.CanonicalCode(t)
	}
	if threads < 1 {
		threads = 1
	}
	start := time.Now()
	counts := make([]uint64, len(targets))
	var enumerated atomic.Uint64
	var cursor atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	n := g.NumVertices()
	const grain = 64
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newESU(g, k)
			local := make([]uint64, len(targets))
			var localEnum uint64
			for {
				startV := int(cursor.Add(grain)) - grain
				if startV >= n {
					break
				}
				endV := startV + grain
				if endV > n {
					endV = n
				}
				for v := startV; v < endV; v++ {
					e.enumerate(graph.VertexID(v), func(sub []graph.VertexID) {
						localEnum++
						code := inducedCode(g, sub)
						for i, c := range codes {
							if code == c {
								local[i]++
							}
						}
					})
				}
			}
			enumerated.Add(localEnum)
			mu.Lock()
			for i := range counts {
				counts[i] += local[i]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return Result{
		Counts:     counts,
		Enumerated: enumerated.Load(),
		Elapsed:    time.Since(start),
	}, nil
}

// CountMotifs enumerates once and classifies against every connected size-k
// pattern — the k-motif-counting mode of pattern-oblivious systems.
func CountMotifs(g *graph.Graph, k, threads int) ([]*pattern.Pattern, Result, error) {
	pats := pattern.ConnectedPatterns(k)
	res, err := CountPatterns(g, pats, k, threads)
	return pats, res, err
}

// esu is Wernicke's ESU enumerator: every connected vertex set of size k is
// visited exactly once, anchored at its minimum vertex.
type esu struct {
	g     *graph.Graph
	k     int
	sub   []graph.VertexID
	inSub map[graph.VertexID]bool
	inNbr map[graph.VertexID]bool // open neighborhood of sub
}

func newESU(g *graph.Graph, k int) *esu {
	return &esu{
		g:     g,
		k:     k,
		inSub: make(map[graph.VertexID]bool, k),
		inNbr: map[graph.VertexID]bool{},
	}
}

// enumerate visits every connected k-subgraph whose minimum vertex is v.
func (e *esu) enumerate(v graph.VertexID, visit func([]graph.VertexID)) {
	if e.k == 1 {
		visit([]graph.VertexID{v})
		return
	}
	e.sub = append(e.sub[:0], v)
	e.inSub[v] = true
	var ext []graph.VertexID
	var marked []graph.VertexID
	for _, u := range e.g.Neighbors(v) {
		e.inNbr[u] = true
		marked = append(marked, u)
		if u > v {
			ext = append(ext, u)
		}
	}
	e.extend(v, ext, visit)
	delete(e.inSub, v)
	for _, u := range marked {
		delete(e.inNbr, u)
	}
}

// extend implements ExtendSubgraph: pull candidates from ext one by one
// (removal is permanent among siblings, which is what guarantees
// exactly-once visits), each time growing ext with the chosen vertex's
// exclusive neighbors above the anchor.
func (e *esu) extend(anchor graph.VertexID, ext []graph.VertexID, visit func([]graph.VertexID)) {
	if len(e.sub) == e.k {
		visit(e.sub)
		return
	}
	for len(ext) > 0 {
		w := ext[len(ext)-1]
		ext = ext[:len(ext)-1]
		// Exclusive neighbors of w: not in sub, not adjacent to sub.
		childExt := append([]graph.VertexID(nil), ext...)
		var marked []graph.VertexID
		for _, u := range e.g.Neighbors(w) {
			if e.inSub[u] || e.inNbr[u] {
				continue
			}
			e.inNbr[u] = true
			marked = append(marked, u)
			if u > anchor {
				childExt = append(childExt, u)
			}
		}
		e.sub = append(e.sub, w)
		e.inSub[w] = true
		e.extend(anchor, childExt, visit)
		delete(e.inSub, w)
		e.sub = e.sub[:len(e.sub)-1]
		for _, u := range marked {
			delete(e.inNbr, u)
		}
	}
}

// inducedCode computes the canonical code of the subgraph induced by verts.
func inducedCode(g *graph.Graph, verts []graph.VertexID) string {
	p := pattern.New(len(verts))
	for i := range verts {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				p.AddEdge(i, j)
			}
		}
	}
	return pattern.CanonicalCode(p)
}
