package oblivious

import (
	"math/rand"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestMotifCountsMatchBruteForce(t *testing.T) {
	g := graph.RMATDefault(80, 400, 211)
	for _, k := range []int{2, 3, 4} {
		pats, res, err := CountMotifs(g, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, pat := range pats {
			want := plan.BruteForceCount(g, pat, true)
			if res.Counts[i] != want {
				t.Errorf("k=%d pattern %v: %d, want %d", k, pat, res.Counts[i], want)
			}
		}
	}
}

func TestEnumeratedEqualsSumOfMotifs(t *testing.T) {
	// Every enumerated connected subgraph is isomorphic to exactly one
	// connected pattern, so the per-pattern counts must sum to Enumerated.
	g := graph.RMATDefault(100, 500, 223)
	for _, k := range []int{3, 4} {
		_, res, err := CountMotifs(g, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, c := range res.Counts {
			sum += c
		}
		if sum != res.Enumerated {
			t.Errorf("k=%d: motif sum %d != enumerated %d", k, sum, res.Enumerated)
		}
	}
}

func TestStructuredGraphCounts(t *testing.T) {
	// C(n,k) connected k-subsets of K_n are all cliques.
	g := graph.Complete(7)
	pats, res, err := CountMotifs(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, pat := range pats {
		want := uint64(0)
		if pat.NumEdges() == 6 { // the 4-clique
			want = 35 // C(7,4)
		}
		if res.Counts[i] != want {
			t.Errorf("K7 pattern %v: %d, want %d", pat, res.Counts[i], want)
		}
	}
	// A path graph contains only path subgraphs.
	pg := graph.Path(10)
	pats, res, err = CountMotifs(pg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, pat := range pats {
		want := uint64(0)
		if pat.NumEdges() == 2 {
			want = 8 // 8 wedges in P10
		}
		if res.Counts[i] != want {
			t.Errorf("P10 pattern %v: %d, want %d", pat, res.Counts[i], want)
		}
	}
}

func TestSingleVertexSubgraphs(t *testing.T) {
	g := graph.Star(5)
	_, res, err := CountMotifs(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 4 {
		t.Fatalf("edges in star(5) = %d, want 4", res.Counts[0])
	}
}

func TestRejectsBadInputs(t *testing.T) {
	g := graph.Path(3)
	if _, err := CountPatterns(g, []*pattern.Pattern{pattern.Triangle()}, 4, 1); err == nil {
		t.Fatal("want error for size mismatch")
	}
	if _, err := CountPatterns(g, nil, 0, 1); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestThreadCountInvariant(t *testing.T) {
	g := graph.RMATDefault(120, 600, 227)
	_, r1, err := CountMotifs(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, r8, err := CountMotifs(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Enumerated != r8.Enumerated {
		t.Fatalf("enumeration depends on threads: %d vs %d", r1.Enumerated, r8.Enumerated)
	}
	for i := range r1.Counts {
		if r1.Counts[i] != r8.Counts[i] {
			t.Fatalf("count %d depends on threads", i)
		}
	}
}

func TestPropertyESUMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		g := graph.Uniform(n, uint64(rng.Intn(4*n)), rng.Int63())
		k := 3 + rng.Intn(2)
		pats, res, err := CountMotifs(g, k, 2)
		if err != nil {
			return false
		}
		for i, pat := range pats {
			if res.Counts[i] != plan.BruteForceCount(g, pat, true) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkObliviousVsPatternAware(b *testing.B) {
	// The paper's §1 motivation: pattern-oblivious enumeration explores
	// vastly more subgraphs than pattern-aware construction.
	g := graph.RMATDefault(2000, 10000, 229)
	b.Run("oblivious-3motif", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := CountMotifs(g, 3, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pattern-aware-3motif", func(b *testing.B) {
		pats := pattern.ConnectedPatterns(3)
		plans := make([]*plan.Plan, len(pats))
		for i, p := range pats {
			plans[i] = plan.MustCompile(p, plan.Options{Style: plan.StyleGraphPi, Induced: true})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, pl := range plans {
				plan.CountGraph(pl, g)
			}
		}
	})
}
