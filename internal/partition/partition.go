// Package partition implements the 1-D hash graph partitioning of the paper
// (§2.2): the vertex set is split across N machines by a hash function, and
// machine i keeps all edges with at least one endpoint in its vertex set —
// i.e. the full adjacency list of every owned vertex. It also implements the
// NUMA sub-partitioning of §5.4, which splits a node's vertices across M
// sockets with a secondary hash.
package partition

import (
	"fmt"

	"khuzdul/internal/graph"
)

// Assignment maps vertices to machines (and sockets) by hashing, which keeps
// the distribution balanced on skewed graphs, as in Pregel and G-thinker.
type Assignment struct {
	numNodes   int
	numSockets int // sockets per node; 1 disables NUMA sub-partitioning
}

// NewAssignment returns an assignment over numNodes machines with
// numSockets sockets each.
func NewAssignment(numNodes, numSockets int) Assignment {
	if numNodes < 1 {
		panic(fmt.Sprintf("partition: numNodes = %d", numNodes))
	}
	if numSockets < 1 {
		numSockets = 1
	}
	return Assignment{numNodes: numNodes, numSockets: numSockets}
}

// NumNodes returns the number of machines.
func (a Assignment) NumNodes() int { return a.numNodes }

// NumSockets returns the number of sockets per machine.
func (a Assignment) NumSockets() int { return a.numSockets }

// Owner returns the machine owning vertex v. The hash mixes all bits before
// reducing: a bare multiplicative constant is ≡1 mod small powers of two,
// which would degenerate to v%N and pile every R-MAT hub (their IDs cluster
// at multiples of powers of two) onto machine 0.
func (a Assignment) Owner(v graph.VertexID) int {
	h := uint64(v)
	h ^= h >> 16
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % uint64(a.numNodes))
}

// Socket returns the socket of v within its owner machine.
func (a Assignment) Socket(v graph.VertexID) int {
	if a.numSockets == 1 {
		return 0
	}
	// A different mix than Owner so socket and node assignments are
	// independent.
	h := uint64(v)
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return int(h % uint64(a.numSockets))
}

// Local is one machine's partition: the set of owned vertices plus their
// full adjacency lists. In this in-process simulation the CSR storage is
// shared, but engines access remote vertices only through the communication
// fabric; Neighbors returns ok=false for vertices this machine does not own,
// which keeps the discipline honest.
type Local struct {
	g    *graph.Graph
	asg  Assignment
	node int
}

// NewLocal returns machine node's view of g under assignment asg.
func NewLocal(g *graph.Graph, asg Assignment, node int) *Local {
	if node < 0 || node >= asg.numNodes {
		panic(fmt.Sprintf("partition: node %d out of range", node))
	}
	return &Local{g: g, asg: asg, node: node}
}

// Node returns the machine ID of this partition.
func (l *Local) Node() int { return l.node }

// Assignment returns the global assignment.
func (l *Local) Assignment() Assignment { return l.asg }

// Owns reports whether this machine owns v.
func (l *Local) Owns(v graph.VertexID) bool { return l.asg.Owner(v) == l.node }

// Neighbors returns the adjacency list of v if owned locally.
func (l *Local) Neighbors(v graph.VertexID) ([]graph.VertexID, bool) {
	if !l.Owns(v) {
		return nil, false
	}
	return l.g.Neighbors(v), true
}

// MustNeighbors returns the adjacency of an owned vertex, panicking on a
// partition-discipline violation (a bug in an engine).
func (l *Local) MustNeighbors(v graph.VertexID) []graph.VertexID {
	adj, ok := l.Neighbors(v)
	if !ok {
		panic(fmt.Sprintf("partition: node %d asked locally for remote vertex %d (owner %d)",
			l.node, v, l.asg.Owner(v)))
	}
	return adj
}

// Label returns the label of any vertex. Labels are metadata replicated with
// the vertex ID space (tiny compared to adjacency), so label access is not a
// remote operation.
func (l *Local) Label(v graph.VertexID) graph.Label { return l.g.Label(v) }

// Degree returns the degree of an owned vertex.
func (l *Local) Degree(v graph.VertexID) (uint32, bool) {
	if !l.Owns(v) {
		return 0, false
	}
	return l.g.Degree(v), true
}

// OwnedVertices returns all vertices owned by this machine, ascending.
func (l *Local) OwnedVertices() []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < l.g.NumVertices(); v++ {
		if l.Owns(graph.VertexID(v)) {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// SocketVertices returns the owned vertices assigned to one socket.
func (l *Local) SocketVertices(socket int) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < l.g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if l.Owns(id) && l.asg.Socket(id) == socket {
			out = append(out, id)
		}
	}
	return out
}

// NumVertices returns the global vertex count.
func (l *Local) NumVertices() int { return l.g.NumVertices() }
