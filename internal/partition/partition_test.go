package partition

import (
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
)

func TestOwnerInRange(t *testing.T) {
	a := NewAssignment(8, 2)
	f := func(v uint32) bool {
		o := a.Owner(graph.VertexID(v))
		s := a.Socket(graph.VertexID(v))
		return o >= 0 && o < 8 && s >= 0 && s < 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerBalanced(t *testing.T) {
	a := NewAssignment(4, 1)
	counts := make([]int, 4)
	n := 100000
	for v := 0; v < n; v++ {
		counts[a.Owner(graph.VertexID(v))]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if frac < 0.2 || frac > 0.3 {
			t.Errorf("node %d owns %.1f%% of vertices, want ~25%%", i, 100*frac)
		}
	}
}

func TestSocketBalanced(t *testing.T) {
	a := NewAssignment(1, 2)
	counts := make([]int, 2)
	for v := 0; v < 50000; v++ {
		counts[a.Socket(graph.VertexID(v))]++
	}
	for i, c := range counts {
		frac := float64(c) / 50000
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("socket %d has %.1f%%, want ~50%%", i, 100*frac)
		}
	}
}

func TestLocalPartitionCoverage(t *testing.T) {
	g := graph.RMATDefault(500, 2000, 17)
	asg := NewAssignment(3, 1)
	owned := map[graph.VertexID]int{}
	for node := 0; node < 3; node++ {
		l := NewLocal(g, asg, node)
		for _, v := range l.OwnedVertices() {
			if prev, dup := owned[v]; dup {
				t.Fatalf("vertex %d owned by both %d and %d", v, prev, node)
			}
			owned[v] = node
			adj, ok := l.Neighbors(v)
			if !ok {
				t.Fatalf("node %d does not serve its own vertex %d", node, v)
			}
			if len(adj) != len(g.Neighbors(v)) {
				t.Fatalf("partition truncated adjacency of %d", v)
			}
		}
	}
	if len(owned) != g.NumVertices() {
		t.Fatalf("only %d of %d vertices owned", len(owned), g.NumVertices())
	}
}

func TestLocalRejectsRemote(t *testing.T) {
	g := graph.Complete(10)
	asg := NewAssignment(2, 1)
	l := NewLocal(g, asg, 0)
	for v := 0; v < 10; v++ {
		id := graph.VertexID(v)
		_, ok := l.Neighbors(id)
		if ok != l.Owns(id) {
			t.Fatalf("Neighbors(%d) ok=%v but Owns=%v", v, ok, l.Owns(id))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNeighbors on remote vertex did not panic")
		}
	}()
	for v := 0; v < 10; v++ {
		if !l.Owns(graph.VertexID(v)) {
			l.MustNeighbors(graph.VertexID(v))
		}
	}
}

func TestSocketVerticesPartitionOwned(t *testing.T) {
	g := graph.RMATDefault(300, 900, 5)
	asg := NewAssignment(2, 2)
	l := NewLocal(g, asg, 1)
	s0 := l.SocketVertices(0)
	s1 := l.SocketVertices(1)
	if len(s0)+len(s1) != len(l.OwnedVertices()) {
		t.Fatalf("sockets %d+%d != owned %d", len(s0), len(s1), len(l.OwnedVertices()))
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range append(append([]graph.VertexID{}, s0...), s1...) {
		if seen[v] {
			t.Fatalf("vertex %d in both sockets", v)
		}
		seen[v] = true
	}
}

func TestDegreeAndLabel(t *testing.T) {
	g0 := graph.Star(6)
	g, err := g0.WithLabels([]graph.Label{9, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	asg := NewAssignment(2, 1)
	for node := 0; node < 2; node++ {
		l := NewLocal(g, asg, node)
		for _, v := range l.OwnedVertices() {
			d, ok := l.Degree(v)
			if !ok || d != g.Degree(v) {
				t.Fatalf("Degree(%d) = %d,%v", v, d, ok)
			}
		}
		// Labels are replicated: accessible for every vertex.
		if l.Label(0) != 9 {
			t.Fatalf("Label(0) = %d, want 9", l.Label(0))
		}
	}
}
