package pattern

import (
	"fmt"
)

// permutations calls f with each permutation of [0,n). The slice passed to f
// is reused; f must not retain it. Iteration stops early if f returns false.
func permutations(n int, f func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// isMapping reports whether perm is an isomorphism from a to b:
// {u,v} ∈ a ⇔ {perm[u],perm[v]} ∈ b, and labels match when present.
func isMapping(a, b *Pattern, perm []int) bool {
	for u := 0; u < a.n; u++ {
		if a.Label(u) != b.Label(perm[u]) {
			return false
		}
		for v := u + 1; v < a.n; v++ {
			if a.HasEdge(u, v) != b.HasEdge(perm[u], perm[v]) {
				return false
			}
			if a.HasEdge(u, v) && a.EdgeLabel(u, v) != b.EdgeLabel(perm[u], perm[v]) {
				return false
			}
		}
	}
	return true
}

// Isomorphic reports whether patterns a and b are isomorphic (respecting
// vertex labels when both are labeled).
func Isomorphic(a, b *Pattern) bool {
	if a.n != b.n || a.NumEdges() != b.NumEdges() {
		return false
	}
	da, db := a.DegreeSequence(), b.DegreeSequence()
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	found := false
	permutations(a.n, func(perm []int) bool {
		if isMapping(a, b, perm) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Automorphisms returns the automorphism group of p as a list of
// permutations. The identity is always included.
func Automorphisms(p *Pattern) [][]int {
	var out [][]int
	permutations(p.n, func(perm []int) bool {
		if isMapping(p, p, perm) {
			out = append(out, append([]int(nil), perm...))
		}
		return true
	})
	return out
}

// CanonicalCode returns a string that is identical for isomorphic patterns
// and distinct for non-isomorphic ones: the lexicographically smallest
// (label sequence, upper-triangle adjacency bits) over all permutations.
func CanonicalCode(p *Pattern) string {
	best := ""
	permutations(p.n, func(perm []int) bool {
		code := encodeUnder(p, perm)
		if best == "" || code < best {
			best = code
		}
		return true
	})
	return best
}

// encodeUnder serializes p relabeled by perm.
func encodeUnder(p *Pattern, perm []int) string {
	buf := make([]byte, 0, p.n*(p.n+3)/2)
	for u := 0; u < p.n; u++ {
		buf = append(buf, byte('A'+int(p.Label(perm[u]))%26))
	}
	buf = append(buf, '|')
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(perm[u], perm[v]) {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
	}
	if p.Labeled() {
		// Disambiguate label values beyond the 26-letter fold.
		buf = append(buf, '|')
		for u := 0; u < p.n; u++ {
			buf = append(buf, []byte(fmt.Sprintf("%d,", p.Label(perm[u])))...)
		}
	}
	if p.EdgeLabeled() {
		buf = append(buf, '|')
		for u := 0; u < p.n; u++ {
			for v := u + 1; v < p.n; v++ {
				if p.HasEdge(perm[u], perm[v]) {
					buf = append(buf, []byte(fmt.Sprintf("%d,", p.EdgeLabel(perm[u], perm[v])))...)
				}
			}
		}
	}
	return string(buf)
}

// ConnectedPatterns returns all non-isomorphic connected unlabeled patterns
// with exactly k vertices, in a deterministic order. This is the pattern set
// of k-motif counting: e.g. 2 patterns for k=3, 6 for k=4, 21 for k=5.
func ConnectedPatterns(k int) []*Pattern {
	if k < 2 || k > 6 {
		panic(fmt.Sprintf("pattern: ConnectedPatterns supports k in [2,6], got %d", k))
	}
	numPairs := k * (k - 1) / 2
	seen := map[string]bool{}
	var out []*Pattern
	for bits := 0; bits < 1<<uint(numPairs); bits++ {
		p := New(k)
		idx := 0
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if bits&(1<<uint(idx)) != 0 {
					p.AddEdge(u, v)
				}
				idx++
			}
		}
		if !p.Connected() {
			continue
		}
		code := CanonicalCode(p)
		if seen[code] {
			continue
		}
		seen[code] = true
		out = append(out, p)
	}
	return out
}
