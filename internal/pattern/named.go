package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Triangle returns the 3-clique.
func Triangle() *Pattern { return Clique(3) }

// Clique returns the complete pattern K_k.
func Clique(k int) *Pattern {
	p := New(k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			p.AddEdge(u, v)
		}
	}
	return p
}

// CycleP returns the k-cycle pattern.
func CycleP(k int) *Pattern {
	p := New(k)
	for v := 0; v < k; v++ {
		p.AddEdge(v, (v+1)%k)
	}
	return p
}

// PathP returns the k-vertex path pattern (a "(k-1)-chain").
func PathP(k int) *Pattern {
	p := New(k)
	for v := 0; v+1 < k; v++ {
		p.AddEdge(v, v+1)
	}
	return p
}

// StarP returns the k-vertex star: hub 0 connected to k-1 leaves.
func StarP(k int) *Pattern {
	p := New(k)
	for v := 1; v < k; v++ {
		p.AddEdge(0, v)
	}
	return p
}

// TailedTriangle returns a triangle with one pendant vertex.
func TailedTriangle() *Pattern {
	return FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
}

// Diamond returns the 4-clique minus one edge.
func Diamond() *Pattern {
	return FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}})
}

// House returns the 5-vertex "house": a 4-cycle with a triangle roof.
func House() *Pattern {
	return FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}})
}

// Parse returns a named pattern. Supported names: "triangle", "edge",
// "wedge", "Kk"/"k-clique" (e.g. "K4", "4-clique"), "Ck"/"k-cycle",
// "Pk"/"k-path", "Sk"/"k-star", "tailed-triangle", "diamond", "house",
// and explicit edge lists of the form "n:u-v,u-v,...".
func Parse(name string) (*Pattern, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch s {
	case "edge":
		return PathP(2), nil
	case "wedge":
		return PathP(3), nil
	case "triangle":
		return Triangle(), nil
	case "tailed-triangle", "tailedtriangle":
		return TailedTriangle(), nil
	case "diamond":
		return Diamond(), nil
	case "house":
		return House(), nil
	}
	if n, ok := parsePrefixed(s, "k", "-clique"); ok {
		return Clique(n), nil
	}
	if n, ok := parsePrefixed(s, "c", "-cycle"); ok {
		return CycleP(n), nil
	}
	if n, ok := parsePrefixed(s, "p", "-path"); ok {
		return PathP(n), nil
	}
	if n, ok := parsePrefixed(s, "s", "-star"); ok {
		return StarP(n), nil
	}
	if i := strings.IndexByte(s, ':'); i > 0 {
		return parseEdgeList(s[:i], s[i+1:])
	}
	return nil, fmt.Errorf("pattern: unknown pattern %q", name)
}

// parsePrefixed handles both "K4"-style and "4-clique"-style names.
func parsePrefixed(s, letter, suffix string) (int, bool) {
	if strings.HasPrefix(s, letter) {
		if n, err := strconv.Atoi(s[len(letter):]); err == nil && n >= 2 && n <= MaxVertices {
			return n, true
		}
	}
	if strings.HasSuffix(s, suffix) {
		if n, err := strconv.Atoi(strings.TrimSuffix(s, suffix)); err == nil && n >= 2 && n <= MaxVertices {
			return n, true
		}
	}
	return 0, false
}

func parseEdgeList(ns, es string) (*Pattern, error) {
	n, err := strconv.Atoi(ns)
	if err != nil || n < 1 || n > MaxVertices {
		return nil, fmt.Errorf("pattern: bad vertex count %q", ns)
	}
	p := New(n)
	for _, tok := range strings.Split(es, ",") {
		parts := strings.Split(strings.TrimSpace(tok), "-")
		if len(parts) != 2 {
			return nil, fmt.Errorf("pattern: bad edge %q", tok)
		}
		u, err1 := strconv.Atoi(parts[0])
		v, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= n || v >= n || u == v {
			return nil, fmt.Errorf("pattern: bad edge %q", tok)
		}
		p.AddEdge(u, v)
	}
	return p, nil
}
