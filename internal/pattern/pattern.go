// Package pattern provides the small pattern graphs that GPM applications
// mine for, along with the graph-theoretic machinery the plan compilers need:
// isomorphism tests, automorphism groups, canonical codes, and enumeration of
// all connected patterns of a given size (for k-motif counting).
//
// Patterns are tiny (≤ MaxVertices vertices), so adjacency is stored as one
// bitmask per vertex and algorithms are allowed to enumerate permutations.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"khuzdul/internal/graph"
)

// MaxVertices is the largest supported pattern size. Bitmask adjacency rows
// and permutation-based algorithms rely on this bound.
const MaxVertices = 10

// Pattern is a small connected undirected graph, optionally vertex-labeled.
// The zero value is an empty pattern; use New or the named constructors.
type Pattern struct {
	n      int
	adj    []uint16 // adj[i] bit j set iff edge {i,j}
	labels []graph.Label
	// elabels maps packed edge keys (min<<4|max) to edge labels; nil when
	// edges are unlabeled.
	elabels map[uint16]graph.Label
}

// edgeKey packs an unordered vertex pair (MaxVertices ≤ 16 keeps it in 8
// bits of each nibble).
func edgeKey(u, v int) uint16 {
	if u > v {
		u, v = v, u
	}
	return uint16(u)<<4 | uint16(v)
}

// New returns an edgeless pattern with n vertices.
func New(n int) *Pattern {
	if n < 1 || n > MaxVertices {
		panic(fmt.Sprintf("pattern: size %d out of range [1,%d]", n, MaxVertices))
	}
	return &Pattern{n: n, adj: make([]uint16, n)}
}

// FromEdges builds a pattern with n vertices and the given edges.
func FromEdges(n int, edges [][2]int) *Pattern {
	p := New(n)
	for _, e := range edges {
		p.AddEdge(e[0], e[1])
	}
	return p
}

// AddEdge adds the undirected edge {u,v}. Self-loops are rejected.
func (p *Pattern) AddEdge(u, v int) {
	if u == v {
		panic("pattern: self-loop")
	}
	if u < 0 || v < 0 || u >= p.n || v >= p.n {
		panic(fmt.Sprintf("pattern: edge (%d,%d) out of range for %d vertices", u, v, p.n))
	}
	p.adj[u] |= 1 << uint(v)
	p.adj[v] |= 1 << uint(u)
}

// NumVertices returns the number of pattern vertices.
func (p *Pattern) NumVertices() int { return p.n }

// NumEdges returns the number of pattern edges.
func (p *Pattern) NumEdges() int {
	total := 0
	for _, row := range p.adj {
		total += popcount16(row)
	}
	return total / 2
}

// HasEdge reports whether {u,v} is a pattern edge.
func (p *Pattern) HasEdge(u, v int) bool { return p.adj[u]&(1<<uint(v)) != 0 }

// Degree returns the degree of pattern vertex v.
func (p *Pattern) Degree(v int) int { return popcount16(p.adj[v]) }

// AdjMask returns the adjacency bitmask of v.
func (p *Pattern) AdjMask(v int) uint16 { return p.adj[v] }

// Neighbors returns the neighbor indices of v in ascending order.
func (p *Pattern) Neighbors(v int) []int {
	var out []int
	for u := 0; u < p.n; u++ {
		if p.HasEdge(u, v) {
			out = append(out, u)
		}
	}
	return out
}

// Labeled reports whether the pattern carries vertex labels.
func (p *Pattern) Labeled() bool { return p.labels != nil }

// Label returns the label of v (0 if unlabeled).
func (p *Pattern) Label(v int) graph.Label {
	if p.labels == nil {
		return 0
	}
	return p.labels[v]
}

// WithLabels returns a copy carrying the given vertex labels.
func (p *Pattern) WithLabels(labels []graph.Label) *Pattern {
	if len(labels) != p.n {
		panic(fmt.Sprintf("pattern: %d labels for %d vertices", len(labels), p.n))
	}
	q := p.Clone()
	q.labels = append([]graph.Label(nil), labels...)
	return q
}

// EdgeLabeled reports whether the pattern carries edge labels.
func (p *Pattern) EdgeLabeled() bool { return p.elabels != nil }

// EdgeLabel returns the label of edge {u,v} (0 when edges are unlabeled or
// the edge is absent).
func (p *Pattern) EdgeLabel(u, v int) graph.Label {
	if p.elabels == nil {
		return 0
	}
	return p.elabels[edgeKey(u, v)]
}

// SetEdgeLabel labels an existing edge; it panics if {u,v} is not an edge.
func (p *Pattern) SetEdgeLabel(u, v int, l graph.Label) {
	if !p.HasEdge(u, v) {
		panic(fmt.Sprintf("pattern: SetEdgeLabel on non-edge (%d,%d)", u, v))
	}
	if p.elabels == nil {
		p.elabels = map[uint16]graph.Label{}
	}
	p.elabels[edgeKey(u, v)] = l
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{n: p.n, adj: append([]uint16(nil), p.adj...)}
	if p.labels != nil {
		q.labels = append([]graph.Label(nil), p.labels...)
	}
	if p.elabels != nil {
		q.elabels = make(map[uint16]graph.Label, len(p.elabels))
		for k, v := range p.elabels {
			q.elabels[k] = v
		}
	}
	return q
}

// Connected reports whether the pattern is connected. GPM patterns must be
// connected; plan compilation rejects disconnected patterns.
func (p *Pattern) Connected() bool {
	if p.n == 0 {
		return false
	}
	var visited uint16 = 1
	frontier := uint16(1)
	for frontier != 0 {
		next := uint16(0)
		for v := 0; v < p.n; v++ {
			if frontier&(1<<uint(v)) != 0 {
				next |= p.adj[v]
			}
		}
		frontier = next &^ visited
		visited |= next
	}
	return popcount16(visited) == p.n
}

// Relabel returns the pattern with vertices permuted: vertex i of the result
// is vertex perm[i] of p. Labels follow their vertices.
func (p *Pattern) Relabel(perm []int) *Pattern {
	q := New(p.n)
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(perm[u], perm[v]) {
				q.AddEdge(u, v)
			}
		}
	}
	if p.labels != nil {
		q.labels = make([]graph.Label, p.n)
		for i := range q.labels {
			q.labels[i] = p.labels[perm[i]]
		}
	}
	if p.elabels != nil {
		q.elabels = make(map[uint16]graph.Label, len(p.elabels))
		for u := 0; u < p.n; u++ {
			for v := u + 1; v < p.n; v++ {
				if q.HasEdge(u, v) {
					q.elabels[edgeKey(u, v)] = p.EdgeLabel(perm[u], perm[v])
				}
			}
		}
	}
	return q
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (p *Pattern) DegreeSequence() []int {
	seq := make([]int, p.n)
	for v := range seq {
		seq[v] = p.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

// String renders the pattern as "n=K edges=[(u,v)...]" with labels if any.
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern{n=%d", p.n)
	sb.WriteString(" edges=")
	first := true
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(u, v) {
				if !first {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d-%d", u, v)
				first = false
			}
		}
	}
	if p.labels != nil {
		fmt.Fprintf(&sb, " labels=%v", p.labels)
	}
	sb.WriteByte('}')
	return sb.String()
}

func popcount16(x uint16) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
