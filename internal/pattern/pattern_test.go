package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
)

func TestBasicAccessors(t *testing.T) {
	p := Triangle()
	if p.NumVertices() != 3 || p.NumEdges() != 3 {
		t.Fatalf("triangle: n=%d m=%d", p.NumVertices(), p.NumEdges())
	}
	for v := 0; v < 3; v++ {
		if p.Degree(v) != 2 {
			t.Fatalf("triangle degree(%d) = %d", v, p.Degree(v))
		}
	}
	if !p.HasEdge(0, 2) || p.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNeighbors(t *testing.T) {
	p := StarP(4)
	if got := p.Neighbors(0); len(got) != 3 {
		t.Fatalf("hub neighbors = %v", got)
	}
	if got := p.Neighbors(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("leaf neighbors = %v", got)
	}
}

func TestConnected(t *testing.T) {
	if !PathP(5).Connected() {
		t.Fatal("path should be connected")
	}
	disc := New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if disc.Connected() {
		t.Fatal("two disjoint edges reported connected")
	}
	if !New(1).Connected() {
		t.Fatal("single vertex should be connected")
	}
}

func TestNamedPatternShapes(t *testing.T) {
	cases := []struct {
		p      *Pattern
		n, m   int
		degSeq []int
	}{
		{Clique(5), 5, 10, []int{4, 4, 4, 4, 4}},
		{CycleP(4), 4, 4, []int{2, 2, 2, 2}},
		{PathP(4), 4, 3, []int{2, 2, 1, 1}},
		{StarP(5), 5, 4, []int{4, 1, 1, 1, 1}},
		{TailedTriangle(), 4, 4, []int{3, 2, 2, 1}},
		{Diamond(), 4, 5, []int{3, 3, 2, 2}},
		{House(), 5, 6, []int{3, 3, 2, 2, 2}},
	}
	for i, c := range cases {
		if c.p.NumVertices() != c.n || c.p.NumEdges() != c.m {
			t.Errorf("case %d: n=%d m=%d want %d,%d", i, c.p.NumVertices(), c.p.NumEdges(), c.n, c.m)
		}
		got := c.p.DegreeSequence()
		for j := range got {
			if got[j] != c.degSeq[j] {
				t.Errorf("case %d: degseq %v want %v", i, got, c.degSeq)
				break
			}
		}
		if !c.p.Connected() {
			t.Errorf("case %d: not connected", i)
		}
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"triangle", "K4", "4-clique", "C5", "5-cycle",
		"P3", "3-path", "S4", "4-star", "diamond", "house", "tailed-triangle",
		"edge", "wedge"} {
		if _, err := Parse(name); err != nil {
			t.Errorf("Parse(%q): %v", name, err)
		}
	}
	p, err := Parse("4:0-1,1-2,2-3,3-0")
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(p, CycleP(4)) {
		t.Fatal("explicit edge list not isomorphic to C4")
	}
	for _, bad := range []string{"nope", "K99", "3:0-0", "3:0-5", "x:1-2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestIsomorphic(t *testing.T) {
	a := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	b := FromEdges(4, [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}})
	if !Isomorphic(a, b) {
		t.Fatal("two 4-cycles not isomorphic")
	}
	if Isomorphic(CycleP(4), PathP(4)) {
		t.Fatal("C4 isomorphic to P4")
	}
	if Isomorphic(Clique(3), Clique(4)) {
		t.Fatal("different sizes isomorphic")
	}
	// Same degree sequence, not isomorphic: C6 vs two triangles is
	// disconnected; use C6 vs prism-minus? Use K1,3+edge vs P5 variants:
	x := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}) // C6
	y := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}) // 2×C3
	if Isomorphic(x, y) {
		t.Fatal("C6 isomorphic to 2 triangles")
	}
}

func TestIsomorphicLabeled(t *testing.T) {
	a := PathP(3).WithLabels([]graph.Label{1, 2, 1})
	b := PathP(3).WithLabels([]graph.Label{1, 2, 1})
	c := PathP(3).WithLabels([]graph.Label{2, 1, 1})
	if !Isomorphic(a, b) {
		t.Fatal("identical labeled paths not isomorphic")
	}
	if Isomorphic(a, c) {
		t.Fatal("differently labeled paths isomorphic")
	}
	// Reversal is an isomorphism.
	d := PathP(3).WithLabels([]graph.Label{1, 2, 3})
	e := PathP(3).WithLabels([]graph.Label{3, 2, 1})
	if !Isomorphic(d, e) {
		t.Fatal("reversed labeled path not isomorphic")
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		name string
		p    *Pattern
		want int
	}{
		{"K3", Clique(3), 6},
		{"K4", Clique(4), 24},
		{"C4", CycleP(4), 8},
		{"C5", CycleP(5), 10},
		{"P3", PathP(3), 2},
		{"P4", PathP(4), 2},
		{"S4", StarP(4), 6},
		{"diamond", Diamond(), 4},
		{"tailed-triangle", TailedTriangle(), 2},
	}
	for _, c := range cases {
		if got := len(Automorphisms(c.p)); got != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAutomorphismsLabeledShrink(t *testing.T) {
	// Labeling the triangle with distinct labels kills all symmetry.
	p := Clique(3).WithLabels([]graph.Label{1, 2, 3})
	if got := len(Automorphisms(p)); got != 1 {
		t.Fatalf("|Aut| = %d, want 1", got)
	}
	q := Clique(3).WithLabels([]graph.Label{1, 1, 2})
	if got := len(Automorphisms(q)); got != 2 {
		t.Fatalf("|Aut| = %d, want 2", got)
	}
}

func TestCanonicalCodeInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		p := New(n)
		// Random connected-ish pattern: random spanning path + extras.
		for v := 0; v+1 < n; v++ {
			p.AddEdge(v, v+1)
		}
		for e := 0; e < rng.Intn(5); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				p.AddEdge(u, v)
			}
		}
		perm := rng.Perm(n)
		return CanonicalCode(p) == CanonicalCode(p.Relabel(perm))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalCodeDistinguishes(t *testing.T) {
	if CanonicalCode(CycleP(4)) == CanonicalCode(PathP(4)) {
		t.Fatal("C4 and P4 share canonical code")
	}
	if CanonicalCode(Diamond()) == CanonicalCode(CycleP(4)) {
		t.Fatal("diamond and C4 share canonical code")
	}
}

func TestConnectedPatternsCounts(t *testing.T) {
	// Known counts of connected graphs on k nodes: 1, 2, 6, 21.
	want := map[int]int{2: 1, 3: 2, 4: 6, 5: 21}
	for k, n := range want {
		got := ConnectedPatterns(k)
		if len(got) != n {
			t.Errorf("ConnectedPatterns(%d) = %d patterns, want %d", k, len(got), n)
		}
		seen := map[string]bool{}
		for _, p := range got {
			if p.NumVertices() != k || !p.Connected() {
				t.Errorf("ConnectedPatterns(%d) returned invalid %v", k, p)
			}
			code := CanonicalCode(p)
			if seen[code] {
				t.Errorf("ConnectedPatterns(%d) returned duplicates", k)
			}
			seen[code] = true
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	p := Diamond()
	q := p.Relabel([]int{3, 2, 1, 0})
	if !Isomorphic(p, q) {
		t.Fatal("relabeled pattern not isomorphic")
	}
	if q.NumEdges() != p.NumEdges() {
		t.Fatal("relabel changed edge count")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := PathP(3)
	q := p.Clone()
	q.AddEdge(0, 2)
	if p.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := Triangle().String()
	if s == "" {
		t.Fatal("empty String()")
	}
	ls := Triangle().WithLabels([]graph.Label{5, 6, 7}).String()
	if ls == s {
		t.Fatal("labeled String() identical to unlabeled")
	}
}
