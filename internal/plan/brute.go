package plan

import (
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// BruteForceCount counts the embeddings of pat in g by enumerating every
// injective vertex mapping and dividing by the automorphism group size. It
// is deliberately independent of the plan machinery (no matching orders, no
// restrictions, no set-operation kernels) and serves as the correctness
// oracle for every engine in the repository. Only use it on small graphs.
func BruteForceCount(g *graph.Graph, pat *pattern.Pattern, induced bool) uint64 {
	k := pat.NumVertices()
	n := g.NumVertices()
	aut := uint64(len(pattern.Automorphisms(pat)))
	emb := make([]graph.VertexID, k)
	var maps uint64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			maps++
			return
		}
	next:
		for v := 0; v < n; v++ {
			cand := graph.VertexID(v)
			if pat.Labeled() && g.Label(cand) != pat.Label(pos) {
				continue
			}
			for j := 0; j < pos; j++ {
				if emb[j] == cand {
					continue next
				}
				hasG := g.HasEdge(emb[j], cand)
				hasP := pat.HasEdge(j, pos)
				if hasP && !hasG {
					continue next
				}
				if induced && !hasP && hasG {
					continue next
				}
				if hasP && pat.EdgeLabeled() {
					if l, _ := g.EdgeLabel(emb[j], cand); l != pat.EdgeLabel(j, pos) {
						continue next
					}
				}
			}
			emb[pos] = cand
			rec(pos + 1)
		}
	}
	rec(0)
	return maps / aut
}
