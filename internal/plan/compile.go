package plan

import (
	"fmt"
	"math"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// Compile produces an enumeration plan for pat under the given options.
// It returns an error for disconnected or trivial patterns.
func Compile(pat *pattern.Pattern, opts Options) (*Plan, error) {
	k := pat.NumVertices()
	if k < 2 {
		return nil, fmt.Errorf("plan: pattern must have at least 2 vertices, got %d", k)
	}
	if !pat.Connected() {
		return nil, fmt.Errorf("plan: pattern is disconnected: %v", pat)
	}

	var orders [][]int
	switch opts.Style {
	case StyleAutomine:
		orders = [][]int{automineOrder(pat)}
	case StyleGraphPi:
		orders = connectedOrders(pat)
	default:
		return nil, fmt.Errorf("plan: unknown style %v", opts.Style)
	}

	stats := opts.Stats
	if stats.NumVertices == 0 {
		stats = GraphStats{NumVertices: 1 << 20, AvgDegree: 16}
	}

	var best *Plan
	for _, order := range orders {
		p, err := buildForOrder(pat, order, opts)
		if err != nil {
			return nil, err
		}
		p.EstCost = estimateCost(p, stats)
		if best == nil || p.EstCost < best.EstCost {
			best = p
		}
	}
	best.HubThreshold = stats.HubThreshold()
	return best, nil
}

// MustCompile is Compile that panics on error, for statically-known patterns.
func MustCompile(pat *pattern.Pattern, opts Options) *Plan {
	p, err := Compile(pat, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// buildForOrder compiles a plan for one fixed matching order.
func buildForOrder(pat *pattern.Pattern, order []int, opts Options) (*Plan, error) {
	k := pat.NumVertices()
	// q is the pattern relabeled so that position i of the matching order is
	// vertex i of q.
	q := pat.Relabel(order)

	p := &Plan{
		Pattern: pat,
		Order:   append([]int(nil), order...),
		K:       k,
		Levels:  make([]Level, k),
		Induced: opts.Induced,
		VCS:     !opts.DisableVCS,
		Style:   opts.Style,
	}

	// Per-level set operations.
	for i := 1; i < k; i++ {
		lv := &p.Levels[i]
		for j := 0; j < i; j++ {
			if q.HasEdge(j, i) {
				lv.Intersect = append(lv.Intersect, j)
			} else {
				lv.Subtract = append(lv.Subtract, j)
			}
		}
		if len(lv.Intersect) == 0 {
			return nil, fmt.Errorf("plan: order %v has disconnected prefix at %d", order, i)
		}
		if !opts.Induced {
			lv.Subtract = nil
		}
	}

	// Symmetry-breaking restrictions via the stabilizer-chain / ordered-orbit
	// scheme on the relabeled pattern: for each position i, one restriction
	// per element of i's orbit under the pointwise stabilizer of positions <i.
	auts := pattern.Automorphisms(q)
	p.AutSize = len(auts)
	if !opts.DisableSymmetryBreak {
		group := auts
		for i := 0; i < k; i++ {
			inOrbit := make([]bool, k)
			for _, sigma := range group {
				inOrbit[sigma[i]] = true
			}
			for j := 0; j < k; j++ {
				if j != i && inOrbit[j] {
					p.Restrictions = append(p.Restrictions, Restriction{A: i, B: j})
				}
			}
			var next [][]int
			for _, sigma := range group {
				if sigma[i] == i {
					next = append(next, sigma)
				}
			}
			group = next
		}
		for _, r := range p.Restrictions {
			p.Levels[r.B].LowerBounds = append(p.Levels[r.B].LowerBounds, r.A)
		}
	}

	// Labels per position.
	if pat.Labeled() {
		lbl := make([]graph.Label, k)
		for i := 0; i < k; i++ {
			lbl[i] = q.Label(i)
		}
		p.Labels = lbl
	}
	if pat.EdgeLabeled() {
		p.EdgeLabeled = true
		for i := 1; i < k; i++ {
			lv := &p.Levels[i]
			lv.EdgeLabels = make([]graph.Label, len(lv.Intersect))
			for idx, j := range lv.Intersect {
				lv.EdgeLabels[idx] = q.EdgeLabel(j, i)
			}
		}
	}

	// Vertical computation sharing: detect same-set and extend-by-one
	// relationships between consecutive levels' intersect sets.
	if p.VCS {
		annotateVCS(p)
	}

	// Active positions and NeedsList.
	annotateActive(p)

	// Structural kernel hints per EXTEND step.
	annotateKernelHints(p)

	return p, p.Validate()
}

// annotateKernelHints derives each level's kernel hint from the step shape:
// three or more intersected lists is clique-like — the k-way pivot kernel
// touches each candidate once instead of materializing pairwise
// intermediates. One- and two-list steps stay on the skew-adaptive
// dispatcher (merge / gallop / hub bitmap, chosen per call at runtime). The
// hint is set even on VCS-reusing levels: when a stored parent intersection
// is available the reuse path wins, but engines that run without one (DFS
// baselines, recovery re-execution) still fall back to the hinted kernel.
func annotateKernelHints(p *Plan) {
	for i := 1; i < p.K; i++ {
		if len(p.Levels[i].Intersect) >= 3 {
			p.Levels[i].KernelHint = HintPivot
		}
	}
}

// annotateVCS marks ReuseSame / ReuseExtend / StoreInter.
func annotateVCS(p *Plan) {
	for i := 2; i < p.K; i++ {
		prev := p.Levels[i-1].Intersect
		cur := p.Levels[i].Intersect
		switch {
		case equalInts(cur, prev):
			p.Levels[i].ReuseSame = true
			p.Levels[i-1].StoreInter = true
		case equalInts(cur, appendSorted(prev, i-1)):
			p.Levels[i].ReuseExtend = true
			p.Levels[i-1].StoreInter = true
		}
	}
}

// annotateActive computes, for each level, the set of positions whose edge
// lists an extendable embedding at that level must carry (the paper's active
// vertices), plus the per-level NeedsList flag.
func annotateActive(p *Plan) {
	needed := make([]bool, p.K)
	for i := 1; i < p.K; i++ {
		for _, j := range p.Levels[i].Intersect {
			needed[j] = true
		}
		for _, j := range p.Levels[i].Subtract {
			needed[j] = true
		}
	}
	for i := 0; i < p.K; i++ {
		p.Levels[i].NeedsList = false
	}
	// NeedsList(i): position i's list is used by some level > i.
	for i := 0; i < p.K; i++ {
		used := false
		for m := i + 1; m < p.K; m++ {
			if containsInt(p.Levels[m].Intersect, i) || containsInt(p.Levels[m].Subtract, i) {
				used = true
				break
			}
		}
		p.Levels[i].NeedsList = used
	}
	// Active(i): positions j ≤ i used by some level > i. Anti-monotone by
	// construction, as the paper observes.
	for i := 0; i < p.K; i++ {
		var active []int
		for j := 0; j <= i; j++ {
			for m := i + 1; m < p.K; m++ {
				if containsInt(p.Levels[m].Intersect, j) || containsInt(p.Levels[m].Subtract, j) {
					active = append(active, j)
					break
				}
			}
		}
		p.Levels[i].Active = active
	}
}

// automineOrder reproduces Automine's canonical greedy order: start from the
// highest-degree vertex (ties by index), then repeatedly append the unvisited
// vertex with the most edges into the prefix (ties by degree, then index).
func automineOrder(pat *pattern.Pattern) []int {
	k := pat.NumVertices()
	order := make([]int, 0, k)
	inPrefix := make([]bool, k)
	start := 0
	for v := 1; v < k; v++ {
		if pat.Degree(v) > pat.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	inPrefix[start] = true
	for len(order) < k {
		best, bestConn := -1, -1
		for v := 0; v < k; v++ {
			if inPrefix[v] {
				continue
			}
			conn := 0
			for _, u := range order {
				if pat.HasEdge(u, v) {
					conn++
				}
			}
			if conn == 0 {
				continue
			}
			if conn > bestConn || (conn == bestConn && pat.Degree(v) > pat.Degree(best)) {
				best, bestConn = v, conn
			}
		}
		order = append(order, best)
		inPrefix[best] = true
	}
	return order
}

// connectedOrders enumerates every matching order whose prefixes are all
// connected. Pattern sizes are tiny, so exhaustive enumeration is cheap.
func connectedOrders(pat *pattern.Pattern) [][]int {
	k := pat.NumVertices()
	var out [][]int
	order := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(order) == k {
			out = append(out, append([]int(nil), order...))
			return
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			if len(order) > 0 {
				conn := false
				for _, u := range order {
					if pat.HasEdge(u, v) {
						conn = true
						break
					}
				}
				if !conn {
					continue
				}
			}
			used[v] = true
			order = append(order, v)
			rec()
			order = order[:len(order)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

// estimateCost implements a GraphPi-flavored cost model: expected number of
// partial embeddings at each level, assuming candidate-set sizes shrink with
// the number of intersected lists and that each symmetry restriction halves
// the surviving candidates.
func estimateCost(p *Plan, stats GraphStats) float64 {
	n := float64(stats.NumVertices)
	d := stats.AvgDegree
	if d <= 1 {
		d = 2
	}
	sel := d / n // probability a random vertex is adjacent to a given one
	embeddings := n
	total := embeddings
	for i := 1; i < p.K; i++ {
		lv := &p.Levels[i]
		cand := d * math.Pow(sel, float64(len(lv.Intersect)-1))
		// Each lower-bound restriction halves the expected candidates.
		cand /= math.Pow(2, float64(len(lv.LowerBounds)))
		if cand < 1e-9 {
			cand = 1e-9
		}
		// Work at this level is proportional to parent embeddings times the
		// cost of the set operations (number of lists intersected).
		opCost := float64(len(lv.Intersect) + len(lv.Subtract))
		if lv.ReuseSame {
			opCost = 0.1
		} else if lv.ReuseExtend {
			opCost = 1
		}
		total += embeddings * (opCost + 1)
		embeddings *= cand
		total += embeddings
	}
	return total
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func appendSorted(a []int, x int) []int {
	out := make([]int, 0, len(a)+1)
	inserted := false
	for _, y := range a {
		if !inserted && x < y {
			out = append(out, x)
			inserted = true
		}
		if y == x {
			inserted = true
		}
		out = append(out, y)
	}
	if !inserted {
		out = append(out, x)
	}
	return out
}

func containsInt(s []int, x int) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}
