package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// edgeLabeledGraph builds a random graph with symmetric random edge labels.
func edgeLabeledGraph(n int, m uint64, numLabels int, seed int64) *graph.Graph {
	return graph.RMATDefault(n, m, seed).WithRandomEdgeLabels(numLabels, seed+1)
}

func TestEdgeLabeledTriangleMatchesBruteForce(t *testing.T) {
	g := edgeLabeledGraph(60, 300, 2, 301)
	for la := graph.Label(0); la < 2; la++ {
		for lb := graph.Label(0); lb < 2; lb++ {
			for lc := graph.Label(0); lc < 2; lc++ {
				pat := pattern.Triangle()
				pat.SetEdgeLabel(0, 1, la)
				pat.SetEdgeLabel(1, 2, lb)
				pat.SetEdgeLabel(0, 2, lc)
				want := BruteForceCount(g, pat, false)
				for _, style := range []Style{StyleAutomine, StyleGraphPi} {
					pl := MustCompile(pat, Options{Style: style})
					if !pl.EdgeLabeled {
						t.Fatal("plan lost edge labels")
					}
					if got := CountGraph(pl, g); got != want {
						t.Errorf("labels (%d,%d,%d) %v: got %d, want %d",
							la, lb, lc, style, got, want)
					}
				}
			}
		}
	}
}

func TestEdgeLabelSumOverLabels(t *testing.T) {
	// Summing the edge-labeled wedge counts over all label combinations must
	// equal the unlabeled wedge count.
	g := edgeLabeledGraph(80, 400, 3, 307)
	unlabeled := MustCompile(pattern.PathP(3), Options{Style: StyleGraphPi})
	want := CountGraph(unlabeled, g)
	// Iterate distinct patterns only: (la,lb) and (lb,la) are isomorphic
	// wedges, so take la ≤ lb.
	var sum uint64
	for la := graph.Label(0); la < 3; la++ {
		for lb := la; lb < 3; lb++ {
			pat := pattern.PathP(3)
			pat.SetEdgeLabel(0, 1, la)
			pat.SetEdgeLabel(1, 2, lb)
			pl := MustCompile(pat, Options{Style: StyleGraphPi})
			sum += CountGraph(pl, g)
		}
	}
	if sum != want {
		t.Fatalf("edge-labeled wedge sum %d != unlabeled %d", sum, want)
	}
}

func TestEdgeLabelsShrinkAutomorphisms(t *testing.T) {
	// A triangle with distinct edge labels keeps only the automorphisms
	// preserving the labeling (identity + the flip fixing the odd edge...
	// with all three labels distinct only identity survives? A triangle
	// automorphism permutes edges; distinct labels force every edge fixed,
	// so only the identity and nothing else — |Aut| = 1... the flip (0 1)
	// maps edge {0,2}→{1,2}, different labels, rejected).
	pat := pattern.Triangle()
	pat.SetEdgeLabel(0, 1, 1)
	pat.SetEdgeLabel(1, 2, 2)
	pat.SetEdgeLabel(0, 2, 3)
	if got := len(pattern.Automorphisms(pat)); got != 1 {
		t.Fatalf("|Aut| = %d, want 1", got)
	}
	// Two equal + one distinct: the swap across the distinct edge survives.
	pat2 := pattern.Triangle()
	pat2.SetEdgeLabel(0, 1, 1)
	pat2.SetEdgeLabel(1, 2, 1)
	pat2.SetEdgeLabel(0, 2, 2)
	if got := len(pattern.Automorphisms(pat2)); got != 2 {
		t.Fatalf("|Aut| = %d, want 2", got)
	}
}

func TestEdgeLabeledIsomorphism(t *testing.T) {
	a := pattern.PathP(3)
	a.SetEdgeLabel(0, 1, 5)
	a.SetEdgeLabel(1, 2, 7)
	b := pattern.PathP(3)
	b.SetEdgeLabel(0, 1, 7)
	b.SetEdgeLabel(1, 2, 5)
	if !pattern.Isomorphic(a, b) {
		t.Fatal("mirrored edge-labeled paths should be isomorphic")
	}
	c := pattern.PathP(3)
	c.SetEdgeLabel(0, 1, 5)
	c.SetEdgeLabel(1, 2, 5)
	if pattern.Isomorphic(a, c) {
		t.Fatal("differently edge-labeled paths reported isomorphic")
	}
	if pattern.CanonicalCode(a) != pattern.CanonicalCode(b) {
		t.Fatal("canonical codes of isomorphic edge-labeled patterns differ")
	}
	if pattern.CanonicalCode(a) == pattern.CanonicalCode(c) {
		t.Fatal("canonical codes of non-isomorphic edge-labeled patterns collide")
	}
}

func TestPropertyEdgeLabeledCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(25)
		g := graph.Uniform(n, uint64(rng.Intn(4*n)), rng.Int63()).
			WithRandomEdgeLabels(2, rng.Int63())
		pat := pattern.Triangle()
		pat.SetEdgeLabel(0, 1, graph.Label(rng.Intn(2)))
		pat.SetEdgeLabel(1, 2, graph.Label(rng.Intn(2)))
		pat.SetEdgeLabel(0, 2, graph.Label(rng.Intn(2)))
		pl := MustCompile(pat, Options{Style: StyleGraphPi})
		return CountGraph(pl, g) == BruteForceCount(g, pat, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
