package plan

import (
	"khuzdul/internal/graph"
	"khuzdul/internal/setops"
)

// NeighborFunc resolves the sorted adjacency list of a vertex. Engines plug
// in the local partition, a fetched remote list, or the whole graph.
type NeighborFunc func(v graph.VertexID) []graph.VertexID

// LabelFunc resolves a vertex label; nil means the graph is unlabeled.
type LabelFunc func(v graph.VertexID) graph.Label

// EdgeLabelFunc resolves the label of an existing edge; nil means edges are
// unlabeled.
type EdgeLabelFunc func(u, v graph.VertexID) graph.Label

// noUpper is the exclusive upper bound meaning "unbounded".
const noUpper = ^graph.VertexID(0)

// Scratch holds reusable per-level buffers and kernel dispatchers for plan
// execution. It is not safe for concurrent use; create one per worker.
type Scratch struct {
	interA [][]graph.VertexID
	interB [][]graph.VertexID
	subA   [][]graph.VertexID
	subB   [][]graph.VertexID
	cand   [][]graph.VertexID
	// disp holds one skew-adaptive dispatcher per level: the per-level hub
	// bitmap lives inside it, rebuilt only when the level moves to a new hub
	// vertex and reused across every embedding that touches the same hub.
	disp []setops.Dispatcher
	// pivot gathers the input lists of a k-way pivot step.
	pivot [][]graph.VertexID
	// kernels counts kernel invocations across all levels; engines drain it
	// into their metrics node between rounds.
	kernels [setops.NumKernels]uint64
}

// NewScratch allocates buffers sized for plan p.
func NewScratch(p *Plan) *Scratch {
	s := &Scratch{
		interA: make([][]graph.VertexID, p.K),
		interB: make([][]graph.VertexID, p.K),
		subA:   make([][]graph.VertexID, p.K),
		subB:   make([][]graph.VertexID, p.K),
		cand:   make([][]graph.VertexID, p.K),
		disp:   make([]setops.Dispatcher, p.K),
		pivot:  make([][]graph.VertexID, 0, p.K),
	}
	for i := range s.disp {
		s.disp[i].HubThreshold = int(p.HubThreshold)
		s.disp[i].Counts = &s.kernels
	}
	return s
}

// SetHubThreshold overrides the compiled hub-promotion threshold for this
// scratch's dispatchers (0 disables the bitmap kernel). Plans are shared and
// possibly cached across concurrent runs, so per-run overrides land here, on
// the per-worker state, never on the plan.
func (s *Scratch) SetHubThreshold(t uint32) {
	for i := range s.disp {
		s.disp[i].HubThreshold = int(t)
	}
}

// KernelCounts exposes the per-kernel invocation counters. The engine reads
// and zeroes them at drain points; the scratch must be quiescent.
func (s *Scratch) KernelCounts() *[setops.NumKernels]uint64 { return &s.kernels }

// RawIntersect computes the raw candidate intersection for the given level:
// ∩ N(emb[j]) over j in Levels[level].Intersect, honoring the plan's
// vertical-computation-sharing annotations and the compiled kernel hints.
// emb must hold the vertices matched at positions before level — the
// dispatcher keys its hub-bitmap cache by vertex ID, which stays valid
// however fetch buffers are recycled. getList(pos) must return the sorted
// edge list of the vertex matched at position pos. parentRaw is the
// intersection stored by the parent level (nil if none). The result may
// alias getList output, parentRaw, or scratch storage; callers that retain
// it across further calls must copy.
func (p *Plan) RawIntersect(s *Scratch, level int, emb []graph.VertexID, getList func(int) []graph.VertexID, parentRaw []graph.VertexID) []graph.VertexID {
	lv := &p.Levels[level]
	d := &s.disp[level]
	if p.VCS && parentRaw != nil {
		if lv.ReuseSame {
			return parentRaw
		}
		if lv.ReuseExtend {
			s.interA[level] = d.Intersect(s.interA[level][:0], parentRaw, getList(level-1), setops.NoVertex, emb[level-1])
			return s.interA[level]
		}
	}
	if len(lv.Intersect) == 1 {
		return getList(lv.Intersect[0])
	}
	if lv.KernelHint == HintPivot {
		s.pivot = s.pivot[:0]
		for _, j := range lv.Intersect {
			s.pivot = append(s.pivot, getList(j))
		}
		s.interA[level] = setops.IntersectPivot(s.interA[level][:0], s.pivot)
		s.kernels[setops.KernelPivot]++
		return s.interA[level]
	}
	j0, j1 := lv.Intersect[0], lv.Intersect[1]
	a := d.Intersect(s.interA[level][:0], getList(j0), getList(j1), emb[j0], emb[j1])
	s.interA[level] = a
	for _, j := range lv.Intersect[2:] {
		b := d.Intersect(s.interB[level][:0], a, getList(j), setops.NoVertex, emb[j])
		s.interB[level] = b
		// Keep the freshest result in interA so the next round's [:0] reuse
		// does not clobber it.
		s.interA[level], s.interB[level] = s.interB[level], s.interA[level]
		a = b
	}
	return a
}

// Candidates filters the raw intersection into the final candidate set for
// the level: symmetry-breaking lower bounds, distinctness from all earlier
// vertices, induced-mode subtraction of non-neighbor lists, and the position
// label. The result aliases the scratch candidate buffer for this level,
// which deeper levels do not touch, so it remains valid while the caller
// recurses.
func (p *Plan) Candidates(s *Scratch, level int, emb []graph.VertexID, raw []graph.VertexID, getList func(int) []graph.VertexID, labelOf LabelFunc) []graph.VertexID {
	lv := &p.Levels[level]
	// Inclusive lower bound from symmetry-breaking restrictions: v > emb[a]
	// for all a in LowerBounds ⇔ v ≥ max(emb[a]) + 1.
	lo := graph.VertexID(0)
	for _, a := range lv.LowerBounds {
		if emb[a]+1 > lo {
			lo = emb[a] + 1
		}
	}

	src := raw
	if p.Induced && len(lv.Subtract) > 0 {
		a, b := s.subA[level], s.subB[level]
		for _, j := range lv.Subtract {
			a = setops.Subtract(a[:0], src, getList(j))
			src = a
			if len(a) == 0 {
				break
			}
			a, b = b, a
		}
		s.subA[level], s.subB[level] = a[:0], b[:0] // retain grown capacity
	}

	out := setops.Filter(s.cand[level][:0], src, lo, noUpper, emb[:level])
	if labelOf != nil && p.Labeled() {
		want := p.PosLabel(level)
		w := out[:0]
		for _, v := range out {
			if labelOf(v) == want {
				w = append(w, v)
			}
		}
		out = w
	}
	s.cand[level] = out
	return out
}

// FilterEdgeLabels drops candidates whose edges back to the matched
// positions carry the wrong labels, filtering cands in place. It is a
// separate pass so that engines over unlabeled-edge graphs pay nothing.
func (p *Plan) FilterEdgeLabels(level int, emb []graph.VertexID, cands []graph.VertexID, edgeLabelOf EdgeLabelFunc) []graph.VertexID {
	if edgeLabelOf == nil || !p.EdgeLabeled {
		return cands
	}
	lv := &p.Levels[level]
	w := cands[:0]
next:
	for _, v := range cands {
		for idx, j := range lv.Intersect {
			if edgeLabelOf(emb[j], v) != lv.EdgeLabels[idx] {
				continue next
			}
		}
		w = append(w, v)
	}
	return w
}

// Executor runs a compiled plan depth-first over a neighbor oracle. It is
// the reference single-machine execution path used by the AutomineIH-style
// engines and the baselines; the distributed Khuzdul engine uses the same
// RawIntersect/Candidates kernels but schedules levels with chunks.
type Executor struct {
	plan     *Plan
	nbr      NeighborFunc
	labelOf  LabelFunc
	elabelOf EdgeLabelFunc
	scratch  *Scratch
	emb      []graph.VertexID
	lists    [][]graph.VertexID // edge list per matched position
	raws     [][]graph.VertexID // stored intersections per level
}

// NewExecutor returns an executor for plan p over the given oracles.
// labelOf may be nil for unlabeled graphs.
func NewExecutor(p *Plan, nbr NeighborFunc, labelOf LabelFunc) *Executor {
	return &Executor{
		plan:    p,
		nbr:     nbr,
		labelOf: labelOf,
		scratch: NewScratch(p),
		emb:     make([]graph.VertexID, p.K),
		lists:   make([][]graph.VertexID, p.K),
		raws:    make([][]graph.VertexID, p.K),
	}
}

// Plan returns the executor's plan.
func (e *Executor) Plan() *Plan { return e.plan }

// Scratch exposes the executor's per-worker scratch; hub-threshold overrides
// and the per-kernel invocation counters live there.
func (e *Executor) Scratch() *Scratch { return e.scratch }

// SetEdgeLabelOf installs an edge-label oracle for edge-labeled patterns.
func (e *Executor) SetEdgeLabelOf(f EdgeLabelFunc) { e.elabelOf = f }

// CountRoot counts all pattern embeddings whose position-0 vertex is root.
func (e *Executor) CountRoot(root graph.VertexID) uint64 {
	if !e.admitRoot(root) {
		return 0
	}
	return e.count(1)
}

// VisitRoot invokes onMatch with every embedding rooted at root. The slice
// passed to onMatch is reused; callers must copy to retain it.
func (e *Executor) VisitRoot(root graph.VertexID, onMatch func(emb []graph.VertexID)) {
	if !e.admitRoot(root) {
		return
	}
	e.visit(1, onMatch)
}

func (e *Executor) admitRoot(root graph.VertexID) bool {
	if e.labelOf != nil && e.plan.Labeled() && e.labelOf(root) != e.plan.PosLabel(0) {
		return false
	}
	e.emb[0] = root
	e.lists[0] = e.nbr(root)
	return true
}

func (e *Executor) getList(pos int) []graph.VertexID { return e.lists[pos] }

func (e *Executor) levelCandidates(level int) []graph.VertexID {
	p := e.plan
	var parentRaw []graph.VertexID
	if level > 1 {
		parentRaw = e.raws[level-1]
	}
	raw := p.RawIntersect(e.scratch, level, e.emb, e.getList, parentRaw)
	cands := p.Candidates(e.scratch, level, e.emb, raw, e.getList, e.labelOf)
	cands = p.FilterEdgeLabels(level, e.emb, cands, e.elabelOf)
	if level < p.K-1 {
		if p.Levels[level].StoreInter {
			e.raws[level] = append(e.raws[level][:0], raw...)
		} else {
			e.raws[level] = e.raws[level][:0]
		}
	}
	return cands
}

func (e *Executor) count(level int) uint64 {
	p := e.plan
	cands := e.levelCandidates(level)
	if level == p.K-1 {
		return uint64(len(cands))
	}
	var total uint64
	for _, v := range cands {
		e.emb[level] = v
		if p.Levels[level].NeedsList {
			e.lists[level] = e.nbr(v)
		}
		total += e.count(level + 1)
	}
	return total
}

func (e *Executor) visit(level int, onMatch func([]graph.VertexID)) {
	p := e.plan
	cands := e.levelCandidates(level)
	if level == p.K-1 {
		for _, v := range cands {
			e.emb[level] = v
			onMatch(e.emb)
		}
		return
	}
	for _, v := range cands {
		e.emb[level] = v
		if p.Levels[level].NeedsList {
			e.lists[level] = e.nbr(v)
		}
		e.visit(level+1, onMatch)
	}
}

// Count counts all embeddings of the plan's pattern over the given roots.
func Count(p *Plan, nbr NeighborFunc, labelOf LabelFunc, roots []graph.VertexID) uint64 {
	e := NewExecutor(p, nbr, labelOf)
	var total uint64
	for _, r := range roots {
		total += e.CountRoot(r)
	}
	return total
}

// CountGraph counts all embeddings over every vertex of g as root.
func CountGraph(p *Plan, g *graph.Graph) uint64 {
	var labelOf LabelFunc
	if g.Labeled() {
		labelOf = g.Label
	}
	e := NewExecutor(p, g.Neighbors, labelOf)
	if g.EdgeLabeled() {
		e.SetEdgeLabelOf(EdgeLabelOracle(g))
	}
	var total uint64
	for v := 0; v < g.NumVertices(); v++ {
		total += e.CountRoot(graph.VertexID(v))
	}
	return total
}

// EdgeLabelOracle adapts a graph's EdgeLabel lookup to an EdgeLabelFunc
// (only called on existing edges).
func EdgeLabelOracle(g *graph.Graph) EdgeLabelFunc {
	return func(u, v graph.VertexID) graph.Label {
		l, _ := g.EdgeLabel(u, v)
		return l
	}
}
