package plan

import (
	"fmt"
	"strings"
)

// Explain renders the plan as pseudo-code in the paper's nested-loop style
// (Figure 1/Figure 5): one loop per level with its set operations, symmetry
// restrictions, reuse annotations and active-list bookkeeping. It is meant
// for humans inspecting what a client system compiled; `khuzdul -explain`
// prints it.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern: %v\n", p.Pattern)
	fmt.Fprintf(&sb, "system:  %v   matching order: %v   |Aut| = %d\n", p.Style, p.Order, p.AutSize)
	if p.Induced {
		sb.WriteString("mode:    induced (motif semantics)\n")
	} else {
		sb.WriteString("mode:    non-induced\n")
	}
	if p.Labeled() {
		fmt.Fprintf(&sb, "labels:  %v (per position)\n", p.Labels)
	}
	if p.EdgeLabeled {
		sb.WriteString("edge labels: constrained per level\n")
	}
	indent := func(n int) string { return strings.Repeat("  ", n+1) }
	sb.WriteString("for v0 in V:")
	if p.Levels[0].NeedsList {
		sb.WriteString("    # keep N(v0) — active")
	}
	sb.WriteByte('\n')
	for i := 1; i < p.K; i++ {
		lv := &p.Levels[i]
		var set string
		switch {
		case lv.ReuseSame:
			set = fmt.Sprintf("R%d  # reuse parent intersection (VCS)", i-1)
		case lv.ReuseExtend:
			set = fmt.Sprintf("R%d ∩ N(v%d)  # extend parent intersection (VCS)", i-1, i-1)
		default:
			terms := make([]string, len(lv.Intersect))
			for j, pos := range lv.Intersect {
				terms[j] = fmt.Sprintf("N(v%d)", pos)
			}
			set = strings.Join(terms, " ∩ ")
		}
		if p.Induced && len(lv.Subtract) > 0 {
			subs := make([]string, len(lv.Subtract))
			for j, pos := range lv.Subtract {
				subs[j] = fmt.Sprintf("N(v%d)", pos)
			}
			set += " \\ (" + strings.Join(subs, " ∪ ") + ")"
		}
		fmt.Fprintf(&sb, "%sfor v%d in %s:", indent(i-1), i, set)
		var notes []string
		notes = append(notes, "kernel="+lv.KernelHint.String())
		for _, a := range lv.LowerBounds {
			notes = append(notes, fmt.Sprintf("v%d > v%d", i, a))
		}
		if lv.StoreInter {
			notes = append(notes, fmt.Sprintf("store R%d", i))
		}
		if lv.NeedsList {
			notes = append(notes, fmt.Sprintf("fetch N(v%d) — active", i))
		}
		if len(notes) > 0 {
			sb.WriteString("    # " + strings.Join(notes, ", "))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%semit(v0..v%d)\n", indent(p.K-1), p.K-1)
	if len(p.Levels[p.K-1].Active) == 0 {
		sb.WriteString("final level needs no edge lists: candidates are counted directly\n")
	}
	fmt.Fprintf(&sb, "estimated cost: %.3g\n", p.EstCost)
	return sb.String()
}
