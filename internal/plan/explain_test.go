package plan

import (
	"strings"
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

func TestExplainCliqueSchedule(t *testing.T) {
	pl := MustCompile(pattern.Clique(4), Options{Style: StyleGraphPi})
	s := pl.Explain()
	for _, want := range []string{
		"for v0 in V:",
		"for v1 in N(v0):",
		"VCS",     // clique levels reuse intersections
		"v1 > v0", // total-order symmetry breaking
		"emit(v0..v3)",
		"estimated cost:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

func TestExplainInducedShowsSubtraction(t *testing.T) {
	pl := MustCompile(pattern.CycleP(4), Options{Style: StyleGraphPi, Induced: true})
	s := pl.Explain()
	if !strings.Contains(s, "induced") {
		t.Errorf("Explain missing induced mode:\n%s", s)
	}
	if !strings.Contains(s, "\\") {
		t.Errorf("Explain missing subtraction for induced cycle:\n%s", s)
	}
}

func TestExplainLabeled(t *testing.T) {
	pat := pattern.PathP(3).WithLabels([]graph.Label{1, 2, 3})
	pl := MustCompile(pat, Options{Style: StyleAutomine})
	if s := pl.Explain(); !strings.Contains(s, "labels:") {
		t.Errorf("Explain missing labels:\n%s", s)
	}
	epat := pattern.Triangle()
	epat.SetEdgeLabel(0, 1, 1)
	epat.SetEdgeLabel(1, 2, 1)
	epat.SetEdgeLabel(0, 2, 1)
	epl := MustCompile(epat, Options{Style: StyleAutomine})
	if s := epl.Explain(); !strings.Contains(s, "edge labels") {
		t.Errorf("Explain missing edge labels:\n%s", s)
	}
}

func TestExplainCountOnlyNote(t *testing.T) {
	pl := MustCompile(pattern.Triangle(), Options{Style: StyleAutomine})
	if s := pl.Explain(); !strings.Contains(s, "counted directly") {
		t.Errorf("Explain missing count-only note:\n%s", s)
	}
}
