package plan

import (
	"strings"
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/setops"
)

func TestKernelHintPivotOnWideLevels(t *testing.T) {
	// Clique level i intersects all i prior lists, so levels with ≥3 input
	// lists must carry the pivot hint; narrower levels stay auto.
	pl := MustCompile(pattern.Clique(5), Options{Style: StyleGraphPi})
	for i := 1; i < pl.K; i++ {
		want := HintAuto
		if len(pl.Levels[i].Intersect) >= 3 {
			want = HintPivot
		}
		if got := pl.Levels[i].KernelHint; got != want {
			t.Errorf("clique(5) level %d hint = %v, want %v (lists=%d)",
				i, got, want, len(pl.Levels[i].Intersect))
		}
	}
	// A triangle never has a 3-list step.
	tri := MustCompile(pattern.Triangle(), Options{Style: StyleGraphPi})
	for i := 1; i < tri.K; i++ {
		if tri.Levels[i].KernelHint != HintAuto {
			t.Errorf("triangle level %d hinted %v", i, tri.Levels[i].KernelHint)
		}
	}
}

func TestHubThresholdDerivation(t *testing.T) {
	// Low-skew graphs never qualify: a cycle's max degree is 2.
	if got := StatsOf(graph.Cycle(10)).HubThreshold(); got != 0 {
		t.Errorf("cycle threshold = %d, want 0 (bitmap off)", got)
	}
	// A star is the extreme: one hub, everyone else degree 1. The histogram
	// walk stops at the degree-1 bucket and clamps to the minimum.
	star := StatsOf(graph.Star(1000))
	if got := star.HubThreshold(); got != 128 {
		t.Errorf("star threshold = %d, want 128 (clamped minimum)", got)
	}
	// Without a histogram the fallback derives from max degree alone.
	noHist := GraphStats{MaxDegree: 4096}
	if got := noHist.HubThreshold(); got != 512 {
		t.Errorf("fallback threshold = %d, want maxdeg/8 = 512", got)
	}
	if got := (GraphStats{MaxDegree: 100}).HubThreshold(); got != 0 {
		t.Errorf("sub-minimum max degree threshold = %d, want 0", got)
	}
	// Compile wires the derived threshold onto the plan.
	g := graph.Star(1000)
	pl := MustCompile(pattern.Triangle(), Options{Style: StyleGraphPi, Stats: StatsOf(g)})
	if pl.HubThreshold != 128 {
		t.Errorf("compiled plan threshold = %d, want 128", pl.HubThreshold)
	}
	// Default synthesized stats must leave the bitmap kernel off.
	def := MustCompile(pattern.Triangle(), Options{Style: StyleGraphPi})
	if def.HubThreshold != 0 {
		t.Errorf("default-stats threshold = %d, want 0", def.HubThreshold)
	}
}

func TestBitmapKernelMatchesBruteForce(t *testing.T) {
	// Forcing a tiny hub threshold routes every keyed intersection through
	// the bitmap kernel; counts must not change on any pattern or graph.
	graphs := map[string]*graph.Graph{
		"rmat": graph.RMATDefault(80, 400, 11),
		"star": graph.Star(60),
		"k7":   graph.Complete(7),
	}
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.Clique(4), pattern.House(), pattern.CycleP(4),
	}
	for gname, g := range graphs {
		for _, pat := range pats {
			want := BruteForceCount(g, pat, false)
			pl := MustCompile(pat, Options{Style: StyleGraphPi, Stats: StatsOf(g)})
			pl.HubThreshold = 1
			if got := CountGraph(pl, g); got != want {
				t.Errorf("%v on %s with forced bitmap: got %d, want %d", pat, gname, got, want)
			}
		}
	}
}

func TestPivotKernelMatchesBruteForce(t *testing.T) {
	// DisableVCS makes clique levels recompute the full k-way intersection,
	// so the compiled pivot hint drives the real counting path.
	g := graph.RMATDefault(70, 350, 5)
	for _, pat := range []*pattern.Pattern{pattern.Clique(4), pattern.Clique(5)} {
		want := BruteForceCount(g, pat, false)
		pl := MustCompile(pat, Options{Style: StyleGraphPi, DisableVCS: true, Stats: StatsOf(g)})
		hinted := false
		for i := 1; i < pl.K; i++ {
			hinted = hinted || pl.Levels[i].KernelHint == HintPivot
		}
		if !hinted {
			t.Fatalf("%v compiled without any pivot hint", pat)
		}
		if got := CountGraph(pl, g); got != want {
			t.Errorf("%v with pivot kernel: got %d, want %d", pat, got, want)
		}
	}
}

func TestScratchKernelCountersAndOverride(t *testing.T) {
	g := graph.Star(300) // hub degree ≥ derived threshold 128
	// DisableVCS so level 2 recomputes N(v0) ∩ N(v1) with real vertex keys;
	// the VCS path intersects an unkeyed stored intermediate instead, which
	// deliberately never hub-promotes.
	pl := MustCompile(pattern.Triangle(), Options{Style: StyleGraphPi, DisableVCS: true, Stats: StatsOf(g)})
	e := NewExecutor(pl, g.Neighbors, nil)
	for v := 0; v < g.NumVertices(); v++ {
		e.CountRoot(graph.VertexID(v))
	}
	kc := e.Scratch().KernelCounts()
	if kc[setops.KernelBitmap] == 0 {
		t.Errorf("no bitmap invocations on a star graph; counts = %v", *kc)
	}
	// SetHubThreshold above the max degree turns the bitmap kernel off
	// without touching the shared plan.
	e2 := NewExecutor(pl, g.Neighbors, nil)
	e2.Scratch().SetHubThreshold(100000)
	for v := 0; v < g.NumVertices(); v++ {
		e2.CountRoot(graph.VertexID(v))
	}
	if kc2 := e2.Scratch().KernelCounts(); kc2[setops.KernelBitmap] != 0 {
		t.Errorf("bitmap fired despite override: counts = %v", *kc2)
	}
	if pl.HubThreshold != 128 {
		t.Errorf("override mutated the shared plan: %d", pl.HubThreshold)
	}
}

func TestExplainShowsKernelHint(t *testing.T) {
	pl := MustCompile(pattern.Clique(4), Options{Style: StyleGraphPi, DisableVCS: true})
	s := pl.Explain()
	if !strings.Contains(s, "kernel=pivot") {
		t.Errorf("Explain missing kernel=pivot for clique(4):\n%s", s)
	}
	if !strings.Contains(s, "kernel=auto") {
		t.Errorf("Explain missing kernel=auto on narrow levels:\n%s", s)
	}
}
