package plan

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// TestAllFiveVertexMotifs sweeps every connected 5-vertex pattern (21
// shapes) through both plan styles and both matching semantics against the
// brute-force oracle — the widest structural coverage of the compiler.
func TestAllFiveVertexMotifs(t *testing.T) {
	if testing.Short() {
		t.Skip("wide sweep")
	}
	g := graph.RMATDefault(35, 150, 431)
	for i, pat := range pattern.ConnectedPatterns(5) {
		for _, induced := range []bool{false, true} {
			want := BruteForceCount(g, pat, induced)
			for _, style := range []Style{StyleAutomine, StyleGraphPi} {
				pl := MustCompile(pat, Options{Style: style, Induced: induced})
				if got := CountGraph(pl, g); got != want {
					t.Errorf("pattern %d (%v) induced=%v %v: got %d, want %d",
						i, pat, induced, style, got, want)
				}
			}
		}
	}
}

// TestInducedMotifPartition checks that the induced counts of all size-k
// patterns partition the connected-subgraph count (ESU identity) — here
// derived purely inside the plan package using non-induced/induced algebra
// for k=3: wedges_ni = wedges_ind + 3·triangles.
func TestInducedMotifPartitionK3(t *testing.T) {
	g := graph.Uniform(120, 700, 433)
	wedgeNI := CountGraph(MustCompile(pattern.PathP(3), Options{}), g)
	wedgeI := CountGraph(MustCompile(pattern.PathP(3), Options{Induced: true}), g)
	tri := CountGraph(MustCompile(pattern.Triangle(), Options{}), g)
	if wedgeI+3*tri != wedgeNI {
		t.Fatalf("identity violated: %d + 3·%d != %d", wedgeI, tri, wedgeNI)
	}
}

// TestDiamondCliqueIdentity: each 4-clique contains 6 non-induced diamonds;
// non-induced diamonds = induced diamonds + 6·(4-cliques).
func TestDiamondCliqueIdentity(t *testing.T) {
	g := graph.RMATDefault(80, 500, 439)
	dNI := CountGraph(MustCompile(pattern.Diamond(), Options{}), g)
	dI := CountGraph(MustCompile(pattern.Diamond(), Options{Induced: true}), g)
	k4 := CountGraph(MustCompile(pattern.Clique(4), Options{}), g)
	if dI+6*k4 != dNI {
		t.Fatalf("identity violated: %d + 6·%d != %d", dI, k4, dNI)
	}
}

// TestEdgeCountViaPlan: the 2-vertex pattern counts edges exactly.
func TestEdgeCountViaPlan(t *testing.T) {
	g := graph.RMATDefault(300, 2000, 443)
	pl := MustCompile(pattern.PathP(2), Options{Style: StyleAutomine})
	if got := CountGraph(pl, g); got != g.NumEdges() {
		t.Fatalf("edge count via plan = %d, want %d", got, g.NumEdges())
	}
}

// TestStarCounts: k-stars counted via binomial identity Σ C(deg(v), k-1).
func TestStarCounts(t *testing.T) {
	g := graph.RMATDefault(100, 600, 449)
	binom := func(n uint32, k int) uint64 {
		if int(n) < k {
			return 0
		}
		r := uint64(1)
		for i := 0; i < k; i++ {
			r = r * uint64(int(n)-i) / uint64(i+1)
		}
		return r
	}
	for _, k := range []int{3, 4, 5} {
		var want uint64
		for v := 0; v < g.NumVertices(); v++ {
			want += binom(g.Degree(graph.VertexID(v)), k-1)
		}
		pl := MustCompile(pattern.StarP(k), Options{Style: StyleGraphPi})
		if got := CountGraph(pl, g); got != want {
			t.Errorf("%d-stars = %d, want %d", k, got, want)
		}
	}
}
