// Package plan compiles pattern graphs into enumeration plans: a matching
// order with connected prefixes, per-level set operations, symmetry-breaking
// restrictions derived from the pattern's automorphism group, and the
// bookkeeping the Khuzdul engine needs for its extendable-embedding
// abstraction (which positions are "active" at each level, whether a level's
// intersection can be reused by its children — the paper's vertical
// computation sharing).
//
// A plan is the Go equivalent of the paper's compiled EXTEND function: the
// client systems (internal/automine, internal/graphpi) produce plans in their
// respective styles, and every engine in the repository executes them.
package plan

import (
	"fmt"
	"strings"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// Style selects the order-selection strategy of a client GPM system.
type Style int

const (
	// StyleAutomine uses Automine's canonical greedy matching order.
	StyleAutomine Style = iota
	// StyleGraphPi searches all connected-prefix orders with a cost model,
	// reproducing GraphPi's schedule-quality advantage.
	StyleGraphPi
)

func (s Style) String() string {
	switch s {
	case StyleAutomine:
		return "automine"
	case StyleGraphPi:
		return "graphpi"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// Restriction is a symmetry-breaking constraint: the vertex matched at
// position A must have a smaller ID than the vertex matched at position B.
// Restrictions always point forward (A < B) and are enforced when matching
// position B.
type Restriction struct {
	A, B int
}

// KernelHint is the compiler's per-level suggestion for which set-
// intersection kernel the runtime should use. It is derived purely from the
// pattern structure; the runtime combines it with measured list sizes and
// the graph's hub threshold to pick a concrete kernel per call.
type KernelHint uint8

const (
	// HintAuto lets the runtime dispatcher choose merge, gallop or bitmap
	// per call from measured skew (one- and two-constraint steps).
	HintAuto KernelHint = iota
	// HintPivot marks clique-like steps (three or more intersected lists)
	// for the k-way pivot kernel, which never materializes intermediates.
	HintPivot
)

func (h KernelHint) String() string {
	switch h {
	case HintAuto:
		return "auto"
	case HintPivot:
		return "pivot"
	default:
		return fmt.Sprintf("hint(%d)", int(h))
	}
}

// Level describes how to match the pattern position at a given depth.
// Position 0 (the root) has a trivial level.
type Level struct {
	// Intersect lists the earlier positions adjacent to this one in the
	// pattern; the raw candidate set is the intersection of their edge lists.
	Intersect []int
	// EdgeLabels, when the pattern is edge-labeled, holds the required
	// label of the edge to each Intersect position (parallel slices).
	EdgeLabels []graph.Label
	// Subtract lists the earlier positions NOT adjacent to this one; in
	// induced mode their edge lists are subtracted from the candidates.
	Subtract []int
	// LowerBounds lists earlier positions a with restriction emb[a] < v.
	LowerBounds []int
	// UpperBounds is unused by the stabilizer-chain scheme (restrictions
	// always point forward) but kept for generality of hand-written plans.
	UpperBounds []int
	// ReuseSame marks that this level's raw intersection equals the parent
	// level's stored intersection (no set operation needed at all).
	ReuseSame bool
	// ReuseExtend marks that this level's raw intersection is the parent's
	// stored intersection ∩ N(previous vertex) — the paper's vertical
	// computation sharing (§5.1, Figure 9).
	ReuseExtend bool
	// StoreInter marks that the raw intersection computed at this level must
	// be kept in the extendable embedding for reuse by its children.
	StoreInter bool
	// NeedsList marks that the vertex matched at this level is an active
	// vertex of some deeper level, i.e. its edge list must be fetched and
	// carried in the extendable embedding.
	NeedsList bool
	// Active lists the positions whose edge lists must be available in an
	// extendable embedding at this level (the paper's active vertices).
	Active []int
	// KernelHint is the compiler's structural suggestion for this level's
	// intersection kernel (see KernelHint).
	KernelHint KernelHint
}

// Plan is a compiled enumeration schedule for one pattern.
type Plan struct {
	// Pattern is the original pattern (before reordering).
	Pattern *pattern.Pattern
	// Order maps position → original pattern vertex.
	Order []int
	// K is the number of pattern vertices.
	K int
	// Levels has one entry per position.
	Levels []Level
	// Restrictions is the full symmetry-breaking set (also folded into the
	// per-level LowerBounds).
	Restrictions []Restriction
	// AutSize is the order of the pattern's automorphism group.
	AutSize int
	// Induced selects induced matching (motif semantics).
	Induced bool
	// VCS reports whether vertical computation sharing annotations are on.
	VCS bool
	// Labels holds the per-position required vertex label, nil if unlabeled.
	Labels []graph.Label
	// EdgeLabeled marks plans whose pattern constrains edge labels.
	EdgeLabeled bool
	// Style records which client system produced the plan.
	Style Style
	// EstCost is the cost-model estimate used during order selection.
	EstCost float64
	// HubThreshold is the adjacency-list length at which the runtime
	// dispatcher promotes a hub vertex to the bitmap kernel, derived from
	// the input graph's degree histogram at compile time (0 disables the
	// bitmap kernel). Engines may override it per run via
	// Scratch.SetHubThreshold without touching the shared plan.
	HubThreshold uint32
}

// Options configures compilation.
type Options struct {
	Style   Style
	Induced bool
	// VCS enables vertical computation sharing annotations (default on via
	// Compile; disable to reproduce the paper's Figure 11 ablation).
	DisableVCS bool
	// DisableSymmetryBreak drops all restrictions; counts must then be
	// divided by AutSize. Used by tests to validate the restriction scheme.
	DisableSymmetryBreak bool
	// Stats feeds the GraphPi cost model; zero value uses generic defaults.
	Stats GraphStats
}

// GraphStats summarizes the input graph for the cost model and the runtime
// kernel selection.
type GraphStats struct {
	NumVertices int
	AvgDegree   float64
	MaxDegree   uint32
	// DegreeHist counts vertices per power-of-two degree bucket (bucket i
	// holds degrees in [2^i, 2^(i+1)); see graph.DegreeHistogram). Nil when
	// the stats were synthesized rather than measured.
	DegreeHist []int
}

// StatsOf extracts cost-model statistics from a graph.
func StatsOf(g *graph.Graph) GraphStats {
	n := g.NumVertices()
	avg := 0.0
	if n > 0 {
		avg = float64(g.NumDirectedEdges()) / float64(n)
	}
	return GraphStats{
		NumVertices: n,
		AvgDegree:   avg,
		MaxDegree:   g.MaxDegree(),
		DegreeHist:  g.DegreeHistogram(),
	}
}

// minHubDegree floors the hub threshold: below it the O(|hub|) bitmap build
// cannot amortize against the probes it saves.
const minHubDegree = 128

// HubThreshold derives the adjacency-list length at which the bitmap kernel
// pays off: the smallest power-of-two degree boundary that at most 1/64 of
// the vertices exceed, clamped to minHubDegree. A graph whose maximum degree
// is below the floor gets 0 — no hubs, bitmap kernel off. Without a measured
// histogram it falls back to MaxDegree/8.
func (s GraphStats) HubThreshold() uint32 {
	if s.MaxDegree < minHubDegree {
		return 0
	}
	if len(s.DegreeHist) == 0 {
		if t := s.MaxDegree / 8; t > minHubDegree {
			return t
		}
		return minHubDegree
	}
	total := 0
	for _, c := range s.DegreeHist {
		total += c
	}
	budget := total / 64
	if budget < 1 {
		budget = 1
	}
	tail := 0
	for i := len(s.DegreeHist) - 1; i >= 0; i-- {
		tail += s.DegreeHist[i]
		if tail > budget {
			// Bucket i holds too many vertices; the smallest admissible
			// boundary is the one just above it.
			if t := uint32(1) << uint(i+1); t > minHubDegree {
				return t
			}
			return minHubDegree
		}
	}
	return minHubDegree
}

// PosLabel returns the required label of the vertex matched at position i.
func (p *Plan) PosLabel(i int) graph.Label {
	if p.Labels == nil {
		return 0
	}
	return p.Labels[i]
}

// Labeled reports whether the plan constrains vertex labels.
func (p *Plan) Labeled() bool { return p.Labels != nil }

// MaxActive returns the maximum number of active positions over all levels.
func (p *Plan) MaxActive() int {
	max := 0
	for _, lv := range p.Levels {
		if len(lv.Active) > max {
			max = len(lv.Active)
		}
	}
	return max
}

// String renders a compact human-readable schedule.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan{%s k=%d order=%v aut=%d", p.Style, p.K, p.Order, p.AutSize)
	if p.Induced {
		sb.WriteString(" induced")
	}
	for i := 1; i < p.K; i++ {
		lv := &p.Levels[i]
		fmt.Fprintf(&sb, " L%d(int=%v", i, lv.Intersect)
		if len(lv.Subtract) > 0 {
			fmt.Fprintf(&sb, " sub=%v", lv.Subtract)
		}
		if len(lv.LowerBounds) > 0 {
			fmt.Fprintf(&sb, " lb=%v", lv.LowerBounds)
		}
		if lv.ReuseSame {
			sb.WriteString(" reuse=same")
		}
		if lv.ReuseExtend {
			sb.WriteString(" reuse=extend")
		}
		sb.WriteString(")")
	}
	sb.WriteString("}")
	return sb.String()
}

// Validate checks internal consistency; compiled plans always pass, and
// hand-written plans can use it as a safety net.
func (p *Plan) Validate() error {
	if p.K != len(p.Levels) {
		return fmt.Errorf("plan: K=%d but %d levels", p.K, len(p.Levels))
	}
	if p.K != p.Pattern.NumVertices() {
		return fmt.Errorf("plan: K=%d but pattern has %d vertices", p.K, p.Pattern.NumVertices())
	}
	if len(p.Order) != p.K {
		return fmt.Errorf("plan: order length %d != K", len(p.Order))
	}
	seen := make([]bool, p.K)
	for _, v := range p.Order {
		if v < 0 || v >= p.K || seen[v] {
			return fmt.Errorf("plan: order %v is not a permutation", p.Order)
		}
		seen[v] = true
	}
	for i := 1; i < p.K; i++ {
		lv := &p.Levels[i]
		if len(lv.Intersect) == 0 {
			return fmt.Errorf("plan: level %d has no intersect positions (order prefix disconnected)", i)
		}
		for _, j := range lv.Intersect {
			if j < 0 || j >= i {
				return fmt.Errorf("plan: level %d intersects future position %d", i, j)
			}
		}
		for _, r := range lv.LowerBounds {
			if r < 0 || r >= i {
				return fmt.Errorf("plan: level %d lower bound on future position %d", i, r)
			}
		}
		if lv.ReuseSame && lv.ReuseExtend {
			return fmt.Errorf("plan: level %d has both reuse modes", i)
		}
	}
	for _, r := range p.Restrictions {
		if r.A >= r.B {
			return fmt.Errorf("plan: restriction %v does not point forward", r)
		}
	}
	return nil
}
