package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

func compile(t *testing.T, p *pattern.Pattern, opts Options) *Plan {
	t.Helper()
	pl, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile(%v): %v", p, err)
	}
	return pl
}

func TestCompileRejectsBadPatterns(t *testing.T) {
	disc := pattern.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := Compile(disc, Options{}); err == nil {
		t.Fatal("want error for disconnected pattern")
	}
	if _, err := Compile(pattern.New(1), Options{}); err == nil {
		t.Fatal("want error for single-vertex pattern")
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"K4", graph.Complete(4), 4},
		{"K5", graph.Complete(5), 10},
		{"C5", graph.Cycle(5), 0},
		{"star", graph.Star(10), 0},
		{"grid", graph.Grid(3, 3), 0},
	}
	for _, style := range []Style{StyleAutomine, StyleGraphPi} {
		pl := MustCompile(pattern.Triangle(), Options{Style: style})
		for _, c := range cases {
			if got := CountGraph(pl, c.g); got != c.want {
				t.Errorf("%v/%s: triangles = %d, want %d", style, c.name, got, c.want)
			}
		}
	}
}

func TestCliqueCountsComplete(t *testing.T) {
	// #k-cliques of K_n = C(n,k).
	binom := func(n, k int) uint64 {
		r := uint64(1)
		for i := 0; i < k; i++ {
			r = r * uint64(n-i) / uint64(i+1)
		}
		return r
	}
	g := graph.Complete(8)
	for k := 2; k <= 5; k++ {
		pl := MustCompile(pattern.Clique(k), Options{Style: StyleGraphPi})
		if got, want := CountGraph(pl, g), binom(8, k); got != want {
			t.Errorf("%d-cliques of K8 = %d, want %d", k, got, want)
		}
	}
}

func TestCycleAndPathCounts(t *testing.T) {
	// C_n contains exactly one n-cycle and n paths of each length < n.
	g := graph.Cycle(7)
	pl := MustCompile(pattern.CycleP(7), Options{Style: StyleGraphPi})
	if got := CountGraph(pl, g); got != 1 {
		t.Errorf("7-cycles in C7 = %d, want 1", got)
	}
	pl = MustCompile(pattern.PathP(4), Options{Style: StyleAutomine})
	if got := CountGraph(pl, g); got != 7 {
		t.Errorf("P4s in C7 = %d, want 7", got)
	}
}

func TestInducedVsNonInduced(t *testing.T) {
	// K4 contains 3 non-induced 4-cycles but 0 induced ones.
	g := graph.Complete(4)
	ni := MustCompile(pattern.CycleP(4), Options{Style: StyleGraphPi})
	if got := CountGraph(ni, g); got != 3 {
		t.Errorf("non-induced C4 in K4 = %d, want 3", got)
	}
	in := MustCompile(pattern.CycleP(4), Options{Style: StyleGraphPi, Induced: true})
	if got := CountGraph(in, g); got != 0 {
		t.Errorf("induced C4 in K4 = %d, want 0", got)
	}
	// C4 contains exactly one induced 4-cycle.
	if got := CountGraph(in, graph.Cycle(4)); got != 1 {
		t.Errorf("induced C4 in C4 = %d, want 1", got)
	}
}

func TestLabeledMatching(t *testing.T) {
	// Path a-b-a in a labeled triangle: labels (1,2,1).
	g0 := graph.Complete(3)
	g, err := g0.WithLabels([]graph.Label{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.PathP(3).WithLabels([]graph.Label{1, 2, 1})
	pl := MustCompile(pat, Options{Style: StyleGraphPi})
	if got := CountGraph(pl, g); got != 1 {
		t.Errorf("labeled wedge count = %d, want 1", got)
	}
	want := BruteForceCount(g, pat, false)
	if got := CountGraph(pl, g); got != want {
		t.Errorf("labeled count %d != brute force %d", got, want)
	}
}

func TestAllStylesMatchBruteForce(t *testing.T) {
	pats := map[string]*pattern.Pattern{
		"triangle":        pattern.Triangle(),
		"4-clique":        pattern.Clique(4),
		"4-cycle":         pattern.CycleP(4),
		"4-path":          pattern.PathP(4),
		"4-star":          pattern.StarP(4),
		"tailed-triangle": pattern.TailedTriangle(),
		"diamond":         pattern.Diamond(),
		"house":           pattern.House(),
		"5-clique":        pattern.Clique(5),
	}
	graphs := map[string]*graph.Graph{
		"rmat":    graph.RMATDefault(60, 240, 3),
		"uniform": graph.Uniform(50, 180, 4),
		"grid":    graph.Grid(5, 5),
		"k7":      graph.Complete(7),
	}
	for pname, pat := range pats {
		for gname, g := range graphs {
			for _, induced := range []bool{false, true} {
				want := BruteForceCount(g, pat, induced)
				for _, style := range []Style{StyleAutomine, StyleGraphPi} {
					pl := MustCompile(pat, Options{Style: style, Induced: induced, Stats: StatsOf(g)})
					if got := CountGraph(pl, g); got != want {
						t.Errorf("%s on %s (induced=%v, %v): got %d, want %d\nplan: %v",
							pname, gname, induced, style, got, want, pl)
					}
				}
			}
		}
	}
}

func TestSymmetryBreakMatchesAutDivision(t *testing.T) {
	// Counting with restrictions must equal unrestricted count / |Aut|.
	g := graph.RMATDefault(50, 200, 9)
	for _, pat := range []*pattern.Pattern{
		pattern.Triangle(), pattern.CycleP(4), pattern.PathP(4),
		pattern.StarP(4), pattern.Diamond(),
	} {
		restricted := MustCompile(pat, Options{Style: StyleGraphPi})
		unrestricted := MustCompile(pat, Options{Style: StyleGraphPi, DisableSymmetryBreak: true})
		r := CountGraph(restricted, g)
		u := CountGraph(unrestricted, g)
		if u != r*uint64(restricted.AutSize) {
			t.Errorf("%v: restricted %d × aut %d != unrestricted %d",
				pat, r, restricted.AutSize, u)
		}
	}
}

func TestVCSDoesNotChangeCounts(t *testing.T) {
	g := graph.RMATDefault(70, 350, 21)
	for _, pat := range []*pattern.Pattern{
		pattern.Clique(4), pattern.Clique(5), pattern.House(), pattern.CycleP(5),
	} {
		on := MustCompile(pat, Options{Style: StyleGraphPi})
		off := MustCompile(pat, Options{Style: StyleGraphPi, DisableVCS: true})
		if a, b := CountGraph(on, g), CountGraph(off, g); a != b {
			t.Errorf("%v: VCS on %d != off %d", pat, a, b)
		}
	}
}

func TestVCSAnnotationsOnCliques(t *testing.T) {
	// Clique levels intersect all prior positions, so every level ≥2 must be
	// annotated ReuseExtend (the paper's Figure 9 example).
	pl := MustCompile(pattern.Clique(5), Options{Style: StyleGraphPi})
	for i := 2; i < pl.K; i++ {
		if !pl.Levels[i].ReuseExtend {
			t.Errorf("clique level %d not ReuseExtend: %v", i, pl)
		}
		if !pl.Levels[i-1].StoreInter {
			t.Errorf("clique level %d should StoreInter", i-1)
		}
	}
}

func TestActiveAntiMonotone(t *testing.T) {
	// Once a position becomes inactive it stays inactive (paper §3.1).
	for _, pat := range []*pattern.Pattern{
		pattern.Clique(5), pattern.House(), pattern.CycleP(5), pattern.StarP(5),
	} {
		pl := MustCompile(pat, Options{Style: StyleAutomine})
		for i := 1; i < pl.K; i++ {
			prev := map[int]bool{}
			for _, a := range pl.Levels[i-1].Active {
				prev[a] = true
			}
			for _, a := range pl.Levels[i].Active {
				if a < i && !prev[a] {
					t.Errorf("%v: position %d inactive at level %d but active at %d",
						pat, a, i-1, i)
				}
			}
		}
		// Last level needs no lists.
		if pl.Levels[pl.K-1].NeedsList {
			t.Errorf("%v: last level claims NeedsList", pat)
		}
	}
}

func TestGraphPiOrderBeatsOrEqualsAutomine(t *testing.T) {
	stats := GraphStats{NumVertices: 1 << 20, AvgDegree: 32}
	for _, pat := range []*pattern.Pattern{
		pattern.House(), pattern.TailedTriangle(), pattern.CycleP(5),
	} {
		gp := MustCompile(pat, Options{Style: StyleGraphPi, Stats: stats})
		am := MustCompile(pat, Options{Style: StyleAutomine, Stats: stats})
		if gp.EstCost > am.EstCost {
			t.Errorf("%v: GraphPi cost %.1f worse than Automine %.1f",
				pat, gp.EstCost, am.EstCost)
		}
	}
}

func TestVisitRootEmitsValidEmbeddings(t *testing.T) {
	g := graph.RMATDefault(40, 160, 8)
	pat := pattern.TailedTriangle()
	pl := MustCompile(pat, Options{Style: StyleGraphPi})
	e := NewExecutor(pl, g.Neighbors, nil)
	count := uint64(0)
	for v := 0; v < g.NumVertices(); v++ {
		e.VisitRoot(graph.VertexID(v), func(emb []graph.VertexID) {
			count++
			// Verify the embedding is a genuine match of the reordered pattern.
			q := pat.Relabel(pl.Order)
			for a := 0; a < pl.K; a++ {
				for b := a + 1; b < pl.K; b++ {
					if q.HasEdge(a, b) && !g.HasEdge(emb[a], emb[b]) {
						t.Fatalf("emitted non-embedding %v", emb)
					}
					if emb[a] == emb[b] {
						t.Fatalf("emitted non-injective embedding %v", emb)
					}
				}
			}
		})
	}
	if want := CountGraph(pl, g); count != want {
		t.Fatalf("VisitRoot emitted %d, CountGraph says %d", count, want)
	}
}

func TestPropertyEnginesAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := graph.Uniform(n, uint64(rng.Intn(4*n)), rng.Int63())
		pats := []*pattern.Pattern{pattern.Triangle(), pattern.CycleP(4), pattern.Clique(4)}
		pat := pats[rng.Intn(len(pats))]
		induced := rng.Intn(2) == 0
		want := BruteForceCount(g, pat, induced)
		am := MustCompile(pat, Options{Style: StyleAutomine, Induced: induced})
		gp := MustCompile(pat, Options{Style: StyleGraphPi, Induced: induced})
		return CountGraph(am, g) == want && CountGraph(gp, g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanStringAndValidate(t *testing.T) {
	pl := MustCompile(pattern.Diamond(), Options{Style: StyleGraphPi})
	if pl.String() == "" {
		t.Fatal("empty plan string")
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the plan and expect Validate to notice.
	bad := *pl
	bad.Order = []int{0, 0, 1, 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted non-permutation order")
	}
}

func TestMaxActiveBounded(t *testing.T) {
	pl := MustCompile(pattern.Clique(5), Options{Style: StyleGraphPi})
	if ma := pl.MaxActive(); ma < 1 || ma > 4 {
		t.Fatalf("MaxActive = %d out of range", ma)
	}
}
