package replicated

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

func TestModeledMakespanBounds(t *testing.T) {
	g := graph.RMATDefault(150, 900, 601)
	res, err := Count(g, pattern.Triangle(), Config{NumNodes: 4, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledElapsed <= 0 {
		t.Fatal("no modeled makespan")
	}
	// The slowest shard cannot exceed the sequential total.
	if res.ModeledElapsed > res.Elapsed {
		t.Fatalf("makespan %v exceeds sequential wall %v", res.ModeledElapsed, res.Elapsed)
	}
	// With 8 shards the slowest must be at least 1/8 of the total work —
	// trivially true; check the tighter property that it is at least the
	// average shard.
	if res.ModeledElapsed*8 < res.Elapsed {
		t.Fatalf("makespan %v below average shard of %v", res.ModeledElapsed, res.Elapsed)
	}
}

func TestSkewWorsensMakespan(t *testing.T) {
	// On a heavily skewed graph the static-block imbalance must leave the
	// slowest shard well above the average shard — the coarse-partitioning
	// pathology the paper attributes to GraphPi.
	skew := graph.RMAT(1<<13, 60000, 0.7, 0.1, 0.1, 607)
	res, err := Count(skew, pattern.Triangle(), Config{NumNodes: 8, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Elapsed / 16
	if res.ModeledElapsed < 2*avg {
		t.Fatalf("expected skew imbalance: slowest shard %v vs average %v", res.ModeledElapsed, avg)
	}
}
