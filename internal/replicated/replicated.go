// Package replicated implements the GraphPi distributed baseline: every
// machine holds a full replica of the graph, so there is no communication,
// but (1) memory scales with cluster size × graph size, which is why the
// paper's Table 5 graphs are out of reach for this design, and (2) work is
// split by coarse static partitioning of the outer enumeration loop, which
// GraphPi parallelizes "in a coarse-grained fashion" — reproducing its load
// imbalance against Khuzdul's fine-grained dynamic mini-batches.
package replicated

import (
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Name identifies the baseline in experiment output.
const Name = "GraphPi(replicated)"

// Config describes the simulated replicated deployment.
type Config struct {
	// NumNodes is the number of machines (each holding the whole graph).
	NumNodes int
	// ThreadsPerNode is the per-machine worker count.
	ThreadsPerNode int
}

// Result reports one run.
type Result struct {
	Count   uint64
	Elapsed time.Duration
	// ModeledElapsed is the modeled parallel makespan: worker shards are
	// timed individually (executed sequentially, so the measurement is
	// valid on any host core count) and the makespan is the slowest shard —
	// exactly the critical path of GraphPi's static first-loop
	// partitioning. Load imbalance between shards, the paper's criticism
	// of coarse-grained parallelism, shows up here directly.
	ModeledElapsed time.Duration
	// MemoryBytes is the aggregate graph memory across machines — the
	// replication cost the paper's scalability argument hinges on.
	MemoryBytes uint64
}

// Count counts pat's embeddings with a GraphPi-style replicated execution:
// the vertex range is statically blocked across machines, and each machine
// statically blocks its range across threads (no work stealing).
func Count(g *graph.Graph, pat *pattern.Pattern, cfg Config) (Result, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 1
	}
	pl, err := plan.Compile(pat, plan.Options{Style: plan.StyleGraphPi, Stats: plan.StatsOf(g)})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	count, makespan := countStatic(pl, g, cfg.NumNodes*cfg.ThreadsPerNode)
	return Result{
		Count:          count,
		Elapsed:        time.Since(start),
		ModeledElapsed: makespan,
		MemoryBytes:    uint64(cfg.NumNodes) * g.SizeBytes(),
	}, nil
}

// CountMotifs runs all connected size-k patterns with induced semantics.
func CountMotifs(g *graph.Graph, k int, cfg Config) (Result, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 1
	}
	start := time.Now()
	var total uint64
	var modeled time.Duration
	for _, pat := range pattern.ConnectedPatterns(k) {
		pl, err := plan.Compile(pat, plan.Options{
			Style: plan.StyleGraphPi, Induced: true, Stats: plan.StatsOf(g),
		})
		if err != nil {
			return Result{}, err
		}
		cnt, makespan := countStatic(pl, g, cfg.NumNodes*cfg.ThreadsPerNode)
		total += cnt
		modeled += makespan
	}
	return Result{
		Count:          total,
		Elapsed:        time.Since(start),
		ModeledElapsed: modeled,
		MemoryBytes:    uint64(cfg.NumNodes) * g.SizeBytes(),
	}, nil
}

// countStatic splits the root range into one contiguous block per worker —
// the coarse-grained first-loop parallelization. On skewed graphs blocks
// containing hubs dominate the critical path. Shards run sequentially and
// are timed individually so the modeled makespan (slowest shard) is valid
// regardless of host core count; the returned makespan is that maximum.
func countStatic(pl *plan.Plan, g *graph.Graph, workers int) (uint64, time.Duration) {
	var labelOf plan.LabelFunc
	if g.Labeled() {
		labelOf = g.Label
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	block := (n + workers - 1) / workers
	var total uint64
	var makespan time.Duration
	ex := plan.NewExecutor(pl, g.Neighbors, labelOf)
	if g.EdgeLabeled() {
		ex.SetEdgeLabelOf(plan.EdgeLabelOracle(g))
	}
	for w := 0; w < workers; w++ {
		start := w * block
		end := start + block
		if end > n {
			end = n
		}
		t0 := time.Now()
		for v := start; v < end; v++ {
			total += ex.CountRoot(graph.VertexID(v))
		}
		if d := time.Since(t0); d > makespan {
			makespan = d
		}
	}
	return total, makespan
}
