package replicated

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestCountMatchesBruteForce(t *testing.T) {
	g := graph.RMATDefault(100, 500, 127)
	for _, pat := range []*pattern.Pattern{pattern.Triangle(), pattern.Clique(4)} {
		want := plan.BruteForceCount(g, pat, false)
		for _, nodes := range []int{1, 4, 8} {
			res, err := Count(g, pat, Config{NumNodes: nodes, ThreadsPerNode: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("%v nodes=%d: %d, want %d", pat, nodes, res.Count, want)
			}
		}
	}
}

func TestMemoryScalesWithReplication(t *testing.T) {
	g := graph.RMATDefault(200, 1000, 131)
	r1, err := Count(g, pattern.Triangle(), Config{NumNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Count(g, pattern.Triangle(), Config{NumNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r8.MemoryBytes != 8*r1.MemoryBytes {
		t.Fatalf("replication memory: 1 node %d, 8 nodes %d", r1.MemoryBytes, r8.MemoryBytes)
	}
}

func TestCountMotifs(t *testing.T) {
	g := graph.RMATDefault(60, 300, 137)
	var want uint64
	for _, pat := range pattern.ConnectedPatterns(3) {
		want += plan.BruteForceCount(g, pat, true)
	}
	res, err := CountMotifs(g, 3, Config{NumNodes: 2, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("3-motif total = %d, want %d", res.Count, want)
	}
}
