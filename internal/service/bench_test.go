package service

import (
	"sync"
	"testing"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
)

// batchSpecs is an 8-query interactive batch — the workload the resident
// server exists for: a mix of named patterns and explicit edge lists small
// enough for CI, varied enough that plan compilation is not one cache line.
var batchSpecs = []Spec{
	{Pattern: "triangle"},
	{Pattern: "wedge"},
	{Pattern: "K4"},
	{Pattern: "diamond"},
	{Pattern: "house"},
	{Pattern: "tailed-triangle"},
	{Pattern: "3:0-1,1-2"},
	{Pattern: "4:0-1,1-2,2-3,3-0"},
}

func benchGraph() *graph.Graph { return graph.RMATDefault(400, 1600, 7) }

func benchClusterConfig() cluster.Config {
	return cluster.Config{
		NumNodes:         3,
		ThreadsPerSocket: 2,
		Transport:        cluster.TransportTCP,
		CacheFraction:    0.1,
	}
}

// BenchmarkOneShotBatch8 prices the batch the pre-service way: every query
// pays cluster construction (fabric dial-up, cache allocation), plan
// compilation, and teardown before any matching happens.
func BenchmarkOneShotBatch8(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range batchSpecs {
			cl, err := cluster.New(g, benchClusterConfig())
			if err != nil {
				b.Fatal(err)
			}
			pat, err := pattern.Parse(s.Pattern)
			if err != nil {
				b.Fatal(err)
			}
			pl, err := apps.Compile(s.System, pat, g, apps.CompileOptions{Induced: s.Induced})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Count(pl); err != nil {
				b.Fatal(err)
			}
			cl.Close()
		}
	}
}

// BenchmarkServeResidentBatch8 prices the same batch against a resident
// query server in steady state: one warm cluster, compiled plans in the
// registry, shared caches populated, all 8 queries in flight concurrently
// over one client connection.
func BenchmarkServeResidentBatch8(b *testing.B) {
	ccfg := benchClusterConfig()
	ccfg.SharedCache = true
	cl, err := cluster.New(benchGraph(), ccfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	srv, err := New(cl, Config{MaxConcurrent: len(batchSpecs)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	// Warm the plan registry and shared caches: steady state is the resident
	// server's whole point, so the benchmark measures it, not the first hit.
	for _, s := range batchSpecs {
		if _, err := cli.Run(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := make([]error, len(batchSpecs))
		var wg sync.WaitGroup
		for j, s := range batchSpecs {
			wg.Add(1)
			go func(j int, s Spec) {
				defer wg.Done()
				_, errs[j] = cli.Run(s)
			}(j, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
