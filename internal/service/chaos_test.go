package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"khuzdul/internal/cluster"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// TestServiceChaosSoak is the self-healing acceptance scenario: a resident
// server keeps answering a concurrent query stream while the fault
// schedule crashes a node, slows another, and corrupts and errors a slice
// of all traffic. Every query must either succeed with a count
// bit-identical to the fault-free baseline or fail with a classified
// sentinel — and no query may outlive its deadline. Afterwards the server
// must still be healthy: the crash cost exactly one re-partition and a
// health probe names the dead node.
func TestServiceChaosSoak(t *testing.T) {
	leakcheck.Check(t)
	g := graph.RMATDefault(150, 900, 47)
	specs := []Spec{
		{Pattern: "triangle"},
		{Pattern: "K4"},
		{Pattern: "3:0-1,1-2"},
	}
	want := make([]uint64, len(specs))
	for i, s := range specs {
		pat, err := pattern.Parse(s.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = plan.BruteForceCount(g, pat, s.Induced)
	}

	prof := &fault.Profile{
		Seed:        13,
		ErrorRate:   0.03,
		CorruptRate: 0.02,
		Crashes:     []fault.Crash{{Node: 2, After: 40}},
		Slowdowns:   []fault.Slowdown{{Node: 1, Factor: 3}},
	}
	ccfg := cluster.Config{
		NumNodes:         4,
		ThreadsPerSocket: 2,
		ChunkSize:        8,
		Fault:            prof,
		FetchTimeout:     50 * time.Millisecond,
		FetchRetries:     5,
		RetryBackoff:     200 * time.Microsecond,
		BreakerThreshold: 3,
	}
	cl, err := cluster.New(g, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv, err := New(cl, Config{MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		workers          = 3
		queriesPerWorker = 5
		deadline         = 30 * time.Second
		// deadlineSlack allows for the final range boundary and result
		// delivery after the deadline timer fires.
		deadlineSlack = 5 * time.Second
	)
	type verdict struct {
		spec    int
		out     Outcome
		err     error
		elapsed time.Duration
	}
	verdicts := make([][]verdict, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), 0)
			if err != nil {
				verdicts[w] = []verdict{{err: err}}
				return
			}
			defer cli.Close()
			for i := 0; i < queriesPerWorker; i++ {
				si := (w + i) % len(specs)
				spec := specs[si]
				spec.Deadline = deadline
				start := time.Now()
				out, err := cli.Run(spec)
				verdicts[w] = append(verdicts[w], verdict{
					spec: si, out: out, err: err, elapsed: time.Since(start),
				})
			}
		}(w)
	}
	wg.Wait()

	var ok, failed int
	for w, vs := range verdicts {
		for i, v := range vs {
			if v.elapsed > deadline+deadlineSlack {
				t.Errorf("worker %d query %d outlived its deadline: %v > %v", w, i, v.elapsed, deadline+deadlineSlack)
			}
			switch {
			case v.err == nil:
				ok++
				if v.out.Count != want[v.spec] {
					t.Errorf("worker %d query %d (%s): count %d, want fault-free %d",
						w, i, specs[v.spec].Pattern, v.out.Count, want[v.spec])
				}
			case errors.Is(v.err, ErrQueryFailed),
				errors.Is(v.err, ErrRejected),
				errors.Is(v.err, ErrDeadlineExceeded):
				// Classified, retryable outcomes under chaos.
				failed++
			default:
				t.Errorf("worker %d query %d: unclassified error %v", w, i, v.err)
			}
		}
	}
	if ok == 0 {
		t.Fatal("no query succeeded during the soak")
	}
	t.Logf("soak: %d ok, %d classified failures across %d queries", ok, failed, workers*queriesPerWorker)

	// The crash must have cost exactly one resident re-partition, shared by
	// every query that tripped over it.
	if n := cl.Repartitions(); n != 1 {
		t.Errorf("Repartitions() = %d after the soak's single crash, want exactly 1", n)
	}

	// The server keeps serving: a fresh client gets exact answers with no
	// fresh recovery, and a health probe names the dead node.
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out, err := cli.Run(Spec{Pattern: "triangle", Deadline: deadline})
	if err != nil {
		t.Fatalf("post-soak query: %v", err)
	}
	if out.Count != want[0] {
		t.Fatalf("post-soak count = %d, want %d", out.Count, want[0])
	}
	h, err := cli.Health()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range h.SuspectNodes {
		if n == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("health SuspectNodes = %v, want to include crashed node 2", h.SuspectNodes)
	}
	if h.Draining {
		t.Error("health reports draining on a live server")
	}
}
