package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/comm"
)

// Sentinel errors a query's Result can wrap.
var (
	// ErrRejected: the server's admission window was full. Retryable — the
	// query never started; resubmit after one of your queries returns.
	ErrRejected = errors.New("service: query rejected by admission control")
	// ErrCanceled: the query was aborted by Cancel or a disconnect.
	ErrCanceled = errors.New("service: query canceled")
	// ErrQueryFailed: the server could not compile or execute the query.
	ErrQueryFailed = errors.New("service: query failed")
	// ErrClientClosed: the connection closed with the query still pending.
	ErrClientClosed = errors.New("service: client closed")
	// ErrDeadlineExceeded: the query's deadline fired before it finished.
	// The query was canceled server-side; resubmit with a larger deadline.
	ErrDeadlineExceeded = errors.New("service: query deadline exceeded")
	// ErrDraining: the server is shutting down gracefully. Retryable — the
	// query never started; resubmit against another replica.
	ErrDraining = errors.New("service: server is draining")
)

// drainingPrefix tags rejection and cancellation details caused by a
// server drain; clients detect it to map onto ErrDraining.
const drainingPrefix = "DRAINING"

// Spec names one query.
type Spec struct {
	// Pattern is a named pattern ("triangle", "K5", "house") or an explicit
	// "n:u-v,..." edge list. Ignored when PlanID is set.
	Pattern string
	// PlanID re-submits a plan the server compiled earlier (returned in a
	// previous Outcome); 0 means compile from Pattern.
	PlanID uint32
	// System selects the client GPM system compiling the schedule.
	System apps.System
	// Induced requests induced (motif) matching semantics.
	Induced bool
	// Deadline bounds the query's server-side execution (including any
	// crash-recovery it triggers); past it the query completes with
	// ErrDeadlineExceeded. 0 defers to the server's cap, if any.
	Deadline time.Duration
}

// Outcome is the terminal answer for one query.
type Outcome struct {
	// Status is the server's verdict.
	Status comm.QueryStatus
	// Count is the exact match count (Status == QueryOK).
	Count uint64
	// PlanID identifies the compiled plan server-side; resubmit it via
	// Spec.PlanID to skip compilation. 0 = not cached.
	PlanID uint32
	// Elapsed is the server-side execution time.
	Elapsed time.Duration
	// Detail explains rejections and failures.
	Detail string
}

// Client is one connection to a query server. It is safe for concurrent
// use: many queries may be in flight at once, multiplexed by query ID.
type Client struct {
	qc       *comm.QueryConn
	readDone chan struct{}

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]*Query
	// healthq queues Health waiters FIFO: the server answers probes in
	// order on the same connection, so the oldest waiter owns the next
	// report.
	healthq []chan *comm.QueryHealth
	err     error
}

// Query is one in-flight submission.
type Query struct {
	c  *Client
	id uint32
	// progress holds the latest streamed partial count (latest-wins).
	progress chan uint64
	done     chan struct{}
	out      Outcome
	err      error
}

// Dial connects to a query server. timeout bounds the handshake and each
// frame write; 0 uses a 10s default.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = DefaultIOTimeout
	}
	qc, err := comm.DialQuery(addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		qc:       qc,
		readDone: make(chan struct{}),
		pending:  make(map[uint32]*Query),
	}
	go c.readLoop()
	return c, nil
}

// Close severs the connection. Pending queries complete with
// ErrClientClosed; server-side, the disconnect cancels them.
func (c *Client) Close() error {
	err := c.qc.Close()
	<-c.readDone
	return err
}

// Submit sends one query and returns its in-flight handle.
func (c *Client) Submit(spec Spec) (*Query, error) {
	kind := comm.QueryPatternName
	switch {
	case spec.PlanID != 0:
		kind = comm.QueryPlanRef
	case strings.ContainsRune(spec.Pattern, ':'):
		kind = comm.QueryEdgeList
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	q := &Query{
		c:        c,
		id:       c.nextID,
		progress: make(chan uint64, 1),
		done:     make(chan struct{}),
	}
	c.pending[q.id] = q
	c.mu.Unlock()
	err := c.qc.WriteSubmit(&comm.QuerySubmit{
		ID:       q.id,
		Kind:     kind,
		System:   uint8(spec.System),
		Induced:  spec.Induced,
		PlanID:   spec.PlanID,
		Spec:     spec.Pattern,
		Deadline: spec.Deadline,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, q.id)
		c.mu.Unlock()
		return nil, err
	}
	return q, nil
}

// Run submits one query and blocks for its result.
func (c *Client) Run(spec Spec) (Outcome, error) {
	q, err := c.Submit(spec)
	if err != nil {
		return Outcome{}, err
	}
	return q.Result()
}

// Result blocks until the query's terminal result (or connection failure)
// and maps non-OK statuses to their sentinel errors.
func (q *Query) Result() (Outcome, error) {
	<-q.done
	return q.out, q.err
}

// Progress returns a channel carrying the latest streamed partial count.
// It is latest-wins with capacity 1: slow consumers see fresh values, not a
// backlog.
func (q *Query) Progress() <-chan uint64 { return q.progress }

// Cancel asks the server to abort the query. The query still completes —
// with QueryCanceled, or QueryOK if the result won the race.
func (q *Query) Cancel() error { return q.c.qc.WriteCancel(q.id) }

// readLoop demultiplexes server frames to pending queries until the
// connection dies.
func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		msg, err := c.qc.ReadMsg()
		if err != nil {
			c.fail(fmt.Errorf("%w: %w", ErrClientClosed, err))
			return
		}
		switch m := msg.(type) {
		case *comm.QueryProgress:
			c.mu.Lock()
			q := c.pending[m.ID]
			c.mu.Unlock()
			if q != nil {
				q.pushProgress(m.Partial)
			}
		case *comm.QueryResult:
			c.mu.Lock()
			q := c.pending[m.ID]
			delete(c.pending, m.ID)
			c.mu.Unlock()
			if q != nil {
				q.complete(m)
			}
		case *comm.QueryHealth:
			c.mu.Lock()
			var waiter chan *comm.QueryHealth
			if len(c.healthq) > 0 {
				waiter = c.healthq[0]
				c.healthq = c.healthq[1:]
			}
			c.mu.Unlock()
			if waiter != nil {
				waiter <- m
			}
		default:
			c.fail(fmt.Errorf("%w: unexpected %T from server", ErrClientClosed, msg))
			return
		}
	}
}

// fail completes every pending query with err and poisons the client.
func (c *Client) fail(err error) {
	c.mu.Lock()
	c.err = err
	stranded := c.pending
	c.pending = make(map[uint32]*Query)
	probes := c.healthq
	c.healthq = nil
	c.mu.Unlock()
	for _, q := range stranded {
		q.err = err
		close(q.done)
	}
	for _, w := range probes {
		close(w)
	}
}

// pushProgress delivers a partial count, displacing a stale undelivered one.
func (q *Query) pushProgress(v uint64) {
	for {
		select {
		case q.progress <- v:
			return
		default:
		}
		select {
		case <-q.progress:
		default:
		}
	}
}

// complete records the terminal result and releases Result waiters.
func (q *Query) complete(r *comm.QueryResult) {
	q.out = Outcome{
		Status:  r.Status,
		Count:   r.Count,
		PlanID:  r.PlanID,
		Elapsed: r.Elapsed,
		Detail:  r.Detail,
	}
	switch r.Status {
	case comm.QueryOK:
	case comm.QueryRejected:
		if strings.HasPrefix(r.Detail, drainingPrefix) {
			q.err = fmt.Errorf("%w: %s", ErrDraining, r.Detail)
		} else {
			q.err = fmt.Errorf("%w: %s", ErrRejected, r.Detail)
		}
	case comm.QueryCanceled:
		if strings.HasPrefix(r.Detail, drainingPrefix) {
			q.err = fmt.Errorf("%w: %s", ErrDraining, r.Detail)
		} else {
			q.err = ErrCanceled
		}
	case comm.QueryDeadlineExceeded:
		q.err = fmt.Errorf("%w: %s", ErrDeadlineExceeded, r.Detail)
	default:
		q.err = fmt.Errorf("%w: %s", ErrQueryFailed, r.Detail)
	}
	close(q.done)
}

// Health probes the server and blocks for its report: drain state, load,
// and suspected-dead cluster nodes.
func (c *Client) Health() (Health, error) {
	ch := make(chan *comm.QueryHealth, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Health{}, err
	}
	c.healthq = append(c.healthq, ch)
	c.mu.Unlock()
	if err := c.qc.WriteHealthProbe(); err != nil {
		// The probe never left; unqueue the waiter (unless the readLoop
		// already failed and closed it) so later reports stay aligned.
		c.mu.Lock()
		for i, w := range c.healthq {
			if w == ch {
				c.healthq = append(c.healthq[:i], c.healthq[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return Health{}, err
	}
	w, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return Health{}, err
	}
	return healthFromWire(w), nil
}
