package service

import (
	"errors"
	"strings"
	"testing"
	"time"

	"khuzdul/internal/comm"
	"khuzdul/internal/leakcheck"
)

// TestDrainRejectsNewSubmits: once Drain starts, new submissions bounce
// with the retryable DRAINING status while the in-flight query keeps
// running; the drain completes when the in-flight query is canceled.
func TestDrainRejectsNewSubmits(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "10ms"), Config{
		MaxConcurrent: 2,
		WorkerBudget:  1,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(30 * time.Second) }()
	waitFor(t, 10*time.Second, "the server to enter draining state", func() bool {
		return srv.Health().Draining
	})

	out, err := cli.Run(Spec{Pattern: "triangle"})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err %v (outcome %+v), want ErrDraining", err, out)
	}
	if out.Status != comm.QueryRejected {
		t.Fatalf("submit during drain: status %d, want QueryRejected", out.Status)
	}

	// The in-flight query is still being served; release it and the drain
	// finishes gracefully.
	if err := q.Cancel(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled in-flight query: %v, want ErrCanceled", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDrainWaitsForInflight: a drain with headroom lets the running query
// finish and deliver its exact count before connections are severed.
func TestDrainWaitsForInflight(t *testing.T) {
	leakcheck.Check(t)
	want := oneShotCount(t, Spec{Pattern: "triangle"})
	_, srv := newTestServer(t, fastClusterConfig(), Config{})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q, err := cli.Submit(Spec{Pattern: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to be admitted", func() bool {
		return m.ActiveQueries.Load() == 1 || m.QueriesOK.Load() == 1
	})
	if err := srv.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out, err := q.Result()
	if err != nil {
		t.Fatalf("query across graceful drain: %v", err)
	}
	if out.Count != want {
		t.Fatalf("count across graceful drain = %d, want %d", out.Count, want)
	}
	if n := m.QueriesOK.Load(); n != 1 {
		t.Fatalf("QueriesOK = %d, want 1", n)
	}
}

// TestDrainHardCancelSendsFinalFrame: when the drain timeout expires, the
// straggler is hard-canceled — but the client still receives a terminal
// result frame carrying the DRAINING detail, not a bare connection reset.
func TestDrainHardCancelSendsFinalFrame(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "25ms"), Config{
		MaxConcurrent:    1,
		WorkerBudget:     1,
		ProgressInterval: 5 * time.Millisecond,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})
	select {
	case <-q.Progress():
	case <-time.After(10 * time.Second):
		t.Fatal("no progress streamed within 10s")
	}

	if err := srv.Drain(20 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out, err := q.Result()
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("hard-canceled query: err %v (outcome %+v), want ErrDraining via a final frame", err, out)
	}
	if out.Status != comm.QueryCanceled {
		t.Fatalf("hard-canceled query status %d, want QueryCanceled", out.Status)
	}
	if !strings.HasPrefix(out.Detail, drainingPrefix) {
		t.Fatalf("hard-canceled query detail %q, want a %s prefix", out.Detail, drainingPrefix)
	}
	if n := m.QueriesCanceled.Load(); n != 1 {
		t.Fatalf("QueriesCanceled = %d, want 1", n)
	}
}

// TestCloseIsDrainZero: Close hard-cancels immediately but each in-flight
// query still gets a terminal frame, and repeated Close calls are safe.
func TestCloseIsDrainZero(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "25ms"), Config{
		MaxConcurrent: 1,
		WorkerBudget:  1,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	out, err := q.Result()
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("query across Close: err %v (outcome %+v), want ErrDraining via a final frame", err, out)
	}
	if out.Status != comm.QueryCanceled {
		t.Fatalf("query across Close: status %d, want QueryCanceled", out.Status)
	}
}

// TestQueryDeadlineExceeded: a query whose client deadline fires mid-run
// completes with the dedicated deadline status — promptly, not after the
// multi-second fetch schedule it would otherwise run.
func TestQueryDeadlineExceeded(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "25ms"), Config{
		MaxConcurrent: 1,
		WorkerBudget:  1,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const deadline = 150 * time.Millisecond
	start := time.Now()
	out, err := cli.Run(Spec{Pattern: "K4", Deadline: deadline})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("deadline query: err %v (outcome %+v), want ErrDeadlineExceeded", err, out)
	}
	if out.Status != comm.QueryDeadlineExceeded {
		t.Fatalf("deadline query status %d, want QueryDeadlineExceeded", out.Status)
	}
	// The cancellation must actually cut the run short: well under the
	// multi-second uncanceled schedule, with slack for a range boundary.
	if elapsed > deadline+5*time.Second {
		t.Fatalf("deadline query returned after %v, deadline %v", elapsed, deadline)
	}
	m := srv.Metrics()
	if n := m.QueriesDeadlineExceeded.Load(); n != 1 {
		t.Fatalf("QueriesDeadlineExceeded = %d, want 1", n)
	}
	if n := m.QueriesCanceled.Load(); n != 0 {
		t.Fatalf("QueriesCanceled = %d, want 0 (deadline has its own status)", n)
	}
}

// TestServerDeadlineCap: Config.QueryDeadline bounds queries that asked
// for no deadline at all, and caps ones that asked for more.
func TestServerDeadlineCap(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "25ms"), Config{
		MaxConcurrent: 1,
		WorkerBudget:  1,
		QueryDeadline: 150 * time.Millisecond,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// No client deadline: the server cap applies.
	if _, err := cli.Run(Spec{Pattern: "K4"}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("capped query: %v, want ErrDeadlineExceeded", err)
	}
	// A client deadline beyond the cap is clamped to it.
	if _, err := cli.Run(Spec{Pattern: "K4", Deadline: time.Hour}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("over-cap query: %v, want ErrDeadlineExceeded", err)
	}
	if n := srv.Metrics().QueriesDeadlineExceeded.Load(); n != 2 {
		t.Fatalf("QueriesDeadlineExceeded = %d, want 2", n)
	}
}

// TestHealthProbe: the health frame reports drain state and load over the
// same connection queries use.
func TestHealthProbe(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "10ms"), Config{
		MaxConcurrent: 3,
		WorkerBudget:  1,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h, err := cli.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Draining || h.ActiveQueries != 0 || h.Window != 3 || len(h.SuspectNodes) != 0 {
		t.Fatalf("idle health = %+v, want not draining, 0 active, window 3, no suspects", h)
	}

	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})
	h, err = cli.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.ActiveQueries != 1 || h.Submitted == 0 {
		t.Fatalf("busy health = %+v, want 1 active and nonzero submitted", h)
	}
	if err := q.Cancel(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled query: %v, want ErrCanceled", err)
	}
}
