package service

import (
	"errors"
	"fmt"
	"sync"

	"khuzdul/internal/apps"
	"khuzdul/internal/comm"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// errUnknownPlan marks a QueryPlanRef naming a plan ID this server never
// assigned (or assigned before a restart — plan IDs are not durable).
var errUnknownPlan = errors.New("service: unknown plan id")

// maxCachedPlans bounds the registry: a resident server must not grow
// without limit under a stream of distinct patterns. Beyond the cap,
// queries still compile and run — they just stop being cached and get no
// re-submittable plan ID.
const maxCachedPlans = 1024

// registry compiles and validates query submissions into enumeration plans
// and caches the results: repeated queries for the same (spec, system,
// induced) triple — the interactive workload the service exists for — skip
// compilation entirely, and clients can pin a plan explicitly by the plan
// ID returned with their first result.
type registry struct {
	g *graph.Graph

	mu    sync.Mutex
	ids   map[planKey]uint32
	plans map[uint32]*plan.Plan
	next  uint32
}

// planKey identifies one compiled plan. Spec is the raw pattern string: two
// spellings of the same pattern compile twice, which costs a cache slot but
// never a wrong answer.
type planKey struct {
	spec    string
	system  apps.System
	induced bool
}

func newRegistry(g *graph.Graph) *registry {
	return &registry{
		g:     g,
		ids:   make(map[planKey]uint32),
		plans: make(map[uint32]*plan.Plan),
	}
}

// resolve turns a submission into a runnable plan plus the registry's plan
// ID for it (0 when uncached). Plan references are looked up; pattern specs
// are parsed and compiled under the submission's system and matching
// semantics.
func (r *registry) resolve(sub *comm.QuerySubmit) (uint32, *plan.Plan, error) {
	if sub.Kind == comm.QueryPlanRef {
		r.mu.Lock()
		pl := r.plans[sub.PlanID]
		r.mu.Unlock()
		if pl == nil {
			return 0, nil, fmt.Errorf("%w %d", errUnknownPlan, sub.PlanID)
		}
		return sub.PlanID, pl, nil
	}
	sys := apps.System(sub.System)
	if sys != apps.KAutomine && sys != apps.KGraphPi {
		return 0, nil, fmt.Errorf("service: unknown system %d", sub.System)
	}
	key := planKey{spec: sub.Spec, system: sys, induced: sub.Induced}
	r.mu.Lock()
	if id, ok := r.ids[key]; ok {
		pl := r.plans[id]
		r.mu.Unlock()
		return id, pl, nil
	}
	r.mu.Unlock()

	// Compile outside the lock: one slow compile must not serialize every
	// other query's cache lookup. A racing duplicate compile is wasted work,
	// not a correctness problem — first registration wins.
	pat, err := pattern.Parse(sub.Spec)
	if err != nil {
		return 0, nil, err
	}
	pl, err := apps.Compile(sys, pat, r.g, apps.CompileOptions{Induced: sub.Induced})
	if err != nil {
		return 0, nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[key]; ok {
		return id, r.plans[id], nil
	}
	if len(r.plans) >= maxCachedPlans {
		return 0, pl, nil
	}
	r.next++
	r.ids[key] = r.next
	r.plans[r.next] = pl
	return r.next, pl, nil
}
